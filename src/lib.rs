//! # exathlon
//!
//! Umbrella crate for the Rust reproduction of **Exathlon: A Benchmark for
//! Explainable Anomaly Detection over Time Series** (VLDB 2021).
//!
//! This crate re-exports every workspace member under a stable set of module
//! names so that downstream users — and the `examples/` and `tests/`
//! directories of this repository — can depend on a single crate:
//!
//! ```
//! use exathlon::sparksim::dataset::DatasetBuilder;
//! use exathlon::metrics::ranges::Range;
//!
//! let r = Range::new(10, 20);
//! assert_eq!(r.len(), 10);
//! let _ = DatasetBuilder::tiny(7);
//! ```
//!
//! See the crate-level documentation of each member for details:
//!
//! * [`linalg`] — matrices, eigensolver, PCA, descriptive statistics
//! * [`tsdata`] — multivariate time series, windowing, scaling, resampling
//! * [`sparksim`] — the Spark-cluster trace simulator + anomaly injection
//! * [`nn`] — from-scratch neural networks (dense, LSTM, GAN)
//! * [`ad`] — anomaly-detection methods and threshold selection
//! * [`metrics`] — range-based precision/recall, AUPRC, ED metrics
//! * [`ed`] — explanation-discovery methods (EXstream, MacroBase, LIME)
//! * [`core`] — the end-to-end benchmark pipeline

pub use exathlon_ad as ad;
pub use exathlon_core as core;
pub use exathlon_ed as ed;
pub use exathlon_linalg as linalg;
pub use exathlon_nn as nn;
pub use exathlon_sparksim as sparksim;
pub use exathlon_tsdata as tsdata;
pub use exathlon_tsmetrics as metrics;
