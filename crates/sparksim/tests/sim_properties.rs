//! Property-based tests on the cluster simulator: physical invariants
//! that must hold for arbitrary run specifications.

use exathlon_sparksim::deg::{AnomalyType, DegSchedule, InjectedEvent};
use exathlon_sparksim::engine::{simulate, SimSpec};
use exathlon_sparksim::metrics::{base, BASE_METRICS};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = SimSpec> {
    (
        0usize..10,   // app
        0.6f64..1.3,  // rate factor
        2usize..8,    // concurrency
        200u64..500,  // duration
        any::<u64>(), // seed
    )
        .prop_map(|(app_id, rate_factor, concurrency, duration, seed)| {
            SimSpec::undisturbed(app_id, 0, rate_factor, concurrency, duration, seed)
        })
}

fn arb_event(duration: u64) -> impl Strategy<Value = InjectedEvent> {
    (
        prop_oneof![
            Just(AnomalyType::BurstyInput),
            Just(AnomalyType::StalledInput),
            Just(AnomalyType::CpuContention),
            Just(AnomalyType::DriverFailure),
            Just(AnomalyType::ExecutorFailure),
        ],
        duration / 4..duration / 2,
        20u64..60,
        0usize..4,
    )
        .prop_map(|(atype, start, dur, node)| InjectedEvent {
            atype,
            start,
            duration: dur,
            intensity: match atype {
                AnomalyType::BurstyInput => 4.5,
                AnomalyType::CpuContention => 0.9,
                _ => 0.0,
            },
            node,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Undisturbed runs: full length, no crash, finite-or-NaN metrics,
    /// cumulative counters monotone up to reporting jitter.
    #[test]
    fn undisturbed_invariants(spec in arb_spec()) {
        let (trace, gt) = simulate(&spec);
        prop_assert!(gt.is_empty());
        prop_assert_eq!(trace.len() as u64, spec.duration);
        prop_assert!(trace.crashed_at.is_none());
        prop_assert_eq!(trace.base.dims(), BASE_METRICS);

        let batches = trace.base.feature_column(base::TOTAL_COMPLETED_BATCHES);
        for w in batches.windows(2) {
            prop_assert!(w[1] >= w[0], "completed batches decreased");
        }
        let processed = trace.base.feature_column(base::TOTAL_PROCESSED_RECORDS);
        let slack = processed.last().copied().unwrap_or(0.0).abs() * 0.01 + 1.0;
        for w in processed.windows(2) {
            prop_assert!(w[1] >= w[0] - slack, "processed counter fell beyond jitter");
        }
        // Delays are non-negative; idle% within [0, 100].
        for i in 0..trace.len() {
            prop_assert!(trace.base.value(i, base::PROCESSING_DELAY) >= 0.0);
            prop_assert!(trace.base.value(i, base::SCHEDULING_DELAY) >= 0.0);
            for n in 0..4 {
                let idle = trace.base.value(i, base::node_cpu_idle(n));
                prop_assert!((0.0..=100.0).contains(&idle));
            }
        }
    }

    /// Disturbed runs: exactly one ground-truth entry per surviving
    /// injected event, with RCI matching the schedule and intervals inside
    /// the trace.
    #[test]
    fn disturbed_ground_truth_matches_schedule(
        spec in arb_spec(),
        event in arb_event(400),
    ) {
        let spec = SimSpec {
            duration: 400.max(event.end() + 50),
            schedule: DegSchedule::new(vec![event.clone()]),
            ..spec
        };
        let (trace, gt) = simulate(&spec);
        if (event.start as usize) < trace.len() {
            prop_assert_eq!(gt.len(), 1);
            let e = &gt[0];
            prop_assert_eq!(e.anomaly_type, event.atype);
            prop_assert_eq!(e.root_cause_start, event.start);
            let (_, a_end) = e.anomaly_interval();
            prop_assert!(a_end <= trace.len() as u64);
        }
    }

    /// Determinism: the same spec yields bit-identical traces.
    #[test]
    fn simulation_is_deterministic(spec in arb_spec()) {
        let (a, _) = simulate(&spec);
        let (b, _) = simulate(&spec);
        prop_assert!(a.base.same_data(&b.base));
    }
}
