//! The tick-level cluster simulation.
//!
//! One simulated second per tick. The engine models the micro-batch
//! execution loop of a Spark Streaming application (§3.1, Figure 1):
//! receivers accumulate records, a batch forms every `batch_interval`
//! seconds, executors drain the batch queue at a rate set by their CPU
//! share, and the driver reports per-batch scheduling/processing delays.
//! The six DEG anomaly types perturb exactly the quantities the paper
//! describes (Appendix A.1):
//!
//! * **T1/T2 bursty input** multiplies the input rate; when the batch
//!   inflow exceeds processing capacity the queue — and with it scheduling
//!   delay and memory — builds up; sustained pressure OOMs executors and
//!   eventually kills the application (T2).
//! * **T3 stalled input** zeroes the input rate: processed-record diffs
//!   drop to zero and processing time falls below normal.
//! * **T4 CPU contention** removes CPU share from one node, slowing every
//!   executor placed there.
//! * **T5 driver failure** stops the whole application for ~20 s.
//! * **T6 executor failure** takes one executor down for ~10 s, after
//!   which a backup slot takes over.
//!
//! Normal traces are *noisy by design*, like the paper's: periodic
//! checkpointing steals capacity and spikes the processing delay, and an
//! HDFS DataNode sporadically consumes node CPU.

use crate::app::AppProfile;
use crate::deg::{AnomalyType, DegSchedule};
use crate::ground_truth::{derive_eei, GroundTruthEntry};
use crate::metrics::{base, base_metric_names, BASE_METRICS, EXECUTOR_SLOTS, NODES};
use crate::trace::{Trace, WorkloadContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Specification of one simulated run.
#[derive(Debug, Clone)]
pub struct SimSpec {
    /// Application to run.
    pub app_id: usize,
    /// Trace id to stamp on the output.
    pub trace_id: usize,
    /// Input-rate factor relative to the application's sized-for rate.
    pub rate_factor: f64,
    /// Number of applications sharing the cluster (background load).
    pub concurrency: usize,
    /// Planned duration in ticks; a crash may end the trace earlier.
    pub duration: u64,
    /// RNG seed — every run is fully deterministic given its spec.
    pub seed: u64,
    /// Anomaly injection schedule.
    pub schedule: DegSchedule,
}

impl SimSpec {
    /// An undisturbed run.
    pub fn undisturbed(
        app_id: usize,
        trace_id: usize,
        rate_factor: f64,
        concurrency: usize,
        duration: u64,
        seed: u64,
    ) -> Self {
        Self {
            app_id,
            trace_id,
            rate_factor,
            concurrency,
            duration,
            seed,
            schedule: DegSchedule::undisturbed(),
        }
    }
}

/// Capacity headroom the cluster is sized for: processing capacity is
/// `HEADROOM x` the application's nominal input rate (§A.1: parameters are
/// configured "to suit the capacity of the cluster").
const HEADROOM: f64 = 3.0;
/// Executor heap limit above the application's base heap before an OOM
/// crash (MB).
const OOM_HEADROOM_MB: f64 = 380.0;
/// Executor restart time after a failure (ticks), per §3.2.
const EXECUTOR_RESTART_TICKS: u64 = 10;
/// Driver restart time after a failure (ticks), per §3.2.
const DRIVER_RESTART_TICKS: u64 = 20;
/// Number of executor OOMs after which Spark kills the application.
const CRASH_OOM_THRESHOLD: usize = 4;
/// Minimum ticks between OOM kills: heap pressure takes time to rebuild
/// after a replacement executor joins.
const OOM_COOLDOWN_TICKS: u64 = 15;
/// Active executors at any time (3 active + 2 backup slots).
const ACTIVE_EXECUTORS: usize = 3;
/// Cores allocated per executor.
const CORES_PER_EXECUTOR: f64 = 4.0;
/// Cores per cluster node.
const NODE_CORES: f64 = 32.0;

#[derive(Debug, Clone, Copy, PartialEq)]
enum ExecState {
    /// Running on a node.
    Active { node: usize },
    /// Crashed/failed; comes back (possibly on a new node) at `until`.
    Restarting { node: usize, until: u64 },
    /// Backup slot, never launched: reports NaN metrics.
    Inactive,
}

#[derive(Debug)]
struct Batch {
    total: f64,
    remaining: f64,
    created: u64,
    started: Option<u64>,
}

/// Per-executor cumulative counters.
#[derive(Debug, Clone, Copy, Default)]
struct ExecCounters {
    hdfs_ops: f64,
    cpu_time: f64,
    run_time: f64,
    shuffle_read: f64,
    shuffle_written: f64,
}

/// Run the simulation and return the recorded trace plus its ground-truth
/// entries (one per injected event, with EEIs derived from the recorded
/// metrics via the Appendix A.2 rules).
pub fn simulate(spec: &SimSpec) -> (Trace, Vec<GroundTruthEntry>) {
    let app = AppProfile::by_id(spec.app_id);
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // --- Per-trace noise profile. Real runs differ in how noisy their
    // "normal" is (checkpoint cost, DataNode activity, sender jitter);
    // this cross-trace variety is what makes pooled (application/global)
    // score comparison harder than per-trace comparison, as the paper
    // observes in its Table 3 level degradation (§6.2).
    let noise_scale: f64 = 0.5 + 2.0 * rng.gen::<f64>();

    // --- Placement (YARN): driver node + executor nodes. ---
    let driver_node = rng.gen_range(0..NODES);
    let mut exec_state = [ExecState::Inactive; EXECUTOR_SLOTS];
    for slot in exec_state.iter_mut().take(ACTIVE_EXECUTORS) {
        *slot = ExecState::Active { node: rng.gen_range(0..NODES) };
    }
    let mut exec_counters = [ExecCounters::default(); EXECUTOR_SLOTS];

    // --- Capacity model. ---
    let nominal_rate = app.base_input_rate * spec.rate_factor;
    let capacity_full = HEADROOM * nominal_rate; // records/s with all executors at full share
    let per_exec_capacity = capacity_full / ACTIVE_EXECUTORS as f64;
    // Executors are sized for the workload: the OOM headroom scales with the
    // nominal input rate, so a transient T1 burst fits in memory for every
    // application while a sustained T2 burst always overflows it.
    let heap_limit = app.base_heap_mb + OOM_HEADROOM_MB * (nominal_rate / 900.0);

    // --- Mutable run state. ---
    let mut pending = 0.0_f64;
    let mut queue: VecDeque<Batch> = VecDeque::new();
    let mut cum_received = 0.0;
    let mut cum_processed = 0.0;
    let mut completed_batches = 0.0;
    let mut last_received_batch = 0.0;
    let mut last_processing_delay = 0.0;
    let mut last_scheduling_delay = 0.0;
    let mut driver_down_until: Option<u64> = None;
    let mut oom_count = 0usize;
    let mut last_oom: Option<u64> = None;
    let mut crashed_at: Option<u64> = None;
    let mut next_checkpoint = 60 + rng.gen_range(0..60);
    let mut checkpoint_left = 0u32;
    // DataNode background activity per node: occasional CPU draw.
    let mut datanode_left = [0u32; NODES];

    let mut values: Vec<f64> = Vec::with_capacity(spec.duration as usize * BASE_METRICS);

    for t in 0..spec.duration {
        let event = spec.schedule.active_at(t).cloned();

        // --- Event onsets. ---
        if let Some(e) = &event {
            if t == e.start {
                match e.atype {
                    AnomalyType::DriverFailure => {
                        driver_down_until = Some(t + DRIVER_RESTART_TICKS);
                    }
                    AnomalyType::ExecutorFailure => {
                        // Kill the first active executor on the target node
                        // (or any active one if none is placed there).
                        let victim = exec_state
                            .iter()
                            .position(
                                |s| matches!(s, ExecState::Active { node } if *node == e.node),
                            )
                            .or_else(|| {
                                exec_state
                                    .iter()
                                    .position(|s| matches!(s, ExecState::Active { .. }))
                            });
                        if let Some(v) = victim {
                            let node = match exec_state[v] {
                                ExecState::Active { node } => node,
                                _ => 0,
                            };
                            exec_state[v] =
                                ExecState::Restarting { node, until: t + EXECUTOR_RESTART_TICKS };
                        }
                    }
                    _ => {}
                }
            }
        }

        // --- Restarts. ---
        let driver_up = match driver_down_until {
            Some(until) if t < until => false,
            Some(_) => {
                driver_down_until = None;
                true
            }
            None => true,
        };
        for s in &mut exec_state {
            if let ExecState::Restarting { node, until } = *s {
                if t >= until {
                    *s = ExecState::Active { node };
                }
            }
        }

        // --- Checkpoint / DataNode noise timers. ---
        if t == next_checkpoint {
            checkpoint_left = 2 + rng.gen_range(0..2);
            next_checkpoint = t + 60 + rng.gen_range(0..60);
        }
        let checkpointing = checkpoint_left > 0;
        if checkpointing {
            checkpoint_left -= 1;
        }
        for d in &mut datanode_left {
            if *d == 0 && rng.gen_bool((0.004 * noise_scale).min(0.5)) {
                *d = 5 + rng.gen_range(0..10);
            } else if *d > 0 {
                *d -= 1;
            }
        }

        // --- Input. ---
        let mut rate = nominal_rate
            * (1.0 + 0.04 * ((t as f64) * 0.021).sin() + rng.gen_range(-0.03..0.03) * noise_scale);
        match event.as_ref().map(|e| e.atype) {
            Some(AnomalyType::BurstyInput) | Some(AnomalyType::BurstyInputUntilCrash) => {
                rate *= event.as_ref().map(|e| e.intensity).unwrap_or(1.0);
            }
            Some(AnomalyType::StalledInput) => rate = 0.0,
            _ => {}
        }
        if !driver_up {
            rate = 0.0; // receivers stop while the driver is down
        }
        pending += rate;
        cum_received += rate;

        // --- Batch formation. ---
        if driver_up && t > 0 && t % app.batch_interval == 0 {
            last_received_batch = pending;
            queue.push_back(Batch {
                total: pending,
                remaining: pending,
                created: t,
                started: None,
            });
            pending = 0.0;
        }

        // --- Per-node CPU shares. ---
        let mut node_external = [0.0_f64; NODES]; // contention + datanode, as core fraction
        for (n, ext) in node_external.iter_mut().enumerate() {
            // Other concurrently-running applications on the cluster.
            let background = 0.05 * (spec.concurrency.saturating_sub(1)) as f64 / 4.0
                + rng.gen_range(0.0_f64..0.03);
            let datanode = if datanode_left[n] > 0 { 0.20 * noise_scale } else { 0.0 };
            let contention = match &event {
                Some(e) if e.atype == AnomalyType::CpuContention && e.node == n => e.intensity,
                _ => 0.0,
            };
            *ext = (background + datanode + contention).min(0.98);
        }

        // --- Processing capacity this tick. ---
        let mut capacity = 0.0;
        let mut exec_share = [0.0_f64; EXECUTOR_SLOTS];
        if driver_up {
            for (i, s) in exec_state.iter().enumerate() {
                if let ExecState::Active { node } = *s {
                    let share = (1.0 - node_external[node]).clamp(0.02, 1.0);
                    exec_share[i] = share;
                    capacity += per_exec_capacity * share;
                }
            }
            if checkpointing {
                // Noisier traces lose more capacity to checkpointing.
                capacity *= (0.35 / noise_scale).clamp(0.08, 0.5);
            }
        }

        // --- Drain the batch queue FIFO. ---
        let mut processed_this_tick = 0.0;
        let mut cap_left = capacity;
        while cap_left > 0.0 {
            let Some(head) = queue.front_mut() else { break };
            if head.started.is_none() {
                head.started = Some(t);
            }
            let take = cap_left.min(head.remaining);
            head.remaining -= take;
            processed_this_tick += take;
            cap_left -= take;
            if head.remaining <= 1e-9 {
                let started = head.started.unwrap_or(t);
                last_scheduling_delay = (started - head.created) as f64;
                last_processing_delay =
                    (t - started + 1) as f64 + if checkpointing { 3.0 * noise_scale } else { 0.0 };
                cum_processed += head.total;
                completed_batches += 1.0;
                queue.pop_front();
            } else {
                break;
            }
        }

        // --- Per-executor counters. ---
        let active_now: Vec<usize> = (0..EXECUTOR_SLOTS)
            .filter(|&i| matches!(exec_state[i], ExecState::Active { .. }))
            .collect();
        if !active_now.is_empty() {
            let share = processed_this_tick / active_now.len() as f64;
            let busy = if capacity > 0.0 { (processed_this_tick / capacity).min(1.0) } else { 0.0 };
            for &i in &active_now {
                let c = &mut exec_counters[i];
                c.hdfs_ops += share * app.hdfs_ops_per_krec / 1000.0;
                c.cpu_time += busy * exec_share[i] * CORES_PER_EXECUTOR;
                c.run_time += busy * CORES_PER_EXECUTOR;
                c.shuffle_read += share * app.shuffle_factor;
                c.shuffle_written += share * app.shuffle_factor * 0.9;
            }
        }

        // --- Memory. ---
        let queued: f64 = pending + queue.iter().map(|b| b.remaining).sum::<f64>();
        let n_active = active_now.len().max(1) as f64;
        let exec_heap = app.base_heap_mb + queued * app.mem_per_queued_record / (1e6 * n_active);
        let driver_heap =
            if driver_up { 250.0 + queued * 2e-4 + rng.gen_range(-4.0..4.0) } else { 40.0 };
        let block_mem = queued * app.mem_per_queued_record / 1e6 * 0.6;

        // --- OOM cascade (T2 physics, but live for any sustained pressure). ---
        let oom_ready = last_oom.is_none_or(|o| t >= o + OOM_COOLDOWN_TICKS);
        if exec_heap > heap_limit && oom_ready {
            if let Some(&victim) = active_now.first() {
                let node = match exec_state[victim] {
                    ExecState::Active { node } => node,
                    _ => 0,
                };
                exec_state[victim] =
                    ExecState::Restarting { node, until: t + EXECUTOR_RESTART_TICKS };
                oom_count += 1;
                last_oom = Some(t);
                if oom_count >= CRASH_OOM_THRESHOLD {
                    crashed_at = Some(t);
                }
            }
        }

        // --- Record the tick. ---
        // Metric *reporting* is itself noisy (Spark UI counters and Nmon
        // samples jitter); the amount differs per run. This per-trace
        // jitter level is the main source of cross-trace score-scale
        // mismatch the paper observes when pooling traces (§6.2).
        let mut jitter = |scale: f64| -> f64 { rng.gen_range(-1.0..1.0) * scale * noise_scale };
        let mut rec = vec![0.0; BASE_METRICS];
        rec[base::PROCESSING_DELAY] = if driver_up {
            (last_processing_delay * (1.0 + jitter(0.10)) + jitter(0.3).abs()).max(0.0)
        } else {
            0.0
        };
        rec[base::SCHEDULING_DELAY] = if driver_up {
            // Live scheduling delay: age of the oldest unprocessed batch
            // dominates once a queue builds; falls back to the last
            // completed batch's delay when the queue is empty.
            queue
                .front()
                .map(|b| (t.saturating_sub(b.created)) as f64)
                .unwrap_or(last_scheduling_delay.min(1.0))
        } else {
            0.0
        };
        rec[base::TOTAL_DELAY] = rec[base::PROCESSING_DELAY] + rec[base::SCHEDULING_DELAY];
        rec[base::TOTAL_COMPLETED_BATCHES] = completed_batches;
        rec[base::TOTAL_PROCESSED_RECORDS] = cum_processed + jitter(0.04 * nominal_rate);
        rec[base::TOTAL_RECEIVED_RECORDS] = cum_received + jitter(0.04 * nominal_rate);
        rec[base::LAST_RECEIVED_BATCH_RECORDS] = if driver_up { last_received_batch } else { 0.0 };
        rec[base::BLOCK_MANAGER_MEM_MB] = if driver_up { block_mem } else { 0.0 };
        rec[base::DRIVER_JVM_HEAP] = driver_heap;
        for (i, s) in exec_state.iter().enumerate() {
            let blk = base::executor_block(i);
            match s {
                ExecState::Active { .. } => {
                    let c = &exec_counters[i];
                    rec[blk + base::EXEC_HDFS_WRITE_OPS] = c.hdfs_ops;
                    rec[blk + base::EXEC_CPU_TIME] = c.cpu_time;
                    rec[blk + base::EXEC_RUN_TIME] = c.run_time;
                    rec[blk + base::EXEC_SHUFFLE_READ] = c.shuffle_read;
                    rec[blk + base::EXEC_SHUFFLE_WRITTEN] = c.shuffle_written;
                    rec[blk + base::EXEC_JVM_HEAP] = exec_heap + jitter(3.0);
                }
                _ => {
                    for off in 0..crate::metrics::EXEC_BASE_METRICS {
                        rec[blk + off] = f64::NAN;
                    }
                }
            }
        }
        for n in 0..NODES {
            let mut usage = node_external[n];
            for (i, s) in exec_state.iter().enumerate() {
                if let ExecState::Active { node } = *s {
                    if node == n && capacity > 0.0 {
                        let busy = (processed_this_tick / capacity).min(1.0);
                        usage += busy * exec_share[i] * CORES_PER_EXECUTOR / NODE_CORES;
                    }
                }
            }
            if n == driver_node && driver_up {
                usage += 0.03;
            }
            rec[base::node_cpu_idle(n)] = (100.0 * (1.0 - usage) + jitter(1.5)).clamp(0.0, 100.0);
        }
        values.extend_from_slice(&rec);

        if crashed_at.is_some() {
            break;
        }
    }

    let series = exathlon_tsdata::series::TimeSeries::from_flat(base_metric_names(), 0, values);
    let trace = Trace {
        trace_id: spec.trace_id,
        context: WorkloadContext {
            app_id: spec.app_id,
            rate_factor: spec.rate_factor,
            concurrency: spec.concurrency,
        },
        base: series,
        schedule: spec.schedule.clone(),
        crashed_at,
    };

    // --- Ground truth. ---
    let trace_len = trace.len() as u64;
    let clean_until = spec.schedule.events().first().map(|e| e.start).unwrap_or(trace_len);
    let events = spec.schedule.events();
    let entries = events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.start < trace_len)
        .map(|(i, e)| {
            // T2's RCI runs until the crash ends the trace.
            let rci_end = if e.atype == AnomalyType::BurstyInputUntilCrash {
                crashed_at.map(|c| c + 1).unwrap_or(e.end()).min(trace_len)
            } else {
                e.end().min(trace_len)
            };
            // Cap the EEI at the next event's start so ground-truth
            // intervals never overlap (the paper leaves "sufficient gap
            // between two instances").
            let cap_end = events.get(i + 1).map(|nx| nx.start).unwrap_or(u64::MAX);
            let eei = derive_eei(&trace, e.atype, e.start, rci_end, clean_until, cap_end);
            GroundTruthEntry {
                app_id: spec.app_id,
                trace_id: spec.trace_id,
                anomaly_type: e.atype,
                root_cause_start: e.start,
                root_cause_end: rci_end,
                extended_effect: eei,
            }
        })
        .collect();

    (trace, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deg::InjectedEvent;

    fn base_spec(duration: u64) -> SimSpec {
        SimSpec::undisturbed(0, 0, 1.0, 5, duration, 42)
    }

    fn spec_with(events: Vec<InjectedEvent>, duration: u64) -> SimSpec {
        SimSpec { schedule: DegSchedule::new(events), ..base_spec(duration) }
    }

    #[test]
    fn undisturbed_run_is_deterministic() {
        let (a, _) = simulate(&base_spec(300));
        let (b, _) = simulate(&base_spec(300));
        assert!(a.base.same_data(&b.base));
        assert_eq!(a.len(), 300);
        assert!(a.crashed_at.is_none());
    }

    #[test]
    fn undisturbed_makes_progress() {
        let (t, gt) = simulate(&base_spec(300));
        assert!(gt.is_empty());
        let processed = t.base.feature_column(base::TOTAL_PROCESSED_RECORDS);
        assert!(processed[299] > 0.0, "no records processed");
        // Cumulative counters are monotone up to reporting jitter.
        let slack = processed[299] * 0.01;
        for w in processed.windows(2) {
            assert!(w[1] >= w[0] - slack, "processed counter decreased beyond jitter");
        }
        // Received roughly equals processed at steady state (queue drains).
        let received = t.base.feature_column(base::TOTAL_RECEIVED_RECORDS);
        assert!(processed[299] > 0.8 * received[299], "queue never drains");
    }

    #[test]
    fn bursty_input_raises_delays() {
        let ev = InjectedEvent {
            atype: AnomalyType::BurstyInput,
            start: 150,
            duration: 90,
            intensity: 5.0,
            node: 0,
        };
        let (t, gt) = simulate(&spec_with(vec![ev], 600));
        assert_eq!(gt.len(), 1);
        let sched = t.base.feature_column(base::SCHEDULING_DELAY);
        let normal_max = sched[..140].iter().cloned().fold(0.0, f64::max);
        let burst_max = sched[150..260].iter().cloned().fold(0.0, f64::max);
        assert!(
            burst_max > normal_max + 5.0,
            "burst did not raise scheduling delay: {normal_max} vs {burst_max}"
        );
        // EEI must exist and start right after the RCI.
        let eei = gt[0].extended_effect.expect("T1 should have an EEI");
        assert_eq!(eei.0, gt[0].root_cause_end);
        assert!(eei.1 > eei.0);
    }

    #[test]
    fn bursty_until_crash_kills_application() {
        let ev = InjectedEvent {
            atype: AnomalyType::BurstyInputUntilCrash,
            start: 100,
            duration: 10_000, // open-ended
            intensity: 10.0,
            node: 0,
        };
        let (t, gt) = simulate(&spec_with(vec![ev], 2_000));
        assert!(t.crashed_at.is_some(), "application should crash under sustained burst");
        assert!(t.len() < 2_000, "trace should end at the crash");
        assert_eq!(gt.len(), 1);
        assert_eq!(gt[0].extended_effect, None, "T2 has a null EEI");
        assert_eq!(gt[0].root_cause_end as usize, t.len());
    }

    #[test]
    fn stalled_input_zeroes_throughput() {
        let ev = InjectedEvent {
            atype: AnomalyType::StalledInput,
            start: 150,
            duration: 60,
            intensity: 0.0,
            node: 0,
        };
        let (t, gt) = simulate(&spec_with(vec![ev], 400));
        let processed = t.base.feature_column(base::TOTAL_PROCESSED_RECORDS);
        // Once the pre-stall queue drains, the counter must flatline (up
        // to reporting jitter, which is a zero-mean fraction of the rate).
        let mid = processed[190] - processed[180];
        let normal = processed[100] - processed[90];
        assert!(
            mid.abs() < 0.3 * normal,
            "processing continued during stall: {mid} vs normal {normal}"
        );
        assert_eq!(gt.len(), 1);
    }

    #[test]
    fn driver_failure_stops_everything_briefly() {
        let ev = InjectedEvent {
            atype: AnomalyType::DriverFailure,
            start: 200,
            duration: 20,
            intensity: 0.0,
            node: 0,
        };
        let (t, gt) = simulate(&spec_with(vec![ev], 400));
        let heap = t.base.feature_column(base::DRIVER_JVM_HEAP);
        assert!(heap[205] < 100.0, "driver heap should collapse while down");
        assert!(heap[250] > 100.0, "driver should be back up");
        assert_eq!(gt.len(), 1);
    }

    #[test]
    fn executor_failure_makes_slot_nan() {
        let ev = InjectedEvent {
            atype: AnomalyType::ExecutorFailure,
            start: 200,
            duration: 10,
            intensity: 0.0,
            node: 0,
        };
        let (t, _) = simulate(&spec_with(vec![ev], 400));
        // Some executor slot must be NaN during the outage.
        let any_nan = (0..EXECUTOR_SLOTS).any(|e| {
            let blk = base::executor_block(e);
            t.base.value(205, blk + base::EXEC_CPU_TIME).is_nan()
        });
        assert!(any_nan, "failed executor should report NaN metrics");
    }

    #[test]
    fn cpu_contention_raises_processing_time() {
        // Hit every node to be placement-independent.
        let evs: Vec<InjectedEvent> = (0..4)
            .map(|n| InjectedEvent {
                atype: AnomalyType::CpuContention,
                start: 150 + n as u64 * 100,
                duration: 60,
                intensity: 0.95,
                node: n,
            })
            .collect();
        let (t, gt) = simulate(&spec_with(evs, 700));
        assert_eq!(gt.len(), 4);
        let proc = t.base.feature_column(base::PROCESSING_DELAY);
        let normal_mean: f64 = proc[..140].iter().sum::<f64>() / 140.0;
        let contended_mean: f64 = proc[150..550].iter().sum::<f64>() / 400.0;
        assert!(
            contended_mean > normal_mean,
            "contention did not raise processing delay: {normal_mean} vs {contended_mean}"
        );
    }

    #[test]
    fn backup_slots_are_nan_in_normal_operation() {
        let (t, _) = simulate(&base_spec(50));
        for e in ACTIVE_EXECUTORS..EXECUTOR_SLOTS {
            let blk = base::executor_block(e);
            assert!(t.base.value(10, blk).is_nan(), "backup slot {e} should be NaN");
        }
    }

    #[test]
    fn checkpoint_noise_appears_in_undisturbed_traces() {
        let (t, _) = simulate(&base_spec(600));
        let proc = t.base.feature_column(base::PROCESSING_DELAY);
        let max = proc.iter().cloned().fold(0.0, f64::max);
        let med = {
            let mut v = proc.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        assert!(max > med * 1.5 + 1.0, "expected checkpoint spikes (max {max}, median {med})");
    }
}
