//! # exathlon-sparksim
//!
//! A discrete-time simulator of a Spark Streaming cluster, standing in for
//! the physical 4-node cluster the Exathlon paper collected its traces from.
//!
//! The paper's dataset (§3) consists of 93 traces: per-application
//! multivariate time series recorded at 1 Hz while 5 of 10 streaming
//! applications ran concurrently, some runs disturbed by a *disruptive
//! event generator* (DEG) injecting six types of anomalous events. This
//! crate rebuilds that data-generating process:
//!
//! * [`app`] — the 10-application catalogue with per-application workload
//!   characteristics (CPU- vs I/O-intensive, batch interval, record cost),
//! * [`deg`] — the disruptive event generator: anomaly types T1–T6 and
//!   injection schedules,
//! * [`engine`] — the tick-level simulation of micro-batch execution:
//!   input queues, processing/scheduling delays, memory pressure, executor
//!   OOM cascades, driver/executor failures, CPU contention, plus the
//!   paper's "normal noise" (checkpoint spikes, HDFS DataNode activity),
//! * [`metrics`] — the metric schema: the curated 19-feature set of
//!   Appendix D.1 and the full 2,283-metric layout of Table 1(a),
//! * [`trace`] — a recorded [`trace::Trace`] with its workload context
//!   (application, input rate, concurrency),
//! * [`ground_truth`] — root-cause intervals (RCI) from the DEG schedule
//!   and extended effect intervals (EEI) derived with the Appendix A.2
//!   rules,
//! * [`dataset`] — the [`dataset::DatasetBuilder`] reproducing the
//!   Table 1(b) composition: 59 undisturbed + 34 disturbed traces carrying
//!   97 anomaly instances.
//!
//! Why this substitution is faithful: AD/ED algorithms only observe the
//! numeric traces and the ground-truth table. The simulator reproduces the
//! *causal structure* the paper documents per anomaly type (e.g. bursty
//! input → batch size ↑ → processing time > batch interval → queue and
//! scheduling delay build-up → memory growth → executor OOM), and the same
//! sources of benign variation the paper insists are part of "normal"
//! (checkpointing, DataNode CPU). Trace durations are scaled down so the
//! full benchmark runs on a laptop.

pub mod app;
pub mod dataset;
pub mod deg;
pub mod engine;
pub mod ground_truth;
pub mod metrics;
pub mod persist;
pub mod trace;

pub use dataset::{Dataset, DatasetBuilder};
pub use deg::AnomalyType;
pub use ground_truth::GroundTruthEntry;
pub use trace::Trace;
