//! The dataset builder: reproduces the Table 1(b) composition.
//!
//! The paper's dataset contains **59 undisturbed traces** and **34
//! disturbed traces** carrying **97 anomaly instances**:
//!
//! | Type | traces | instances |
//! |------|--------|-----------|
//! | T1 bursty input              | 6 | 29 |
//! | T2 bursty input until crash  | 7 |  7 |
//! | T3 stalled input             | 4 | 16 |
//! | T4 CPU contention            | 6 | 26 |
//! | T5 driver failure / T6 executor failure | 11 | 9 + 10 |
//!
//! [`DatasetBuilder::standard`] reproduces exactly these counts (with
//! scaled-down durations); [`DatasetBuilder::tiny`] builds a small dataset
//! for tests and the quickstart example.

use crate::deg::{AnomalyType, DegSchedule, InjectedEvent};
use crate::engine::{simulate, SimSpec};
use crate::ground_truth::GroundTruthEntry;
use crate::trace::Trace;
use exathlon_linalg::obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The assembled benchmark dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Undisturbed (normal) traces — the default training data.
    pub undisturbed: Vec<Trace>,
    /// Disturbed traces — the test data.
    pub disturbed: Vec<Trace>,
    /// The ground-truth table over all disturbed traces.
    pub ground_truth: Vec<GroundTruthEntry>,
}

impl Dataset {
    /// Ground-truth entries of one trace.
    pub fn ground_truth_for(&self, trace_id: usize) -> Vec<&GroundTruthEntry> {
        self.ground_truth.iter().filter(|e| e.trace_id == trace_id).collect()
    }

    /// Anomaly instance count per type, `[T1..T6]`.
    pub fn instances_per_type(&self) -> [usize; 6] {
        let mut out = [0usize; 6];
        for e in &self.ground_truth {
            out[e.anomaly_type.index() - 1] += 1;
        }
        out
    }

    /// Disturbed trace count per dominant type, `[T1..T6]`.
    pub fn traces_per_type(&self) -> [usize; 6] {
        let mut out = [0usize; 6];
        for t in &self.disturbed {
            if let Some(e) = t.schedule.events().first() {
                out[e.atype.index() - 1] += 1;
            }
        }
        out
    }

    /// Total number of data items (records) across all traces.
    pub fn total_records(&self) -> usize {
        self.undisturbed.iter().chain(&self.disturbed).map(|t| t.len()).sum()
    }

    /// All traces of an application (undisturbed first).
    pub fn traces_of_app(&self, app_id: usize) -> (Vec<&Trace>, Vec<&Trace>) {
        (
            self.undisturbed.iter().filter(|t| t.context.app_id == app_id).collect(),
            self.disturbed.iter().filter(|t| t.context.app_id == app_id).collect(),
        )
    }
}

/// Builds [`Dataset`]s with the paper's composition at configurable scale.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    seed: u64,
    /// Undisturbed trace duration in ticks.
    normal_duration: u64,
    /// Disturbed trace duration in ticks.
    disturbed_duration: u64,
    /// Whether to generate traces in parallel.
    parallel: bool,
}

impl DatasetBuilder {
    /// The standard dataset: 59 + 34 traces, 97 anomalies, durations scaled
    /// down from the paper's hours to minutes of simulated time.
    pub fn standard(seed: u64) -> Self {
        Self { seed, normal_duration: 900, disturbed_duration: 1500, parallel: true }
    }

    /// A tiny dataset (4 undisturbed + 2 disturbed traces) for tests and
    /// the quickstart example.
    pub fn tiny(seed: u64) -> Self {
        Self { seed, normal_duration: 300, disturbed_duration: 500, parallel: false }
    }

    /// Override trace durations (ticks).
    pub fn with_durations(mut self, normal: u64, disturbed: u64) -> Self {
        self.normal_duration = normal;
        self.disturbed_duration = disturbed;
        self
    }

    /// Enable/disable parallel trace generation.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Build the dataset.
    pub fn build(&self) -> Dataset {
        let _stage = obs::stage("simulate");
        let is_tiny = self.normal_duration <= 300;
        let specs = if is_tiny { self.tiny_specs() } else { self.standard_specs() };
        let n_undisturbed = specs.iter().filter(|s| s.schedule.is_empty()).count();

        let results: Vec<(Trace, Vec<GroundTruthEntry>)> = if self.parallel {
            parallel_simulate(&specs)
        } else {
            specs
                .iter()
                .map(|spec| {
                    let _sp = obs::span("simulate", "trace");
                    simulate(spec)
                })
                .collect()
        };
        obs::add_records("simulate", results.iter().map(|(t, _)| t.base.len() as u64).sum());

        let mut undisturbed = Vec::with_capacity(n_undisturbed);
        let mut disturbed = Vec::with_capacity(specs.len() - n_undisturbed);
        let mut ground_truth = Vec::new();
        for (trace, gt) in results {
            if trace.is_undisturbed() {
                undisturbed.push(trace);
            } else {
                disturbed.push(trace);
                ground_truth.extend(gt);
            }
        }
        Dataset { undisturbed, disturbed, ground_truth }
    }

    fn tiny_specs(&self) -> Vec<SimSpec> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut specs = Vec::new();
        let mut trace_id = 0;
        for app in [0usize, 1] {
            for _ in 0..2 {
                specs.push(SimSpec::undisturbed(
                    app,
                    next_id(&mut trace_id),
                    rng.gen_range(0.8..1.1),
                    5,
                    self.normal_duration,
                    rng.gen(),
                ));
            }
        }
        // One T1 trace and one T3 trace.
        specs.push(SimSpec {
            app_id: 0,
            trace_id: next_id(&mut trace_id),
            rate_factor: 1.0,
            concurrency: 5,
            duration: self.disturbed_duration,
            seed: rng.gen(),
            schedule: DegSchedule::new(vec![InjectedEvent {
                atype: AnomalyType::BurstyInput,
                start: self.disturbed_duration / 3,
                duration: 60,
                intensity: 5.0,
                node: 0,
            }]),
        });
        specs.push(SimSpec {
            app_id: 1,
            trace_id: next_id(&mut trace_id),
            rate_factor: 1.0,
            concurrency: 5,
            duration: self.disturbed_duration,
            seed: rng.gen(),
            schedule: DegSchedule::new(vec![InjectedEvent {
                atype: AnomalyType::StalledInput,
                start: self.disturbed_duration / 3,
                duration: 60,
                intensity: 0.0,
                node: 0,
            }]),
        });
        specs
    }

    fn standard_specs(&self) -> Vec<SimSpec> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut specs = Vec::new();
        let mut trace_id = 0usize;

        // --- 59 undisturbed traces, apps round-robin, varied (R, C). ---
        for i in 0..59 {
            specs.push(SimSpec::undisturbed(
                i % 10,
                next_id(&mut trace_id),
                rng.gen_range(0.7..1.2),
                [3usize, 5, 5, 5, 7][i % 5],
                self.normal_duration,
                rng.gen(),
            ));
        }

        // --- Disturbed traces per Table 1(b). ---
        let d = self.disturbed_duration;

        // T1: 6 traces, 29 instances (5+5+5+5+5+4).
        let t1_counts = [5usize, 5, 5, 5, 5, 4];
        for (k, &count) in t1_counts.iter().enumerate() {
            let events =
                spread_events(&mut rng, d, count, 40..=80, |rng, start, dur| InjectedEvent {
                    atype: AnomalyType::BurstyInput,
                    start,
                    duration: dur,
                    intensity: rng.gen_range(3.3..4.6),
                    node: 0,
                });
            specs.push(self.disturbed_spec(k / 2, &mut trace_id, &mut rng, events, d));
        }

        // T2: 7 traces, 1 open-ended burst each.
        for k in 0..7 {
            let start = rng.gen_range(d / 4..d / 2);
            let events = vec![InjectedEvent {
                atype: AnomalyType::BurstyInputUntilCrash,
                start,
                duration: d, // open-ended: crash ends it
                intensity: rng.gen_range(8.0..12.0),
                node: 0,
            }];
            specs.push(self.disturbed_spec(k / 2 + 2, &mut trace_id, &mut rng, events, d));
        }

        // T3: 4 traces, 16 instances (4 each).
        for k in 0..4 {
            let events = spread_events(&mut rng, d, 4, 50..=70, |_, start, dur| InjectedEvent {
                atype: AnomalyType::StalledInput,
                start,
                duration: dur,
                intensity: 0.0,
                node: 0,
            });
            specs.push(self.disturbed_spec(k / 2 + 5, &mut trace_id, &mut rng, events, d));
        }

        // T4: 6 traces, 26 instances (5+5+4+4+4+4).
        let t4_counts = [5usize, 5, 4, 4, 4, 4];
        for (k, &count) in t4_counts.iter().enumerate() {
            let events =
                spread_events(&mut rng, d, count, 40..=90, |rng, start, dur| InjectedEvent {
                    atype: AnomalyType::CpuContention,
                    start,
                    duration: dur,
                    intensity: rng.gen_range(0.55..0.95),
                    node: rng.gen_range(0..4),
                });
            specs.push(self.disturbed_spec(k / 2 + 7, &mut trace_id, &mut rng, events, d));
        }

        // T5 + T6: 11 traces, 9 driver failures + 10 executor failures.
        // 5 traces carry T5 events (2,2,2,2,1) and 6 carry T6 (2,2,2,2,1,1).
        let t5_counts = [2usize, 2, 2, 2, 1];
        for (k, &count) in t5_counts.iter().enumerate() {
            let events =
                spread_events(&mut rng, d, count, 20..=20, |_, start, dur| InjectedEvent {
                    atype: AnomalyType::DriverFailure,
                    start,
                    duration: dur,
                    intensity: 0.0,
                    node: 0,
                });
            specs.push(self.disturbed_spec(k / 2 + 4, &mut trace_id, &mut rng, events, d));
        }
        let t6_counts = [2usize, 2, 2, 2, 1, 1];
        for (k, &count) in t6_counts.iter().enumerate() {
            let events =
                spread_events(&mut rng, d, count, 10..=10, |rng, start, dur| InjectedEvent {
                    atype: AnomalyType::ExecutorFailure,
                    start,
                    duration: dur,
                    intensity: 0.0,
                    node: rng.gen_range(0..4),
                });
            specs.push(self.disturbed_spec(k / 2 + 2, &mut trace_id, &mut rng, events, d));
        }

        specs
    }

    fn disturbed_spec(
        &self,
        app_hint: usize,
        trace_id: &mut usize,
        rng: &mut StdRng,
        events: Vec<InjectedEvent>,
        duration: u64,
    ) -> SimSpec {
        // Disturbed traces deliberately use (R, C) settings that reach
        // beyond the undisturbed training range (0.7..1.2 at concurrency
        // 3/5/7): the Few-Examples settings then face genuinely unseen
        // contexts, the generalization challenge §4.1 describes.
        SimSpec {
            app_id: app_hint % 10,
            trace_id: next_id(trace_id),
            rate_factor: rng.gen_range(0.55..1.45),
            concurrency: [2usize, 4, 6, 9][rng.gen_range(0..4_usize)],
            duration,
            seed: rng.gen(),
            schedule: DegSchedule::new(events),
        }
    }
}

fn next_id(counter: &mut usize) -> usize {
    let id = *counter;
    *counter += 1;
    id
}

/// Place `count` non-overlapping events of duration drawn from `dur_range`
/// across a trace of `total` ticks, leaving a warm-up head, recovery gaps,
/// and a tail.
fn spread_events(
    rng: &mut StdRng,
    total: u64,
    count: usize,
    dur_range: std::ops::RangeInclusive<u64>,
    mut make: impl FnMut(&mut StdRng, u64, u64) -> InjectedEvent,
) -> Vec<InjectedEvent> {
    assert!(count > 0);
    let head = total / 6;
    let tail = total / 6;
    let usable = total - head - tail;
    let slot = usable / count as u64;
    let mut events = Vec::with_capacity(count);
    for i in 0..count {
        let dur = rng.gen_range(dur_range.clone()).min(slot.saturating_sub(30).max(10));
        let slack = slot.saturating_sub(dur + 20);
        let jitter = if slack > 0 { rng.gen_range(0..slack) } else { 0 };
        let start = head + i as u64 * slot + jitter;
        events.push(make(rng, start, dur));
    }
    events
}

/// Simulate a batch of specs on the shared worker pool
/// (`exathlon_linalg::par`): trace generation draws from the same global
/// worker budget as the rest of the pipeline and honours the
/// `EXATHLON_THREADS` override. Chunks are contiguous and joined in spec
/// order, so the output is bitwise identical to the sequential path
/// (pinned by `tests/parallel_determinism.rs`).
fn parallel_simulate(specs: &[SimSpec]) -> Vec<(Trace, Vec<GroundTruthEntry>)> {
    exathlon_linalg::par::par_map(specs, |spec| {
        let _sp = obs::span("simulate", "trace");
        simulate(spec)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_shape() {
        let ds = DatasetBuilder::tiny(7).build();
        assert_eq!(ds.undisturbed.len(), 4);
        assert_eq!(ds.disturbed.len(), 2);
        assert_eq!(ds.ground_truth.len(), 2);
        let per_type = ds.instances_per_type();
        assert_eq!(per_type[0], 1); // one T1
        assert_eq!(per_type[2], 1); // one T3
    }

    #[test]
    fn tiny_dataset_is_deterministic() {
        let a = DatasetBuilder::tiny(7).build();
        let b = DatasetBuilder::tiny(7).build();
        assert!(a.undisturbed[0].base.same_data(&b.undisturbed[0].base));
        assert_eq!(a.ground_truth, b.ground_truth);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetBuilder::tiny(1).build();
        let b = DatasetBuilder::tiny(2).build();
        assert!(!a.undisturbed[0].base.same_data(&b.undisturbed[0].base));
    }

    #[test]
    fn ground_truth_lookup() {
        let ds = DatasetBuilder::tiny(7).build();
        let id = ds.disturbed[0].trace_id;
        assert_eq!(ds.ground_truth_for(id).len(), 1);
    }

    /// The full-scale composition check: Table 1(b) counts. Slower, so the
    /// durations are reduced — counts don't depend on duration (except T2,
    /// which needs enough room to crash; verified separately below).
    #[test]
    fn standard_dataset_matches_table1b() {
        let ds = DatasetBuilder::standard(3).with_durations(400, 1200).build();
        assert_eq!(ds.undisturbed.len(), 59, "undisturbed trace count");
        assert_eq!(ds.disturbed.len(), 34, "disturbed trace count");
        let traces = ds.traces_per_type();
        assert_eq!(traces, [6, 7, 4, 6, 5, 6], "traces per type (T5/T6 split 5+6)");
        let inst = ds.instances_per_type();
        assert_eq!(inst[0], 29, "T1 instances");
        assert_eq!(inst[1], 7, "T2 instances");
        assert_eq!(inst[2], 16, "T3 instances");
        assert_eq!(inst[3], 26, "T4 instances");
        assert_eq!(inst[4], 9, "T5 instances");
        assert_eq!(inst[5], 10, "T6 instances");
        assert_eq!(inst.iter().sum::<usize>(), 97, "total anomaly instances");
    }

    #[test]
    fn t2_traces_crash() {
        let ds = DatasetBuilder::standard(3).with_durations(400, 1200).build();
        let t2: Vec<&Trace> = ds
            .disturbed
            .iter()
            .filter(|t| t.schedule.events()[0].atype == AnomalyType::BurstyInputUntilCrash)
            .collect();
        assert_eq!(t2.len(), 7);
        let crashed = t2.iter().filter(|t| t.crashed_at.is_some()).count();
        assert!(crashed >= 5, "most T2 traces should crash (got {crashed}/7)");
    }
}
