//! The Disruptive Event Generator (DEG).
//!
//! The paper's chaos-engineering component: a generator that, during a
//! trace, injects one of six anomalous event types and records the interval
//! it was active as the *root cause interval* (§3.2, Appendix A.1). This
//! module defines the event taxonomy and injection schedules; the
//! [`engine`](crate::engine) interprets them during simulation.

use serde::{Deserialize, Serialize};

/// The six anomaly types of the Exathlon dataset (Table 1(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AnomalyType {
    /// T1: input rate temporarily multiplied by a burst factor.
    BurstyInput,
    /// T2: burst sustained until executors OOM and the application crashes.
    BurstyInputUntilCrash,
    /// T3: input rate set to 0 (data-source failure).
    StalledInput,
    /// T4: external programs consume the CPU of one cluster node.
    CpuContention,
    /// T5: the driver process is killed and restarts (~20 s).
    DriverFailure,
    /// T6: an executor process is killed and restarts (~10 s).
    ExecutorFailure,
}

impl AnomalyType {
    /// All six types in T1..T6 order.
    pub const ALL: [AnomalyType; 6] = [
        AnomalyType::BurstyInput,
        AnomalyType::BurstyInputUntilCrash,
        AnomalyType::StalledInput,
        AnomalyType::CpuContention,
        AnomalyType::DriverFailure,
        AnomalyType::ExecutorFailure,
    ];

    /// 1-based index as used in the paper's tables (T1..T6).
    pub fn index(self) -> usize {
        match self {
            AnomalyType::BurstyInput => 1,
            AnomalyType::BurstyInputUntilCrash => 2,
            AnomalyType::StalledInput => 3,
            AnomalyType::CpuContention => 4,
            AnomalyType::DriverFailure => 5,
            AnomalyType::ExecutorFailure => 6,
        }
    }

    /// Short label (`"T1"`..`"T6"`).
    pub fn label(self) -> String {
        format!("T{}", self.index())
    }
}

/// One scheduled disruptive event inside a trace.
///
/// `start` is in trace-local ticks. `duration` is the length of the DEG
/// activity — the root cause interval. For [`AnomalyType::BurstyInputUntilCrash`]
/// the duration is open-ended ("the DEG period lasts forever"): the event
/// ends when the simulation crashes the application, so `duration` is
/// interpreted as an upper bound for safety.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InjectedEvent {
    /// Anomaly type.
    pub atype: AnomalyType,
    /// Trace-local start tick of the DEG activity.
    pub start: u64,
    /// Planned DEG activity length in ticks.
    pub duration: u64,
    /// Type-specific intensity:
    /// * T1/T2: input-rate multiplication factor (e.g. 3.0),
    /// * T4: fraction of the node's cores consumed by external programs
    ///   (0..=1),
    /// * others: unused (0.0 conventional).
    pub intensity: f64,
    /// For T4/T5/T6: the cluster node (0..4) the event hits. The engine
    /// maps this onto driver/executor placement.
    pub node: usize,
}

impl InjectedEvent {
    /// End tick (exclusive) of the planned DEG activity.
    pub fn end(&self) -> u64 {
        self.start + self.duration
    }

    /// Whether the DEG is active at `tick`.
    pub fn active_at(&self, tick: u64) -> bool {
        tick >= self.start && tick < self.end()
    }
}

/// A full injection schedule for one trace: non-overlapping events sorted
/// by start tick.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DegSchedule {
    events: Vec<InjectedEvent>,
}

impl DegSchedule {
    /// An empty (undisturbed) schedule.
    pub fn undisturbed() -> Self {
        Self::default()
    }

    /// Build from events, validating they are sorted and non-overlapping.
    ///
    /// # Panics
    /// Panics if events overlap or are out of order.
    pub fn new(events: Vec<InjectedEvent>) -> Self {
        for w in events.windows(2) {
            assert!(
                w[0].end() <= w[1].start,
                "DEG events overlap: [{}, {}) then [{}, {})",
                w[0].start,
                w[0].end(),
                w[1].start,
                w[1].end()
            );
        }
        Self { events }
    }

    /// The scheduled events.
    pub fn events(&self) -> &[InjectedEvent] {
        &self.events
    }

    /// The event active at `tick`, if any.
    pub fn active_at(&self, tick: u64) -> Option<&InjectedEvent> {
        self.events.iter().find(|e| e.active_at(tick))
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(atype: AnomalyType, start: u64, duration: u64) -> InjectedEvent {
        InjectedEvent { atype, start, duration, intensity: 3.0, node: 0 }
    }

    #[test]
    fn labels_and_indices() {
        assert_eq!(AnomalyType::BurstyInput.label(), "T1");
        assert_eq!(AnomalyType::ExecutorFailure.label(), "T6");
        for (i, t) in AnomalyType::ALL.iter().enumerate() {
            assert_eq!(t.index(), i + 1);
        }
    }

    #[test]
    fn event_activity_window() {
        let e = ev(AnomalyType::BurstyInput, 100, 50);
        assert!(!e.active_at(99));
        assert!(e.active_at(100));
        assert!(e.active_at(149));
        assert!(!e.active_at(150));
    }

    #[test]
    fn schedule_finds_active_event() {
        let s = DegSchedule::new(vec![
            ev(AnomalyType::BurstyInput, 100, 50),
            ev(AnomalyType::StalledInput, 300, 30),
        ]);
        assert_eq!(s.len(), 2);
        assert!(s.active_at(120).is_some());
        assert!(s.active_at(200).is_none());
        assert_eq!(s.active_at(310).unwrap().atype, AnomalyType::StalledInput);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_events_panic() {
        let _ = DegSchedule::new(vec![
            ev(AnomalyType::BurstyInput, 100, 50),
            ev(AnomalyType::StalledInput, 120, 30),
        ]);
    }

    #[test]
    fn undisturbed_is_empty() {
        let s = DegSchedule::undisturbed();
        assert!(s.is_empty());
        assert!(s.active_at(0).is_none());
    }

    #[test]
    fn anomaly_type_serde_roundtrip() {
        let json = serde_json::to_string(&AnomalyType::CpuContention).unwrap();
        let back: AnomalyType = serde_json::from_str(&json).unwrap();
        assert_eq!(back, AnomalyType::CpuContention);
    }
}
