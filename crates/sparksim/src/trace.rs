//! A recorded trace and its workload context.
//!
//! "The data collected from each run of a Spark streaming application is
//! called a *Trace*" (§3.1). A trace carries the recorded base-metric time
//! series plus the (A, R, C) workload characteristics — application, input
//! rate, concurrency — that the learning settings LS1–LS4 generalize over.

use crate::deg::DegSchedule;
use crate::metrics::{custom_feature_set, expand_to_full};
use exathlon_tsdata::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Workload context of a trace: the paper's (A, R, C) characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadContext {
    /// Application id (A), `0..10`.
    pub app_id: usize,
    /// Input-rate factor (R) relative to the application's sized-for rate.
    pub rate_factor: f64,
    /// Concurrency (C): how many applications share the cluster (the paper
    /// runs 5 of 10 at a time; we allow variation for the generalization
    /// study).
    pub concurrency: usize,
}

/// One recorded run of one application.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Unique trace id within the dataset.
    pub trace_id: usize,
    /// Workload context.
    pub context: WorkloadContext,
    /// Recorded base metrics, 1 record per tick.
    pub base: TimeSeries,
    /// The DEG schedule that produced this trace (empty if undisturbed).
    pub schedule: DegSchedule,
    /// Tick at which the application crashed (T2 / severe contention), if
    /// it did. The trace ends at the crash.
    pub crashed_at: Option<u64>,
}

impl Trace {
    /// True when no anomalies were injected.
    pub fn is_undisturbed(&self) -> bool {
        self.schedule.is_empty()
    }

    /// Trace length in ticks.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// True when the trace recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// The curated 19-feature view (`FS_custom`). One record shorter than
    /// the base series because of differencing.
    pub fn custom_features(&self) -> TimeSeries {
        custom_feature_set(&self.base)
    }

    /// The full high-dimensional view with `dims` metrics (up to the
    /// paper's 2,283).
    pub fn full_features(&self, dims: usize) -> TimeSeries {
        expand_to_full(&self.base, dims)
    }

    /// Human-readable name, e.g. `app3_trace17`.
    pub fn name(&self) -> String {
        format!("app{}_trace{}", self.context.app_id, self.trace_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{base_metric_names, BASE_METRICS};

    fn tiny_trace(n: usize) -> Trace {
        let records: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut r = vec![0.0; BASE_METRICS];
                r[3] = i as f64;
                r
            })
            .collect();
        Trace {
            trace_id: 7,
            context: WorkloadContext { app_id: 3, rate_factor: 1.0, concurrency: 5 },
            base: TimeSeries::from_records(base_metric_names(), 0, &records),
            schedule: DegSchedule::undisturbed(),
            crashed_at: None,
        }
    }

    #[test]
    fn naming_and_flags() {
        let t = tiny_trace(5);
        assert_eq!(t.name(), "app3_trace7");
        assert!(t.is_undisturbed());
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn custom_features_shape() {
        let t = tiny_trace(10);
        let fs = t.custom_features();
        assert_eq!(fs.dims(), 19);
        assert_eq!(fs.len(), 9);
    }

    #[test]
    fn full_features_shape() {
        let t = tiny_trace(4);
        let f = t.full_features(200);
        assert_eq!(f.dims(), 200);
        assert_eq!(f.len(), 4);
    }
}
