//! Dataset persistence: export traces and the ground-truth table to JSON
//! so the generated benchmark dataset can be consumed outside this crate
//! (or re-loaded without re-simulating) — the "curated anomaly dataset"
//! artifact of the paper's contribution (i).

use crate::dataset::Dataset;
use crate::deg::DegSchedule;
use crate::ground_truth::GroundTruthEntry;
use crate::trace::{Trace, WorkloadContext};
use exathlon_tsdata::TimeSeries;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// Serializable form of a trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Trace id.
    pub trace_id: usize,
    /// Workload context (A, R, C).
    pub context: WorkloadContext,
    /// Metric names.
    pub names: Vec<String>,
    /// Tick of the first record.
    pub start_tick: u64,
    /// Row-major values (`len x names.len()`); NaN encoded as `null` by
    /// serde_json.
    pub values: Vec<Option<f64>>,
    /// The injection schedule that produced the trace.
    pub schedule: DegSchedule,
    /// Crash tick, if the run crashed.
    pub crashed_at: Option<u64>,
}

/// Serializable form of the whole dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetRecord {
    /// Undisturbed traces.
    pub undisturbed: Vec<TraceRecord>,
    /// Disturbed traces.
    pub disturbed: Vec<TraceRecord>,
    /// The ground-truth table.
    pub ground_truth: Vec<GroundTruthEntry>,
}

fn to_record(trace: &Trace) -> TraceRecord {
    let (_, _, flat) = trace.base.to_flat();
    TraceRecord {
        trace_id: trace.trace_id,
        context: trace.context,
        names: trace.base.names().to_vec(),
        start_tick: trace.base.start_tick(),
        values: flat.iter().map(|&v| if v.is_nan() { None } else { Some(v) }).collect(),
        schedule: trace.schedule.clone(),
        crashed_at: trace.crashed_at,
    }
}

fn from_record(r: TraceRecord) -> Trace {
    let values: Vec<f64> = r.values.iter().map(|v| v.unwrap_or(f64::NAN)).collect();
    Trace {
        trace_id: r.trace_id,
        context: r.context,
        base: TimeSeries::from_flat(r.names, r.start_tick, values),
        schedule: r.schedule,
        crashed_at: r.crashed_at,
    }
}

/// Convert a dataset into its serializable form.
pub fn to_dataset_record(ds: &Dataset) -> DatasetRecord {
    DatasetRecord {
        undisturbed: ds.undisturbed.iter().map(to_record).collect(),
        disturbed: ds.disturbed.iter().map(to_record).collect(),
        ground_truth: ds.ground_truth.clone(),
    }
}

/// Rebuild a dataset from its serializable form.
pub fn from_dataset_record(record: DatasetRecord) -> Dataset {
    Dataset {
        undisturbed: record.undisturbed.into_iter().map(from_record).collect(),
        disturbed: record.disturbed.into_iter().map(from_record).collect(),
        ground_truth: record.ground_truth,
    }
}

/// Write a dataset to a JSON file.
///
/// # Errors
/// Propagates I/O and serialization errors.
pub fn save_dataset(ds: &Dataset, path: &Path) -> std::io::Result<()> {
    let record = to_dataset_record(ds);
    let json = serde_json::to_vec(&record)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(&json)
}

/// Load a dataset from a JSON file written by [`save_dataset`].
///
/// # Errors
/// Propagates I/O and deserialization errors.
pub fn load_dataset(path: &Path) -> std::io::Result<Dataset> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    let record: DatasetRecord = serde_json::from_slice(&buf)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok(from_dataset_record(record))
}

/// Write just the ground-truth table (the paper's Table 1(b) label file).
///
/// # Errors
/// Propagates I/O and serialization errors.
pub fn save_ground_truth(entries: &[GroundTruthEntry], path: &Path) -> std::io::Result<()> {
    let json = serde_json::to_vec_pretty(entries)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = DatasetBuilder::tiny(13).build();
        let record = to_dataset_record(&ds);
        let json = serde_json::to_string(&record).expect("serializes");
        let back: DatasetRecord = serde_json::from_str(&json).expect("deserializes");
        let restored = from_dataset_record(back);

        assert_eq!(restored.undisturbed.len(), ds.undisturbed.len());
        assert_eq!(restored.disturbed.len(), ds.disturbed.len());
        assert_eq!(restored.ground_truth, ds.ground_truth);
        for (a, b) in restored.undisturbed.iter().zip(&ds.undisturbed) {
            assert!(a.base.same_data(&b.base), "trace {} data changed", b.trace_id);
            assert_eq!(a.context, b.context);
        }
        for (a, b) in restored.disturbed.iter().zip(&ds.disturbed) {
            assert!(a.base.same_data(&b.base));
            assert_eq!(a.crashed_at, b.crashed_at);
            assert_eq!(a.schedule.len(), b.schedule.len());
        }
    }

    #[test]
    fn nan_survives_json() {
        let ds = DatasetBuilder::tiny(14).build();
        // Backup executor slots are NaN in every trace.
        let record = to_dataset_record(&ds);
        assert!(record.undisturbed[0].values.iter().any(|v| v.is_none()));
        let restored = from_dataset_record(record);
        let (_, _, flat) = restored.undisturbed[0].base.to_flat();
        assert!(flat.iter().any(|v| v.is_nan()));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("exathlon_persist_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("tiny.json");
        let ds = DatasetBuilder::tiny(15).build();
        save_dataset(&ds, &path).expect("save");
        let back = load_dataset(&path).expect("load");
        assert_eq!(back.ground_truth, ds.ground_truth);
        assert!(back.disturbed[0].base.same_data(&ds.disturbed[0].base));
        let gt_path = dir.join("gt.json");
        save_ground_truth(&ds.ground_truth, &gt_path).expect("save gt");
        assert!(gt_path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
