//! Ground-truth labels: root cause intervals and extended effect intervals.
//!
//! The paper labels each anomaly instance with the tuple
//! `(app_id, trace_id, anomaly_type, root_cause_start, root_cause_end,
//! extended_effect_start, extended_effect_end)` (Table 1(b)). The RCI is
//! the interval the DEG program was running; the EEI "starts immediately
//! after an RCI and ends when important system metrics return to normal
//! values or the application is eventually pushed to crash", determined
//! with domain knowledge (Appendix A.2). [`derive_eei`] encodes those
//! per-type rules against the *observable* trace metrics, mirroring the
//! authors' manual labeling procedure.

use crate::deg::AnomalyType;
use crate::metrics::base;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// One ground-truth row, matching the paper's label format.
///
/// All ticks are trace-local; intervals are half-open `[start, end)`.
/// `extended_effect` is `None` when the EEI is null (T2: "the root cause
/// event already ends at the time of the application crash").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruthEntry {
    /// Application the trace belongs to.
    pub app_id: usize,
    /// Trace id within the dataset.
    pub trace_id: usize,
    /// The injected anomaly type.
    pub anomaly_type: AnomalyType,
    /// Root cause interval start (DEG activity begins).
    pub root_cause_start: u64,
    /// Root cause interval end, exclusive (DEG activity ends).
    pub root_cause_end: u64,
    /// Extended effect interval `[start, end)`, or `None`.
    pub extended_effect: Option<(u64, u64)>,
}

impl GroundTruthEntry {
    /// The combined anomaly interval the benchmark evaluates against:
    /// RCI plus EEI (§4.1 AD1).
    pub fn anomaly_interval(&self) -> (u64, u64) {
        match self.extended_effect {
            Some((_, eei_end)) => (self.root_cause_start, eei_end),
            None => (self.root_cause_start, self.root_cause_end),
        }
    }

    /// Length of the combined anomaly interval in ticks.
    pub fn anomaly_len(&self) -> u64 {
        let (s, e) = self.anomaly_interval();
        e - s
    }
}

/// How many consecutive in-band ticks count as "back to normal".
const STABLE_TICKS: usize = 5;

/// Derive the extended effect interval for an anomaly whose RCI is
/// `[rci_start, rci_end)`, using the Appendix A.2 per-type rules evaluated
/// on the trace's recorded metrics:
///
/// * **T1 / T4 / T6** — EEI ends when processing and scheduling delay fall
///   back inside the normal band (estimated from the pre-anomaly segment)
///   for a few consecutive ticks (`STABLE_TICKS`).
/// * **T2** — EEI is `None`: the RCI itself ends at the application crash.
/// * **T3 / T5** — EEI ends when the application is processing records
///   again at a normal rate (diff of processed records recovers) and the
///   delays are back in band.
///
/// Returns `None` (no EEI) when the RCI already extends to the end of the
/// trace, and caps the EEI at trace end otherwise.
pub fn derive_eei(
    trace: &Trace,
    atype: AnomalyType,
    rci_start: u64,
    rci_end: u64,
    clean_until: u64,
    cap_end: u64,
) -> Option<(u64, u64)> {
    if atype == AnomalyType::BurstyInputUntilCrash {
        return None;
    }
    let n = (trace.len() as u64).min(cap_end);
    if rci_end >= n {
        return None;
    }

    // Normal band from the *clean* pre-anomaly segment (before the first
    // injected event of the trace): 95th percentile of delays plus slack.
    // Using the whole head would inflate the band with earlier anomalies'
    // effects. Falls back to a permissive default for very short heads.
    let head_end = (clean_until.min(rci_start) as usize).min(trace.len());
    let proc_col = trace.base.feature_column(base::PROCESSING_DELAY);
    let sched_col = trace.base.feature_column(base::SCHEDULING_DELAY);
    let proc_band = normal_band(&proc_col[..head_end]);
    let sched_band = normal_band(&sched_col[..head_end]);

    let needs_throughput = matches!(atype, AnomalyType::StalledInput | AnomalyType::DriverFailure);
    let processed = trace.base.feature_column(base::TOTAL_PROCESSED_RECORDS);
    // Per-tick rate estimated from the clean head, to make the progress
    // check robust to counter reporting jitter.
    let rate_est = if head_end > 10 {
        (processed[head_end - 1] - processed[0]).max(0.0) / head_end as f64
    } else {
        0.0
    };

    let mut stable = 0usize;
    for t in rci_end as usize..n as usize {
        let delays_ok = proc_col[t] <= proc_band && sched_col[t] <= sched_band;
        // Progress is bursty (a batch completes every few ticks), so the
        // throughput check looks over a trailing window rather than a
        // single tick.
        let throughput_ok = if needs_throughput {
            let back = t.saturating_sub(15);
            processed[t] - processed[back] > 0.2 * rate_est * (t - back) as f64
        } else {
            true
        };
        if delays_ok && throughput_ok {
            stable += 1;
            if stable >= STABLE_TICKS {
                let eei_end = (t + 1 - STABLE_TICKS).max(rci_end as usize) as u64;
                if eei_end <= rci_end {
                    return None;
                }
                return Some((rci_end, eei_end));
            }
        } else {
            stable = 0;
        }
    }
    // Effects never subsided: EEI runs to the end of the trace.
    Some((rci_end, n))
}

/// Upper edge of the "normal" band for a delay metric: p95 of the normal
/// segment plus 50% slack, with a floor to tolerate all-zero heads.
fn normal_band(normal_segment: &[f64]) -> f64 {
    if normal_segment.len() < 10 {
        return 5.0;
    }
    let p95 = exathlon_linalg_quantile(normal_segment, 0.95);
    (p95 * 1.5).max(1.0)
}

// Minimal local quantile to keep this crate's dependency surface small
// (semantics match exathlon-linalg::stats::quantile).
fn exathlon_linalg_quantile(xs: &[f64], q: f64) -> f64 {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let pos = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] * (1.0 - (pos - lo as f64)) + v[hi] * (pos - lo as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deg::DegSchedule;
    use crate::metrics::{base_metric_names, BASE_METRICS};
    use crate::trace::WorkloadContext;
    use exathlon_tsdata::series::TimeSeries;

    /// A trace whose delays spike during `[40, 60)` and decay back to
    /// normal by tick 80.
    fn trace_with_spike() -> Trace {
        let records: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                let mut r = vec![0.0; BASE_METRICS];
                let delay = match i {
                    40..=59 => 20.0,
                    60..=79 => 20.0 - (i - 59) as f64, // decays to ~0
                    _ => 0.5,
                };
                r[base::PROCESSING_DELAY] = delay;
                r[base::SCHEDULING_DELAY] = delay * 0.5;
                r[base::TOTAL_PROCESSED_RECORDS] = (i * 100) as f64;
                r
            })
            .collect();
        Trace {
            trace_id: 0,
            context: WorkloadContext { app_id: 0, rate_factor: 1.0, concurrency: 5 },
            base: TimeSeries::from_records(base_metric_names(), 0, &records),
            schedule: DegSchedule::undisturbed(),
            crashed_at: None,
        }
    }

    #[test]
    fn anomaly_interval_includes_eei() {
        let e = GroundTruthEntry {
            app_id: 0,
            trace_id: 0,
            anomaly_type: AnomalyType::BurstyInput,
            root_cause_start: 10,
            root_cause_end: 20,
            extended_effect: Some((20, 35)),
        };
        assert_eq!(e.anomaly_interval(), (10, 35));
        assert_eq!(e.anomaly_len(), 25);
    }

    #[test]
    fn anomaly_interval_without_eei() {
        let e = GroundTruthEntry {
            app_id: 0,
            trace_id: 0,
            anomaly_type: AnomalyType::BurstyInputUntilCrash,
            root_cause_start: 10,
            root_cause_end: 50,
            extended_effect: None,
        };
        assert_eq!(e.anomaly_interval(), (10, 50));
    }

    #[test]
    fn t2_has_no_eei() {
        let t = trace_with_spike();
        assert_eq!(derive_eei(&t, AnomalyType::BurstyInputUntilCrash, 40, 60, 40, u64::MAX), None);
    }

    #[test]
    fn eei_ends_when_delays_recover() {
        let t = trace_with_spike();
        let eei =
            derive_eei(&t, AnomalyType::BurstyInput, 40, 60, 40, u64::MAX).expect("EEI expected");
        assert_eq!(eei.0, 60);
        // Delay decays to <= band (~1.25) around tick 78-79.
        assert!(eei.1 >= 70 && eei.1 <= 85, "unexpected EEI end {}", eei.1);
    }

    #[test]
    fn eei_caps_at_trace_end_when_never_recovering() {
        let mut t = trace_with_spike();
        // Make delays stay high forever after the RCI.
        for i in 60..t.base.len() {
            t.base.record_mut(i)[base::PROCESSING_DELAY] = 50.0;
        }
        let eei = derive_eei(&t, AnomalyType::BurstyInput, 40, 60, 40, u64::MAX).unwrap();
        assert_eq!(eei, (60, 120));
    }

    #[test]
    fn rci_at_trace_end_has_no_eei() {
        let t = trace_with_spike();
        assert_eq!(derive_eei(&t, AnomalyType::BurstyInput, 100, 120, 100, u64::MAX), None);
    }

    #[test]
    fn serde_roundtrip() {
        let e = GroundTruthEntry {
            app_id: 2,
            trace_id: 9,
            anomaly_type: AnomalyType::StalledInput,
            root_cause_start: 1,
            root_cause_end: 2,
            extended_effect: Some((2, 3)),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: GroundTruthEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
