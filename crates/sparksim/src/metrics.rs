//! Metric schema: the base metrics the simulator records, the curated
//! 19-feature set of Appendix D.1, and the full 2,283-metric layout of
//! Table 1(a).
//!
//! The simulator records a compact set of *base* metrics — the physically
//! meaningful signals (delays, counters, memory, CPU) that the paper's
//! Appendix D.1 features are derived from. The full 2,283-dimension layout
//! is produced on demand by deterministic expansion: each synthetic metric
//! is a fixed sparse linear mixture of base signals plus noise, which
//! preserves the real dataset's properties the paper calls out (correlated
//! features, many near-redundant dimensions, null values for inactive
//! executors).

use exathlon_tsdata::series::TimeSeries;
use exathlon_tsdata::transform::{average_features, difference_features};

/// Number of executor metric slots (3 active + 2 backup, §3.1).
pub const EXECUTOR_SLOTS: usize = 5;
/// Number of cluster nodes.
pub const NODES: usize = 4;
/// Per-executor base metrics recorded by the simulator.
pub const EXEC_BASE_METRICS: usize = 6;
/// Driver base metrics recorded by the simulator.
pub const DRIVER_BASE_METRICS: usize = 9;
/// Total base metrics: driver + executors + per-node OS.
pub const BASE_METRICS: usize = DRIVER_BASE_METRICS + EXECUTOR_SLOTS * EXEC_BASE_METRICS + NODES;

/// Full-layout counts from Table 1(a).
pub const FULL_DRIVER_METRICS: usize = 243;
/// Full-layout executor metrics: 5 slots x 140.
pub const FULL_EXECUTOR_METRICS: usize = EXECUTOR_SLOTS * 140;
/// Full-layout OS metrics: 4 nodes x 335.
pub const FULL_OS_METRICS: usize = NODES * 335;
/// The paper's 2,283 total.
pub const FULL_METRICS: usize = FULL_DRIVER_METRICS + FULL_EXECUTOR_METRICS + FULL_OS_METRICS;

/// Indices of the driver base metrics within a base record.
pub mod base {
    /// Processing delay of the last completed batch (seconds).
    pub const PROCESSING_DELAY: usize = 0;
    /// Scheduling delay of the last completed batch (seconds).
    pub const SCHEDULING_DELAY: usize = 1;
    /// Total delay of the last completed batch (seconds).
    pub const TOTAL_DELAY: usize = 2;
    /// Cumulative completed batches.
    pub const TOTAL_COMPLETED_BATCHES: usize = 3;
    /// Cumulative processed records.
    pub const TOTAL_PROCESSED_RECORDS: usize = 4;
    /// Cumulative received records.
    pub const TOTAL_RECEIVED_RECORDS: usize = 5;
    /// Records in the last received batch.
    pub const LAST_RECEIVED_BATCH_RECORDS: usize = 6;
    /// BlockManager memory used (MB).
    pub const BLOCK_MANAGER_MEM_MB: usize = 7;
    /// Driver JVM heap used (MB).
    pub const DRIVER_JVM_HEAP: usize = 8;

    /// Start of executor slot `e`'s block (each
    /// [`EXEC_BASE_METRICS`](super::EXEC_BASE_METRICS) wide).
    pub const fn executor_block(e: usize) -> usize {
        super::DRIVER_BASE_METRICS + e * super::EXEC_BASE_METRICS
    }
    /// Offsets within an executor block.
    pub const EXEC_HDFS_WRITE_OPS: usize = 0;
    /// Cumulative executor CPU time.
    pub const EXEC_CPU_TIME: usize = 1;
    /// Cumulative executor run time.
    pub const EXEC_RUN_TIME: usize = 2;
    /// Cumulative shuffle records read.
    pub const EXEC_SHUFFLE_READ: usize = 3;
    /// Cumulative shuffle records written.
    pub const EXEC_SHUFFLE_WRITTEN: usize = 4;
    /// Executor JVM heap used (MB).
    pub const EXEC_JVM_HEAP: usize = 5;

    /// Index of node `n`'s CPU idle%.
    pub const fn node_cpu_idle(n: usize) -> usize {
        super::DRIVER_BASE_METRICS + super::EXECUTOR_SLOTS * super::EXEC_BASE_METRICS + n
    }
}

/// Names of the base metrics, in record order.
pub fn base_metric_names() -> Vec<String> {
    let mut names = vec![
        "driver_Streaming_lastCompletedBatch_processingDelay_value".to_string(),
        "driver_Streaming_lastCompletedBatch_schedulingDelay_value".to_string(),
        "driver_Streaming_lastCompletedBatch_totalDelay_value".to_string(),
        "driver_Streaming_totalCompletedBatches_value".to_string(),
        "driver_Streaming_totalProcessedRecords_value".to_string(),
        "driver_Streaming_totalReceivedRecords_value".to_string(),
        "driver_Streaming_lastReceivedBatch_records_value".to_string(),
        "driver_BlockManager_memory_memUsed_MB_value".to_string(),
        "driver_jvm_heap_used_value".to_string(),
    ];
    for e in 0..EXECUTOR_SLOTS {
        names.push(format!("executor{e}_filesystem_hdfs_write_ops_value"));
        names.push(format!("executor{e}_cpuTime_count"));
        names.push(format!("executor{e}_runTime_count"));
        names.push(format!("executor{e}_shuffleRecordsRead_count"));
        names.push(format!("executor{e}_shuffleRecordsWritten_count"));
        names.push(format!("executor{e}_jvm_heap_used_value"));
    }
    for n in 0..NODES {
        // The paper's mini-cluster nodes are numbered 5..8.
        names.push(format!("node{}_CPU_ALL_Idle%", n + 5));
    }
    debug_assert_eq!(names.len(), BASE_METRICS);
    names
}

/// The 19 feature names of the curated set, in the exact index order of
/// Appendix D.1 (used by the explanation examples in Figure 6).
pub fn custom_feature_names() -> Vec<String> {
    vec![
        "driver_Streaming_lastCompletedBatch_processingDelay_value".into(),
        "driver_Streaming_lastCompletedBatch_schedulingDelay_value".into(),
        "driver_Streaming_lastCompletedBatch_totalDelay_value".into(),
        "1_diff_driver_Streaming_totalCompletedBatches_value".into(),
        "1_diff_driver_Streaming_totalProcessedRecords_value".into(),
        "1_diff_driver_Streaming_totalReceivedRecords_value".into(),
        "1_diff_driver_Streaming_lastReceivedBatch_records_value".into(),
        "1_diff_driver_BlockManager_memory_memUsed_MB_value".into(),
        "1_diff_driver_jvm_heap_used_value".into(),
        "1_diff_node5_CPU_ALL_Idle%".into(),
        "1_diff_node6_CPU_ALL_Idle%".into(),
        "1_diff_node7_CPU_ALL_Idle%".into(),
        "1_diff_node8_CPU_ALL_Idle%".into(),
        "1_diff_avg_executor_filesystem_hdfs_write_ops_value".into(),
        "1_diff_avg_executor_cpuTime_count".into(),
        "1_diff_avg_executor_runTime_count".into(),
        "1_diff_avg_executor_shuffleRecordsRead_count".into(),
        "1_diff_avg_executor_shuffleRecordsWritten_count".into(),
        "1_diff_avg_jvm_heap_used_value".into(),
    ]
}

/// Derive the 19-feature custom set (`FS_custom`, Appendix D.1) from a base
/// series:
///
/// 1. average each executor metric across active executor slots
///    (NaN slots excluded),
/// 2. first-order difference the cumulative/gauge features,
/// 3. project onto the 19 features in appendix order.
///
/// The output has `base.len() - 1` records (differencing consumes one).
pub fn custom_feature_set(base_series: &TimeSeries) -> TimeSeries {
    assert_eq!(base_series.dims(), BASE_METRICS, "expected a base-metric series");
    // Step 1: averaged executor columns.
    let mut ts = base_series.clone();
    let exec_metric_names = [
        "avg_executor_filesystem_hdfs_write_ops_value",
        "avg_executor_cpuTime_count",
        "avg_executor_runTime_count",
        "avg_executor_shuffleRecordsRead_count",
        "avg_executor_shuffleRecordsWritten_count",
        "avg_jvm_heap_used_value",
    ];
    for (offset, name) in exec_metric_names.iter().enumerate() {
        let indices: Vec<usize> =
            (0..EXECUTOR_SLOTS).map(|e| base::executor_block(e) + offset).collect();
        ts = average_features(&ts, &indices, name);
    }

    // Step 2: difference everything except the three delay gauges.
    let delay_indices = [base::PROCESSING_DELAY, base::SCHEDULING_DELAY, base::TOTAL_DELAY];
    let diff_indices: Vec<usize> = (0..ts.dims()).filter(|j| !delay_indices.contains(j)).collect();
    let diffed = difference_features(&ts, &diff_indices);

    // Step 3: select the 19 features by name, in appendix order.
    let wanted = custom_feature_names();
    let indices: Vec<usize> = wanted
        .iter()
        .map(|name| {
            diffed
                .feature_index(name)
                .unwrap_or_else(|| panic!("derived series is missing feature {name}"))
        })
        .collect();
    diffed.select_features(&indices)
}

/// Deterministic full-layout expansion: lift a base series to the paper's
/// 2,283-metric layout (or any smaller `target_dims >= BASE_METRICS`).
///
/// Metric `k` beyond the base block is a fixed 2-term linear mixture of base
/// signals plus deterministic pseudo-noise, with mixing chosen by hashing
/// `k` — so the same metric means the same thing across all traces, like a
/// real monitoring schema. Executor-derived synthetic metrics inherit the
/// NaN of their source slot (inactive executors report null, §3.1).
pub fn expand_to_full(base_series: &TimeSeries, target_dims: usize) -> TimeSeries {
    assert!(target_dims >= BASE_METRICS, "target_dims must be at least BASE_METRICS");
    assert_eq!(base_series.dims(), BASE_METRICS, "expected a base-metric series");
    let n = base_series.len();
    let extra = target_dims - BASE_METRICS;

    // Precompute per-synthetic-metric mixing parameters.
    enum Mix {
        /// A sparse linear mixture of two base signals plus noise.
        Derived { src_a: usize, src_b: usize, w_a: f64, w_b: f64, noise_scale: f64, phase: f64 },
        /// An *ambient* metric: high-variance activity unrelated to this
        /// application (other tenants, OS churn, rotating log volumes).
        /// Real monitoring layouts are full of these; they are what makes
        /// variance-driven feature selection (PCA) lose the low-variance
        /// anomaly signals (Table 8).
        Ambient { amplitude: f64, f1: f64, f2: f64, phase: f64 },
    }
    let mixes: Vec<Mix> = (0..extra)
        .map(|k| {
            let h = splitmix64(k as u64 + 1);
            if h.is_multiple_of(2) {
                Mix::Derived {
                    src_a: ((h >> 2) % BASE_METRICS as u64) as usize,
                    src_b: ((h >> 16) % BASE_METRICS as u64) as usize,
                    w_a: 0.2 + 1.6 * unit(h >> 8),
                    w_b: 0.8 * unit(h >> 24) - 0.4,
                    noise_scale: 0.02 + 0.08 * unit(h >> 32),
                    phase: unit(h >> 40) * std::f64::consts::TAU,
                }
            } else {
                // Log-uniform amplitude across 1e2..1e6 so ambient
                // variance rivals the cumulative counters'.
                Mix::Ambient {
                    amplitude: 10f64.powf(2.0 + 4.0 * unit(h >> 8)),
                    f1: 0.002 + 0.05 * unit(h >> 20),
                    f2: 0.01 + 0.2 * unit(h >> 32),
                    phase: unit(h >> 44) * std::f64::consts::TAU,
                }
            }
        })
        .collect();

    let mut names = base_metric_names();
    names.reserve(extra);
    for (k, mix) in mixes.iter().enumerate() {
        names.push(match mix {
            Mix::Derived { src_a, src_b, .. } => format!("synthetic_{k}_of_{src_a}_{src_b}"),
            Mix::Ambient { .. } => format!("ambient_{k}"),
        });
    }

    let mut values = Vec::with_capacity(n * target_dims);
    for (i, rec) in base_series.records().enumerate() {
        values.extend_from_slice(rec);
        let t = i as f64;
        for mix in &mixes {
            match *mix {
                Mix::Derived { src_a, src_b, w_a, w_b, noise_scale, phase } => {
                    let a = rec[src_a];
                    let b = rec[src_b];
                    if a.is_nan() || b.is_nan() {
                        values.push(f64::NAN);
                        continue;
                    }
                    let noise = (t * 0.37 + phase).sin() * noise_scale * (1.0 + a.abs());
                    values.push(w_a * a + w_b * b + noise);
                }
                Mix::Ambient { amplitude, f1, f2, phase } => {
                    values.push(
                        amplitude * ((t * f1 + phase).sin() + 0.5 * (t * f2 + 2.0 * phase).sin()),
                    );
                }
            }
        }
    }
    TimeSeries::from_flat(names, base_series.start_tick(), values)
}

/// SplitMix64: tiny deterministic hash for the expansion parameters.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map the low 32 bits of a hash into `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h & 0xFFFF_FFFF) as f64 / (u32::MAX as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::TimeSeries;

    fn synthetic_base(n: usize) -> TimeSeries {
        let names = base_metric_names();
        let mut records = Vec::with_capacity(n);
        for i in 0..n {
            let mut rec = vec![0.0; BASE_METRICS];
            rec[base::PROCESSING_DELAY] = 1.0 + (i % 3) as f64;
            rec[base::TOTAL_COMPLETED_BATCHES] = i as f64;
            rec[base::TOTAL_PROCESSED_RECORDS] = (i * 100) as f64;
            rec[base::TOTAL_RECEIVED_RECORDS] = (i * 100) as f64;
            for e in 0..EXECUTOR_SLOTS {
                let block = base::executor_block(e);
                if e < 3 {
                    rec[block + base::EXEC_CPU_TIME] = (i * (e + 1)) as f64;
                    rec[block + base::EXEC_JVM_HEAP] = 100.0 + e as f64;
                } else {
                    for off in 0..EXEC_BASE_METRICS {
                        rec[block + off] = f64::NAN;
                    }
                }
            }
            for node in 0..NODES {
                rec[base::node_cpu_idle(node)] = 90.0 - i as f64;
            }
            records.push(rec);
        }
        TimeSeries::from_records(names, 0, &records)
    }

    #[test]
    fn layout_constants_match_paper() {
        assert_eq!(FULL_METRICS, 2283);
        assert_eq!(FULL_DRIVER_METRICS, 243);
        assert_eq!(FULL_EXECUTOR_METRICS, 700);
        assert_eq!(FULL_OS_METRICS, 1340);
        assert_eq!(base_metric_names().len(), BASE_METRICS);
    }

    #[test]
    fn custom_set_has_19_features_in_appendix_order() {
        let base = synthetic_base(10);
        let fs = custom_feature_set(&base);
        assert_eq!(fs.dims(), 19);
        assert_eq!(fs.len(), 9);
        let names = custom_feature_names();
        assert_eq!(fs.names(), &names[..]);
    }

    #[test]
    fn custom_set_differences_counters() {
        let base = synthetic_base(10);
        let fs = custom_feature_set(&base);
        // totalProcessedRecords grows by 100/tick -> diff is constant 100.
        let j = fs.feature_index("1_diff_driver_Streaming_totalProcessedRecords_value").unwrap();
        assert!(fs.feature_column(j).iter().all(|&x| (x - 100.0).abs() < 1e-9));
        // Delays are passed through un-differenced.
        let d = fs.feature_index("driver_Streaming_lastCompletedBatch_processingDelay_value");
        assert!(d.is_some());
    }

    #[test]
    fn custom_set_averages_only_active_executors() {
        let base = synthetic_base(10);
        let fs = custom_feature_set(&base);
        // Active executors have heap 100, 101, 102 (constant in time), so
        // diff(avg heap) = 0 and no NaN leaks from backup slots.
        let j = fs.feature_index("1_diff_avg_jvm_heap_used_value").unwrap();
        for x in fs.feature_column(j) {
            assert!(x.abs() < 1e-9, "expected 0 diff, got {x}");
        }
    }

    #[test]
    fn expansion_reaches_full_dims_and_is_deterministic() {
        let base = synthetic_base(5);
        let full_a = expand_to_full(&base, 100);
        let full_b = expand_to_full(&base, 100);
        assert_eq!(full_a.dims(), 100);
        assert!(full_a.same_data(&full_b));
        // Base metrics are preserved verbatim as a prefix (bitwise, to
        // treat the NaN backup-slot metrics as equal).
        for i in 0..base.len() {
            for (a, b) in full_a.record(i)[..BASE_METRICS].iter().zip(base.record(i)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn expansion_propagates_nan_for_inactive_executors() {
        let base = synthetic_base(5);
        let full = expand_to_full(&base, FULL_METRICS);
        assert_eq!(full.dims(), 2283);
        // At least one synthetic metric must derive from a NaN (backup) slot.
        let nan_count = full.record(0).iter().filter(|x| x.is_nan()).count();
        assert!(nan_count > EXECUTOR_SLOTS, "expected NaN propagation, got {nan_count}");
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn expansion_below_base_panics() {
        let base = synthetic_base(3);
        let _ = expand_to_full(&base, 10);
    }
}
