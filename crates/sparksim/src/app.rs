//! The 10-application catalogue.
//!
//! The paper's workload is "10 stream processing applications that analyze
//! user click streams from the WorldCup 1998 website", each with its own
//! workload characteristics ("e.g., CPU or I/O intensive", §3.1). Those
//! characteristics matter for the benchmark because they drive the
//! generalization axis of the learning settings: a CPU-intensive
//! application is more sensitive to CPU-contention anomalies, an
//! I/O-intensive one to HDFS noise, and so on.

/// Broad workload class of a streaming application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Heavy per-record computation: most sensitive to CPU contention.
    CpuIntensive,
    /// Heavy HDFS reads/writes: most sensitive to I/O noise, moderate CPU.
    IoIntensive,
    /// Heavy shuffles between executors: network + memory pressure.
    ShuffleHeavy,
    /// Balanced profile.
    Mixed,
}

/// Static profile of one of the 10 streaming applications.
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Application id in `0..10`.
    pub id: usize,
    /// Workload class.
    pub kind: WorkloadKind,
    /// Micro-batch interval in ticks (seconds).
    pub batch_interval: u64,
    /// Normal input rate in records/second the app is sized for.
    pub base_input_rate: f64,
    /// CPU cost (executor-core-seconds) to process 1000 records.
    pub cpu_cost_per_krec: f64,
    /// HDFS write operations issued per 1000 processed records.
    pub hdfs_ops_per_krec: f64,
    /// Shuffle records moved per processed record.
    pub shuffle_factor: f64,
    /// Bytes of executor heap held per queued (unprocessed) record.
    pub mem_per_queued_record: f64,
    /// Steady-state heap in MB when the queue is empty.
    pub base_heap_mb: f64,
}

impl AppProfile {
    /// The full 10-application catalogue. Application ids are stable and
    /// used throughout the dataset's ground-truth table.
    pub fn catalogue() -> Vec<AppProfile> {
        use WorkloadKind::*;
        // Interleave kinds so that any 5-of-10 concurrency draw mixes
        // workload classes, as in the paper's random co-location.
        let kinds = [
            CpuIntensive,
            IoIntensive,
            ShuffleHeavy,
            Mixed,
            CpuIntensive,
            IoIntensive,
            ShuffleHeavy,
            Mixed,
            CpuIntensive,
            Mixed,
        ];
        kinds
            .iter()
            .enumerate()
            .map(|(id, &kind)| {
                // Deterministic per-app variety: rates and costs vary with id
                // so no two applications look identical in the data.
                let spread = 1.0 + 0.13 * (id as f64);
                let (cpu, hdfs, shuffle) = match kind {
                    CpuIntensive => (2.4, 1.0, 0.4),
                    IoIntensive => (0.9, 6.0, 0.6),
                    ShuffleHeavy => (1.3, 2.0, 2.2),
                    Mixed => (1.4, 3.0, 1.0),
                };
                AppProfile {
                    id,
                    kind,
                    batch_interval: 5 + (id as u64 % 3) * 5, // 5, 10, or 15 s
                    base_input_rate: 900.0 * spread,
                    cpu_cost_per_krec: cpu,
                    hdfs_ops_per_krec: hdfs,
                    shuffle_factor: shuffle,
                    mem_per_queued_record: 2_400.0,
                    base_heap_mb: 320.0 + 40.0 * (id as f64),
                }
            })
            .collect()
    }

    /// Profile of application `id`.
    ///
    /// # Panics
    /// Panics if `id >= 10`.
    pub fn by_id(id: usize) -> AppProfile {
        let cat = Self::catalogue();
        assert!(id < cat.len(), "application id {id} out of range");
        cat[id].clone()
    }

    /// Records/second one executor core can process for this application at
    /// full CPU share.
    pub fn per_core_throughput(&self) -> f64 {
        1000.0 / self.cpu_cost_per_krec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_ten_distinct_apps() {
        let cat = AppProfile::catalogue();
        assert_eq!(cat.len(), 10);
        for (i, app) in cat.iter().enumerate() {
            assert_eq!(app.id, i);
        }
        // Rates must differ between apps (workload variety).
        let rates: Vec<f64> = cat.iter().map(|a| a.base_input_rate).collect();
        for i in 0..rates.len() {
            for j in (i + 1)..rates.len() {
                assert_ne!(rates[i], rates[j], "apps {i} and {j} identical rate");
            }
        }
    }

    #[test]
    fn all_kinds_present() {
        let cat = AppProfile::catalogue();
        for kind in [
            WorkloadKind::CpuIntensive,
            WorkloadKind::IoIntensive,
            WorkloadKind::ShuffleHeavy,
            WorkloadKind::Mixed,
        ] {
            assert!(cat.iter().any(|a| a.kind == kind), "missing {kind:?}");
        }
    }

    #[test]
    fn cpu_intensive_costs_more_cpu() {
        let cat = AppProfile::catalogue();
        let cpu = cat.iter().find(|a| a.kind == WorkloadKind::CpuIntensive).unwrap();
        let io = cat.iter().find(|a| a.kind == WorkloadKind::IoIntensive).unwrap();
        assert!(cpu.cpu_cost_per_krec > io.cpu_cost_per_krec);
        assert!(io.hdfs_ops_per_krec > cpu.hdfs_ops_per_krec);
    }

    #[test]
    fn by_id_matches_catalogue() {
        let app = AppProfile::by_id(7);
        assert_eq!(app.id, 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn by_id_out_of_range_panics() {
        let _ = AppProfile::by_id(10);
    }

    #[test]
    fn throughput_positive() {
        for app in AppProfile::catalogue() {
            assert!(app.per_core_throughput() > 0.0);
        }
    }
}
