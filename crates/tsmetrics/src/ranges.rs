//! Anomaly ranges: half-open `[start, end)` tick intervals.

/// A half-open interval of ticks `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Range {
    /// Inclusive start tick.
    pub start: u64,
    /// Exclusive end tick.
    pub end: u64,
}

impl Range {
    /// Create a range.
    ///
    /// # Panics
    /// Panics if `start >= end` (ranges are non-empty by construction).
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start < end, "empty range [{start}, {end})");
        Self { start, end }
    }

    /// Length in ticks.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Ranges are non-empty by construction; kept for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `tick` falls inside.
    pub fn contains(&self, tick: u64) -> bool {
        tick >= self.start && tick < self.end
    }

    /// Whether the two ranges share any tick.
    pub fn overlaps(&self, other: &Range) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The intersection, if non-empty.
    pub fn intersect(&self, other: &Range) -> Option<Range> {
        let s = self.start.max(other.start);
        let e = self.end.min(other.end);
        if s < e {
            Some(Range { start: s, end: e })
        } else {
            None
        }
    }
}

/// Convert a binary prediction stream into maximal ranges of consecutive
/// `true` flags. `start_tick` is the tick of `flags[0]`.
///
/// This is the paper's definition of predicted anomalies: "sequences of
/// positive predictions within that trace" (§5 step 4).
pub fn ranges_from_flags(flags: &[bool], start_tick: u64) -> Vec<Range> {
    let mut out = Vec::new();
    let mut open: Option<u64> = None;
    for (i, &f) in flags.iter().enumerate() {
        let tick = start_tick + i as u64;
        match (f, open) {
            (true, None) => open = Some(tick),
            (false, Some(s)) => {
                out.push(Range { start: s, end: tick });
                open = None;
            }
            _ => {}
        }
    }
    if let Some(s) = open {
        out.push(Range { start: s, end: start_tick + flags.len() as u64 });
    }
    out
}

/// Binary flags for ticks `[start_tick, start_tick + len)` given a set of
/// ranges (the inverse of [`ranges_from_flags`]).
pub fn flags_from_ranges(ranges: &[Range], start_tick: u64, len: usize) -> Vec<bool> {
    let mut flags = vec![false; len];
    for r in ranges {
        let lo = r.start.saturating_sub(start_tick) as usize;
        let hi = (r.end.saturating_sub(start_tick) as usize).min(len);
        for f in flags.iter_mut().take(hi).skip(lo.min(len)) {
            *f = true;
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let r = Range::new(5, 10);
        assert_eq!(r.len(), 5);
        assert!(r.contains(5));
        assert!(r.contains(9));
        assert!(!r.contains(10));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = Range::new(5, 5);
    }

    #[test]
    fn overlap_and_intersection() {
        let a = Range::new(0, 10);
        let b = Range::new(5, 15);
        let c = Range::new(10, 20);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "half-open ranges touching at 10 do not overlap");
        assert_eq!(a.intersect(&b), Some(Range::new(5, 10)));
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn flags_roundtrip() {
        let flags = vec![false, true, true, false, true, false, false, true];
        let ranges = ranges_from_flags(&flags, 100);
        assert_eq!(ranges, vec![Range::new(101, 103), Range::new(104, 105), Range::new(107, 108)]);
        assert_eq!(flags_from_ranges(&ranges, 100, flags.len()), flags);
    }

    #[test]
    fn all_true_single_range() {
        let ranges = ranges_from_flags(&[true, true, true], 0);
        assert_eq!(ranges, vec![Range::new(0, 3)]);
    }

    #[test]
    fn all_false_no_ranges() {
        assert!(ranges_from_flags(&[false; 5], 0).is_empty());
    }

    #[test]
    fn flags_from_ranges_clips() {
        let flags = flags_from_ranges(&[Range::new(3, 100)], 0, 5);
        assert_eq!(flags, vec![false, false, false, true, true]);
    }
}
