//! Precision-recall curves over outlier scores and the area under them.
//!
//! The paper assesses a model's *separation ability* — how well the outlier
//! score `g: x -> R` separates anomalous from normal records before any
//! threshold is chosen — as the AUPRC of the scores against the point-wise
//! ground truth (§5 step 5; Tables 3, 7, 8). Trace- and application-level
//! separation average the per-trace / per-application AUPRCs.

/// One point of a precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Score threshold generating this point (predict positive when
    /// `score >= threshold`).
    pub threshold: f64,
    /// Precision at the threshold.
    pub precision: f64,
    /// Recall at the threshold.
    pub recall: f64,
}

/// Compute the PR curve of `scores` against binary `labels`, sweeping the
/// threshold over every distinct score (descending). NaN scores are
/// treated as `-inf` (never flagged first).
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn pr_curve(scores: &[f64], labels: &[bool]) -> Vec<PrPoint> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    assert!(!scores.is_empty(), "empty input");
    let total_pos = labels.iter().filter(|&&l| l).count();

    // Sanitize NaN to -inf up front: NaN would break both the sort and the
    // tie-grouping below (NaN never equals itself).
    let scores: Vec<f64> =
        scores.iter().map(|&s| if s.is_nan() { f64::NEG_INFINITY } else { s }).collect();
    let mut order: Vec<usize> = (0..scores.len()).collect();
    // total_cmp cannot fail on the sanitized scores and lets the sort be
    // unstable: ties are consumed as one whole group below, so the order
    // within a tie never affects the curve.
    order.sort_unstable_by(|&i, &j| scores[j].total_cmp(&scores[i]));

    let mut curve = Vec::new();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Consume every record tied at this threshold before emitting.
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = if total_pos == 0 { 1.0 } else { tp as f64 / total_pos as f64 };
        curve.push(PrPoint { threshold, precision, recall });
    }
    curve
}

/// Area under the PR curve via the step-wise (average-precision style)
/// integration: each recall increment contributes the precision at that
/// threshold. Returns the positive-class base rate when every score ties
/// (no ranking information) and 0 when there are no positive labels.
pub fn auprc(scores: &[f64], labels: &[bool]) -> f64 {
    let total_pos = labels.iter().filter(|&&l| l).count();
    if total_pos == 0 {
        return 0.0;
    }
    let curve = pr_curve(scores, labels);
    let mut area = 0.0;
    let mut prev_recall = 0.0;
    for pt in &curve {
        area += (pt.recall - prev_recall) * pt.precision;
        prev_recall = pt.recall;
    }
    area
}

/// Average of per-group AUPRCs (the paper's application-level and
/// trace-level separation). Groups with no positive labels are skipped, as
/// their AUPRC is undefined. Returns `None` if every group is skipped.
pub fn mean_grouped_auprc(groups: &[(&[f64], &[bool])]) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (scores, labels) in groups {
        if labels.iter().any(|&l| l) {
            sum += auprc(scores, labels);
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_auprc_one() {
        let scores = vec![0.1, 0.2, 0.9, 0.8];
        let labels = vec![false, false, true, true];
        assert!((auprc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_scores_low_auprc() {
        let scores = vec![0.9, 0.8, 0.1, 0.2];
        let labels = vec![false, false, true, true];
        assert!(auprc(&scores, &labels) < 0.5);
    }

    #[test]
    fn random_tie_scores_give_base_rate() {
        // All scores identical: one curve point at recall 1 with precision
        // = base rate.
        let scores = vec![0.5; 10];
        let labels: Vec<bool> = (0..10).map(|i| i < 3).collect();
        assert!((auprc(&scores, &labels) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn no_positives_zero() {
        assert_eq!(auprc(&[0.1, 0.2], &[false, false]), 0.0);
    }

    #[test]
    fn curve_is_recall_monotone() {
        let scores = vec![0.9, 0.1, 0.8, 0.3, 0.7, 0.2];
        let labels = vec![true, false, false, true, true, false];
        let curve = pr_curve(&scores, &labels);
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall);
        }
        assert!((curve.last().unwrap().recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nan_scores_rank_last() {
        let scores = vec![f64::NAN, 0.9, 0.8];
        let labels = vec![false, true, true];
        assert!((auprc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grouped_mean_skips_empty_groups() {
        let s1 = vec![0.9, 0.1];
        let l1 = vec![true, false];
        let s2 = vec![0.5, 0.5];
        let l2 = vec![false, false]; // no positives: skipped
        let m = mean_grouped_auprc(&[(&s1, &l1), (&s2, &l2)]).unwrap();
        assert!((m - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grouped_mean_none_when_all_empty() {
        let s = vec![0.5];
        let l = vec![false];
        assert!(mean_grouped_auprc(&[(&s, &l)]).is_none());
    }

    #[test]
    fn better_separation_higher_auprc() {
        // Partial overlap between classes vs. clean split.
        let clean_scores = vec![0.1, 0.2, 0.3, 0.7, 0.8, 0.9];
        let messy_scores = vec![0.1, 0.7, 0.3, 0.2, 0.8, 0.9];
        let labels = vec![false, false, false, true, true, true];
        assert!(auprc(&clean_scores, &labels) > auprc(&messy_scores, &labels));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatch_panics() {
        let _ = pr_curve(&[0.1], &[true, false]);
    }
}
