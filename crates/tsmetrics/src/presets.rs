//! The AD1–AD4 functionality levels and their Table 6 parameter settings.

use crate::range_pr::{f_score, range_precision, range_recall, Bias, Cardinality, RangeParams};
use crate::ranges::Range;

/// Exathlon's four AD functionality levels (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AdLevel {
    /// AD1: flag the existence of an anomaly somewhere in its interval.
    Existence,
    /// AD2: report the precise time range.
    Range,
    /// AD3: additionally minimize detection latency.
    Early,
    /// AD4: additionally report each anomaly exactly once.
    ExactlyOnce,
}

impl AdLevel {
    /// All four levels, basic to advanced.
    pub const ALL: [AdLevel; 4] =
        [AdLevel::Existence, AdLevel::Range, AdLevel::Early, AdLevel::ExactlyOnce];

    /// 1-based index (AD1..AD4).
    pub fn index(self) -> usize {
        match self {
            AdLevel::Existence => 1,
            AdLevel::Range => 2,
            AdLevel::Early => 3,
            AdLevel::ExactlyOnce => 4,
        }
    }

    /// Short label (`"AD1"`..`"AD4"`).
    pub fn label(self) -> String {
        format!("AD{}", self.index())
    }

    /// Precision-side parameters (Table 6): `α = 0`, flat bias; `γ = 0`
    /// only for exactly-once detection.
    pub fn precision_params(self) -> RangeParams {
        RangeParams {
            alpha: 0.0,
            bias: Bias::Flat,
            cardinality: match self {
                AdLevel::ExactlyOnce => Cardinality::Zero,
                _ => Cardinality::None,
            },
        }
    }

    /// Recall-side parameters (Table 6): existence reward only for AD1,
    /// front bias from AD3, fragmentation penalty for AD4.
    pub fn recall_params(self) -> RangeParams {
        match self {
            AdLevel::Existence => {
                RangeParams { alpha: 1.0, bias: Bias::Flat, cardinality: Cardinality::None }
            }
            AdLevel::Range => {
                RangeParams { alpha: 0.0, bias: Bias::Flat, cardinality: Cardinality::None }
            }
            AdLevel::Early => {
                RangeParams { alpha: 0.0, bias: Bias::Front, cardinality: Cardinality::None }
            }
            AdLevel::ExactlyOnce => {
                RangeParams { alpha: 0.0, bias: Bias::Front, cardinality: Cardinality::Zero }
            }
        }
    }
}

/// Precision, recall, and F1 of a prediction at one AD level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrF1 {
    /// Range-based precision.
    pub precision: f64,
    /// Range-based recall.
    pub recall: f64,
    /// F1 score.
    pub f1: f64,
}

/// Evaluate predicted ranges against real ranges at the given AD level.
pub fn evaluate_at_level(real: &[Range], predicted: &[Range], level: AdLevel) -> PrF1 {
    let precision = range_precision(real, predicted, &level.precision_params());
    let recall = range_recall(real, predicted, &level.recall_params());
    PrF1 { precision, recall, f1: f_score(precision, recall, 1.0) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: u64, e: u64) -> Range {
        Range::new(s, e)
    }

    #[test]
    fn labels() {
        assert_eq!(AdLevel::Existence.label(), "AD1");
        assert_eq!(AdLevel::ExactlyOnce.label(), "AD4");
        for (i, l) in AdLevel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i + 1);
        }
    }

    /// The core design property: for any prediction, scores never increase
    /// with the AD level (§4.1's monotonic design).
    #[test]
    fn scores_monotone_across_levels() {
        let scenarios: Vec<(Vec<Range>, Vec<Range>)> = vec![
            // Perfect detection.
            (vec![r(10, 20)], vec![r(10, 20)]),
            // Late partial detection.
            (vec![r(10, 20)], vec![r(16, 22)]),
            // Early partial detection.
            (vec![r(10, 20)], vec![r(8, 14)]),
            // Fragmented detection.
            (vec![r(10, 30)], vec![r(10, 14), r(18, 22), r(26, 30)]),
            // Multiple anomalies, mixed quality.
            (vec![r(0, 10), r(50, 70)], vec![r(5, 8), r(48, 55), r(60, 75)]),
            // Pure false positive.
            (vec![r(10, 20)], vec![r(40, 50)]),
            // Tiny overlap at the very end.
            (vec![r(0, 100)], vec![r(99, 120)]),
        ];
        for (real, pred) in &scenarios {
            let scores: Vec<PrF1> =
                AdLevel::ALL.iter().map(|&l| evaluate_at_level(real, pred, l)).collect();
            for w in scores.windows(2) {
                assert!(
                    w[0].recall >= w[1].recall - 1e-12,
                    "recall not monotone for {real:?} vs {pred:?}: {scores:?}"
                );
                assert!(
                    w[0].precision >= w[1].precision - 1e-12,
                    "precision not monotone for {real:?} vs {pred:?}: {scores:?}"
                );
                assert!(
                    w[0].f1 >= w[1].f1 - 1e-12,
                    "F1 not monotone for {real:?} vs {pred:?}: {scores:?}"
                );
            }
        }
    }

    #[test]
    fn ad1_rewards_any_overlap_fully() {
        let real = vec![r(0, 100)];
        let pred = vec![r(90, 95)];
        let s = evaluate_at_level(&real, &pred, AdLevel::Existence);
        assert_eq!(s.recall, 1.0);
        // Precision at AD1 still measures prediction quality.
        assert_eq!(s.precision, 1.0);
    }

    #[test]
    fn ad2_proportional_recall() {
        let real = vec![r(0, 10)];
        let pred = vec![r(0, 4)];
        let s = evaluate_at_level(&real, &pred, AdLevel::Range);
        assert!((s.recall - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ad3_discounts_late_detection() {
        let real = vec![r(0, 10)];
        let late = vec![r(6, 10)];
        let ad2 = evaluate_at_level(&real, &late, AdLevel::Range);
        let ad3 = evaluate_at_level(&real, &late, AdLevel::Early);
        assert!(ad3.recall < ad2.recall);
    }

    #[test]
    fn ad4_zeroes_duplicate_detection() {
        let real = vec![r(0, 10)];
        let dup = vec![r(0, 3), r(5, 8)];
        let ad4 = evaluate_at_level(&real, &dup, AdLevel::ExactlyOnce);
        assert_eq!(ad4.recall, 0.0);
        let once = vec![r(0, 10)];
        let ad4_once = evaluate_at_level(&real, &once, AdLevel::ExactlyOnce);
        assert_eq!(ad4_once.recall, 1.0);
    }

    /// Reproduces the spirit of the paper's Figure 2: the example ranges
    /// keep their relative ordering across levels.
    #[test]
    fn figure2_style_example() {
        // R1 fully covered once; R2 covered late; R3 fragmented; R4 missed.
        let real = vec![r(0, 10), r(20, 30), r(40, 50), r(60, 70)];
        let pred = vec![r(0, 10), r(27, 33), r(40, 43), r(45, 48)];
        let ad1 = evaluate_at_level(&real, &pred, AdLevel::Existence);
        let ad2 = evaluate_at_level(&real, &pred, AdLevel::Range);
        let ad4 = evaluate_at_level(&real, &pred, AdLevel::ExactlyOnce);
        assert!((ad1.recall - 0.75).abs() < 1e-12, "3 of 4 flagged");
        assert!(ad2.recall < ad1.recall);
        // Under AD4 only R1 counts (R2 covered once: also counts).
        assert!(ad4.recall <= ad2.recall);
        assert!(ad4.recall > 0.0);
    }
}
