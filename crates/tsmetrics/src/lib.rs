//! # exathlon-tsmetrics
//!
//! The Exathlon evaluation methodology (§4, Appendix B):
//!
//! * [`ranges`] — anomaly ranges (half-open tick intervals) and conversion
//!   from binary prediction streams,
//! * [`range_pr`] — the customizable range-based precision/recall framework
//!   of Tatbul et al. (NeurIPS'18): existence reward `α`, positional bias
//!   `δ`, fragmentation/cardinality penalty `γ`, additive overlap reward
//!   `ω`,
//! * [`presets`] — the AD1–AD4 parameter settings of Table 6, with the
//!   monotonicity adjustment that guarantees
//!   `score(AD1) >= score(AD2) >= score(AD3) >= score(AD4)`,
//! * [`point`] — classical point-based precision/recall/F-score,
//! * [`auprc`] — precision-recall curves and area under them, computed on
//!   outlier scores (the separation metric of Tables 3, 7, 8),
//! * [`ed_metrics`] — explanation-quality metrics: conciseness, the
//!   entropy-based consistency measures (stability for ED1, concordance
//!   for ED2), and prediction accuracy of explanations (§4.2).

pub mod auprc;
pub mod ed_metrics;
pub mod point;
pub mod presets;
pub mod range_pr;
pub mod ranges;

pub use presets::AdLevel;
pub use ranges::Range;
