//! The customizable range-based precision/recall framework of Tatbul et
//! al. (NeurIPS 2018), as instantiated by Exathlon (Appendix B).
//!
//! For real anomaly ranges `R1..Rn` and predicted ranges `P1..Pm`:
//!
//! ```text
//! Recall(Ri)    = α · Existence(Ri) + (1 − α) · Cardinality(Ri) · Overlap(Ri)
//! Precision(Pi) =                     Cardinality(Pi) · Overlap(Pi)
//! ```
//!
//! where `Overlap` is the additive positional reward `ω` under a bias `δ`,
//! and `Cardinality` applies the fragmentation penalty `γ` when a range is
//! covered by more than one counterpart. Overall recall/precision average
//! the per-range values.
//!
//! **Monotonicity adjustment.** Exathlon's AD levels must satisfy
//! `score(AD1) ≥ score(AD2) ≥ score(AD3) ≥ score(AD4)` (§4.1). A raw
//! front-biased `ω` can exceed the flat `ω` when the detected portion sits
//! at the front of the range, which would let AD3 beat AD2. Following the
//! paper's "minor normalization adjustment to ensure monotonicity", the
//! positional reward is capped at its flat (unbiased) value: early
//! detection retains the full flat reward while late detection is
//! discounted.

use crate::ranges::Range;

/// Positional bias `δ` of the overlap reward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bias {
    /// Every position of the range worth the same.
    Flat,
    /// Earlier positions worth more (early detection, AD3/AD4 recall).
    Front,
    /// Later positions worth more.
    Back,
}

impl Bias {
    /// Weight of position `i` (0-based) in a range of `len` positions —
    /// the definitional form `omega` integrates in closed form. Kept as
    /// the reference implementation for the property tests.
    #[cfg(test)]
    fn weight(self, i: u64, len: u64) -> f64 {
        match self {
            Bias::Flat => 1.0,
            Bias::Front => (len - i) as f64,
            Bias::Back => (i + 1) as f64,
        }
    }
}

/// Fragmentation (cardinality) penalty `γ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cardinality {
    /// No penalty (`γ = 1` in Table 6).
    None,
    /// Reciprocal penalty `1/x` for `x` overlapping counterparts.
    Reciprocal,
    /// Hard penalty: any fragmentation zeroes the score (`γ = 0`,
    /// exactly-once detection).
    Zero,
}

impl Cardinality {
    fn factor(self, overlapping: usize) -> f64 {
        if overlapping <= 1 {
            1.0
        } else {
            match self {
                Cardinality::None => 1.0,
                Cardinality::Reciprocal => 1.0 / overlapping as f64,
                Cardinality::Zero => 0.0,
            }
        }
    }
}

/// Parameters of one side (precision or recall) of the framework.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeParams {
    /// Existence reward weight `α ∈ [0, 1]` (recall only; precision uses 0).
    pub alpha: f64,
    /// Positional bias `δ`.
    pub bias: Bias,
    /// Fragmentation penalty `γ`.
    pub cardinality: Cardinality,
}

impl RangeParams {
    /// The classical configuration: `α = 0`, flat bias, no penalty.
    pub fn classical() -> Self {
        Self { alpha: 0.0, bias: Bias::Flat, cardinality: Cardinality::None }
    }
}

/// Sum `1 + 2 + … + n` (exact in `u128` for any `u64` length).
fn triangular(n: u128) -> u128 {
    n * (n + 1) / 2
}

/// Additive overlap reward `ω`: positional-weighted fraction of `range`
/// covered by `overlap`, capped at the flat fraction for monotonicity (see
/// module docs).
///
/// All three biases have closed forms over the covered position interval
/// `[a, b)` (relative to `range.start`), so `ω` is O(1) instead of one
/// loop iteration per tick — on hour-long traces at 1s resolution the old
/// loop dominated `evaluate_detection`. The integer sums are exact, so
/// this is also *more* accurate than the float accumulation it replaces.
fn omega(range: &Range, overlap: &Range, bias: Bias) -> f64 {
    let len = range.len();
    // Covered positions relative to the range start, clamped into it
    // (callers pass intersections, which are already inside).
    let a = overlap.start.saturating_sub(range.start).min(len) as u128;
    let b = overlap.end.saturating_sub(range.start).min(len) as u128;
    if b <= a {
        return 0.0;
    }
    let len = len as u128;
    let flat = (b - a) as f64 / len as f64;
    match bias {
        Bias::Flat => flat,
        Bias::Front => {
            // weight(i) = len − i, so Σ_{i=a}^{b−1} = Σ_{j=len−b+1}^{len−a} j.
            let covered = triangular(len - a) - triangular(len - b);
            let biased = covered as f64 / triangular(len) as f64;
            biased.min(flat)
        }
        Bias::Back => {
            // weight(i) = i + 1, so Σ_{i=a}^{b−1} = Σ_{j=a+1}^{b} j.
            let covered = triangular(b) - triangular(a);
            let biased = covered as f64 / triangular(len) as f64;
            biased.min(flat)
        }
    }
}

/// Score of a single range against a set of counterpart ranges.
fn single_range_score(range: &Range, others: &[Range], p: &RangeParams) -> f64 {
    let overlaps: Vec<Range> = others.iter().filter_map(|o| range.intersect(o)).collect();
    let existence = if overlaps.is_empty() { 0.0 } else { 1.0 };
    if p.alpha >= 1.0 {
        return existence;
    }
    let cardinality = p.cardinality.factor(overlaps.len());
    let overlap_reward: f64 = overlaps.iter().map(|o| omega(range, o, p.bias)).sum();
    // The additive overlap sum over disjoint intersections of one range
    // cannot exceed 1 because the weights partition the range.
    let overlap_reward = overlap_reward.min(1.0);
    p.alpha * existence + (1.0 - p.alpha) * cardinality * overlap_reward
}

/// Range-based recall: average per-real-range score.
/// Returns 1.0 when there are no real ranges (nothing to recall).
pub fn range_recall(real: &[Range], predicted: &[Range], p: &RangeParams) -> f64 {
    if real.is_empty() {
        return 1.0;
    }
    real.iter().map(|r| single_range_score(r, predicted, p)).sum::<f64>() / real.len() as f64
}

/// Range-based precision: average per-predicted-range score. `α` is forced
/// to 0 (existence is meaningless for precision, Appendix B). Returns 1.0
/// when there are no predictions (no false alarms).
pub fn range_precision(real: &[Range], predicted: &[Range], p: &RangeParams) -> f64 {
    if predicted.is_empty() {
        return 1.0;
    }
    let p = RangeParams { alpha: 0.0, ..*p };
    predicted.iter().map(|pr| single_range_score(pr, real, &p)).sum::<f64>()
        / predicted.len() as f64
}

/// The F-beta score of a precision/recall pair (`beta = 1` for F1).
pub fn f_score(precision: f64, recall: f64, beta: f64) -> f64 {
    let b2 = beta * beta;
    if precision <= 0.0 && recall <= 0.0 {
        0.0
    } else {
        (1.0 + b2) * precision * recall / (b2 * precision + recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: u64, e: u64) -> Range {
        Range::new(s, e)
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let real = vec![r(10, 20), r(30, 40)];
        let p = RangeParams::classical();
        assert_eq!(range_recall(&real, &real, &p), 1.0);
        assert_eq!(range_precision(&real, &real, &p), 1.0);
    }

    #[test]
    fn no_prediction_zero_recall_full_precision() {
        let real = vec![r(10, 20)];
        let p = RangeParams::classical();
        assert_eq!(range_recall(&real, &[], &p), 0.0);
        assert_eq!(range_precision(&real, &[], &p), 1.0);
    }

    #[test]
    fn half_coverage_flat_recall() {
        let real = vec![r(0, 10)];
        let pred = vec![r(0, 5)];
        let p = RangeParams::classical();
        assert!((range_recall(&real, &pred, &p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn existence_alpha_one_rewards_any_overlap() {
        let real = vec![r(0, 100)];
        let pred = vec![r(99, 100)]; // tiny overlap
        let p = RangeParams { alpha: 1.0, bias: Bias::Flat, cardinality: Cardinality::None };
        assert_eq!(range_recall(&real, &pred, &p), 1.0);
    }

    #[test]
    fn front_bias_caps_at_flat() {
        // Early detection covering the front half: flat gives 0.5; raw
        // front bias would give more, the adjustment caps it at 0.5.
        let real = vec![r(0, 10)];
        let front = RangeParams { alpha: 0.0, bias: Bias::Front, cardinality: Cardinality::None };
        let flat = RangeParams::classical();
        let early = vec![r(0, 5)];
        assert!(
            (range_recall(&real, &early, &front) - range_recall(&real, &early, &flat)).abs()
                < 1e-12
        );
        // Late detection covering the back half: front bias discounts it.
        let late = vec![r(5, 10)];
        assert!(range_recall(&real, &late, &front) < range_recall(&real, &late, &flat));
    }

    #[test]
    fn back_bias_rewards_late() {
        let real = vec![r(0, 10)];
        let late = vec![r(5, 10)];
        let back = RangeParams { alpha: 0.0, bias: Bias::Back, cardinality: Cardinality::None };
        let flat = RangeParams::classical();
        // Back bias is also capped at flat by the monotonicity adjustment,
        // so late detection equals flat while early detection is discounted.
        assert!(
            (range_recall(&real, &late, &back) - range_recall(&real, &late, &flat)).abs() < 1e-12
        );
        let early = vec![r(0, 5)];
        assert!(range_recall(&real, &early, &back) < range_recall(&real, &early, &flat));
    }

    #[test]
    fn fragmentation_zero_kills_score() {
        let real = vec![r(0, 10)];
        let fragmented = vec![r(0, 3), r(6, 9)];
        let p = RangeParams { alpha: 0.0, bias: Bias::Flat, cardinality: Cardinality::Zero };
        assert_eq!(range_recall(&real, &fragmented, &p), 0.0);
        // A single covering prediction keeps its score.
        let single = vec![r(0, 10)];
        assert_eq!(range_recall(&real, &single, &p), 1.0);
    }

    #[test]
    fn fragmentation_reciprocal_halves() {
        let real = vec![r(0, 10)];
        let fragmented = vec![r(0, 5), r(5, 10)];
        let p = RangeParams { alpha: 0.0, bias: Bias::Flat, cardinality: Cardinality::Reciprocal };
        // Full coverage but 2 fragments: 1.0 * 1/2.
        assert!((range_recall(&real, &fragmented, &p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn precision_penalizes_false_positives() {
        let real = vec![r(10, 20)];
        let pred = vec![r(10, 20), r(50, 60)];
        let p = RangeParams::classical();
        assert!((range_precision(&real, &pred, &p) - 0.5).abs() < 1e-12);
        assert_eq!(range_recall(&real, &pred, &p), 1.0);
    }

    #[test]
    fn recall_averages_over_real_ranges() {
        let real = vec![r(0, 10), r(20, 30)];
        let pred = vec![r(0, 10)];
        let p = RangeParams::classical();
        assert!((range_recall(&real, &pred, &p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn f_score_known_values() {
        assert!((f_score(0.5, 0.5, 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(f_score(0.0, 0.0, 1.0), 0.0);
        assert!((f_score(1.0, 0.5, 1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_real_ranges_recall_one() {
        assert_eq!(range_recall(&[], &[r(0, 5)], &RangeParams::classical()), 1.0);
    }

    /// The definitional per-tick loop `omega` (the implementation before
    /// the closed form), used as the property-test reference.
    fn omega_loop(range: &Range, overlap: &Range, bias: Bias) -> f64 {
        let len = range.len();
        let mut total = 0.0;
        let mut covered = 0.0;
        for i in 0..len {
            let w = bias.weight(i, len);
            total += w;
            if overlap.contains(range.start + i) {
                covered += w;
            }
        }
        let biased = if total > 0.0 { covered / total } else { 0.0 };
        if bias == Bias::Flat {
            biased
        } else {
            let flat = overlap.len() as f64 / len as f64;
            biased.min(flat)
        }
    }

    proptest::proptest! {
        /// The closed-form `omega` agrees with the definitional loop for
        /// every bias over arbitrary ranges and sub-overlaps.
        #[test]
        fn omega_closed_form_matches_loop(
            start in 0u64..5000,
            len in 1u64..2000,
            a_off in 0u64..2000,
            b_off in 0u64..2000,
        ) {
            proptest::prop_assume!(a_off < len && b_off < len);
            let (a_off, b_off) = (a_off.min(b_off), a_off.max(b_off) + 1);
            let range = Range::new(start, start + len);
            let overlap = Range::new(start + a_off, start + b_off);
            for bias in [Bias::Flat, Bias::Front, Bias::Back] {
                let fast = omega(&range, &overlap, bias);
                let slow = omega_loop(&range, &overlap, bias);
                proptest::prop_assert!(
                    (fast - slow).abs() < 1e-9,
                    "bias {bias:?}, range {range:?}, overlap {overlap:?}: {fast} vs {slow}"
                );
                proptest::prop_assert!((0.0..=1.0).contains(&fast));
            }
        }
    }

    /// The closed form stays exact at scales where the loop would be
    /// impractical to run per evaluation (here it is only a reference).
    #[test]
    fn omega_large_range_exact() {
        let range = r(0, 1 << 40);
        let full = omega(&range, &range, Bias::Front);
        assert!((full - 1.0).abs() < 1e-12, "{full}");
        let half = omega(&range, &r(0, 1 << 39), Bias::Back);
        // Back-biased reward of the front half: S(n/2) / S(n) → 1/4.
        assert!((half - 0.25).abs() < 1e-6, "{half}");
    }
}
