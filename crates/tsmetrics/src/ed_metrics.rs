//! Explanation-quality metrics (§4.2): conciseness, the entropy-based
//! consistency measures, and explanation accuracy.
//!
//! Exathlon takes an abstract view of explanations: all it needs from an
//! ED method is the *feature set* `G_A(F)` each explanation uses. The
//! metrics below therefore operate on plain `Vec<usize>` feature-index
//! sets, independent of the explanation's concrete form.

use exathlon_linalg::stats::entropy;

/// Conciseness of a set of explanations: the average number of features
/// used per explanation (§4.2 metric 1). Returns 0 for an empty set.
pub fn conciseness(feature_sets: &[Vec<usize>]) -> f64 {
    if feature_sets.is_empty() {
        return 0.0;
    }
    feature_sets.iter().map(|s| s.len() as f64).sum::<f64>() / feature_sets.len() as f64
}

/// The entropy-based consistency measure shared by stability (ED1) and
/// concordance (ED2).
///
/// The duplicate-preserving union of the feature sets is formed, each
/// feature's frequency is normalized by the union's total size, and the
/// Shannon entropy of that distribution is returned. Identical
/// explanations of size `k` give `log2(k)` (the paper's reference points
/// `H_1 = 0`, `H_2 = 1`, `H_3 = 1.58`); disagreeing explanations spread
/// the mass over more features and score higher.
pub fn consistency_entropy(feature_sets: &[Vec<usize>]) -> f64 {
    let mut counts: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
    for set in feature_sets {
        for &f in set {
            *counts.entry(f).or_insert(0.0) += 1.0;
        }
    }
    if counts.is_empty() {
        return 0.0;
    }
    let weights: Vec<f64> = counts.values().copied().collect();
    entropy(&weights)
}

/// The paper's "good consistency" reference bound: `H_3 = log2(3) ≈ 1.58`.
pub fn good_consistency_bound() -> f64 {
    3f64.log2()
}

/// Stability (ED1): consistency over explanations of subsamples of *one*
/// anomaly. Alias of [`consistency_entropy`] with intent-revealing naming.
pub fn stability(subsample_feature_sets: &[Vec<usize>]) -> f64 {
    consistency_entropy(subsample_feature_sets)
}

/// Concordance (ED2): consistency over explanations of *different*
/// anomalies of the same type. Alias of [`consistency_entropy`].
pub fn concordance(anomaly_feature_sets: &[Vec<usize>]) -> f64 {
    consistency_entropy(anomaly_feature_sets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conciseness_averages_sizes() {
        let sets = vec![vec![1, 2], vec![3], vec![4, 5, 6]];
        assert!((conciseness(&sets) - 2.0).abs() < 1e-12);
        assert_eq!(conciseness(&[]), 0.0);
    }

    #[test]
    fn identical_singleton_explanations_have_zero_entropy() {
        let sets = vec![vec![5], vec![5], vec![5]];
        assert_eq!(consistency_entropy(&sets), 0.0);
    }

    #[test]
    fn identical_pair_explanations_have_entropy_one() {
        let sets = vec![vec![1, 2], vec![1, 2], vec![1, 2]];
        assert!((consistency_entropy(&sets) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_triple_explanations_hit_h3() {
        let sets = vec![vec![1, 2, 3], vec![1, 2, 3]];
        assert!((consistency_entropy(&sets) - good_consistency_bound()).abs() < 1e-12);
    }

    #[test]
    fn disagreement_raises_entropy() {
        let agree = vec![vec![1, 2], vec![1, 2]];
        let disagree = vec![vec![1, 2], vec![3, 4]];
        assert!(consistency_entropy(&disagree) > consistency_entropy(&agree));
    }

    #[test]
    fn partial_overlap_in_between() {
        let agree = vec![vec![1, 2], vec![1, 2]];
        let partial = vec![vec![1, 2], vec![1, 3]];
        let disjoint = vec![vec![1, 2], vec![3, 4]];
        let ha = consistency_entropy(&agree);
        let hp = consistency_entropy(&partial);
        let hd = consistency_entropy(&disjoint);
        assert!(ha < hp && hp < hd, "{ha} < {hp} < {hd} violated");
    }

    #[test]
    fn stability_and_concordance_are_consistency() {
        let sets = vec![vec![1], vec![2]];
        assert_eq!(stability(&sets), consistency_entropy(&sets));
        assert_eq!(concordance(&sets), consistency_entropy(&sets));
    }

    #[test]
    fn empty_sets_zero() {
        assert_eq!(consistency_entropy(&[]), 0.0);
        assert_eq!(consistency_entropy(&[vec![], vec![]]), 0.0);
    }
}
