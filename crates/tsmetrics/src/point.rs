//! Classical point-based precision, recall, and F-score.
//!
//! Used by the ED accuracy metric ("Exathlon evaluates the accuracy of
//! such explanations using point-based precision recall", §4.2) and as a
//! building block of the PR curves in [`crate::auprc`].

/// Confusion counts for binary predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl Confusion {
    /// Tally predictions against labels.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "prediction/label length mismatch");
        let mut c = Confusion::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// Precision `tp / (tp + fp)`; 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 1.0 when there was nothing to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Convenience: `(precision, recall, f1)` of binary predictions.
pub fn point_prf(predicted: &[bool], actual: &[bool]) -> (f64, f64, f64) {
    let c = Confusion::from_predictions(predicted, actual);
    (c.precision(), c.recall(), c.f1())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let labels = vec![true, false, true, false];
        let (p, r, f) = point_prf(&labels, &labels);
        assert_eq!((p, r, f), (1.0, 1.0, 1.0));
    }

    #[test]
    fn counts_are_correct() {
        let pred = vec![true, true, false, false];
        let act = vec![true, false, true, false];
        let c = Confusion::from_predictions(&pred, &act);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (1, 1, 1, 1));
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
    }

    #[test]
    fn empty_prediction_perfect_precision() {
        let c = Confusion::from_predictions(&[false, false], &[true, false]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn no_positives_at_all() {
        let c = Confusion::from_predictions(&[false, false], &[false, false]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = point_prf(&[true], &[true, false]);
    }
}
