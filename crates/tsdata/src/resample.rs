//! Cardinality-factor resampling.
//!
//! The benchmark's scalability knob `α = 1/l` (§4.3) reduces data size by
//! averaging the records of every `l`-second interval. The experimental
//! study uses `α = 1/15` so the deep models could finish training; the same
//! knob drives the P1/P2 performance experiments.

use crate::series::TimeSeries;

/// Average every `l` consecutive records into one. A trailing partial
/// interval is averaged over the records it contains. NaN values are
/// skipped in the average; an interval whose values for a feature are all
/// NaN yields NaN.
///
/// The result's `start_tick` is preserved; one output record stands for `l`
/// input ticks.
///
/// # Panics
/// Panics if `l == 0`.
pub fn resample_mean(ts: &TimeSeries, l: usize) -> TimeSeries {
    assert!(l > 0, "resample interval must be positive");
    if l == 1 {
        return ts.clone();
    }
    let n_out = ts.len().div_ceil(l);
    let mut values = Vec::with_capacity(n_out * ts.dims());
    resample_mean_into(ts, l, &mut |rec| values.extend_from_slice(rec));
    TimeSeries::from_flat(ts.names().to_vec(), ts.start_tick(), values)
}

/// Streaming form of [`resample_mean`]: feed each resampled record to
/// `sink` as it completes, without materializing an intermediate
/// [`TimeSeries`]. The fused transform chain stacks the dynamic scaler on
/// top of this so resample + scale make a single pass over the flat
/// buffer. Bitwise identical arithmetic to [`resample_mean`] — at `l == 1`
/// the raw records are streamed untouched (the averaging loop would
/// rewrite `-0.0` as `+0.0` via `0.0 + x`, where [`resample_mean`] clones).
///
/// # Panics
/// Panics if `l == 0`.
pub fn resample_mean_into(ts: &TimeSeries, l: usize, sink: &mut impl FnMut(&[f64])) {
    assert!(l > 0, "resample interval must be positive");
    if l == 1 {
        for record in ts.records() {
            sink(record);
        }
        return;
    }
    let m = ts.dims();
    let mut sums = vec![0.0; m];
    let mut counts = vec![0u32; m];
    let mut out = vec![0.0; m];
    for (i, record) in ts.records().enumerate() {
        for (j, &x) in record.iter().enumerate() {
            if !x.is_nan() {
                sums[j] += x;
                counts[j] += 1;
            }
        }
        let end_of_interval = (i + 1) % l == 0 || i + 1 == ts.len();
        if end_of_interval {
            for j in 0..m {
                out[j] = if counts[j] > 0 { sums[j] / counts[j] as f64 } else { f64::NAN };
                sums[j] = 0.0;
                counts[j] = 0;
            }
            sink(&out);
        }
    }
}

/// The cardinality factor `α = 1/l` for an interval length `l`.
pub fn cardinality_factor(l: usize) -> f64 {
    assert!(l > 0, "resample interval must be positive");
    1.0 / l as f64
}

/// Map a record index in the resampled series back to the tick range
/// `[start, end)` it covers in the original series.
pub fn resampled_index_to_ticks(
    ts_start: u64,
    idx: usize,
    l: usize,
    orig_len: usize,
) -> (u64, u64) {
    let start = idx * l;
    let end = (start + l).min(orig_len);
    (ts_start + start as u64, ts_start + end as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::default_names;

    fn series(values: &[f64]) -> TimeSeries {
        let records: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        TimeSeries::from_records(default_names(1), 50, &records)
    }

    #[test]
    fn resample_averages_intervals() {
        let ts = series(&[1.0, 3.0, 5.0, 7.0, 9.0, 11.0]);
        let r = resample_mean(&ts, 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.feature_column(0), vec![2.0, 6.0, 10.0]);
        assert_eq!(r.start_tick(), 50);
    }

    #[test]
    fn resample_partial_tail() {
        let ts = series(&[2.0, 4.0, 6.0, 8.0, 10.0]);
        let r = resample_mean(&ts, 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.feature_column(0), vec![3.0, 7.0, 10.0]);
    }

    #[test]
    fn resample_l1_is_identity() {
        let ts = series(&[1.0, 2.0, 3.0]);
        assert_eq!(resample_mean(&ts, 1), ts);
    }

    #[test]
    fn resample_skips_nan() {
        let ts = series(&[1.0, f64::NAN, f64::NAN, f64::NAN]);
        let r = resample_mean(&ts, 2);
        assert_eq!(r.value(0, 0), 1.0);
        assert!(r.value(1, 0).is_nan());
    }

    #[test]
    fn streaming_resample_matches_materialized() {
        let ts = TimeSeries::from_records(
            default_names(2),
            7,
            &[
                vec![1.0, -0.0],
                vec![f64::NAN, 2.0],
                vec![3.0, f64::NAN],
                vec![5.0, -4.0],
                vec![9.0, 0.5],
            ],
        );
        for l in [1, 2, 3, 5, 9] {
            let materialized = resample_mean(&ts, l);
            let mut streamed: Vec<f64> = Vec::new();
            resample_mean_into(&ts, l, &mut |r| streamed.extend_from_slice(r));
            let (_, _, flat) = materialized.to_flat();
            assert_eq!(flat.len(), streamed.len(), "l={l}");
            for (a, b) in flat.iter().zip(&streamed) {
                assert_eq!(a.to_bits(), b.to_bits(), "l={l}");
            }
        }
    }

    #[test]
    fn cardinality_factor_values() {
        assert!((cardinality_factor(15) - 1.0 / 15.0).abs() < 1e-15);
        assert_eq!(cardinality_factor(1), 1.0);
    }

    #[test]
    fn index_tick_mapping() {
        assert_eq!(resampled_index_to_ticks(100, 0, 15, 100), (100, 115));
        assert_eq!(resampled_index_to_ticks(100, 6, 15, 100), (190, 200));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        let _ = resample_mean(&series(&[1.0]), 0);
    }
}
