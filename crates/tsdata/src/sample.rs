//! Deterministic subsampling shared by the scorer pools, kNN/LOF
//! reference sets, and PCA row subsample.
//!
//! The pipeline repeatedly needs "at most `max` evenly spaced elements of
//! a slice". The obvious float-stride formula `(i as f64 * stride) as
//! usize` is an out-of-bounds panic waiting on rounding: nothing in the
//! cast guarantees the computed index stays below `len`. This module
//! centralizes the index computation with an explicit clamp so every call
//! site shares one proved-in-bounds implementation.

/// Indices of at most `max` evenly spaced elements of a `len`-element
/// slice, in increasing order of position formula (ties possible for tiny
/// `len`). Returns `0..len` when `len <= max`; never returns an index
/// `>= len`; always returns `min(len, max)` indices.
pub fn stride_indices(len: usize, max: usize) -> Vec<usize> {
    if len <= max {
        return (0..len).collect();
    }
    let stride = len as f64 / max as f64;
    (0..max).map(|i| (((i as f64) * stride) as usize).min(len - 1)).collect()
}

/// Clone at most `max` evenly spaced elements of `all` (order-preserving,
/// identity when `all.len() <= max`).
pub fn stride_subsample<T: Clone>(all: &[T], max: usize) -> Vec<T> {
    stride_indices(all.len(), max).into_iter().map(|i| all[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_when_small() {
        assert_eq!(stride_indices(5, 10), vec![0, 1, 2, 3, 4]);
        assert_eq!(stride_indices(10, 10), (0..10).collect::<Vec<_>>());
        assert!(stride_indices(0, 4).is_empty());
        let items = vec![1, 2, 3];
        assert_eq!(stride_subsample(&items, 8), items);
    }

    #[test]
    fn zero_max_yields_nothing() {
        assert!(stride_indices(100, 0).is_empty());
        assert!(stride_subsample(&[1, 2, 3], 0).is_empty());
    }

    #[test]
    fn subsample_is_evenly_spaced() {
        let all: Vec<usize> = (0..100).collect();
        let got = stride_subsample(&all, 4);
        assert_eq!(got, vec![0, 25, 50, 75]);
    }

    #[test]
    fn indices_always_in_bounds_and_counted() {
        // Adversarial sweep over the sizes where `stride * (max - 1)`
        // lands closest to `len`: every index must stay `< len` and the
        // count must be exactly `max` (the unclamped float formula has no
        // such guarantee — the clamp makes it unconditional).
        for len in 1..400usize {
            for max in 1..len {
                let idx = stride_indices(len, max);
                assert_eq!(idx.len(), max, "len={len} max={max}");
                assert!(idx.iter().all(|&i| i < len), "len={len} max={max} idx={idx:?}");
                assert!(idx.windows(2).all(|w| w[0] <= w[1]), "monotone len={len} max={max}");
            }
        }
        // Boundary at huge scale: stride * (max-1) is within one ulp of
        // len — only the clamp keeps the last index in bounds by
        // construction.
        let idx = stride_indices(usize::MAX >> 11, 1 << 20);
        assert_eq!(idx.len(), 1 << 20);
        assert!(idx.iter().all(|&i| i < usize::MAX >> 11));
    }

    #[test]
    fn matches_unclamped_formula_on_safe_sizes() {
        // The clamp must not change selection where the old formula was
        // already in bounds — goldens from fitted models stay bitwise
        // identical.
        for (len, max) in [(100, 7), (1500, 64), (901, 300), (4096, 1000)] {
            let stride = len as f64 / max as f64;
            let old: Vec<usize> = (0..max).map(|i| (i as f64 * stride) as usize).collect();
            assert_eq!(stride_indices(len, max), old, "len={len} max={max}");
        }
    }
}
