//! The core multivariate time-series frame.
//!
//! A [`TimeSeries`] models one *trace* of the Exathlon dataset: a sequence
//! of records sampled at 1 Hz, each record being a vector of named metric
//! values. Records are stored row-major (`record * n_features + feature`)
//! because every consumer — windowing, scaling, the neural networks —
//! iterates record-by-record.

use std::sync::Arc;

/// A multivariate time series: `len()` records of `dims()` features each.
///
/// Feature names are shared via `Arc` so that slicing a trace into windows
/// or sub-ranges never clones the (potentially 2,283-entry) name table.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    names: Arc<Vec<String>>,
    /// Tick of the first record (1 tick = 1 simulated second).
    start_tick: u64,
    /// Row-major values, `len * names.len()`.
    values: Vec<f64>,
}

impl TimeSeries {
    /// Create an empty series with the given feature names.
    pub fn empty(names: Vec<String>) -> Self {
        Self { names: Arc::new(names), start_tick: 0, values: Vec::new() }
    }

    /// Build a series from records. Every record must have the same length
    /// as `names`.
    ///
    /// # Panics
    /// Panics on ragged records.
    pub fn from_records(names: Vec<String>, start_tick: u64, records: &[Vec<f64>]) -> Self {
        let m = names.len();
        let mut values = Vec::with_capacity(records.len() * m);
        for r in records {
            assert_eq!(r.len(), m, "record length {} != feature count {}", r.len(), m);
            values.extend_from_slice(r);
        }
        Self { names: Arc::new(names), start_tick, values }
    }

    /// Build directly from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `values.len()` is not a multiple of `names.len()`.
    pub fn from_flat(names: Vec<String>, start_tick: u64, values: Vec<f64>) -> Self {
        let m = names.len();
        assert!(m > 0, "need at least one feature");
        assert_eq!(values.len() % m, 0, "flat buffer not a multiple of feature count");
        Self { names: Arc::new(names), start_tick, values }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        if self.names.is_empty() {
            0
        } else {
            self.values.len() / self.names.len()
        }
    }

    /// True if the series has no records.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of features per record.
    pub fn dims(&self) -> usize {
        self.names.len()
    }

    /// Feature names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Shared handle to the feature-name table.
    pub fn names_arc(&self) -> Arc<Vec<String>> {
        Arc::clone(&self.names)
    }

    /// Tick of the first record.
    pub fn start_tick(&self) -> u64 {
        self.start_tick
    }

    /// Tick of record `i`.
    pub fn tick_of(&self, i: usize) -> u64 {
        self.start_tick + i as u64
    }

    /// Record `i` as a slice.
    #[inline]
    pub fn record(&self, i: usize) -> &[f64] {
        let m = self.dims();
        &self.values[i * m..(i + 1) * m]
    }

    /// Mutable record `i`.
    #[inline]
    pub fn record_mut(&mut self, i: usize) -> &mut [f64] {
        let m = self.dims();
        &mut self.values[i * m..(i + 1) * m]
    }

    /// Iterate over records.
    pub fn records(&self) -> impl Iterator<Item = &[f64]> {
        self.values.chunks_exact(self.dims().max(1))
    }

    /// Records `[start, start + count)` as one contiguous row-major slice.
    ///
    /// Because storage is row-major, a stride-1 window of consecutive
    /// records is exactly one such slice — the zero-copy substrate of the
    /// window data plane ([`crate::window::WindowSet`]).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    #[inline]
    pub fn records_slice(&self, start: usize, count: usize) -> &[f64] {
        let m = self.dims();
        &self.values[start * m..(start + count) * m]
    }

    /// Append one record.
    ///
    /// # Panics
    /// Panics if the record length does not match the feature count.
    pub fn push(&mut self, record: &[f64]) {
        assert_eq!(record.len(), self.dims(), "push record length mismatch");
        self.values.extend_from_slice(record);
    }

    /// Value of feature `j` at record `i`.
    #[inline]
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.dims() + j]
    }

    /// Copy the full column for feature `j`.
    pub fn feature_column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.dims(), "feature index {j} out of bounds");
        self.records().map(|r| r[j]).collect()
    }

    /// Index of the feature with the given name, if present.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// A copy of records `[start, end)` keeping the same feature table.
    /// The slice's `start_tick` is adjusted accordingly.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > len()`.
    pub fn slice(&self, start: usize, end: usize) -> TimeSeries {
        assert!(start <= end && end <= self.len(), "slice [{start}, {end}) out of bounds");
        let m = self.dims();
        TimeSeries {
            names: Arc::clone(&self.names),
            start_tick: self.start_tick + start as u64,
            values: self.values[start * m..end * m].to_vec(),
        }
    }

    /// Project onto a subset of features (by index), producing a new series.
    pub fn select_features(&self, indices: &[usize]) -> TimeSeries {
        let names: Vec<String> = indices.iter().map(|&j| self.names[j].clone()).collect();
        let mut values = Vec::with_capacity(self.len() * indices.len());
        for r in self.records() {
            for &j in indices {
                values.push(r[j]);
            }
        }
        TimeSeries { names: Arc::new(names), start_tick: self.start_tick, values }
    }

    /// Concatenate another series with the same feature table after this
    /// one. The other series' ticks are ignored; records are appended
    /// contiguously.
    ///
    /// # Panics
    /// Panics if the feature counts differ.
    pub fn append(&mut self, other: &TimeSeries) {
        assert_eq!(self.dims(), other.dims(), "append feature mismatch");
        self.values.extend_from_slice(&other.values);
    }

    /// Bit-level equality that treats NaN as equal to NaN — the natural
    /// notion of "same data" for traces whose inactive-executor slots are
    /// recorded as NaN. Derived `PartialEq` follows IEEE semantics
    /// (`NaN != NaN`) and so reports two identical traces as different.
    pub fn same_data(&self, other: &TimeSeries) -> bool {
        self.names == other.names
            && self.start_tick == other.start_tick
            && self.values.len() == other.values.len()
            && self.values.iter().zip(&other.values).all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Convert to an `exathlon_linalg::Matrix`-compatible row-major buffer
    /// (records x features). Exposed as a plain tuple to keep this crate
    /// dependency-free.
    pub fn to_flat(&self) -> (usize, usize, &[f64]) {
        (self.len(), self.dims(), &self.values)
    }
}

/// Default feature names `f0..f{m-1}` for synthetic series in tests.
pub fn default_names(m: usize) -> Vec<String> {
    (0..m).map(|j| format!("f{j}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeSeries {
        TimeSeries::from_records(
            default_names(3),
            100,
            &[
                vec![1.0, 2.0, 3.0],
                vec![4.0, 5.0, 6.0],
                vec![7.0, 8.0, 9.0],
                vec![10.0, 11.0, 12.0],
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let ts = sample();
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.dims(), 3);
        assert_eq!(ts.record(1), &[4.0, 5.0, 6.0]);
        assert_eq!(ts.value(2, 1), 8.0);
        assert_eq!(ts.tick_of(2), 102);
        assert!(!ts.is_empty());
    }

    #[test]
    fn feature_lookup() {
        let ts = sample();
        assert_eq!(ts.feature_index("f1"), Some(1));
        assert_eq!(ts.feature_index("nope"), None);
        assert_eq!(ts.feature_column(2), vec![3.0, 6.0, 9.0, 12.0]);
    }

    #[test]
    fn slice_adjusts_ticks() {
        let ts = sample();
        let s = ts.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.start_tick(), 101);
        assert_eq!(s.record(0), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_shares_names() {
        let ts = sample();
        let s = ts.slice(0, 2);
        assert!(Arc::ptr_eq(&ts.names_arc(), &s.names_arc()));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let _ = sample().slice(2, 5);
    }

    #[test]
    fn select_features_projects() {
        let ts = sample();
        let p = ts.select_features(&[2, 0]);
        assert_eq!(p.dims(), 2);
        assert_eq!(p.names(), &["f2".to_string(), "f0".to_string()]);
        assert_eq!(p.record(1), &[6.0, 4.0]);
    }

    #[test]
    fn push_and_append() {
        let mut ts = sample();
        ts.push(&[13.0, 14.0, 15.0]);
        assert_eq!(ts.len(), 5);
        let other = ts.slice(0, 2);
        ts.append(&other);
        assert_eq!(ts.len(), 7);
        assert_eq!(ts.record(5), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "record length")]
    fn ragged_push_panics() {
        sample().push(&[1.0]);
    }

    #[test]
    fn records_slice_is_contiguous() {
        let ts = sample();
        assert_eq!(ts.records_slice(1, 2), &[4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        assert_eq!(ts.records_slice(0, 0), &[] as &[f64]);
        assert_eq!(ts.records_slice(0, 4).len(), 12);
    }

    #[test]
    #[should_panic]
    fn records_slice_out_of_bounds_panics() {
        let _ = sample().records_slice(2, 3);
    }

    #[test]
    fn from_flat_roundtrip() {
        let ts = sample();
        let (n, m, flat) = ts.to_flat();
        let back = TimeSeries::from_flat(default_names(m), ts.start_tick(), flat.to_vec());
        assert_eq!(back.len(), n);
        assert_eq!(back, ts);
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::empty(default_names(4));
        assert!(ts.is_empty());
        assert_eq!(ts.len(), 0);
        assert_eq!(ts.dims(), 4);
    }
}
