//! Record-level transformations: missing-value cleaning and first-order
//! differencing.
//!
//! The paper's Data Partitioning phase performs "simple data cleaning, e.g.,
//! replacing missing data with a default value" (§5 step 1); its curated
//! 19-feature set uses first-order differences (`f_t := f_{t+1} - f_t`) of
//! cumulative counters such as total processed records (Appendix D.1).

use crate::series::TimeSeries;

/// Replace NaN values with `default` (the paper's "replace missing data
/// with a default value" cleaning step).
pub fn fill_missing(ts: &TimeSeries, default: f64) -> TimeSeries {
    let (_, _, flat) = ts.to_flat();
    let values = flat.iter().map(|&x| if x.is_nan() { default } else { x }).collect();
    TimeSeries::from_flat(ts.names().to_vec(), ts.start_tick(), values)
}

/// Replace NaN values in-place by carrying the last finite observation
/// forward (records before the first finite observation get `0.0`). Applied
/// per feature.
pub fn fill_forward(ts: &TimeSeries) -> TimeSeries {
    let m = ts.dims();
    let mut out = ts.clone();
    let mut last = vec![0.0; m];
    for i in 0..out.len() {
        let rec = out.record_mut(i);
        for (x, l) in rec.iter_mut().zip(last.iter_mut()) {
            if x.is_nan() {
                *x = *l;
            } else {
                *l = *x;
            }
        }
    }
    out
}

/// First-order difference of selected features: output record `i` holds
/// `x[i+1][j] - x[i][j]` for differenced features `j` and `x[i+1][j]`
/// unchanged for the others. The output has `len.saturating_sub(1)`
/// records; names of differenced features gain the paper's `1_diff_`
/// prefix. A series with fewer than 2 records has no differences and
/// yields an empty series (same renamed features, `start_tick + 1`)
/// instead of underflowing `len - 1`.
///
/// # Panics
/// Panics if a feature index is out of bounds.
pub fn difference_features(ts: &TimeSeries, diff_indices: &[usize]) -> TimeSeries {
    let m = ts.dims();
    for &j in diff_indices {
        assert!(j < m, "feature index {j} out of bounds");
    }
    let is_diff: Vec<bool> = {
        let mut v = vec![false; m];
        for &j in diff_indices {
            v[j] = true;
        }
        v
    };
    let names: Vec<String> = ts
        .names()
        .iter()
        .enumerate()
        .map(|(j, n)| if is_diff[j] { format!("1_diff_{n}") } else { n.clone() })
        .collect();
    if ts.len() < 2 {
        return TimeSeries::from_flat(names, ts.start_tick() + 1, Vec::new());
    }
    let mut values = Vec::with_capacity((ts.len() - 1) * m);
    for i in 0..ts.len() - 1 {
        let cur = ts.record(i);
        let next = ts.record(i + 1);
        for j in 0..m {
            values.push(if is_diff[j] { next[j] - cur[j] } else { next[j] });
        }
    }
    TimeSeries::from_flat(names, ts.start_tick() + 1, values)
}

/// Average a group of feature columns into one new column, appended to the
/// series under `name`. This is how the custom feature set averages metrics
/// "across active Spark executors" (Appendix D.1): NaN values (inactive
/// executor slots) are excluded from the average.
pub fn average_features(ts: &TimeSeries, indices: &[usize], name: &str) -> TimeSeries {
    assert!(!indices.is_empty(), "cannot average an empty feature group");
    let mut names = ts.names().to_vec();
    names.push(name.to_string());
    let m = ts.dims();
    let mut values = Vec::with_capacity(ts.len() * (m + 1));
    for r in ts.records() {
        values.extend_from_slice(r);
        let mut sum = 0.0;
        let mut n = 0usize;
        for &j in indices {
            let x = r[j];
            if !x.is_nan() {
                sum += x;
                n += 1;
            }
        }
        values.push(if n > 0 { sum / n as f64 } else { f64::NAN });
    }
    TimeSeries::from_flat(names, ts.start_tick(), values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::default_names;

    #[test]
    fn fill_missing_replaces_nan() {
        let ts = TimeSeries::from_records(
            default_names(2),
            0,
            &[vec![1.0, f64::NAN], vec![f64::NAN, 2.0]],
        );
        let f = fill_missing(&ts, 0.0);
        assert_eq!(f.record(0), &[1.0, 0.0]);
        assert_eq!(f.record(1), &[0.0, 2.0]);
    }

    #[test]
    fn fill_forward_carries_last() {
        let ts = TimeSeries::from_records(
            default_names(1),
            0,
            &[vec![f64::NAN], vec![5.0], vec![f64::NAN], vec![7.0]],
        );
        let f = fill_forward(&ts);
        assert_eq!(f.feature_column(0), vec![0.0, 5.0, 5.0, 7.0]);
    }

    #[test]
    fn difference_selected_only() {
        let ts = TimeSeries::from_records(
            default_names(2),
            10,
            &[vec![1.0, 100.0], vec![3.0, 120.0], vec![6.0, 110.0]],
        );
        let d = difference_features(&ts, &[0]);
        assert_eq!(d.len(), 2);
        // f0 differenced, f1 passthrough of the *next* record.
        assert_eq!(d.record(0), &[2.0, 120.0]);
        assert_eq!(d.record(1), &[3.0, 110.0]);
        assert_eq!(d.names()[0], "1_diff_f0");
        assert_eq!(d.names()[1], "f1");
        assert_eq!(d.start_tick(), 11);
    }

    #[test]
    fn difference_single_record_is_empty() {
        // Regression: this used to assert (debug) / compute `0 - 1`
        // capacity (release) instead of degrading to an empty series.
        let ts = TimeSeries::from_records(default_names(1), 5, &[vec![1.0]]);
        let d = difference_features(&ts, &[0]);
        assert_eq!(d.len(), 0);
        assert_eq!(d.names(), &["1_diff_f0".to_string()]);
        assert_eq!(d.start_tick(), 6);
    }

    #[test]
    fn difference_empty_series_is_empty() {
        let ts = TimeSeries::from_records(default_names(2), 0, &[]);
        let d = difference_features(&ts, &[1]);
        assert_eq!(d.len(), 0);
        assert_eq!(d.names(), &["f0".to_string(), "1_diff_f1".to_string()]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn difference_bad_index_panics() {
        let ts = TimeSeries::from_records(default_names(1), 0, &[vec![1.0], vec![2.0]]);
        let _ = difference_features(&ts, &[3]);
    }

    #[test]
    fn average_features_skips_nan() {
        let ts = TimeSeries::from_records(
            default_names(3),
            0,
            &[vec![1.0, 3.0, f64::NAN], vec![2.0, f64::NAN, f64::NAN]],
        );
        let a = average_features(&ts, &[0, 1, 2], "avg");
        assert_eq!(a.dims(), 4);
        assert_eq!(a.value(0, 3), 2.0);
        assert_eq!(a.value(1, 3), 2.0);
        assert_eq!(a.names()[3], "avg");
    }

    #[test]
    fn average_all_nan_yields_nan() {
        let ts = TimeSeries::from_records(default_names(2), 0, &[vec![f64::NAN, f64::NAN]]);
        let a = average_features(&ts, &[0, 1], "avg");
        assert!(a.value(0, 2).is_nan());
    }
}
