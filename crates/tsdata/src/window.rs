//! Sliding-window extraction.
//!
//! Window-based AD models (the autoencoder and BiGAN) consume fixed-size
//! windows of consecutive records, flattened to a single vector; the LSTM
//! forecaster consumes a window of inputs plus the next record as the
//! forecast target. The paper's outlier-score derivation (§5 step 3.ii)
//! averages window scores back onto the records the window encloses —
//! [`record_scores_from_windows`] implements exactly that.

use crate::series::TimeSeries;

/// Iterator-free enumeration of the `[start, start + size)` record windows
/// of a series with the given stride. Returns the start indices.
pub fn window_starts(len: usize, size: usize, stride: usize) -> Vec<usize> {
    assert!(size > 0 && stride > 0, "window size and stride must be positive");
    if len < size {
        return Vec::new();
    }
    (0..=(len - size)).step_by(stride).collect()
}

/// Flatten the window starting at `start` into a single vector
/// (record-major: all features of record `start`, then `start+1`, ...).
pub fn flatten_window(ts: &TimeSeries, start: usize, size: usize) -> Vec<f64> {
    let m = ts.dims();
    let mut out = Vec::with_capacity(size * m);
    for i in start..start + size {
        out.extend_from_slice(ts.record(i));
    }
    out
}

/// Extract all flattened windows of `size` records with the given stride.
pub fn flattened_windows(ts: &TimeSeries, size: usize, stride: usize) -> Vec<Vec<f64>> {
    window_starts(ts.len(), size, stride).into_iter().map(|s| flatten_window(ts, s, size)).collect()
}

/// Extract `(input_window, target_record)` pairs for a one-step forecaster:
/// the input is the flattened window `[i, i + size)` and the target is
/// record `i + size`.
pub fn forecast_pairs(ts: &TimeSeries, size: usize, stride: usize) -> Vec<(Vec<f64>, Vec<f64>)> {
    assert!(size > 0 && stride > 0, "window size and stride must be positive");
    if ts.len() <= size {
        return Vec::new();
    }
    (0..ts.len() - size)
        .step_by(stride)
        .map(|i| (flatten_window(ts, i, size), ts.record(i + size).to_vec()))
        .collect()
}

/// Convert per-window scores back to per-record scores by averaging the
/// scores of every window that encloses the record (§5 step 3.ii: "derive
/// the v score of each data point by averaging the scores of its enclosed
/// sliding windows").
///
/// `window_starts` and `scores` must be parallel. Records enclosed by no
/// window (possible with stride > 1 near the end) inherit the score of the
/// nearest scored record.
pub fn record_scores_from_windows(
    len: usize,
    size: usize,
    window_starts: &[usize],
    scores: &[f64],
) -> Vec<f64> {
    assert_eq!(window_starts.len(), scores.len(), "starts/scores length mismatch");
    let mut sums = vec![0.0; len];
    let mut counts = vec![0u32; len];
    for (&start, &score) in window_starts.iter().zip(scores) {
        for i in start..(start + size).min(len) {
            sums[i] += score;
            counts[i] += 1;
        }
    }
    let mut out = vec![f64::NAN; len];
    for ((o, &sum), &count) in out.iter_mut().zip(&sums).zip(&counts) {
        if count > 0 {
            *o = sum / count as f64;
        }
    }
    // Fill any uncovered records from the nearest covered neighbour.
    let mut last = None;
    for o in out.iter_mut() {
        if o.is_nan() {
            if let Some(v) = last {
                *o = v;
            }
        } else {
            last = Some(*o);
        }
    }
    let mut next = None;
    for o in out.iter_mut().rev() {
        if o.is_nan() {
            *o = next.unwrap_or(0.0);
        } else {
            next = Some(*o);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::default_names;

    fn counting_series(n: usize, m: usize) -> TimeSeries {
        let records: Vec<Vec<f64>> =
            (0..n).map(|i| (0..m).map(|j| (i * m + j) as f64).collect()).collect();
        TimeSeries::from_records(default_names(m), 0, &records)
    }

    #[test]
    fn window_starts_basic() {
        assert_eq!(window_starts(10, 4, 1), vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(window_starts(10, 4, 3), vec![0, 3, 6]);
        assert_eq!(window_starts(3, 4, 1), Vec::<usize>::new());
        assert_eq!(window_starts(4, 4, 1), vec![0]);
    }

    #[test]
    fn flatten_window_order() {
        let ts = counting_series(5, 2);
        assert_eq!(flatten_window(&ts, 1, 2), vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn flattened_windows_count() {
        let ts = counting_series(6, 2);
        let ws = flattened_windows(&ts, 3, 1);
        assert_eq!(ws.len(), 4);
        assert_eq!(ws[0].len(), 6);
    }

    #[test]
    fn forecast_pairs_target_is_next_record() {
        let ts = counting_series(5, 2);
        let pairs = forecast_pairs(&ts, 2, 1);
        assert_eq!(pairs.len(), 3);
        let (input, target) = &pairs[0];
        assert_eq!(input, &vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(target, &vec![4.0, 5.0]);
    }

    #[test]
    fn forecast_pairs_too_short() {
        let ts = counting_series(3, 1);
        assert!(forecast_pairs(&ts, 3, 1).is_empty());
    }

    #[test]
    fn record_scores_average_overlaps() {
        // len 4, size 2, windows at 0,1,2 with scores 1, 3, 5.
        // record 0: [1] -> 1; record 1: [1,3] -> 2; record 2: [3,5] -> 4;
        // record 3: [5] -> 5.
        let out = record_scores_from_windows(4, 2, &[0, 1, 2], &[1.0, 3.0, 5.0]);
        assert_eq!(out, vec![1.0, 2.0, 4.0, 5.0]);
    }

    #[test]
    fn record_scores_fill_uncovered_tail() {
        // len 5, size 2, stride 2 windows at 0, 2 -> record 4 uncovered.
        let out = record_scores_from_windows(5, 2, &[0, 2], &[1.0, 2.0]);
        assert_eq!(out[4], 2.0);
    }

    #[test]
    fn record_scores_fill_uncovered_head() {
        let out = record_scores_from_windows(3, 1, &[2], &[7.0]);
        assert_eq!(out, vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn record_scores_empty_windows() {
        let out = record_scores_from_windows(3, 2, &[], &[]);
        assert_eq!(out, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_stride_panics() {
        let _ = window_starts(10, 2, 0);
    }
}
