//! Sliding-window extraction.
//!
//! Window-based AD models (the autoencoder and BiGAN) consume fixed-size
//! windows of consecutive records, flattened to a single vector; the LSTM
//! forecaster consumes a window of inputs plus the next record as the
//! forecast target. The paper's outlier-score derivation (§5 step 3.ii)
//! averages window scores back onto the records the window encloses —
//! [`record_scores_from_windows`] implements exactly that.

use crate::sample::stride_indices;
use crate::series::TimeSeries;

/// Environment variable selecting the pre-dataplane materialized-window
/// path (`EXATHLON_MATERIALIZED_WINDOWS=1`): every stride-1 window is
/// copied into an owned row before batching, exactly as before the
/// zero-copy data plane. Kept as an escape hatch and for the e2e
/// equivalence test (`tests/dataplane_equivalence.rs`).
pub const MATERIALIZED_WINDOWS_ENV: &str = "EXATHLON_MATERIALIZED_WINDOWS";

/// True when the materialized-window escape hatch is requested. Re-read
/// from the environment on every call (like the naive-kernel toggle) so
/// tests can flip it at runtime.
pub fn materialized_windows_mode() -> bool {
    std::env::var(MATERIALIZED_WINDOWS_ENV).map(|v| v.trim() == "1").unwrap_or(false)
}

/// A set of fixed-size windows as `(trace, start)` views over the
/// contiguous row-major buffers of one or more [`TimeSeries`] — no
/// per-window allocation. A stride-1 window of `size` consecutive records
/// is one contiguous slice of the underlying buffer
/// ([`TimeSeries::records_slice`]), so batch assembly needs exactly one
/// `copy_from_slice` per window. Subsampling selects entries, not rows.
#[derive(Debug, Clone)]
pub struct WindowSet<'a> {
    traces: Vec<&'a TimeSeries>,
    /// `(trace index, start record)` per window, in enumeration order.
    entries: Vec<(u32, u32)>,
    size: usize,
    dims: usize,
    /// True when built by [`WindowSet::forecast_pooled`]: every window has
    /// a one-step forecast target at `start + size`.
    forecast: bool,
}

impl<'a> WindowSet<'a> {
    fn build(
        traces: &[&'a TimeSeries],
        size: usize,
        forecast: bool,
        mut starts_of: impl FnMut(usize) -> Vec<usize>,
    ) -> Self {
        assert!(size > 0, "window size and stride must be positive");
        let dims = traces.first().map(|ts| ts.dims()).unwrap_or(0);
        let kept: Vec<&TimeSeries> = traces.to_vec();
        let mut entries = Vec::new();
        for (t, ts) in kept.iter().enumerate() {
            assert_eq!(ts.dims(), dims, "window set feature mismatch");
            let t32 = u32::try_from(t).expect("too many traces for a window set");
            for s in starts_of(ts.len()) {
                entries.push((t32, u32::try_from(s).expect("trace too long for a window set")));
            }
        }
        Self { traces: kept, entries, size, dims, forecast }
    }

    /// All `[start, start + size)` windows of one series with the given
    /// stride, in start order. View-equivalent of [`flattened_windows`].
    pub fn from_series(ts: &'a TimeSeries, size: usize, stride: usize) -> Self {
        Self::build(&[ts], size, false, |len| window_starts(len, size, stride))
    }

    /// All stride-1 windows of every trace long enough to hold one,
    /// pooled in trace order. Traces shorter than `size` are skipped.
    pub fn pooled(traces: &[&'a TimeSeries], size: usize) -> Self {
        Self::build(traces, size, false, |len| {
            if len < size {
                Vec::new()
            } else {
                window_starts(len, size, 1)
            }
        })
    }

    /// All stride-1 forecast windows of every trace: starts `0..len-size`,
    /// each paired with the target record at `start + size`. Traces with
    /// no complete `(window, target)` pair are skipped. View-equivalent of
    /// [`forecast_pairs`] with stride 1.
    pub fn forecast_pooled(traces: &[&'a TimeSeries], size: usize) -> Self {
        Self::build(traces, size, true, |len| {
            if len <= size {
                Vec::new()
            } else {
                (0..len - size).collect()
            }
        })
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the set holds no windows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records per window.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Features per record.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Length of one flattened window (`size * dims`).
    pub fn flat_len(&self) -> usize {
        self.size * self.dims
    }

    /// Window `i` as one contiguous record-major slice — bitwise identical
    /// to [`flatten_window`] of the same range, with zero copies.
    #[inline]
    pub fn window(&self, i: usize) -> &'a [f64] {
        let (t, s) = self.entries[i];
        self.traces[t as usize].records_slice(s as usize, self.size)
    }

    /// Forecast target of window `i`: the record right after the window.
    ///
    /// # Panics
    /// Panics unless the set was built by [`WindowSet::forecast_pooled`].
    #[inline]
    pub fn target(&self, i: usize) -> &'a [f64] {
        assert!(self.forecast, "window set has no forecast targets");
        let (t, s) = self.entries[i];
        self.traces[t as usize].record(s as usize + self.size)
    }

    /// Start record of window `i` within its trace.
    pub fn start(&self, i: usize) -> usize {
        self.entries[i].1 as usize
    }

    /// Start indices of every window, in order (meaningful for
    /// single-trace sets, where they feed [`record_scores_from_windows`]).
    pub fn starts(&self) -> Vec<usize> {
        self.entries.iter().map(|&(_, s)| s as usize).collect()
    }

    /// Keep exactly the windows at `indices`, in that order. Indices may
    /// repeat.
    pub fn select(&mut self, indices: &[usize]) {
        self.entries = indices.iter().map(|&i| self.entries[i]).collect();
    }

    /// Evenly subsample down to at most `max` windows — the same
    /// stride-selection rule as [`crate::sample::stride_subsample`], but
    /// over `(trace, start)` entries instead of owned rows.
    pub fn subsample(&mut self, max: usize) {
        if self.entries.len() > max {
            let picks = stride_indices(self.entries.len(), max);
            self.select(&picks);
        }
    }

    /// Materialize every window as an owned flattened row (the
    /// pre-dataplane representation; used by the escape-hatch path).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.len()).map(|i| self.window(i).to_vec()).collect()
    }
}

/// Iterator-free enumeration of the `[start, start + size)` record windows
/// of a series with the given stride. Returns the start indices.
pub fn window_starts(len: usize, size: usize, stride: usize) -> Vec<usize> {
    assert!(size > 0 && stride > 0, "window size and stride must be positive");
    if len < size {
        return Vec::new();
    }
    (0..=(len - size)).step_by(stride).collect()
}

/// Flatten the window starting at `start` into a single vector
/// (record-major: all features of record `start`, then `start+1`, ...).
pub fn flatten_window(ts: &TimeSeries, start: usize, size: usize) -> Vec<f64> {
    let m = ts.dims();
    let mut out = Vec::with_capacity(size * m);
    for i in start..start + size {
        out.extend_from_slice(ts.record(i));
    }
    out
}

/// Extract all flattened windows of `size` records with the given stride.
pub fn flattened_windows(ts: &TimeSeries, size: usize, stride: usize) -> Vec<Vec<f64>> {
    window_starts(ts.len(), size, stride).into_iter().map(|s| flatten_window(ts, s, size)).collect()
}

/// Extract `(input_window, target_record)` pairs for a one-step forecaster:
/// the input is the flattened window `[i, i + size)` and the target is
/// record `i + size`.
pub fn forecast_pairs(ts: &TimeSeries, size: usize, stride: usize) -> Vec<(Vec<f64>, Vec<f64>)> {
    assert!(size > 0 && stride > 0, "window size and stride must be positive");
    if ts.len() <= size {
        return Vec::new();
    }
    (0..ts.len() - size)
        .step_by(stride)
        .map(|i| (flatten_window(ts, i, size), ts.record(i + size).to_vec()))
        .collect()
}

/// Convert per-window scores back to per-record scores by averaging the
/// scores of every window that encloses the record (§5 step 3.ii: "derive
/// the v score of each data point by averaging the scores of its enclosed
/// sliding windows").
///
/// `window_starts` and `scores` must be parallel. Records enclosed by no
/// window (possible with stride > 1 near the end) inherit the score of the
/// nearest scored record.
pub fn record_scores_from_windows(
    len: usize,
    size: usize,
    window_starts: &[usize],
    scores: &[f64],
) -> Vec<f64> {
    assert_eq!(window_starts.len(), scores.len(), "starts/scores length mismatch");
    // Difference arrays + prefix sums: O(windows + len) instead of the
    // O(windows * size) inner loop. Counts are integers, so they are exact;
    // the running score sum reassociates the per-record additions, which is
    // not bitwise identical to the old inner loop in general — the proptest
    // in `tests/proptests.rs` pins it to the naive accumulation within
    // tolerance, and both data-plane modes share this one implementation.
    let mut sum_diff = vec![0.0; len + 1];
    let mut count_diff = vec![0i64; len + 1];
    for (&start, &score) in window_starts.iter().zip(scores) {
        let end = (start + size).min(len);
        if start >= end {
            continue;
        }
        sum_diff[start] += score;
        sum_diff[end] -= score;
        count_diff[start] += 1;
        count_diff[end] -= 1;
    }
    let mut out = vec![f64::NAN; len];
    let mut sum = 0.0;
    let mut count = 0i64;
    for (o, (&ds, &dc)) in out.iter_mut().zip(sum_diff.iter().zip(&count_diff)) {
        sum += ds;
        count += dc;
        if count > 0 {
            *o = sum / count as f64;
        }
    }
    // Fill any uncovered records from the nearest covered neighbour.
    let mut last = None;
    for o in out.iter_mut() {
        if o.is_nan() {
            if let Some(v) = last {
                *o = v;
            }
        } else {
            last = Some(*o);
        }
    }
    let mut next = None;
    for o in out.iter_mut().rev() {
        if o.is_nan() {
            *o = next.unwrap_or(0.0);
        } else {
            next = Some(*o);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::default_names;

    fn counting_series(n: usize, m: usize) -> TimeSeries {
        let records: Vec<Vec<f64>> =
            (0..n).map(|i| (0..m).map(|j| (i * m + j) as f64).collect()).collect();
        TimeSeries::from_records(default_names(m), 0, &records)
    }

    #[test]
    fn window_starts_basic() {
        assert_eq!(window_starts(10, 4, 1), vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(window_starts(10, 4, 3), vec![0, 3, 6]);
        assert_eq!(window_starts(3, 4, 1), Vec::<usize>::new());
        assert_eq!(window_starts(4, 4, 1), vec![0]);
    }

    #[test]
    fn flatten_window_order() {
        let ts = counting_series(5, 2);
        assert_eq!(flatten_window(&ts, 1, 2), vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn flattened_windows_count() {
        let ts = counting_series(6, 2);
        let ws = flattened_windows(&ts, 3, 1);
        assert_eq!(ws.len(), 4);
        assert_eq!(ws[0].len(), 6);
    }

    #[test]
    fn forecast_pairs_target_is_next_record() {
        let ts = counting_series(5, 2);
        let pairs = forecast_pairs(&ts, 2, 1);
        assert_eq!(pairs.len(), 3);
        let (input, target) = &pairs[0];
        assert_eq!(input, &vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(target, &vec![4.0, 5.0]);
    }

    #[test]
    fn forecast_pairs_too_short() {
        let ts = counting_series(3, 1);
        assert!(forecast_pairs(&ts, 3, 1).is_empty());
    }

    #[test]
    fn record_scores_average_overlaps() {
        // len 4, size 2, windows at 0,1,2 with scores 1, 3, 5.
        // record 0: [1] -> 1; record 1: [1,3] -> 2; record 2: [3,5] -> 4;
        // record 3: [5] -> 5.
        let out = record_scores_from_windows(4, 2, &[0, 1, 2], &[1.0, 3.0, 5.0]);
        assert_eq!(out, vec![1.0, 2.0, 4.0, 5.0]);
    }

    #[test]
    fn record_scores_fill_uncovered_tail() {
        // len 5, size 2, stride 2 windows at 0, 2 -> record 4 uncovered.
        let out = record_scores_from_windows(5, 2, &[0, 2], &[1.0, 2.0]);
        assert_eq!(out[4], 2.0);
    }

    #[test]
    fn record_scores_fill_uncovered_head() {
        let out = record_scores_from_windows(3, 1, &[2], &[7.0]);
        assert_eq!(out, vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn record_scores_empty_windows() {
        let out = record_scores_from_windows(3, 2, &[], &[]);
        assert_eq!(out, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_stride_panics() {
        let _ = window_starts(10, 2, 0);
    }

    #[test]
    fn window_set_matches_flattened_windows() {
        let ts = counting_series(7, 2);
        let ws = WindowSet::from_series(&ts, 3, 2);
        let owned = flattened_windows(&ts, 3, 2);
        assert_eq!(ws.len(), owned.len());
        assert_eq!(ws.flat_len(), 6);
        for (i, row) in owned.iter().enumerate() {
            assert_eq!(ws.window(i), &row[..]);
        }
        assert_eq!(ws.to_rows(), owned);
        assert_eq!(ws.starts(), window_starts(7, 3, 2));
    }

    #[test]
    fn window_set_pools_and_skips_short_traces() {
        let a = counting_series(6, 2);
        let b = counting_series(3, 2);
        let ws = WindowSet::pooled(&[&a, &b], 5);
        // Only `a` holds a 5-record window: starts 0 and 1.
        assert_eq!(ws.len(), 2);
        assert_eq!(ws.window(0), &flatten_window(&a, 0, 5)[..]);
        assert_eq!(ws.window(1), &flatten_window(&a, 1, 5)[..]);
    }

    #[test]
    fn window_set_subsample_matches_stride_subsample() {
        let ts = counting_series(40, 1);
        let mut ws = WindowSet::from_series(&ts, 4, 1);
        ws.subsample(10);
        let owned = crate::sample::stride_subsample(&flattened_windows(&ts, 4, 1), 10);
        assert_eq!(ws.len(), owned.len());
        for (i, row) in owned.iter().enumerate() {
            assert_eq!(ws.window(i), &row[..]);
        }
    }

    #[test]
    fn window_set_forecast_targets() {
        let ts = counting_series(5, 2);
        let ws = WindowSet::forecast_pooled(&[&ts], 2);
        let pairs = forecast_pairs(&ts, 2, 1);
        assert_eq!(ws.len(), pairs.len());
        for (i, (input, target)) in pairs.iter().enumerate() {
            assert_eq!(ws.window(i), &input[..]);
            assert_eq!(ws.target(i), &target[..]);
        }
    }

    #[test]
    #[should_panic(expected = "no forecast targets")]
    fn non_forecast_target_panics() {
        let ts = counting_series(5, 2);
        let ws = WindowSet::from_series(&ts, 2, 1);
        let _ = ws.target(0);
    }

    #[test]
    fn window_set_select_reorders() {
        let ts = counting_series(6, 1);
        let mut ws = WindowSet::from_series(&ts, 2, 1);
        ws.select(&[3, 0]);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws.window(0), &[3.0, 4.0]);
        assert_eq!(ws.window(1), &[0.0, 1.0]);
    }
}
