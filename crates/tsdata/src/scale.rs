//! Feature rescaling.
//!
//! "Most ML algorithms require the features to be scaled into a range"
//! (§5 step 2.iii). The pipeline provides:
//!
//! * [`MinMaxScaler`] — maps each feature into `[0, 1]` using the training
//!   range,
//! * [`StandardScaler`] — zero mean / unit variance using training moments,
//! * [`DynamicScaler`] — the paper's customized method that "rescales test
//!   data dynamically as we run an AD model over the data", because each
//!   test trace may represent an unseen (input-rate, concurrency) context.
//!   It keeps exponentially-weighted running estimates of per-feature center
//!   and spread, seeded from the training statistics.

use crate::series::TimeSeries;

/// Spread values below this are treated as constant features and mapped
/// to zero deviation instead of exploding.
const MIN_SPREAD: f64 = 1e-12;

/// A fitted per-feature affine scaler `x -> (x - center) / spread`.
trait AffineScale {
    fn center(&self) -> &[f64];
    fn spread(&self) -> &[f64];

    fn transform_record_into(&self, record: &[f64], out: &mut Vec<f64>) {
        for ((&x, &c), &s) in record.iter().zip(self.center()).zip(self.spread()) {
            if x.is_nan() {
                out.push(0.0);
            } else if s > MIN_SPREAD {
                out.push((x - c) / s);
            } else {
                out.push(0.0);
            }
        }
    }
}

fn transform_series<S: AffineScale>(scaler: &S, ts: &TimeSeries) -> TimeSeries {
    let mut values = Vec::with_capacity(ts.len() * ts.dims());
    for r in ts.records() {
        scaler.transform_record_into(r, &mut values);
    }
    TimeSeries::from_flat(ts.names().to_vec(), ts.start_tick(), values)
}

/// Min-max scaler: `(x - min) / (max - min)`, clamping is left to callers.
#[derive(Debug, Clone)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Fit on training data: per-feature min and range over finite values.
    pub fn fit(train: &TimeSeries) -> Self {
        let m = train.dims();
        let mut mins = vec![f64::INFINITY; m];
        let mut maxs = vec![f64::NEG_INFINITY; m];
        for r in train.records() {
            for j in 0..m {
                let x = r[j];
                if !x.is_nan() {
                    mins[j] = mins[j].min(x);
                    maxs[j] = maxs[j].max(x);
                }
            }
        }
        for j in 0..m {
            if !mins[j].is_finite() {
                mins[j] = 0.0;
                maxs[j] = 0.0;
            }
        }
        let ranges = mins.iter().zip(&maxs).map(|(lo, hi)| hi - lo).collect();
        Self { mins, ranges }
    }

    /// Transform a series feature-by-feature into (roughly) `[0, 1]`.
    pub fn transform(&self, ts: &TimeSeries) -> TimeSeries {
        transform_series(self, ts)
    }

    /// Transform a single record.
    pub fn transform_record(&self, record: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(record.len());
        self.transform_record_into(record, &mut out);
        out
    }
}

impl AffineScale for MinMaxScaler {
    fn center(&self) -> &[f64] {
        &self.mins
    }
    fn spread(&self) -> &[f64] {
        &self.ranges
    }
}

/// Standard scaler: `(x - mean) / std`.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fit per-feature mean and population standard deviation.
    pub fn fit(train: &TimeSeries) -> Self {
        Self::fit_pooled(&[train])
    }

    /// Fit on several traces pooled, via streaming moments — no
    /// concatenated copy of the training set is ever materialized.
    ///
    /// Bitwise identical to `fit` on the concatenation: each feature's
    /// accumulator receives its non-NaN values in exactly
    /// record-over-concatenation order, the same addition sequence the
    /// per-column path performs (pinned by a test below).
    ///
    /// # Panics
    /// Panics if `traces` is empty or the traces disagree on features.
    pub fn fit_pooled(traces: &[&TimeSeries]) -> Self {
        assert!(!traces.is_empty(), "no series to fit on");
        let m = traces[0].dims();
        let mut sums = vec![0.0; m];
        let mut ns = vec![0usize; m];
        for ts in traces {
            assert_eq!(ts.dims(), m, "pooled fit feature mismatch");
            for r in ts.records() {
                for (j, &x) in r.iter().enumerate() {
                    if !x.is_nan() {
                        sums[j] += x;
                        ns[j] += 1;
                    }
                }
            }
        }
        let means: Vec<f64> =
            sums.iter().zip(&ns).map(|(&s, &n)| if n == 0 { 0.0 } else { s / n as f64 }).collect();
        let mut sq = vec![0.0; m];
        for ts in traces {
            for r in ts.records() {
                for (j, &x) in r.iter().enumerate() {
                    if !x.is_nan() {
                        sq[j] += (x - means[j]) * (x - means[j]);
                    }
                }
            }
        }
        let stds: Vec<f64> = sq
            .iter()
            .zip(&ns)
            .map(|(&s, &n)| if n == 0 { 0.0 } else { (s / n as f64).sqrt() })
            .collect();
        Self { means, stds }
    }

    /// Transform a series to zero mean / unit variance per feature.
    pub fn transform(&self, ts: &TimeSeries) -> TimeSeries {
        transform_series(self, ts)
    }

    /// Transform a single record.
    pub fn transform_record(&self, record: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(record.len());
        self.transform_record_into(record, &mut out);
        out
    }

    /// Per-feature means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-feature standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Rebuild a scaler from previously extracted moments (e.g. a
    /// checkpoint). The moments are adopted verbatim, so a round trip
    /// through `means()`/`stds()` is bitwise lossless.
    ///
    /// # Panics
    /// Panics if the vectors disagree in length.
    pub fn from_moments(means: Vec<f64>, stds: Vec<f64>) -> Self {
        assert_eq!(means.len(), stds.len(), "moment length mismatch");
        Self { means, stds }
    }
}

impl AffineScale for StandardScaler {
    fn center(&self) -> &[f64] {
        &self.means
    }
    fn spread(&self) -> &[f64] {
        &self.stds
    }
}

/// The paper's dynamic test-time scaler.
///
/// Seeded with training statistics, it updates exponentially-weighted
/// estimates of per-feature mean and deviation from the test records it has
/// already seen, so that a test trace generated in an unseen context (e.g.
/// a new input rate) is normalized relative to *its own* recent history
/// rather than the training distribution alone.
#[derive(Debug, Clone)]
pub struct DynamicScaler {
    means: Vec<f64>,
    vars: Vec<f64>,
    /// EW update weight for each new record, in `(0, 1)`. Smaller = slower
    /// adaptation.
    alpha: f64,
}

impl DynamicScaler {
    /// Seed from training data with adaptation rate `alpha`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1)`.
    pub fn fit(train: &TimeSeries, alpha: f64) -> Self {
        Self::from_standard(StandardScaler::fit(train), alpha)
    }

    /// Seed from an already-fitted [`StandardScaler`] (e.g. one fitted on
    /// pooled training traces) with adaptation rate `alpha`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1)`.
    pub fn from_standard(base: StandardScaler, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        let vars = base.stds.iter().map(|s| s * s).collect();
        Self { means: base.means, vars, alpha }
    }

    /// Rebuild a scaler from previously extracted state (e.g. a
    /// checkpoint). The state is adopted verbatim, so a round trip
    /// through the accessors is bitwise lossless and the restored scaler
    /// continues the exact update sequence of the original.
    ///
    /// # Panics
    /// Panics if the vectors disagree in length or `alpha` is outside
    /// `(0, 1)`.
    pub fn from_state(means: Vec<f64>, vars: Vec<f64>, alpha: f64) -> Self {
        assert_eq!(means.len(), vars.len(), "state length mismatch");
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        Self { means, vars, alpha }
    }

    /// Current per-feature running means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Current per-feature running variances.
    pub fn vars(&self) -> &[f64] {
        &self.vars
    }

    /// The EW adaptation rate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Normalize one record with the *current* statistics, then fold the
    /// record into the running estimates.
    pub fn transform_and_update(&mut self, record: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(record.len());
        self.transform_and_update_into(record, &mut out);
        out
    }

    /// [`Self::transform_and_update`] appending into a caller-owned buffer
    /// — the allocation-free form the fused transform chain builds on.
    pub fn transform_and_update_into(&mut self, record: &[f64], out: &mut Vec<f64>) {
        assert_eq!(record.len(), self.means.len(), "record dimension mismatch");
        for (j, &x) in record.iter().enumerate() {
            let std = self.vars[j].sqrt();
            if x.is_nan() {
                out.push(0.0);
                continue;
            }
            if std > MIN_SPREAD {
                out.push((x - self.means[j]) / std);
            } else {
                out.push(0.0);
            }
            // EW update after using the old statistics.
            let delta = x - self.means[j];
            self.means[j] += self.alpha * delta;
            self.vars[j] = (1.0 - self.alpha) * (self.vars[j] + self.alpha * delta * delta);
        }
    }

    /// Transform a whole series sequentially (statistics evolve as we go),
    /// resetting nothing — callers should clone the scaler per trace.
    pub fn transform_series(&mut self, ts: &TimeSeries) -> TimeSeries {
        let mut values = Vec::with_capacity(ts.len() * ts.dims());
        for r in ts.records() {
            self.transform_and_update_into(r, &mut values);
        }
        TimeSeries::from_flat(ts.names().to_vec(), ts.start_tick(), values)
    }

    /// Fused `resample_mean(ts, l)` + [`Self::transform_series`] in one
    /// pass: each resampled record is scaled the moment its interval
    /// closes, with no intermediate [`TimeSeries`] in between. Bitwise
    /// identical to the staged pair (the resampled values and the scaler's
    /// update sequence are the same).
    pub fn transform_series_resampled(&mut self, ts: &TimeSeries, l: usize) -> TimeSeries {
        let mut values = Vec::with_capacity(ts.len().div_ceil(l.max(1)) * ts.dims());
        crate::resample::resample_mean_into(ts, l, &mut |rec| {
            self.transform_and_update_into(rec, &mut values);
        });
        TimeSeries::from_flat(ts.names().to_vec(), ts.start_tick(), values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::default_names;

    // NaN-skipping column moments, matching exathlon-linalg's semantics —
    // the pre-dataplane per-column fit algorithm, retained as the bitwise
    // reference for `fit_pooled`'s streaming moments.
    fn exathlon_linalg_mean(xs: &[f64]) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &x in xs {
            if !x.is_nan() {
                sum += x;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    fn exathlon_linalg_std(xs: &[f64]) -> f64 {
        let m = exathlon_linalg_mean(xs);
        let mut sum = 0.0;
        let mut n = 0usize;
        for &x in xs {
            if !x.is_nan() {
                sum += (x - m) * (x - m);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            (sum / n as f64).sqrt()
        }
    }

    fn train() -> TimeSeries {
        TimeSeries::from_records(
            default_names(2),
            0,
            &[vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]],
        )
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let sc = MinMaxScaler::fit(&train());
        let t = sc.transform(&train());
        assert_eq!(t.feature_column(0), vec![0.0, 0.5, 1.0]);
        assert_eq!(t.feature_column(1), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn minmax_out_of_range_extends() {
        let sc = MinMaxScaler::fit(&train());
        let out = sc.transform_record(&[20.0, 10.0]);
        assert_eq!(out, vec![2.0, 0.0]);
    }

    #[test]
    fn minmax_constant_feature_is_zero() {
        let ts = TimeSeries::from_records(default_names(1), 0, &[vec![4.0], vec![4.0]]);
        let sc = MinMaxScaler::fit(&ts);
        assert_eq!(sc.transform(&ts).feature_column(0), vec![0.0, 0.0]);
    }

    #[test]
    fn standard_zero_mean_unit_var() {
        let sc = StandardScaler::fit(&train());
        let t = sc.transform(&train());
        let col = t.feature_column(0);
        let m = exathlon_linalg_mean(&col);
        let s = exathlon_linalg_std(&col);
        assert!(m.abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standard_nan_maps_to_zero() {
        let sc = StandardScaler::fit(&train());
        let out = sc.transform_record(&[f64::NAN, 20.0]);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn dynamic_matches_standard_initially() {
        let tr = train();
        let std_sc = StandardScaler::fit(&tr);
        let mut dyn_sc = DynamicScaler::fit(&tr, 0.01);
        let rec = [5.0, 20.0];
        let a = std_sc.transform_record(&rec);
        let b = dyn_sc.transform_and_update(&rec);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn dynamic_adapts_to_level_shift() {
        let tr = train();
        let mut dyn_sc = DynamicScaler::fit(&tr, 0.2);
        // Feed a sustained shift to mean 100: normalized values must shrink
        // over time as the scaler adapts.
        let first = dyn_sc.transform_and_update(&[100.0, 100.0])[0];
        let mut last = first;
        for _ in 0..50 {
            last = dyn_sc.transform_and_update(&[100.0, 100.0])[0];
        }
        assert!(last.abs() < first.abs() / 2.0, "no adaptation: {first} -> {last}");
    }

    #[test]
    fn dynamic_series_transform_evolves() {
        let tr = train();
        let mut dyn_sc = DynamicScaler::fit(&tr, 0.3);
        let test = TimeSeries::from_records(
            default_names(2),
            0,
            &[vec![50.0, 50.0], vec![50.0, 50.0], vec![50.0, 50.0]],
        );
        let t = dyn_sc.transform_series(&test);
        let col = t.feature_column(0);
        assert!(col[2].abs() < col[0].abs());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn dynamic_bad_alpha_panics() {
        let _ = DynamicScaler::fit(&train(), 1.5);
    }

    #[test]
    fn fit_pooled_matches_fit_on_concatenation_bitwise() {
        let a = TimeSeries::from_records(
            default_names(2),
            0,
            &[vec![0.1, f64::NAN], vec![-3.5, 10.0], vec![7.25, 0.3]],
        );
        let b = TimeSeries::from_records(
            default_names(2),
            9,
            &[vec![f64::NAN, 2.0], vec![1e9, -2.0e-3]],
        );
        let mut concat = a.clone();
        concat.append(&b);
        let pooled = StandardScaler::fit_pooled(&[&a, &b]);
        // Reference: the pre-dataplane per-column fit over the
        // materialized concatenation.
        for j in 0..concat.dims() {
            let col = concat.feature_column(j);
            assert_eq!(pooled.means()[j].to_bits(), exathlon_linalg_mean(&col).to_bits());
            assert_eq!(pooled.stds()[j].to_bits(), exathlon_linalg_std(&col).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "no series")]
    fn fit_pooled_empty_panics() {
        let _ = StandardScaler::fit_pooled(&[]);
    }

    #[test]
    fn fused_resample_scale_matches_staged_bitwise() {
        let ts = TimeSeries::from_records(
            default_names(2),
            3,
            &[
                vec![50.0, -0.0],
                vec![f64::NAN, 48.0],
                vec![52.0, 51.0],
                vec![49.0, f64::NAN],
                vec![47.0, 50.5],
            ],
        );
        for l in [1, 2, 3, 7] {
            let base = StandardScaler::fit(&train());
            let mut staged_sc = DynamicScaler::from_standard(base.clone(), 0.25);
            let staged = staged_sc.transform_series(&crate::resample::resample_mean(&ts, l));
            let mut fused_sc = DynamicScaler::from_standard(base, 0.25);
            let fused = fused_sc.transform_series_resampled(&ts, l);
            assert!(staged.same_data(&fused), "l={l}");
        }
    }
}
