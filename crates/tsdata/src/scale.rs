//! Feature rescaling.
//!
//! "Most ML algorithms require the features to be scaled into a range"
//! (§5 step 2.iii). The pipeline provides:
//!
//! * [`MinMaxScaler`] — maps each feature into `[0, 1]` using the training
//!   range,
//! * [`StandardScaler`] — zero mean / unit variance using training moments,
//! * [`DynamicScaler`] — the paper's customized method that "rescales test
//!   data dynamically as we run an AD model over the data", because each
//!   test trace may represent an unseen (input-rate, concurrency) context.
//!   It keeps exponentially-weighted running estimates of per-feature center
//!   and spread, seeded from the training statistics.

use crate::series::TimeSeries;

/// Spread values below this are treated as constant features and mapped
/// to zero deviation instead of exploding.
const MIN_SPREAD: f64 = 1e-12;

/// A fitted per-feature affine scaler `x -> (x - center) / spread`.
trait AffineScale {
    fn center(&self) -> &[f64];
    fn spread(&self) -> &[f64];

    fn transform_record_into(&self, record: &[f64], out: &mut Vec<f64>) {
        for ((&x, &c), &s) in record.iter().zip(self.center()).zip(self.spread()) {
            if x.is_nan() {
                out.push(0.0);
            } else if s > MIN_SPREAD {
                out.push((x - c) / s);
            } else {
                out.push(0.0);
            }
        }
    }
}

fn transform_series<S: AffineScale>(scaler: &S, ts: &TimeSeries) -> TimeSeries {
    let mut values = Vec::with_capacity(ts.len() * ts.dims());
    for r in ts.records() {
        scaler.transform_record_into(r, &mut values);
    }
    TimeSeries::from_flat(ts.names().to_vec(), ts.start_tick(), values)
}

/// Min-max scaler: `(x - min) / (max - min)`, clamping is left to callers.
#[derive(Debug, Clone)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Fit on training data: per-feature min and range over finite values.
    pub fn fit(train: &TimeSeries) -> Self {
        let m = train.dims();
        let mut mins = vec![f64::INFINITY; m];
        let mut maxs = vec![f64::NEG_INFINITY; m];
        for r in train.records() {
            for j in 0..m {
                let x = r[j];
                if !x.is_nan() {
                    mins[j] = mins[j].min(x);
                    maxs[j] = maxs[j].max(x);
                }
            }
        }
        for j in 0..m {
            if !mins[j].is_finite() {
                mins[j] = 0.0;
                maxs[j] = 0.0;
            }
        }
        let ranges = mins.iter().zip(&maxs).map(|(lo, hi)| hi - lo).collect();
        Self { mins, ranges }
    }

    /// Transform a series feature-by-feature into (roughly) `[0, 1]`.
    pub fn transform(&self, ts: &TimeSeries) -> TimeSeries {
        transform_series(self, ts)
    }

    /// Transform a single record.
    pub fn transform_record(&self, record: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(record.len());
        self.transform_record_into(record, &mut out);
        out
    }
}

impl AffineScale for MinMaxScaler {
    fn center(&self) -> &[f64] {
        &self.mins
    }
    fn spread(&self) -> &[f64] {
        &self.ranges
    }
}

/// Standard scaler: `(x - mean) / std`.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fit per-feature mean and population standard deviation.
    pub fn fit(train: &TimeSeries) -> Self {
        let m = train.dims();
        let mut means = Vec::with_capacity(m);
        let mut stds = Vec::with_capacity(m);
        for j in 0..m {
            let col = train.feature_column(j);
            means.push(exathlon_linalg_mean(&col));
            stds.push(exathlon_linalg_std(&col));
        }
        Self { means, stds }
    }

    /// Transform a series to zero mean / unit variance per feature.
    pub fn transform(&self, ts: &TimeSeries) -> TimeSeries {
        transform_series(self, ts)
    }

    /// Transform a single record.
    pub fn transform_record(&self, record: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(record.len());
        self.transform_record_into(record, &mut out);
        out
    }

    /// Per-feature means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-feature standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

impl AffineScale for StandardScaler {
    fn center(&self) -> &[f64] {
        &self.means
    }
    fn spread(&self) -> &[f64] {
        &self.stds
    }
}

// Local copies of mean/std so this crate stays dependency-free. They match
// exathlon-linalg's NaN-skipping semantics (verified in tests).
fn exathlon_linalg_mean(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &x in xs {
        if !x.is_nan() {
            sum += x;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn exathlon_linalg_std(xs: &[f64]) -> f64 {
    let m = exathlon_linalg_mean(xs);
    let mut sum = 0.0;
    let mut n = 0usize;
    for &x in xs {
        if !x.is_nan() {
            sum += (x - m) * (x - m);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).sqrt()
    }
}

/// The paper's dynamic test-time scaler.
///
/// Seeded with training statistics, it updates exponentially-weighted
/// estimates of per-feature mean and deviation from the test records it has
/// already seen, so that a test trace generated in an unseen context (e.g.
/// a new input rate) is normalized relative to *its own* recent history
/// rather than the training distribution alone.
#[derive(Debug, Clone)]
pub struct DynamicScaler {
    means: Vec<f64>,
    vars: Vec<f64>,
    /// EW update weight for each new record, in `(0, 1)`. Smaller = slower
    /// adaptation.
    alpha: f64,
}

impl DynamicScaler {
    /// Seed from training data with adaptation rate `alpha`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1)`.
    pub fn fit(train: &TimeSeries, alpha: f64) -> Self {
        Self::from_standard(StandardScaler::fit(train), alpha)
    }

    /// Seed from an already-fitted [`StandardScaler`] (e.g. one fitted on
    /// pooled training traces) with adaptation rate `alpha`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1)`.
    pub fn from_standard(base: StandardScaler, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        let vars = base.stds.iter().map(|s| s * s).collect();
        Self { means: base.means, vars, alpha }
    }

    /// Normalize one record with the *current* statistics, then fold the
    /// record into the running estimates.
    pub fn transform_and_update(&mut self, record: &[f64]) -> Vec<f64> {
        assert_eq!(record.len(), self.means.len(), "record dimension mismatch");
        let mut out = Vec::with_capacity(record.len());
        for (j, &x) in record.iter().enumerate() {
            let std = self.vars[j].sqrt();
            if x.is_nan() {
                out.push(0.0);
                continue;
            }
            if std > MIN_SPREAD {
                out.push((x - self.means[j]) / std);
            } else {
                out.push(0.0);
            }
            // EW update after using the old statistics.
            let delta = x - self.means[j];
            self.means[j] += self.alpha * delta;
            self.vars[j] = (1.0 - self.alpha) * (self.vars[j] + self.alpha * delta * delta);
        }
        out
    }

    /// Transform a whole series sequentially (statistics evolve as we go),
    /// resetting nothing — callers should clone the scaler per trace.
    pub fn transform_series(&mut self, ts: &TimeSeries) -> TimeSeries {
        let mut values = Vec::with_capacity(ts.len() * ts.dims());
        for r in ts.records() {
            values.extend(self.transform_and_update(r));
        }
        TimeSeries::from_flat(ts.names().to_vec(), ts.start_tick(), values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::default_names;

    fn train() -> TimeSeries {
        TimeSeries::from_records(
            default_names(2),
            0,
            &[vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]],
        )
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let sc = MinMaxScaler::fit(&train());
        let t = sc.transform(&train());
        assert_eq!(t.feature_column(0), vec![0.0, 0.5, 1.0]);
        assert_eq!(t.feature_column(1), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn minmax_out_of_range_extends() {
        let sc = MinMaxScaler::fit(&train());
        let out = sc.transform_record(&[20.0, 10.0]);
        assert_eq!(out, vec![2.0, 0.0]);
    }

    #[test]
    fn minmax_constant_feature_is_zero() {
        let ts = TimeSeries::from_records(default_names(1), 0, &[vec![4.0], vec![4.0]]);
        let sc = MinMaxScaler::fit(&ts);
        assert_eq!(sc.transform(&ts).feature_column(0), vec![0.0, 0.0]);
    }

    #[test]
    fn standard_zero_mean_unit_var() {
        let sc = StandardScaler::fit(&train());
        let t = sc.transform(&train());
        let col = t.feature_column(0);
        let m = exathlon_linalg_mean(&col);
        let s = exathlon_linalg_std(&col);
        assert!(m.abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standard_nan_maps_to_zero() {
        let sc = StandardScaler::fit(&train());
        let out = sc.transform_record(&[f64::NAN, 20.0]);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn dynamic_matches_standard_initially() {
        let tr = train();
        let std_sc = StandardScaler::fit(&tr);
        let mut dyn_sc = DynamicScaler::fit(&tr, 0.01);
        let rec = [5.0, 20.0];
        let a = std_sc.transform_record(&rec);
        let b = dyn_sc.transform_and_update(&rec);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn dynamic_adapts_to_level_shift() {
        let tr = train();
        let mut dyn_sc = DynamicScaler::fit(&tr, 0.2);
        // Feed a sustained shift to mean 100: normalized values must shrink
        // over time as the scaler adapts.
        let first = dyn_sc.transform_and_update(&[100.0, 100.0])[0];
        let mut last = first;
        for _ in 0..50 {
            last = dyn_sc.transform_and_update(&[100.0, 100.0])[0];
        }
        assert!(last.abs() < first.abs() / 2.0, "no adaptation: {first} -> {last}");
    }

    #[test]
    fn dynamic_series_transform_evolves() {
        let tr = train();
        let mut dyn_sc = DynamicScaler::fit(&tr, 0.3);
        let test = TimeSeries::from_records(
            default_names(2),
            0,
            &[vec![50.0, 50.0], vec![50.0, 50.0], vec![50.0, 50.0]],
        );
        let t = dyn_sc.transform_series(&test);
        let col = t.feature_column(0);
        assert!(col[2].abs() < col[0].abs());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn dynamic_bad_alpha_panics() {
        let _ = DynamicScaler::fit(&train(), 1.5);
    }
}
