//! Ring-buffer window view — the streaming counterpart of
//! [`crate::window::WindowSet`].
//!
//! A batch window is a `(trace, start)` view over a fully materialized
//! series; a stream has no such buffer, so the streaming engine keeps the
//! last `capacity` records in a fixed ring and re-linearizes them on
//! demand. [`RingWindow::copy_flat_into`] produces exactly the
//! record-major flattened layout of [`crate::window::flatten_window`], so
//! a model scored on ring windows sees bit-identical inputs to its batch
//! windows — the substrate of the streaming-vs-batch equivalence pin.

/// A fixed-capacity ring buffer of multivariate records.
///
/// Storage is one contiguous `capacity * dims` buffer; pushing is one
/// `copy_from_slice` into the current slot, overwriting the oldest record
/// once full. No allocation after construction.
#[derive(Debug, Clone)]
pub struct RingWindow {
    buf: Vec<f64>,
    dims: usize,
    capacity: usize,
    /// Slot the next push writes to.
    head: usize,
    /// Number of records currently held (≤ capacity).
    len: usize,
}

impl RingWindow {
    /// An empty ring holding up to `capacity` records of `dims` features.
    ///
    /// # Panics
    /// Panics if `capacity` or `dims` is zero.
    pub fn new(capacity: usize, dims: usize) -> Self {
        assert!(capacity > 0 && dims > 0, "ring capacity and dims must be positive");
        Self { buf: vec![0.0; capacity * dims], dims, capacity, head: 0, len: 0 }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no record has been pushed (or after [`RingWindow::clear`]).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the ring holds `capacity` records.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Maximum number of records held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Features per record.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Length of one flattened window (`capacity * dims`).
    pub fn flat_len(&self) -> usize {
        self.capacity * self.dims
    }

    /// Push one record, overwriting the oldest once full.
    ///
    /// # Panics
    /// Panics if the record length does not match `dims`.
    pub fn push(&mut self, record: &[f64]) {
        assert_eq!(record.len(), self.dims, "ring push record length mismatch");
        let at = self.head * self.dims;
        self.buf[at..at + self.dims].copy_from_slice(record);
        self.head = (self.head + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
    }

    /// Record `i` in chronological order (0 = oldest held).
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn record(&self, i: usize) -> &[f64] {
        assert!(i < self.len, "ring record {i} out of bounds (len {})", self.len);
        // Oldest record sits at `head` once full, at 0 before that.
        let first = if self.len == self.capacity { self.head } else { 0 };
        let slot = (first + i) % self.capacity;
        &self.buf[slot * self.dims..(slot + 1) * self.dims]
    }

    /// Newest record, if any.
    pub fn latest(&self) -> Option<&[f64]> {
        if self.len == 0 {
            None
        } else {
            Some(self.record(self.len - 1))
        }
    }

    /// Copy the held records into `out` in chronological record-major
    /// order — the layout of [`crate::window::flatten_window`]. At most
    /// two `copy_from_slice` calls (the ring wraps once).
    ///
    /// # Panics
    /// Panics unless the ring is full and `out.len() == flat_len()`.
    pub fn copy_flat_into(&self, out: &mut [f64]) {
        assert!(self.is_full(), "ring window not full yet");
        assert_eq!(out.len(), self.flat_len(), "ring flatten length mismatch");
        let split = self.head * self.dims;
        let tail = self.buf.len() - split;
        out[..tail].copy_from_slice(&self.buf[split..]);
        out[tail..].copy_from_slice(&self.buf[..split]);
    }

    /// Forget every record (capacity and dims are kept).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{default_names, TimeSeries};
    use crate::window::flatten_window;

    #[test]
    fn fills_then_rotates() {
        let mut r = RingWindow::new(3, 2);
        assert!(r.is_empty());
        r.push(&[0.0, 1.0]);
        r.push(&[2.0, 3.0]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_full());
        assert_eq!(r.record(0), &[0.0, 1.0]);
        assert_eq!(r.latest().unwrap(), &[2.0, 3.0]);
        r.push(&[4.0, 5.0]);
        assert!(r.is_full());
        r.push(&[6.0, 7.0]); // overwrites [0, 1]
        assert_eq!(r.record(0), &[2.0, 3.0]);
        assert_eq!(r.record(2), &[6.0, 7.0]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn flatten_matches_batch_window_layout() {
        // Pushing records i..i+w must linearize exactly like the batch
        // flatten of the same range, for every rotation of the ring.
        let records: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 10.0 + i as f64]).collect();
        let ts = TimeSeries::from_records(default_names(2), 0, &records);
        let w = 4;
        let mut r = RingWindow::new(w, 2);
        let mut flat = vec![f64::NAN; w * 2];
        for i in 0..ts.len() {
            r.push(ts.record(i));
            if i + 1 >= w {
                r.copy_flat_into(&mut flat);
                let expect = flatten_window(&ts, i + 1 - w, w);
                assert_eq!(flat, expect, "mismatch at window ending {i}");
            }
        }
    }

    #[test]
    fn clear_resets() {
        let mut r = RingWindow::new(2, 1);
        r.push(&[1.0]);
        r.push(&[2.0]);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.latest(), None);
        r.push(&[3.0]);
        assert_eq!(r.record(0), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "not full")]
    fn flatten_before_full_panics() {
        let r = RingWindow::new(3, 1);
        let mut out = vec![0.0; 3];
        r.copy_flat_into(&mut out);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_push_panics() {
        let mut r = RingWindow::new(2, 2);
        r.push(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = RingWindow::new(0, 1);
    }
}
