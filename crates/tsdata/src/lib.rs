//! # exathlon-tsdata
//!
//! Multivariate time-series substrate for the Exathlon benchmark.
//!
//! The Exathlon dataset is a collection of *traces*: multivariate time
//! series sampled at 1 Hz with thousands of features (2,283 metrics in the
//! paper). This crate provides the data structures and transformations the
//! pipeline's **Data Transformation** phase (§5 step 2) needs:
//!
//! * [`series::TimeSeries`] — the core frame: `n` records x `m` features,
//!   row-major `f64` with named features and a start tick,
//! * [`window`] — sliding-window extraction for window-based models
//!   (autoencoder, BiGAN) and sequence models (LSTM),
//! * [`resample`] — cardinality-factor resampling (`α = 1/l`: average every
//!   `l`-second interval, §4.3),
//! * [`transform`] — first-order differencing (the `1_diff_*` features of
//!   Appendix D.1) and missing-value cleaning,
//! * [`scale`] — min-max and standard scalers fitted on training data, plus
//!   the paper's *dynamic* scaler that adapts to the new context of each
//!   test trace as the AD model runs over it,
//! * [`sample`] — clamped evenly-spaced subsampling shared by the scorer
//!   pools, kNN/LOF reference sets, and the PCA row subsample,
//! * [`ring`] — the streaming engine's fixed-capacity ring-buffer window
//!   (a batch window whose `start` advances one record per tick).

pub mod resample;
pub mod ring;
pub mod sample;
pub mod scale;
pub mod series;
pub mod transform;
pub mod window;

pub use series::TimeSeries;
