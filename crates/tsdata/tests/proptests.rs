//! Property-based tests on the time-series transformations.

use exathlon_tsdata::resample::resample_mean;
use exathlon_tsdata::sample::stride_indices;
use exathlon_tsdata::scale::{MinMaxScaler, StandardScaler};
use exathlon_tsdata::series::{default_names, TimeSeries};
use exathlon_tsdata::transform::{difference_features, fill_missing};
use exathlon_tsdata::window::{record_scores_from_windows, window_starts, WindowSet};
use proptest::prelude::*;

fn series(values: Vec<f64>) -> TimeSeries {
    let records: Vec<Vec<f64>> = values.into_iter().map(|v| vec![v]).collect();
    TimeSeries::from_records(default_names(1), 0, &records)
}

proptest! {
    /// Resampling preserves the overall mean of a series whose length is a
    /// multiple of the interval (each interval contributes equally).
    #[test]
    fn resample_preserves_mean_on_exact_multiples(
        values in proptest::collection::vec(-1e6f64..1e6, 1..20),
        l in 1usize..5,
    ) {
        let mut values = values;
        // Pad to a multiple of l by repeating the last value.
        while values.len() % l != 0 {
            values.push(*values.last().expect("non-empty"));
        }
        let ts = series(values.clone());
        let r = resample_mean(&ts, l);
        let orig_mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        let res_col = r.feature_column(0);
        let res_mean: f64 = res_col.iter().sum::<f64>() / res_col.len() as f64;
        prop_assert!((orig_mean - res_mean).abs() < 1e-6 * (1.0 + orig_mean.abs()));
        prop_assert_eq!(r.len(), ts.len() / l);
    }

    /// Differencing then cumulative-summing recovers the original series
    /// (up to the first record).
    #[test]
    fn difference_is_inverse_of_cumsum(
        values in proptest::collection::vec(-1e3f64..1e3, 2..40),
    ) {
        let ts = series(values.clone());
        let d = difference_features(&ts, &[0]);
        let mut recovered = vec![values[0]];
        for i in 0..d.len() {
            recovered.push(recovered[i] + d.value(i, 0));
        }
        for (a, b) in recovered.iter().zip(&values) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Min-max scaling maps the training data into [0, 1].
    #[test]
    fn minmax_bounds_training_data(
        values in proptest::collection::vec(-1e6f64..1e6, 2..50),
    ) {
        let ts = series(values);
        let sc = MinMaxScaler::fit(&ts);
        for v in sc.transform(&ts).feature_column(0) {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "out of range: {v}");
        }
    }

    /// Standard scaling is idempotent up to numerics: re-fitting on scaled
    /// data and scaling again changes nothing materially.
    #[test]
    fn standard_scaling_idempotent(
        values in proptest::collection::vec(-1e3f64..1e3, 3..50),
    ) {
        let ts = series(values);
        let sc1 = StandardScaler::fit(&ts);
        let once = sc1.transform(&ts);
        let sc2 = StandardScaler::fit(&once);
        let twice = sc2.transform(&once);
        for (a, b) in once.feature_column(0).iter().zip(twice.feature_column(0)) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    /// fill_missing leaves finite values untouched and removes every NaN.
    #[test]
    fn fill_missing_total(
        values in proptest::collection::vec(
            prop_oneof![Just(f64::NAN), -1e3f64..1e3], 1..40),
    ) {
        let ts = series(values.clone());
        let filled = fill_missing(&ts, -7.0);
        for (i, v) in values.iter().enumerate() {
            let f = filled.value(i, 0);
            if v.is_nan() {
                prop_assert_eq!(f, -7.0);
            } else {
                prop_assert_eq!(f, *v);
            }
        }
    }

    /// Window starts are in range, sorted, and stride-spaced.
    #[test]
    fn window_starts_invariants(len in 0usize..200, size in 1usize..20, stride in 1usize..10) {
        let starts = window_starts(len, size, stride);
        for w in starts.windows(2) {
            prop_assert_eq!(w[1] - w[0], stride);
        }
        if let Some(&last) = starts.last() {
            prop_assert!(last + size <= len);
        }
        if len >= size {
            prop_assert!(!starts.is_empty());
        }
    }

    /// Record scores from constant window scores are that constant
    /// everywhere covered.
    #[test]
    fn constant_window_scores_stay_constant(
        len in 2usize..60, size in 1usize..10, c in -1e3f64..1e3,
    ) {
        let size = size.min(len);
        let starts = window_starts(len, size, 1);
        let scores = vec![c; starts.len()];
        let out = record_scores_from_windows(len, size, &starts, &scores);
        for v in out {
            prop_assert!((v - c).abs() < 1e-9);
        }
    }

    /// Every window view of a `WindowSet` — and every `to_rows` row — is
    /// bitwise identical to flattening the window's records by hand.
    #[test]
    fn windowset_views_match_flatten(
        values in proptest::collection::vec(-1e6f64..1e6, 4..120),
        dims in 1usize..4,
        size in 1usize..6,
        stride in 1usize..4,
    ) {
        let n = values.len() / dims;
        prop_assume!(n >= size);
        let records: Vec<Vec<f64>> =
            (0..n).map(|i| values[i * dims..(i + 1) * dims].to_vec()).collect();
        let ts = TimeSeries::from_records(default_names(dims), 0, &records);
        let ws = WindowSet::from_series(&ts, size, stride);
        let starts = window_starts(n, size, stride);
        prop_assert_eq!(ws.len(), starts.len());
        let rows = ws.to_rows();
        for (i, &start) in starts.iter().enumerate() {
            let flat: Vec<f64> =
                records[start..start + size].iter().flatten().copied().collect();
            prop_assert_eq!(ws.start(i), start);
            prop_assert_eq!(ws.window(i).len(), flat.len());
            for (a, b) in ws.window(i).iter().zip(&flat) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in rows[i].iter().zip(&flat) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// `WindowSet::subsample` keeps exactly the windows that
    /// `stride_indices` selects over the entry list.
    #[test]
    fn windowset_subsample_matches_stride_indices(
        len in 1usize..150, size in 1usize..8, max in 1usize..20,
    ) {
        prop_assume!(len >= size);
        let records: Vec<Vec<f64>> = (0..len).map(|i| vec![i as f64]).collect();
        let ts = TimeSeries::from_records(default_names(1), 0, &records);
        let mut ws = WindowSet::from_series(&ts, size, 1);
        let before = ws.starts();
        ws.subsample(max);
        let expect: Vec<usize> =
            stride_indices(before.len(), max).into_iter().map(|i| before[i]).collect();
        prop_assert_eq!(ws.starts(), expect);
    }

    /// The difference-array record scorer agrees with the naive
    /// sum-over-covering-windows mean on every covered record.
    #[test]
    fn record_scores_match_naive_reference(
        len in 2usize..80,
        size in 1usize..10,
        stride in 1usize..5,
        pool in proptest::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let size = size.min(len);
        let starts = window_starts(len, size, stride);
        prop_assume!(!starts.is_empty());
        let scores: Vec<f64> =
            (0..starts.len()).map(|i| pool[i % pool.len()]).collect();
        let out = record_scores_from_windows(len, size, &starts, &scores);
        for (i, &got) in out.iter().enumerate() {
            let mut sum = 0.0;
            let mut cnt = 0usize;
            for (&s, &sc) in starts.iter().zip(&scores) {
                if i >= s && i < s + size {
                    sum += sc;
                    cnt += 1;
                }
            }
            if cnt > 0 {
                let expect = sum / cnt as f64;
                prop_assert!(
                    (got - expect).abs() <= 1e-9 * (1.0 + expect.abs()),
                    "record {}: {} vs naive {}", i, got, expect
                );
            }
        }
    }
}
