//! **P2: AD inference efficiency** (§4.3). Measures per-trace scoring
//! time of each fitted model, sweeping dimensionality `M`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use exathlon_core::config::AdMethod;
use exathlon_core::model::{train_model, TrainedModel, TrainingBudget};
use exathlon_tsdata::series::default_names;
use exathlon_tsdata::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn trace(n: usize, dims: usize, seed: u64) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let records: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..dims)
                .map(|j| ((i as f64 * 0.2 + j as f64).sin()) + rng.gen_range(-0.05..0.05))
                .collect()
        })
        .collect();
    TimeSeries::from_records(default_names(dims), 0, &records)
}

fn fitted(method: AdMethod, dims: usize) -> TrainedModel {
    let traces = vec![trace(400, dims, 1), trace(400, dims, 2)];
    train_model(method, &traces, 0.25, TrainingBudget::Quick, 7)
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_inference_600_records");
    group.sample_size(10);
    for dims in [4usize, 19] {
        let test = trace(600, dims, 9);
        for method in [AdMethod::Ae, AdMethod::Lstm, AdMethod::BiGan, AdMethod::Knn, AdMethod::Mad]
        {
            let model = fitted(method, dims);
            group.bench_with_input(BenchmarkId::new(method.label(), dims), &dims, |b, _| {
                b.iter(|| black_box(model.scorer.score_series(&test)))
            });
        }
    }
    group.finish();
}

/// Serial vs parallel scoring of the record-parallel detectors
/// (kNN / LOF / iForest), pinned via `EXATHLON_THREADS`. On a multi-core
/// machine the parallel kNN variant should beat serial by ~the worker
/// count; on one core both pin to the same sequential path.
fn bench_serial_vs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_inference_serial_vs_parallel");
    group.sample_size(10);
    let dims = 19;
    let test = trace(2000, dims, 9);
    let threads = exathlon_core::par::max_threads();
    for method in [AdMethod::Knn, AdMethod::Lof, AdMethod::IForest] {
        let model = fitted(method, dims);
        for (variant, setting) in [("serial", "1".to_string()), ("parallel", threads.to_string())] {
            std::env::set_var(exathlon_core::par::THREADS_ENV, &setting);
            group.bench_with_input(
                BenchmarkId::new(format!("{}_{variant}", method.label()), &setting),
                &dims,
                |b, _| b.iter(|| black_box(model.scorer.score_series(&test))),
            );
        }
        std::env::remove_var(exathlon_core::par::THREADS_ENV);
    }
    group.finish();
}

/// Overhead of the observability layer on the P2 inference workload.
/// With `EXATHLON_PROFILE` unset every guard is one relaxed atomic load
/// and no allocation, so `profile_off` must stay within 2% of a build
/// without any instrumentation; `profile_on` shows the enabled cost for
/// scale. Compare the two `kNN_profile_*` rows to verify the pin.
fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_obs_overhead");
    group.sample_size(10);
    let dims = 19;
    let test = trace(2000, dims, 9);
    let model = fitted(AdMethod::Knn, dims);
    for (variant, value) in [("profile_off", None), ("profile_on", Some("1"))] {
        match value {
            Some(v) => std::env::set_var(exathlon_core::obs::PROFILE_ENV, v),
            None => std::env::remove_var(exathlon_core::obs::PROFILE_ENV),
        }
        exathlon_core::obs::refresh();
        exathlon_core::obs::reset();
        group.bench_with_input(BenchmarkId::new("kNN", variant), &dims, |b, _| {
            b.iter(|| black_box(model.scorer.score_series(&test)))
        });
    }
    std::env::remove_var(exathlon_core::obs::PROFILE_ENV);
    exathlon_core::obs::refresh();
    exathlon_core::obs::reset();
    group.finish();
}

/// The disabled guard in isolation: 2,000 stage + span guards plus
/// counters — one per record of the workload above. The total must be
/// microseconds against the workload's milliseconds (≪ 2%), pinning the
/// "one relaxed atomic load, no allocation" claim directly.
fn bench_obs_disabled_guard(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_obs_disabled_guard");
    group.sample_size(10);
    std::env::remove_var(exathlon_core::obs::PROFILE_ENV);
    exathlon_core::obs::refresh();
    group.bench_function("2000_guards", |b| {
        b.iter(|| {
            for _ in 0..2000 {
                let _stage = exathlon_core::obs::stage("score");
                let _sp = exathlon_core::obs::span("score", "bench");
                exathlon_core::obs::counter("bench.records", 1);
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_inference,
    bench_serial_vs_parallel,
    bench_obs_overhead,
    bench_obs_disabled_guard
);
criterion_main!(benches);
