//! Micro-benchmarks of the numeric kernels everything else is built on:
//! matrix multiply, the Jacobi eigensolver / PCA, range-based P/R, and
//! AUPRC. These track the cost drivers behind the P1–P3 results.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use exathlon_linalg::pca::{ComponentSelection, Pca};
use exathlon_linalg::Matrix;
use exathlon_tsmetrics::auprc::auprc;
use exathlon_tsmetrics::presets::{evaluate_at_level, AdLevel};
use exathlon_tsmetrics::Range;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 64, 128] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j) as f64 * 0.01).sin());
        let b = Matrix::from_fn(n, n, |i, j| ((i + j * 17) as f64 * 0.01).cos());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_pca(c: &mut Criterion) {
    let mut group = c.benchmark_group("pca_fit");
    for d in [19usize, 43] {
        let data = Matrix::from_fn(500, d, |i, j| ((i * j + i) as f64 * 0.013).sin());
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |bench, _| {
            bench.iter(|| black_box(Pca::fit(&data, ComponentSelection::Fixed(8))));
        });
    }
    group.finish();
}

fn bench_range_pr(c: &mut Criterion) {
    let real: Vec<Range> = (0..50).map(|i| Range::new(i * 100, i * 100 + 40)).collect();
    let predicted: Vec<Range> = (0..80).map(|i| Range::new(i * 70 + 5, i * 70 + 30)).collect();
    c.bench_function("range_pr_ad2", |b| {
        b.iter(|| black_box(evaluate_at_level(&real, &predicted, AdLevel::Range)))
    });
    c.bench_function("range_pr_ad4", |b| {
        b.iter(|| black_box(evaluate_at_level(&real, &predicted, AdLevel::ExactlyOnce)))
    });
}

fn bench_auprc(c: &mut Criterion) {
    let n = 50_000;
    let scores: Vec<f64> = (0..n).map(|i| ((i * 37) % 1000) as f64 / 1000.0).collect();
    let labels: Vec<bool> = (0..n).map(|i| i % 17 == 0).collect();
    c.bench_function("auprc_50k", |b| b.iter(|| black_box(auprc(&scores, &labels))));
}

criterion_group!(benches, bench_matmul, bench_pca, bench_range_pr, bench_auprc);
criterion_main!(benches);
