//! Micro-benchmarks of the numeric kernels everything else is built on:
//! matrix multiply, the Jacobi eigensolver / PCA, range-based P/R, and
//! AUPRC. These track the cost drivers behind the P1–P3 results.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use exathlon_linalg::kernel::{naive_matmul, DistanceKernel};
use exathlon_linalg::pca::{ComponentSelection, Pca};
use exathlon_linalg::Matrix;
use exathlon_tsmetrics::auprc::auprc;
use exathlon_tsmetrics::presets::{evaluate_at_level, AdLevel};
use exathlon_tsmetrics::Range;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 64, 128] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j) as f64 * 0.01).sin());
        let b = Matrix::from_fn(n, n, |i, j| ((i + j * 17) as f64 * 0.01).cos());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

/// The retained naive triple loop against the blocked/SIMD kernel, at
/// the sizes the acceptance speedup (≥3x at 256) is defined on.
fn bench_gemm_naive_vs_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_naive_vs_kernel");
    for n in [64usize, 128, 256] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j) as f64 * 0.01).sin());
        let b = Matrix::from_fn(n, n, |i, j| ((i + j * 17) as f64 * 0.01).cos());
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| black_box(naive_matmul(&a, &b)));
        });
        group.bench_with_input(BenchmarkId::new("kernel", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

/// The per-pair scalar distance loop against the Gram-trick batch, at
/// the kNN/LOF inference shape (19 features, as in `FS_custom`).
fn bench_distances_scalar_vs_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("distances_scalar_vs_batched");
    let dims = 19usize;
    for (queries, refs) in [(256usize, 512usize), (1024, 1024)] {
        let reference: Vec<Vec<f64>> = (0..refs)
            .map(|i| (0..dims).map(|j| ((i * 13 + j * 7) as f64 * 0.011).sin()).collect())
            .collect();
        let query: Vec<Vec<f64>> = (0..queries)
            .map(|i| (0..dims).map(|j| ((i * 5 + j * 29) as f64 * 0.017).cos()).collect())
            .collect();
        let kernel = DistanceKernel::fit(&reference);
        let id = format!("{queries}x{refs}");
        group.bench_with_input(BenchmarkId::new("scalar", &id), &id, |bench, _| {
            bench.iter(|| {
                for q in &query {
                    black_box(kernel.naive_sq_distances_to(q));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("batched", &id), &id, |bench, _| {
            bench.iter(|| black_box(kernel.sq_distances(&query)));
        });
    }
    group.finish();
}

fn bench_pca(c: &mut Criterion) {
    let mut group = c.benchmark_group("pca_fit");
    for d in [19usize, 43] {
        let data = Matrix::from_fn(500, d, |i, j| ((i * j + i) as f64 * 0.013).sin());
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |bench, _| {
            bench.iter(|| black_box(Pca::fit(&data, ComponentSelection::Fixed(8))));
        });
    }
    group.finish();
}

fn bench_range_pr(c: &mut Criterion) {
    let real: Vec<Range> = (0..50).map(|i| Range::new(i * 100, i * 100 + 40)).collect();
    let predicted: Vec<Range> = (0..80).map(|i| Range::new(i * 70 + 5, i * 70 + 30)).collect();
    c.bench_function("range_pr_ad2", |b| {
        b.iter(|| black_box(evaluate_at_level(&real, &predicted, AdLevel::Range)))
    });
    c.bench_function("range_pr_ad4", |b| {
        b.iter(|| black_box(evaluate_at_level(&real, &predicted, AdLevel::ExactlyOnce)))
    });
}

fn bench_auprc(c: &mut Criterion) {
    let n = 50_000;
    let scores: Vec<f64> = (0..n).map(|i| ((i * 37) % 1000) as f64 / 1000.0).collect();
    let labels: Vec<bool> = (0..n).map(|i| i % 17 == 0).collect();
    c.bench_function("auprc_50k", |b| b.iter(|| black_box(auprc(&scores, &labels))));
}

criterion_group!(
    benches,
    bench_matmul,
    bench_gemm_naive_vs_kernel,
    bench_distances_scalar_vs_batched,
    bench_pca,
    bench_range_pr,
    bench_auprc
);
criterion_main!(benches);
