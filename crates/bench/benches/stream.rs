//! Streaming engine latency: per-record `update` cost of every
//! `StreamMethod`, fitted exactly as the replay driver fits them.
//! The `bench_stream` binary snapshots the same numbers to
//! `results/BENCH_stream.json`; this Criterion harness is for local
//! regression hunting with statistics.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use exathlon_core::config::StreamMethod;
use exathlon_core::model::TrainingBudget;
use exathlon_core::replay::{build_streaming, replay_series, stream_seed};
use exathlon_tsdata::series::default_names;
use exathlon_tsdata::TimeSeries;

const DIMS: usize = 19;

fn trace(n: usize, seed: u64) -> TimeSeries {
    let records: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..DIMS)
                .map(|j| ((i as f64 * 0.2 + (j as f64 + seed as f64) * 0.7).sin()) * 2.0)
                .collect()
        })
        .collect();
    TimeSeries::from_records(default_names(DIMS), 0, &records)
}

fn bench_stream_replay(c: &mut Criterion) {
    std::env::set_var(exathlon_core::par::THREADS_ENV, "1");
    let train = vec![trace(600, 1), trace(600, 2)];
    let test = trace(400, 9);
    let mut group = c.benchmark_group("stream_replay_400_records");
    group.sample_size(10);
    for method in StreamMethod::ALL {
        let mut det =
            build_streaming(method, &train, 0.25, TrainingBudget::Quick, stream_seed(7, method));
        group.bench_function(method.label(), |b| {
            b.iter(|| black_box(replay_series(det.as_mut(), &test)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stream_replay);
criterion_main!(benches);
