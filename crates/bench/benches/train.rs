//! Micro-benchmarks of the fused training step: SIMD elementwise
//! kernels + reused per-network workspaces against the naive escape
//! hatch (`EXATHLON_NAIVE_ELEMENTWISE=1`), which re-enacts the old
//! clone-heavy training loop. One group per learned model: dense
//! autoencoder batch, LSTM BPTT batch, and the BiGAN adversarial
//! two-step. `bench_train` (the binary) holds the headline epoch
//! numbers; these are the per-step views.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use exathlon_linalg::elemwise::NAIVE_ELEMENTWISE_ENV;
use exathlon_linalg::Matrix;
use exathlon_nn::activation::Activation;
use exathlon_nn::gan::BiGan;
use exathlon_nn::lstm::Lstm;
use exathlon_nn::mlp::Mlp;
use exathlon_nn::optimizer::Optimizer;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIMS: usize = 19;
const WINDOW: usize = 8;
const AE_IN: usize = DIMS * WINDOW;
const BATCH: usize = 32;

const MODES: [(&str, bool); 2] = [("naive", true), ("fused", false)];

fn set_mode(naive: bool) {
    if naive {
        std::env::set_var(NAIVE_ELEMENTWISE_ENV, "1");
    } else {
        std::env::remove_var(NAIVE_ELEMENTWISE_ENV);
    }
}

fn sample_matrix(n: usize, dim: usize, seed: usize) -> Matrix {
    Matrix::from_fn(n, dim, |i, j| (((i + seed * 131) * 13 + j * 7) as f64 * 0.011).sin())
}

/// One Adam minibatch through the 152-64-10 ReLU autoencoder.
fn bench_ae_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("ae_train_batch");
    let mut rng = StdRng::seed_from_u64(7);
    let mut ae = Mlp::autoencoder(AE_IN, &[64], 10, Activation::Relu, &mut rng);
    let xb = sample_matrix(BATCH, AE_IN, 3);
    let opt = Optimizer::adam(1e-3);
    for (mode, naive) in MODES {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |bench, _| {
            set_mode(naive);
            bench.iter(|| black_box(ae.train_batch(&xb, &xb, &opt)));
            std::env::remove_var(NAIVE_ELEMENTWISE_ENV);
        });
    }
    group.finish();
}

/// One BPTT minibatch through the 19-24 forecaster (window 8 → 7 steps).
fn bench_lstm_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("lstm_train_batch");
    let mut rng = StdRng::seed_from_u64(11);
    let mut lstm = Lstm::new(DIMS, 24, DIMS, &mut rng);
    let seqs: Vec<(Vec<f64>, Vec<f64>)> = (0..BATCH)
        .map(|s| {
            let m = sample_matrix(WINDOW, DIMS, s);
            let flat = m.as_slice();
            (flat[..(WINDOW - 1) * DIMS].to_vec(), flat[(WINDOW - 1) * DIMS..].to_vec())
        })
        .collect();
    let views: Vec<(&[f64], &[f64])> = seqs.iter().map(|(s, t)| (&s[..], &t[..])).collect();
    let opt = Optimizer::adam(1e-3);
    for (mode, naive) in MODES {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |bench, _| {
            set_mode(naive);
            bench.iter(|| black_box(lstm.train_batch_flat(&views, &opt)));
            std::env::remove_var(NAIVE_ELEMENTWISE_ENV);
        });
    }
    group.finish();
}

/// One adversarial two-step (discriminator + generator/encoder) of the
/// 152-latent6-hidden48 BiGAN.
fn bench_gan_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("gan_train_batch");
    let mut rng = StdRng::seed_from_u64(29);
    let mut gan = BiGan::new(AE_IN, 6, 48, &mut rng);
    let xb = sample_matrix(BATCH, AE_IN, 4);
    let opt = Optimizer::adam(1e-3);
    for (mode, naive) in MODES {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |bench, _| {
            set_mode(naive);
            let mut trng = StdRng::seed_from_u64(41);
            bench.iter(|| black_box(gan.train_batch(&xb, &opt, &mut trng)));
            std::env::remove_var(NAIVE_ELEMENTWISE_ENV);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ae_step, bench_lstm_step, bench_gan_step);
criterion_main!(benches);
