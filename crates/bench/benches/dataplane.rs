//! Micro-benchmarks of the zero-copy window data plane: pooled-window
//! construction + batch gather against the materialized escape hatch,
//! and the fused resample+rescale transform against the staged chain.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use exathlon_ad::scorer::{pooled_windows, window_batch};
use exathlon_tsdata::resample::resample_mean;
use exathlon_tsdata::scale::{DynamicScaler, StandardScaler};
use exathlon_tsdata::series::default_names;
use exathlon_tsdata::window::{WindowSet, MATERIALIZED_WINDOWS_ENV};
use exathlon_tsdata::TimeSeries;

const DIMS: usize = 19;
const WINDOW: usize = 8;

fn trace(len: usize, seed: usize) -> TimeSeries {
    let mut values = Vec::with_capacity(len * DIMS);
    for i in 0..len {
        for j in 0..DIMS {
            values.push((((i + seed * 131) * 13 + j * 7) as f64 * 0.011).sin());
        }
    }
    TimeSeries::from_flat(default_names(DIMS), 0, values)
}

/// The AE/BiGAN fit pool: pooled stride-1 windows capped by subsampling,
/// gathered into one batch — per mode.
fn bench_pooled_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pooled_windows_batch");
    let traces: Vec<TimeSeries> = (0..4).map(|s| trace(2_000, s)).collect();
    let train: Vec<&TimeSeries> = traces.iter().collect();
    for (mode, toggle) in [("materialized", true), ("zero_copy", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |bench, _| {
            if toggle {
                std::env::set_var(MATERIALIZED_WINDOWS_ENV, "1");
            } else {
                std::env::remove_var(MATERIALIZED_WINDOWS_ENV);
            }
            bench.iter(|| {
                let ws = pooled_windows(&train, WINDOW, 2_000);
                black_box(window_batch(&ws))
            });
            std::env::remove_var(MATERIALIZED_WINDOWS_ENV);
        });
    }
    group.finish();
}

/// The AE score path: every stride-1 window of a test trace gathered
/// into one inference batch — per mode.
fn bench_score_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("score_batch");
    let test = trace(2_000, 7);
    for (mode, toggle) in [("materialized", true), ("zero_copy", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |bench, _| {
            if toggle {
                std::env::set_var(MATERIALIZED_WINDOWS_ENV, "1");
            } else {
                std::env::remove_var(MATERIALIZED_WINDOWS_ENV);
            }
            bench.iter(|| {
                let ws = WindowSet::from_series(&test, WINDOW, 1);
                black_box(window_batch(&ws))
            });
            std::env::remove_var(MATERIALIZED_WINDOWS_ENV);
        });
    }
    group.finish();
}

/// Staged (materialized resampled intermediate) vs fused streaming
/// resample+rescale.
fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("test_transform");
    let test = trace(4_000, 11);
    let scaler = StandardScaler::fit_pooled(&[&test]);
    group.bench_function("staged", |bench| {
        bench.iter(|| {
            let mut dynamic = DynamicScaler::from_standard(scaler.clone(), 0.004);
            let unscaled = resample_mean(&test, 5);
            black_box(dynamic.transform_series(&unscaled))
        });
    });
    group.bench_function("fused", |bench| {
        bench.iter(|| {
            let mut dynamic = DynamicScaler::from_standard(scaler.clone(), 0.004);
            black_box(dynamic.transform_series_resampled(&test, 5))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pooled_batch, bench_score_batch, bench_transform);
criterion_main!(benches);
