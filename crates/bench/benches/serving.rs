//! Serving-layer microbenchmarks: checkpoint encode/decode cost per
//! detector family and registry hot-path operations (insert / hit /
//! LRU eviction churn), without the HTTP layer — `load_gen` measures
//! the end-to-end request path separately.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use exathlon_core::checkpoint::ServingProfile;
use exathlon_core::config::StreamMethod;
use exathlon_core::model::TrainingBudget;
use exathlon_core::registry::{EntityKey, ProfileRegistry};
use exathlon_core::replay::{build_servable, stream_seed};
use exathlon_tsdata::series::default_names;
use exathlon_tsdata::TimeSeries;

const DIMS: usize = 19;

fn trace(n: usize, seed: u64) -> TimeSeries {
    let records: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..DIMS)
                .map(|j| ((i as f64 * 0.2 + (j as f64 + seed as f64) * 0.7).sin()) * 2.0)
                .collect()
        })
        .collect();
    TimeSeries::from_records(default_names(DIMS), 0, &records)
}

fn profiles() -> Vec<(&'static str, ServingProfile)> {
    let train = vec![trace(600, 1), trace(600, 2)];
    [StreamMethod::Ewma, StreamMethod::Cusum, StreamMethod::Knn]
        .into_iter()
        .map(|method| {
            let det =
                build_servable(method, &train, 0.25, TrainingBudget::Quick, stream_seed(7, method));
            (method.label(), ServingProfile::new(det, 1.0))
        })
        .collect()
}

fn bench_checkpoint_codec(c: &mut Criterion) {
    let profiles = profiles();
    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(20);
    for (label, profile) in &profiles {
        let image = profile.to_bytes();
        group.bench_function(format!("encode/{label}"), |b| {
            b.iter(|| black_box(profile.to_bytes()))
        });
        group.bench_function(format!("decode/{label} ({}B)", image.len()), |b| {
            b.iter(|| black_box(ServingProfile::from_bytes(&image).unwrap()))
        });
    }
    group.finish();
}

fn bench_registry(c: &mut Criterion) {
    let (_, profile) = profiles().remove(0);
    let bytes = profile.to_bytes().len();
    let mut group = c.benchmark_group("registry");
    group.sample_size(20);

    // Hot path: repeated hits on a resident profile.
    let mut reg = ProfileRegistry::new(usize::MAX);
    for i in 0..64 {
        reg.insert(EntityKey::new("app", format!("e{i}")), profile.clone(), bytes);
    }
    let key = EntityKey::new("app", "e13");
    group.bench_function("get_mut hit (64 resident)", |b| {
        b.iter(|| black_box(reg.get_mut(&key).is_some()))
    });

    // Churn: every insert past the budget evicts the LRU victim.
    let mut tight = ProfileRegistry::new(bytes * 8);
    let mut i = 0u64;
    group.bench_function("insert+evict churn (budget=8)", |b| {
        b.iter(|| {
            i += 1;
            black_box(tight.insert(EntityKey::new("app", format!("e{i}")), profile.clone(), bytes))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_checkpoint_codec, bench_registry);
criterion_main!(benches);
