//! Serving-layer microbenchmarks: checkpoint encode/decode cost per
//! detector family, registry hot-path operations (insert / hit /
//! LRU eviction churn), the allocation-free wire fast path (head and
//! body parsing, response formatting), and spill-tier file round-trips
//! — without the HTTP layer; `load_gen` measures the end-to-end
//! request path separately.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use exathlon_core::checkpoint::ServingProfile;
use exathlon_core::config::StreamMethod;
use exathlon_core::model::TrainingBudget;
use exathlon_core::registry::{EntityKey, ProfileRegistry};
use exathlon_core::replay::{build_servable, stream_seed};
use exathlon_core::spill::SpillDir;
use exathlon_core::wire;
use exathlon_linalg::codec::ByteWriter;
use exathlon_tsdata::series::default_names;
use exathlon_tsdata::TimeSeries;

const DIMS: usize = 19;

fn trace(n: usize, seed: u64) -> TimeSeries {
    let records: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..DIMS)
                .map(|j| ((i as f64 * 0.2 + (j as f64 + seed as f64) * 0.7).sin()) * 2.0)
                .collect()
        })
        .collect();
    TimeSeries::from_records(default_names(DIMS), 0, &records)
}

fn profiles() -> Vec<(&'static str, ServingProfile)> {
    let train = vec![trace(600, 1), trace(600, 2)];
    [StreamMethod::Ewma, StreamMethod::Cusum, StreamMethod::Knn]
        .into_iter()
        .map(|method| {
            let det =
                build_servable(method, &train, 0.25, TrainingBudget::Quick, stream_seed(7, method));
            (method.label(), ServingProfile::new(det, 1.0))
        })
        .collect()
}

fn bench_checkpoint_codec(c: &mut Criterion) {
    let profiles = profiles();
    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(20);
    for (label, profile) in &profiles {
        let image = profile.to_bytes();
        group.bench_function(format!("encode/{label}"), |b| {
            b.iter(|| black_box(profile.to_bytes()))
        });
        group.bench_function(format!("decode/{label} ({}B)", image.len()), |b| {
            b.iter(|| black_box(ServingProfile::from_bytes(&image).unwrap()))
        });
    }
    group.finish();
}

fn bench_registry(c: &mut Criterion) {
    let (_, profile) = profiles().remove(0);
    let bytes = profile.to_bytes().len();
    let mut group = c.benchmark_group("registry");
    group.sample_size(20);

    // Hot path: repeated hits on a resident profile.
    let mut reg = ProfileRegistry::new(usize::MAX);
    for i in 0..64 {
        reg.insert(EntityKey::new("app", format!("e{i}")), profile.clone(), bytes);
    }
    let key = EntityKey::new("app", "e13");
    group.bench_function("get_mut hit (64 resident)", |b| {
        b.iter(|| black_box(reg.get_mut(&key).is_some()))
    });

    // Churn: every insert past the budget evicts the LRU victim.
    let mut tight = ProfileRegistry::new(bytes * 8);
    let mut i = 0u64;
    group.bench_function("insert+evict churn (budget=8)", |b| {
        b.iter(|| {
            i += 1;
            black_box(tight.insert(EntityKey::new("app", format!("e{i}")), profile.clone(), bytes))
        })
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    group.sample_size(20);

    // A representative warmed ingest request: head + 19-feature record.
    let mut record_body = String::from("{\"record\":[");
    for j in 0..DIMS {
        if j > 0 {
            record_body.push(',');
        }
        record_body.push_str(&format!("{}", (j as f64 * 0.7).sin() * 2.0));
    }
    record_body.push_str("]}");
    let request = format!(
        "POST /v1/ingest/spark-app/exec-1 HTTP/1.1\r\nhost: bench\r\n\
         content-length: {}\r\n\r\n{record_body}",
        record_body.len()
    );
    group.bench_function("parse_head", |b| {
        b.iter(|| black_box(wire::parse_head(black_box(request.as_bytes()), 64 << 10)))
    });

    let mut rows = Vec::new();
    let mut row_ends = Vec::new();
    group.bench_function("parse_record_body/single", |b| {
        b.iter(|| {
            black_box(wire::parse_record_body(
                black_box(record_body.as_bytes()),
                false,
                &mut rows,
                &mut row_ends,
            ))
        })
    });

    let mut batch_body = String::from("{\"records\":[");
    for i in 0..32 {
        if i > 0 {
            batch_body.push(',');
        }
        batch_body.push('[');
        for j in 0..DIMS {
            if j > 0 {
                batch_body.push(',');
            }
            batch_body.push_str(&format!("{}", ((i * DIMS + j) as f64 * 0.3).sin()));
        }
        batch_body.push(']');
    }
    batch_body.push_str("]}");
    group.bench_function("parse_record_body/batch-32", |b| {
        b.iter(|| {
            black_box(wire::parse_record_body(
                black_box(batch_body.as_bytes()),
                true,
                &mut rows,
                &mut row_ends,
            ))
        })
    });

    let mut head = Vec::new();
    let mut body = String::new();
    group.bench_function("format_response/single", |b| {
        b.iter(|| {
            wire::write_single_score(&mut body, black_box(1.2345678), false);
            head.clear();
            wire::write_head(&mut head, 200, "application/json", body.len(), true);
            black_box(head.len())
        })
    });
    group.finish();
}

fn bench_spill(c: &mut Criterion) {
    let profiles = profiles();
    let dir = std::env::temp_dir().join(format!("exathlon-bench-spill-{}", std::process::id()));
    let spill = SpillDir::create(&dir).expect("create spill dir");
    let mut group = c.benchmark_group("spill");
    group.sample_size(20);
    let mut scratch = ByteWriter::new();
    for (label, profile) in &profiles {
        group.bench_function(format!("spill/{label}"), |b| {
            b.iter(|| black_box(spill.spill("app", label, profile, &mut scratch).unwrap()))
        });
        spill.spill("app", label, profile, &mut scratch).unwrap();
        group.bench_function(format!("restore/{label}"), |b| {
            b.iter(|| black_box(spill.restore("app", label).unwrap().unwrap().1))
        });
        spill.remove("app", label).unwrap();
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_checkpoint_codec, bench_registry, bench_wire, bench_spill);
criterion_main!(benches);
