//! **P1: AD training scalability** (§4.3). Measures model training time
//! while sweeping the two benchmark parameters:
//!
//! * dimensionality `M` (feature count after reduction),
//! * cardinality factor `α = 1/l` (resampling interval).
//!
//! Per-method sample counts are small — training runs are seconds each —
//! but the relative scaling across `M` and `α` is what P1 reports.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use exathlon_core::config::AdMethod;
use exathlon_core::model::{train_model, TrainingBudget};
use exathlon_tsdata::resample::resample_mean;
use exathlon_tsdata::series::default_names;
use exathlon_tsdata::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic normal training trace with `dims` features.
fn train_trace(n: usize, dims: usize, seed: u64) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let records: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..dims)
                .map(|j| {
                    let t = i as f64 * 0.2 + j as f64;
                    t.sin() + rng.gen_range(-0.05..0.05)
                })
                .collect()
        })
        .collect();
    TimeSeries::from_records(default_names(dims), 0, &records)
}

fn bench_training_vs_dimensionality(c: &mut Criterion) {
    let mut group = c.benchmark_group("p1_training_vs_M");
    group.sample_size(10);
    for dims in [4usize, 19, 43] {
        let traces = vec![train_trace(600, dims, 1), train_trace(600, dims, 2)];
        for method in [AdMethod::Ae, AdMethod::Lstm, AdMethod::BiGan] {
            group.bench_with_input(BenchmarkId::new(method.label(), dims), &dims, |b, _| {
                b.iter(|| black_box(train_model(method, &traces, 0.25, TrainingBudget::Quick, 7)))
            });
        }
    }
    group.finish();
}

fn bench_training_vs_cardinality(c: &mut Criterion) {
    let mut group = c.benchmark_group("p1_training_vs_alpha");
    group.sample_size(10);
    let base = [train_trace(1800, 19, 1)];
    for l in [1usize, 5, 15] {
        let traces: Vec<TimeSeries> = base.iter().map(|t| resample_mean(t, l)).collect();
        group.bench_with_input(BenchmarkId::new("AE_alpha", format!("1/{l}")), &l, |b, _| {
            b.iter(|| black_box(train_model(AdMethod::Ae, &traces, 0.25, TrainingBudget::Quick, 7)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training_vs_dimensionality, bench_training_vs_cardinality);
criterion_main!(benches);
