//! **P3: ED efficiency** (§4.3). Measures per-explanation running time of
//! the three ED methods — the Table 5 "Time" column — sweeping the
//! feature count `M`. The paper's shape: EXstream in the milliseconds,
//! MacroBase next, LIME orders of magnitude slower.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use exathlon_ad::ae_ad::{AeConfig, AutoencoderDetector};
use exathlon_ad::AnomalyScorer;
use exathlon_ed::exstream::ExstreamExplainer;
use exathlon_ed::lime::{LimeConfig, LimeExplainer};
use exathlon_ed::macrobase::MacroBaseExplainer;
use exathlon_tsdata::series::default_names;
use exathlon_tsdata::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An anomaly/reference pair with a level shift in half the features.
fn case(dims: usize, seed: u64) -> (TimeSeries, TimeSeries) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mk = |n: usize, shift: f64, rng: &mut StdRng| -> TimeSeries {
        let records: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..dims)
                    .map(|j| {
                        let base: f64 = rng.gen_range(-0.2..0.2);
                        if j % 2 == 0 {
                            base + shift
                        } else {
                            base
                        }
                    })
                    .collect()
            })
            .collect();
        TimeSeries::from_records(default_names(dims), 0, &records)
    };
    let reference = mk(90, 0.0, &mut rng);
    let anomaly = mk(30, 3.0, &mut rng);
    (anomaly, reference)
}

fn bench_model_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("p3_ed_time");
    for dims in [8usize, 19] {
        let (anomaly, reference) = case(dims, 3);
        group.bench_with_input(BenchmarkId::new("EXstream", dims), &dims, |b, _| {
            b.iter(|| black_box(ExstreamExplainer::default().explain(&anomaly, &reference)))
        });
        group.bench_with_input(BenchmarkId::new("MacroBase", dims), &dims, |b, _| {
            b.iter(|| black_box(MacroBaseExplainer::default().explain(&anomaly, &reference)))
        });
    }
    group.finish();
}

fn bench_lime(c: &mut Criterion) {
    let mut group = c.benchmark_group("p3_ed_time_lime");
    group.sample_size(10);
    for dims in [8usize, 19] {
        let (anomaly, reference) = case(dims, 3);
        // Fit a small AE to serve as the model LIME explains.
        let mut ae = AutoencoderDetector::new(AeConfig {
            window: 4,
            hidden: vec![16],
            code: 4,
            epochs: 5,
            max_windows: 300,
            ..AeConfig::default()
        });
        ae.fit(&[&reference]);
        let window = anomaly.slice(0, 4);
        let lime = LimeExplainer::new(LimeConfig { n_samples: 200, ..LimeConfig::default() });
        group.bench_with_input(BenchmarkId::new("LIME", dims), &dims, |b, _| {
            b.iter(|| black_box(lime.explain(&window, &|flat: &[f64]| ae.window_score(flat))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_free, bench_lime);
criterion_main!(benches);
