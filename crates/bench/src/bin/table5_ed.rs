//! Reproduces **Table 5 and Figure 6**: explanation-discovery results —
//! conciseness, stability (ED1), concordance (ED2), accuracy, and running
//! time of MacroBase, EXstream, and LIME, plus example explanations.

use exathlon_ad::ae_ad::AutoencoderDetector;
use exathlon_ad::AnomalyScorer;
use exathlon_bench::{build_dataset, default_config, Scale};
use exathlon_core::config::AdMethod;
use exathlon_core::edrun::{collect_cases, evaluate_ed, EdMethodKind, EdRunner};
use exathlon_core::experiment::run_pipeline;
use exathlon_core::model::ae_config_for;
use exathlon_core::report::EdTable;

fn main() {
    let scale = Scale::from_args();
    println!("ED evaluation (LS4, FS_custom) at {scale:?} scale");
    let ds = build_dataset(scale);
    let config = default_config(scale);

    // The paper explains anomalies detected by its best AD method (AE);
    // we run the pipeline once to get the transformed data and re-fit the
    // same AE architecture for LIME's model queries.
    let run = run_pipeline(&ds, &config, &[AdMethod::Ae], scale.budget());
    let mut ae = AutoencoderDetector::new(ae_config_for(scale.budget(), config.seed));
    let train_refs: Vec<&exathlon_tsdata::TimeSeries> = run.train.iter().collect();
    ae.fit(&train_refs);

    let cases = collect_cases(&run.tests, 12);
    println!("Collected {} explainable anomaly cases", cases.len());

    let mut table = EdTable::default();
    let mut examples = Vec::new();
    for method in EdMethodKind::ALL {
        let runner = EdRunner {
            method,
            ae_model: method.is_model_dependent().then_some(&ae),
            seed: config.seed,
        };
        let eval = evaluate_ed(&runner, &cases);
        examples.push((method, eval.examples.clone()));
        table.evaluations.push(eval);
    }

    println!("\n=== Table 5: ED results ===");
    print!("{table}");

    println!("\n=== Figure 6(a): example explanations of a stalled-input (T3) anomaly ===");
    for (method, ex) in &examples {
        if let Some((_, text)) =
            ex.iter().find(|(t, _)| *t == exathlon_sparksim::AnomalyType::StalledInput)
        {
            println!("--- {} ---\n{text}\n", method.label());
        }
    }

    println!("Shape checks vs the paper:");
    let get = |m: EdMethodKind| {
        table.evaluations.iter().find(|e| e.method == m).expect("method evaluated")
    };
    let (mb, ex, li) =
        (get(EdMethodKind::MacroBase), get(EdMethodKind::Exstream), get(EdMethodKind::Lime));
    println!(
        "  EXstream most concise: EXstream {:.2} vs MacroBase {:.2} vs LIME {:.2} -> {}",
        ex.average.conciseness,
        mb.average.conciseness,
        li.average.conciseness,
        if ex.average.conciseness <= mb.average.conciseness.min(li.average.conciseness) + 0.5 {
            "ok"
        } else {
            "DIVERGES"
        }
    );
    for e in [&mb, &ex, &li] {
        println!(
            "  {} concordance {:.2} >= stability {:.2} : {}",
            e.method.label(),
            e.average.concordance,
            e.average.stability,
            if e.average.concordance >= e.average.stability - 0.1 { "ok" } else { "DIVERGES" }
        );
    }
    println!(
        "  EXstream fastest, LIME slowest: {:.4}s vs {:.4}s vs {:.4}s -> {}",
        ex.average.time_secs,
        mb.average.time_secs,
        li.average.time_secs,
        if ex.average.time_secs <= mb.average.time_secs
            && mb.average.time_secs <= li.average.time_secs * 10.0
        {
            "ok"
        } else {
            "check"
        }
    );
    println!(
        "  LIME has no accuracy numbers (not predictive): {}",
        if li.average.precision.is_none() { "ok" } else { "DIVERGES" }
    );
    // Final cumulative profile snapshot (covers post-pipeline phases);
    // no-op unless EXATHLON_PROFILE=1.
    let _ = exathlon_core::obs::emit_report();
}
