//! **Ablation: dynamic test-time rescaling.** The pipeline's §5 step
//! 2.iii introduces a customized scaler that re-normalizes each test trace
//! against its own recent history, because test traces come from unseen
//! (rate, concurrency) contexts. This ablation quantifies the design
//! choice: global separation AUPRC of the AE with the dynamic scaler
//! versus a static (training-statistics-only) scaler.

use exathlon_bench::{build_dataset, default_config, Scale};
use exathlon_core::config::AdMethod;
use exathlon_core::evaluate::{score_tests, separation};
use exathlon_core::experiment::run_pipeline;
use exathlon_core::model::train_model;
use exathlon_core::partition::partition;
use exathlon_core::transform::FittedTransform;
use exathlon_tsdata::scale::StandardScaler;
use exathlon_tsdata::TimeSeries;

fn main() {
    let scale = Scale::from_args();
    println!("Ablation: dynamic vs static test-time rescaling at {scale:?} scale");
    let ds = build_dataset(scale);
    let config = default_config(scale);

    // Dynamic path: the stock pipeline.
    let run = run_pipeline(&ds, &config, &[AdMethod::Ae], scale.budget());
    let dynamic_sep = run.method_run(AdMethod::Ae).separation.clone();

    // Static path: same partition/extraction, but test traces scaled with
    // the frozen training statistics. Reuses the fitted transform's train
    // output and re-derives the static-scaled test traces.
    let partitioned = partition(&ds, config.setting, config.peek_fraction);
    let (transform, train) = FittedTransform::fit(&partitioned.train, &config);
    let mut pooled: TimeSeries = train[0].clone();
    for t in &train[1..] {
        pooled.append(t);
    }
    // Training output is already standardized, so this scaler is identity
    // up to numerical noise — applying it to the dynamic-transform output
    // of test traces effectively removes the dynamic adaptation.
    let static_scaler = StandardScaler::fit(&pooled);
    let static_tests: Vec<_> = partitioned
        .test
        .iter()
        .map(|s| {
            let mut t = transform.apply_test_static(s, &static_scaler);
            t.trace_id = s.trace_id;
            t
        })
        .collect();
    let model = train_model(
        AdMethod::Ae,
        &train,
        config.threshold_holdout,
        scale.budget(),
        config.seed ^ 2,
    );
    let static_scored = score_tests(&model, &static_tests);
    let static_sep = separation(&static_scored);

    println!("\n{:<22} {:>8} {:>8} {:>8}", "Scaler", "Trace", "App", "Global");
    println!(
        "{:<22} {:>8.2} {:>8.2} {:>8.2}",
        "dynamic (pipeline)",
        dynamic_sep.trace.average,
        dynamic_sep.app.average,
        dynamic_sep.global.average
    );
    println!(
        "{:<22} {:>8.2} {:>8.2} {:>8.2}",
        "static (ablated)",
        static_sep.trace.average,
        static_sep.app.average,
        static_sep.global.average
    );
    let delta = dynamic_sep.global.average - static_sep.global.average;
    println!(
        "\nDynamic rescaling moves global AUPRC by {delta:+.3} — the design\n\
         choice §5 motivates with unseen test contexts."
    );
    // Final cumulative profile snapshot (covers post-pipeline phases);
    // no-op unless EXATHLON_PROFILE=1.
    let _ = exathlon_core::obs::emit_report();
}
