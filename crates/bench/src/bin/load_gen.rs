//! Serving-layer load generator: replay sparksim traces as concurrent
//! HTTP client traffic against an in-process gatekeeper.
//!
//! The scenario mirrors Exathlon's monitoring setting: many repeated
//! Spark executions (entities) stream records at once. Detectors are
//! fitted exactly as the replay driver fits them, one profile per
//! entity is uploaded as a checkpoint, then client threads replay
//! transformed test traces through `POST /v1/ingest` over keep-alive
//! connections, timing every request. Each client also drives a local
//! twin of every profile it owns and asserts the served score is
//! **bitwise** identical — so the throughput numbers double as an
//! end-to-end correctness sweep. After the run, every entity's
//! checkpoint is downloaded and compared byte-for-byte against its twin.
//!
//! Writes throughput and p50/p90/p99 ingest latency to
//! `results/BENCH_serving.json`. `--quick` shrinks the fleet for CI.

use exathlon_core::checkpoint::ServingProfile;
use exathlon_core::config::{ExperimentConfig, StreamMethod};
use exathlon_core::experiment::prepare;
use exathlon_core::model::TrainingBudget;
use exathlon_core::replay::{build_servable, replay_series, stream_seed};
use exathlon_core::serve::{Gatekeeper, GatekeeperConfig};
use exathlon_linalg::stats::quantile;
use exathlon_sparksim::dataset::DatasetBuilder;
use exathlon_tsdata::TimeSeries;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// One keep-alive HTTP/1.1 connection with sequential request/response.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to gatekeeper");
        stream.set_nodelay(true).expect("set nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Self { stream, reader }
    }

    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: load\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes()).expect("write head");
        self.stream.write_all(body).expect("write body");
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("read status line");
        let status: u16 =
            status_line.split_whitespace().nth(1).expect("status code").parse().expect("numeric");
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("read header");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("numeric content-length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("read body");
        (status, body)
    }
}

fn json_record(record: &[f64]) -> String {
    let mut out = String::from("{\"record\":[");
    for (i, x) in record.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if x.is_finite() {
            out.push_str(&format!("{x}"));
        } else {
            out.push_str("null");
        }
    }
    out.push_str("]}");
    out
}

/// Parse `"score":<num>` out of an ingest response without a full JSON
/// tree (this runs inside the timed loop's bookkeeping).
fn score_of(body: &[u8]) -> f64 {
    let text = std::str::from_utf8(body).expect("UTF-8 response");
    let rest = text.split("\"score\":").nth(1).expect("score field");
    let end = rest.find(',').unwrap_or(rest.len());
    let token = &rest[..end];
    if token == "null" {
        f64::NAN
    } else {
        token.parse().expect("score parses")
    }
}

/// One tenant's work item: its key, its profile twin, and the records
/// the client will stream.
struct Tenant {
    entity: String,
    twin: ServingProfile,
    records: Vec<Vec<f64>>,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (entities, clients, records_per_entity) =
        if quick { (4usize, 2usize, 200usize) } else { (16, 8, 1000) };
    let methods =
        [StreamMethod::Ewma, StreamMethod::Cusum, StreamMethod::Histogram, StreamMethod::Knn];

    // Fit once per method on the replay driver's own data path.
    let ds = DatasetBuilder::tiny(11).build();
    let config = ExperimentConfig::default();
    let (_transform, train, tests) = prepare(&ds, &config);
    assert!(!tests.is_empty(), "no test traces");
    let budget = TrainingBudget::Quick;

    let fitted: Vec<(StreamMethod, ServingProfile)> = methods
        .iter()
        .map(|&method| {
            let det = build_servable(
                method,
                &train,
                config.threshold_holdout,
                budget,
                stream_seed(config.seed, method),
            );
            // Unsupervised threshold: high quantile of the detector's own
            // scores over a training trace.
            let holdout: &TimeSeries = &train[0];
            let scores = replay_series(&mut det.clone(), holdout);
            let threshold = quantile(&scores, 0.99);
            (method, ServingProfile::new(det, threshold))
        })
        .collect();

    let gk = Gatekeeper::bind(
        "127.0.0.1:0",
        GatekeeperConfig { workers: clients.max(2), ..GatekeeperConfig::default() },
    )
    .expect("bind gatekeeper");
    let addr = gk.local_addr();

    // One tenant per entity: method round-robin, trace round-robin.
    let mut upload = Client::connect(addr);
    let mut checkpoint_bytes = 0usize;
    let mut work: Vec<Vec<Tenant>> = (0..clients).map(|_| Vec::new()).collect();
    for e in 0..entities {
        let (method, profile) = &fitted[e % fitted.len()];
        let series = &tests[e % tests.len()].series;
        let n = series.len().min(records_per_entity);
        let records: Vec<Vec<f64>> = (0..n).map(|i| series.record(i).to_vec()).collect();
        let entity = format!("exec-{e}-{}", method.label());
        let image = profile.to_bytes();
        checkpoint_bytes += image.len();
        let (status, _) = upload.request("PUT", &format!("/v1/profile/spark-app/{entity}"), &image);
        assert_eq!(status, 200, "profile upload failed for {entity}");
        work[e % clients].push(Tenant { entity, twin: profile.clone(), records });
    }

    let total_requests: usize = work.iter().flatten().map(|t| t.records.len()).sum();
    println!(
        "load_gen: {entities} entities x {} records, {clients} clients, {total_requests} requests",
        records_per_entity
    );

    // Concurrent replay: each client owns a disjoint tenant set, so
    // per-tenant request order (and thus detector state) is deterministic
    // no matter how the clients interleave on the server.
    let started = Instant::now();
    let mut results: Vec<(Vec<u64>, Vec<Tenant>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = work
            .into_iter()
            .map(|tenants| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut latencies = Vec::new();
                    let mut tenants = tenants;
                    for tenant in &mut tenants {
                        let path = format!("/v1/ingest/spark-app/{}", tenant.entity);
                        for record in &tenant.records {
                            let body = json_record(record);
                            let t0 = Instant::now();
                            let (status, resp) = client.request("POST", &path, body.as_bytes());
                            latencies.push(t0.elapsed().as_nanos() as u64);
                            assert_eq!(status, 200, "ingest failed for {}", tenant.entity);
                            let (want, _) = tenant.twin.ingest(record);
                            let got = score_of(&resp);
                            assert_eq!(
                                got.to_bits(),
                                want.to_bits(),
                                "served score diverged for {}: {got} vs {want}",
                                tenant.entity
                            );
                        }
                    }
                    (latencies, tenants)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    // Post-run audit: every checkpoint equals its twin, byte for byte.
    for (_, tenants) in &mut results {
        for tenant in tenants {
            let (status, image) =
                upload.request("GET", &format!("/v1/checkpoint/spark-app/{}", tenant.entity), b"");
            assert_eq!(status, 200, "checkpoint download failed for {}", tenant.entity);
            assert_eq!(image, tenant.twin.to_bytes(), "checkpoint diverged for {}", tenant.entity);
        }
    }

    let mut latencies: Vec<u64> = results.iter().flat_map(|(l, _)| l.iter().copied()).collect();
    latencies.sort_unstable();
    assert_eq!(latencies.len(), total_requests);
    let throughput = total_requests as f64 / elapsed;
    let (p50, p90, p99, max) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
        *latencies.last().unwrap_or(&0),
    );

    let stats = gk.stats();
    assert_eq!(stats.insertions as usize, entities);
    println!("elapsed {elapsed:.2}s, throughput {throughput:.0} req/s");
    println!("ingest latency: p50 {p50}ns, p90 {p90}ns, p99 {p99}ns, max {max}ns");
    println!(
        "registry: {} profiles, {} bytes resident, {} hits",
        stats.resident_profiles, stats.resident_bytes, stats.hits
    );
    gk.shutdown();

    let json = format!(
        "{{\n  \"entities\": {entities},\n  \"clients\": {clients},\n  \
         \"records_per_entity\": {records_per_entity},\n  \"requests\": {total_requests},\n  \
         \"elapsed_sec\": {elapsed:.3},\n  \"throughput_rps\": {throughput:.1},\n  \
         \"ingest_latency_ns\": {{\"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}, \
         \"max\": {max}}},\n  \
         \"checkpoint\": {{\"profiles\": {entities}, \"bytes_total\": {checkpoint_bytes}, \
         \"bitwise_ok\": true}},\n  \
         \"methods\": [{}]\n}}\n",
        methods.iter().map(|m| format!("\"{}\"", m.label())).collect::<Vec<_>>().join(", ")
    );
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join("BENCH_serving.json");
    std::fs::write(&path, json).expect("write BENCH_serving.json");
    println!("Wrote {}", path.display());
}
