//! Serving-layer load generator: replay sparksim traces as concurrent
//! HTTP client traffic against an in-process gatekeeper.
//!
//! The scenario mirrors Exathlon's monitoring setting: many repeated
//! Spark executions (entities) stream records at once. Detectors are
//! fitted exactly as the replay driver fits them, one profile per
//! entity is uploaded as a checkpoint, then client threads replay
//! transformed test traces through `POST /v1/ingest` over keep-alive
//! connections, timing every request. Each client also drives a local
//! twin of every profile it owns and asserts the served score is
//! **bitwise** identical — so the throughput numbers double as an
//! end-to-end correctness sweep. After the phases, every entity's
//! checkpoint is downloaded and compared byte-for-byte against its twin.
//!
//! Phases:
//!
//! 1. **single** — concurrent single-record ingest (throughput + latency
//!    percentiles, bitwise verify per response).
//! 2. **alloc** — the binary installs a counting global allocator and
//!    hands the gatekeeper a per-thread allocation probe
//!    ([`exathlon_core::serve::set_alloc_probe`]); after warmup, a
//!    metered run pins the worker-side allocation count of the ingest
//!    fast path (zero for in-place detectors, a small pinned budget for
//!    kNN, whose scoring kernel allocates). The run **fails** beyond the
//!    budget — this is the CI allocation guard.
//! 3. **batch** — the same records through `POST /v1/score` in
//!    `BATCH`-record bodies; records/sec is compared against phase 1.
//! 4. **spill** — a second gatekeeper with a ~zero byte budget and a
//!    spill directory; round-robin ingest over more tenants than fit
//!    churns evict→spill→restore on nearly every request, with every
//!    score still bitwise-checked against the twins.
//!
//! Writes all numbers to `results/BENCH_serving.json`. `--quick`
//! shrinks the fleet for CI; `--no-nodelay` leaves Nagle's algorithm on
//! client sockets (for measuring the latency effect of TCP_NODELAY).

use exathlon_core::checkpoint::ServingProfile;
use exathlon_core::config::{ExperimentConfig, StreamMethod};
use exathlon_core::experiment::prepare;
use exathlon_core::model::TrainingBudget;
use exathlon_core::replay::{build_servable, replay_series, stream_seed};
use exathlon_core::serve::{set_alloc_probe, Gatekeeper, GatekeeperConfig};
use exathlon_core::wire::{parse_head, HeadParse};
use exathlon_linalg::stats::quantile;
use exathlon_sparksim::dataset::DatasetBuilder;
use exathlon_tsdata::TimeSeries;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// `/v1/score` body size for the batch phase.
const BATCH: usize = 32;

// ------------------------------------------------------ counting allocator

/// Global allocator that counts allocations per thread. The thread-local
/// is const-initialized (no lazy init, no destructor), so reading it
/// from inside the allocator cannot recurse into the allocator.
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

#[inline]
fn bump() {
    THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

// --------------------------------------------------------------- client

/// One keep-alive HTTP/1.1 connection with sequential request/response
/// over reused buffers: one `write` per request, no per-request
/// allocation once warmed (the client side of the serving fast path).
struct Client {
    stream: TcpStream,
    req: Vec<u8>,
    resp: Vec<u8>,
    tmp: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr, nodelay: bool) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to gatekeeper");
        if nodelay {
            stream.set_nodelay(true).expect("set nodelay");
        }
        Self { stream, req: Vec::new(), resp: Vec::new(), tmp: vec![0u8; 64 << 10] }
    }

    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> (u16, &[u8]) {
        self.req.clear();
        let _ = write!(
            self.req,
            "{method} {path} HTTP/1.1\r\nhost: load\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.req.extend_from_slice(body);
        self.stream.write_all(&self.req).expect("write request");
        self.resp.clear();
        let (status, head_len, total) = loop {
            // `parse_head` reads a status line the same way it reads a
            // request line: three whitespace tokens, the second of which
            // ("200") lands in the `path` span.
            match parse_head(&self.resp, 64 << 10) {
                HeadParse::Complete(h) => {
                    let total = h.head_len + h.content_length;
                    if self.resp.len() >= total {
                        let code = std::str::from_utf8(&self.resp[h.path.0..h.path.1])
                            .expect("status code");
                        break (code.parse().expect("numeric status"), h.head_len, total);
                    }
                }
                HeadParse::Partial => {}
                other => panic!("malformed response head: {other:?}"),
            }
            let n = self.stream.read(&mut self.tmp).expect("read response");
            assert!(n > 0, "server closed mid-response");
            self.resp.extend_from_slice(&self.tmp[..n]);
        };
        (status, &self.resp[head_len..total])
    }
}

/// `{"record":[...]}` into a reused buffer, shortest-roundtrip floats,
/// non-finite as `null` (the repo-wide JSON convention).
fn write_record_body(out: &mut String, record: &[f64]) {
    out.clear();
    out.push_str("{\"record\":[");
    write_values(out, record);
    out.push_str("]}");
}

/// `{"records":[[...],...]}` for a batch of rows.
fn write_batch_body(out: &mut String, rows: &[Vec<f64>]) {
    out.clear();
    out.push_str("{\"records\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        write_values(out, row);
        out.push(']');
    }
    out.push_str("]}");
}

fn write_values(out: &mut String, values: &[f64]) {
    for (i, x) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if x.is_finite() {
            let _ = write!(out, "{x}");
        } else {
            out.push_str("null");
        }
    }
}

/// Parse `"score":<num>` out of an ingest response without a full JSON
/// tree (this runs inside the timed loop's bookkeeping).
fn score_of(body: &[u8]) -> f64 {
    let text = std::str::from_utf8(body).expect("UTF-8 response");
    let rest = text.split("\"score\":").nth(1).expect("score field");
    let end = rest.find(',').unwrap_or(rest.len());
    parse_score_token(&rest[..end])
}

/// Parse the `"scores":[...]` array of a batch response into a reused
/// buffer.
fn scores_of(body: &[u8], out: &mut Vec<f64>) {
    out.clear();
    let text = std::str::from_utf8(body).expect("UTF-8 response");
    let rest = text.split("\"scores\":[").nth(1).expect("scores field");
    let list = &rest[..rest.find(']').expect("closing bracket")];
    if !list.is_empty() {
        out.extend(list.split(',').map(parse_score_token));
    }
}

fn parse_score_token(token: &str) -> f64 {
    if token == "null" {
        f64::NAN
    } else {
        token.parse().expect("score parses")
    }
}

/// One tenant's work item: its key, its profile twin, and the records
/// the client will stream. The `single_ns` / `batch_ns` accumulators
/// collect per-request service time (request write → response read) so
/// batch amortization can be reported per detector method.
struct Tenant {
    entity: String,
    method: &'static str,
    twin: ServingProfile,
    records: Vec<Vec<f64>>,
    single_ns: u64,
    batch_ns: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Stream `count` single-record requests from `tenant`'s record list
/// (cycling), verifying each served score bitwise against the twin.
/// Returns the summed request round-trip time (service time only —
/// body building and twin verification are outside the clock).
fn drive_single(
    client: &mut Client,
    path: &str,
    tenant: &mut Tenant,
    count: usize,
    body: &mut String,
) -> u64 {
    let mut spent = 0u64;
    for i in 0..count {
        let record = &tenant.records[i % tenant.records.len()];
        write_record_body(body, record);
        let t0 = Instant::now();
        let (status, resp) = client.request("POST", path, body.as_bytes());
        spent += t0.elapsed().as_nanos() as u64;
        assert_eq!(status, 200, "ingest failed for {}", tenant.entity);
        let (want, _) = tenant.twin.ingest(record);
        let got = score_of(resp);
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "served score diverged for {}: {got} vs {want}",
            tenant.entity
        );
    }
    spent
}

fn main() {
    // Install the worker-side allocation probe before the gatekeeper
    // spawns its workers (each worker snapshots the probe at spawn).
    set_alloc_probe(thread_allocs);

    let quick = std::env::args().any(|a| a == "--quick");
    let nodelay = !std::env::args().any(|a| a == "--no-nodelay");
    let (entities, clients, records_per_entity) =
        if quick { (4usize, 2usize, 200usize) } else { (16, 8, 1000) };
    let methods =
        [StreamMethod::Ewma, StreamMethod::Cusum, StreamMethod::Histogram, StreamMethod::Knn];

    // Fit once per method on the replay driver's own data path.
    let ds = DatasetBuilder::tiny(11).build();
    let config = ExperimentConfig::default();
    let (_transform, train, tests) = prepare(&ds, &config);
    assert!(!tests.is_empty(), "no test traces");
    let budget = TrainingBudget::Quick;

    let fitted: Vec<(StreamMethod, ServingProfile)> = methods
        .iter()
        .map(|&method| {
            let det = build_servable(
                method,
                &train,
                config.threshold_holdout,
                budget,
                stream_seed(config.seed, method),
            );
            // Unsupervised threshold: high quantile of the detector's own
            // scores over a training trace.
            let holdout: &TimeSeries = &train[0];
            let scores = replay_series(&mut det.clone(), holdout);
            let threshold = quantile(&scores, 0.99);
            (method, ServingProfile::new(det, threshold))
        })
        .collect();

    // One worker per core: on a small box a single worker multiplexing
    // every connection beats a thread herd fighting over the scheduler.
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    let gk = Gatekeeper::bind(
        "127.0.0.1:0",
        GatekeeperConfig { workers, ..GatekeeperConfig::default() },
    )
    .expect("bind gatekeeper");
    let addr = gk.local_addr();

    // One tenant per entity: method round-robin, trace round-robin.
    let mut upload = Client::connect(addr, nodelay);
    let mut checkpoint_bytes = 0usize;
    let mut work: Vec<Vec<Tenant>> = (0..clients).map(|_| Vec::new()).collect();
    for e in 0..entities {
        let (method, profile) = &fitted[e % fitted.len()];
        let series = &tests[e % tests.len()].series;
        let n = series.len().min(records_per_entity);
        let records: Vec<Vec<f64>> = (0..n).map(|i| series.record(i).to_vec()).collect();
        let entity = format!("exec-{e}-{}", method.label());
        let image = profile.to_bytes();
        checkpoint_bytes += image.len();
        let (status, _) = upload.request("PUT", &format!("/v1/profile/spark-app/{entity}"), &image);
        assert_eq!(status, 200, "profile upload failed for {entity}");
        work[e % clients].push(Tenant {
            entity,
            method: method.label(),
            twin: profile.clone(),
            records,
            single_ns: 0,
            batch_ns: 0,
        });
    }

    let total_requests: usize = work.iter().flatten().map(|t| t.records.len()).sum();
    println!(
        "load_gen: {entities} entities x {} records, {clients} clients, {total_requests} requests, \
         {workers} workers, nodelay={nodelay}",
        records_per_entity
    );

    // ---------------------------------------------- phase 1: single-record
    // Concurrent replay: each client owns a disjoint tenant set, so
    // per-tenant request order (and thus detector state) is deterministic
    // no matter how the clients interleave on the server.
    let started = Instant::now();
    let mut results: Vec<(Vec<u64>, Vec<Tenant>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = work
            .into_iter()
            .map(|tenants| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr, nodelay);
                    let mut latencies = Vec::with_capacity(tenants.len() * records_per_entity);
                    let mut body = String::new();
                    let mut tenants = tenants;
                    for tenant in &mut tenants {
                        let path = format!("/v1/ingest/spark-app/{}", tenant.entity);
                        for i in 0..tenant.records.len() {
                            let record = &tenant.records[i];
                            write_record_body(&mut body, record);
                            let t0 = Instant::now();
                            let (status, resp) = client.request("POST", &path, body.as_bytes());
                            let spent = t0.elapsed().as_nanos() as u64;
                            latencies.push(spent);
                            tenant.single_ns += spent;
                            assert_eq!(status, 200, "ingest failed for {}", tenant.entity);
                            let got = score_of(resp);
                            let (want, _) = tenant.twin.ingest(record);
                            assert_eq!(
                                got.to_bits(),
                                want.to_bits(),
                                "served score diverged for {}: {got} vs {want}",
                                tenant.entity
                            );
                        }
                    }
                    (latencies, tenants)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let throughput = total_requests as f64 / elapsed;
    let single_latency_ns: u64 = results.iter().flat_map(|(l, _)| l.iter().copied()).sum();

    // ------------------------------------------------- phase 2: alloc guard
    // Meter the worker-side allocation count of the warmed ingest fast
    // path. The in-place detectors (EWMA here) must be exactly
    // allocation-free; kNN's scoring kernel allocates, so it gets a small
    // pinned budget instead. Run one tenant at a time so the gatekeeper's
    // cumulative counters isolate each method.
    let mut alloc_client = Client::connect(addr, nodelay);
    let mut body = String::new();
    let mut metered = |tenant: &mut Tenant, warm: usize, measured: usize| -> f64 {
        let path = format!("/v1/ingest/spark-app/{}", tenant.entity);
        drive_single(&mut alloc_client, &path, tenant, warm, &mut body);
        let before = gk.gate_stats();
        drive_single(&mut alloc_client, &path, tenant, measured, &mut body);
        let after = gk.gate_stats();
        let requests = after.ingest_requests - before.ingest_requests;
        assert_eq!(requests as usize, measured, "metered request count");
        (after.ingest_allocs - before.ingest_allocs) as f64 / requests as f64
    };
    let (warm, measured) = if quick { (64, 128) } else { (256, 512) };
    // Tenant 0 is EWMA, tenant 3 is kNN (method round-robin above).
    let ewma_tenant = &mut results[0].1[0];
    assert!(ewma_tenant.entity.ends_with("EWMA"), "tenant 0 must be EWMA: {}", ewma_tenant.entity);
    let ewma_allocs = metered(ewma_tenant, warm, measured);
    assert_eq!(
        ewma_allocs, 0.0,
        "warmed single-record ingest must be allocation-free in the worker"
    );
    let knn_tenant = &mut results[3 % clients].1[3 / clients];
    assert!(knn_tenant.entity.ends_with("kNN"), "expected kNN tenant: {}", knn_tenant.entity);
    let knn_allocs = metered(knn_tenant, warm, measured);
    assert!(knn_allocs <= 16.0, "kNN ingest allocation budget exceeded: {knn_allocs} per request");
    println!("alloc guard: ewma {ewma_allocs}/req, knn {knn_allocs}/req");

    // ---------------------------------------------------- phase 3: batching
    // The same tenants continue their streams through /v1/score in
    // BATCH-record bodies; every score still verified bitwise. The
    // speedup metric compares *service* latency per record (request
    // write → response read) between the two phases — that is the cost
    // batching amortizes. Wall-clock throughput is recorded too, but on
    // this end-to-end harness it also pays the client-side twin scoring,
    // which batching cannot touch.
    let batch_records: usize = results.iter().flat_map(|(_, ts)| ts).map(|t| t.records.len()).sum();
    let batch_started = Instant::now();
    let batch_latency_ns: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = results
            .iter_mut()
            .map(|(_, tenants)| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr, nodelay);
                    let mut body = String::new();
                    let mut got = Vec::new();
                    let mut spent = 0u64;
                    for tenant in tenants.iter_mut() {
                        let path = format!("/v1/score/spark-app/{}", tenant.entity);
                        for chunk in tenant.records.chunks(BATCH) {
                            write_batch_body(&mut body, chunk);
                            let t0 = Instant::now();
                            let (status, resp) = client.request("POST", &path, body.as_bytes());
                            let took = t0.elapsed().as_nanos() as u64;
                            spent += took;
                            tenant.batch_ns += took;
                            assert_eq!(status, 200, "batch score failed for {}", tenant.entity);
                            scores_of(resp, &mut got);
                            assert_eq!(got.len(), chunk.len(), "batch response length");
                            for (record, got) in chunk.iter().zip(&got) {
                                let (want, _) = tenant.twin.ingest(record);
                                assert_eq!(
                                    got.to_bits(),
                                    want.to_bits(),
                                    "batch score diverged for {}",
                                    tenant.entity
                                );
                            }
                        }
                    }
                    spent
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("batch client thread")).sum()
    });
    let batch_elapsed = batch_started.elapsed().as_secs_f64();
    let batch_rps = batch_records as f64 / batch_elapsed;
    let single_ns_per_record = single_latency_ns as f64 / total_requests as f64;
    let batch_ns_per_record = batch_latency_ns as f64 / batch_records as f64;
    let batch_speedup = single_ns_per_record / batch_ns_per_record;

    // Per-method amortization: (method label, single ns/rec, batch
    // ns/rec, speedup). The in-place detectors are request-overhead
    // bound, so batching collapses their cost; kNN is compute-bound per
    // record and its ratio honestly shows that floor.
    let per_method: Vec<(&str, f64, f64, f64)> = methods
        .iter()
        .map(|m| {
            let (mut single, mut batch, mut n) = (0u64, 0u64, 0u64);
            for tenant in results.iter().flat_map(|(_, ts)| ts) {
                if tenant.method == m.label() {
                    single += tenant.single_ns;
                    batch += tenant.batch_ns;
                    n += tenant.records.len() as u64;
                }
            }
            let s = single as f64 / n as f64;
            let b = batch as f64 / n as f64;
            (m.label(), s, b, s / b)
        })
        .collect();
    // Unloaded amortization gate: one sequential client on the EWMA
    // tenant, no concurrent traffic, so per-request time is pure serving
    // cost with no queueing behind other clients' (much longer) batch
    // requests. This is the number the batch endpoint exists to improve:
    // request overhead per record on an overhead-bound detector.
    let solo_records = if quick { 256 } else { 1024 };
    let mut solo = Client::connect(addr, nodelay);
    let (solo_single_ns, solo_batch_ns) = {
        let tenant = &mut results[0].1[0];
        assert_eq!(tenant.method, "EWMA", "tenant 0 must be EWMA");
        let ingest_path = format!("/v1/ingest/spark-app/{}", tenant.entity);
        let score_path = format!("/v1/score/spark-app/{}", tenant.entity);
        let mut body = String::new();
        let single_ns = drive_single(&mut solo, &ingest_path, tenant, solo_records, &mut body)
            / solo_records as u64;
        let mut got = Vec::new();
        let mut consumed = 0usize;
        let mut spent = 0u64;
        'outer: loop {
            for chunk in tenant.records.chunks(BATCH) {
                if consumed >= solo_records {
                    break 'outer;
                }
                write_batch_body(&mut body, chunk);
                let t0 = Instant::now();
                let (status, resp) = solo.request("POST", &score_path, body.as_bytes());
                spent += t0.elapsed().as_nanos() as u64;
                assert_eq!(status, 200, "solo batch score failed");
                scores_of(resp, &mut got);
                for (record, got) in chunk.iter().zip(&got) {
                    let (want, _) = tenant.twin.ingest(record);
                    assert_eq!(got.to_bits(), want.to_bits(), "solo batch score diverged");
                }
                consumed += chunk.len();
            }
        }
        (single_ns, spent / consumed as u64)
    };
    let solo_speedup = solo_single_ns as f64 / solo_batch_ns as f64;
    assert!(
        solo_speedup >= 3.0,
        "batch-{BATCH} must clear 3x single-record service rate on the \
         overhead-bound path (EWMA, unloaded), got {solo_speedup:.2}x \
         ({solo_single_ns}ns vs {solo_batch_ns}ns per record)"
    );

    // Post-run audit: every checkpoint equals its twin, byte for byte.
    // Fresh connection: the upload one idled past the server read timeout.
    let mut audit = Client::connect(addr, nodelay);
    for (_, tenants) in &results {
        for tenant in tenants {
            let (status, image) =
                audit.request("GET", &format!("/v1/checkpoint/spark-app/{}", tenant.entity), b"");
            assert_eq!(status, 200, "checkpoint download failed for {}", tenant.entity);
            assert_eq!(image, tenant.twin.to_bytes(), "checkpoint diverged for {}", tenant.entity);
        }
    }

    let mut latencies: Vec<u64> = results.iter().flat_map(|(l, _)| l.iter().copied()).collect();
    latencies.sort_unstable();
    assert_eq!(latencies.len(), total_requests);
    let (p50, p90, p99, max) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
        *latencies.last().unwrap_or(&0),
    );

    let stats = gk.stats();
    assert_eq!(stats.insertions as usize, entities);
    println!("single: elapsed {elapsed:.2}s, throughput {throughput:.0} req/s");
    println!("ingest latency: p50 {p50}ns, p90 {p90}ns, p99 {p99}ns, max {max}ns");
    println!(
        "batch-{BATCH}: {batch_records} records in {batch_elapsed:.2}s = {batch_rps:.0} rec/s wall; \
         service {batch_ns_per_record:.0}ns/record vs {single_ns_per_record:.0}ns single \
         ({batch_speedup:.1}x)"
    );
    for (label, s, b, x) in &per_method {
        println!("  {label}: {s:.0}ns -> {b:.0}ns per record ({x:.1}x)");
    }
    println!(
        "  unloaded EWMA: {solo_single_ns}ns -> {solo_batch_ns}ns per record ({solo_speedup:.1}x)"
    );
    println!(
        "registry: {} profiles, {} bytes resident, {} hits",
        stats.resident_profiles, stats.resident_bytes, stats.hits
    );
    gk.shutdown();

    // ------------------------------------------------------ phase 4: spill
    // A gatekeeper whose byte budget holds one profile per shard: round-
    // robin ingest over more tenants than fit churns evict→spill→restore
    // on nearly every request, and every score must still continue each
    // twin's stream bitwise.
    let spill_dir =
        std::env::temp_dir().join(format!("exathlon-loadgen-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill_dir);
    let spill_entities = if quick { 4 } else { 8 };
    let spill_rounds = if quick { 25 } else { 100 };
    let gk2 = Gatekeeper::bind(
        "127.0.0.1:0",
        GatekeeperConfig {
            workers: 1,
            shards: 2,
            budget_bytes_per_shard: 1,
            spill_dir: Some(spill_dir.clone()),
            ..GatekeeperConfig::default()
        },
    )
    .expect("bind spill gatekeeper");
    let addr2 = gk2.local_addr();
    let mut client = Client::connect(addr2, nodelay);
    let mut spill_tenants: Vec<Tenant> = (0..spill_entities)
        .map(|e| {
            let (method, profile) = &fitted[e % fitted.len()];
            let series = &tests[e % tests.len()].series;
            let n = series.len().min(spill_rounds);
            let records: Vec<Vec<f64>> = (0..n).map(|i| series.record(i).to_vec()).collect();
            let entity = format!("spill-{e}-{}", method.label());
            let (status, _) = client.request(
                "PUT",
                &format!("/v1/profile/spark-app/{entity}"),
                &profile.to_bytes(),
            );
            assert_eq!(status, 200, "spill profile upload failed for {entity}");
            Tenant {
                entity,
                method: method.label(),
                twin: profile.clone(),
                records,
                single_ns: 0,
                batch_ns: 0,
            }
        })
        .collect();
    let spill_started = Instant::now();
    for round in 0..spill_rounds {
        for tenant in &mut spill_tenants {
            let record = &tenant.records[round % tenant.records.len()];
            write_record_body(&mut body, record);
            let path = format!("/v1/ingest/spark-app/{}", tenant.entity);
            let (status, resp) = client.request("POST", &path, body.as_bytes());
            assert_eq!(status, 200, "spill ingest failed for {}", tenant.entity);
            let (want, _) = tenant.twin.ingest(record);
            assert_eq!(
                score_of(resp).to_bits(),
                want.to_bits(),
                "score diverged across spill/restore for {}",
                tenant.entity
            );
        }
    }
    let spill_elapsed = spill_started.elapsed().as_secs_f64();
    // Checkpoints come back bitwise even for currently-spilled tenants.
    for tenant in &spill_tenants {
        let (status, image) =
            client.request("GET", &format!("/v1/checkpoint/spark-app/{}", tenant.entity), b"");
        assert_eq!(status, 200, "spill checkpoint download failed for {}", tenant.entity);
        assert_eq!(
            image,
            tenant.twin.to_bytes(),
            "spill checkpoint diverged for {}",
            tenant.entity
        );
    }
    let spill_requests = spill_entities * spill_rounds;
    let g2 = gk2.gate_stats();
    assert!(g2.spills > 0 && g2.restores > 0, "spill phase must exercise evict/restore");
    let spill_rps = spill_requests as f64 / spill_elapsed;
    println!(
        "spill: {spill_requests} requests over {spill_entities} tenants, {} spills, {} restores, \
         {spill_rps:.0} req/s",
        g2.spills, g2.restores
    );
    gk2.shutdown();
    let _ = std::fs::remove_dir_all(&spill_dir);

    // ------------------------------------------------------------ snapshot
    let json = format!(
        "{{\n  \"entities\": {entities},\n  \"clients\": {clients},\n  \
         \"records_per_entity\": {records_per_entity},\n  \"requests\": {total_requests},\n  \
         \"elapsed_sec\": {elapsed:.3},\n  \"throughput_rps\": {throughput:.1},\n  \
         \"ingest_latency_ns\": {{\"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}, \
         \"max\": {max}}},\n  \
         \"batch\": {{\"batch_size\": {BATCH}, \"records\": {batch_records}, \
         \"elapsed_sec\": {batch_elapsed:.3}, \"records_per_sec\": {batch_rps:.1}, \
         \"service_ns_per_record_single\": {single_ns_per_record:.0}, \
         \"service_ns_per_record_batch\": {batch_ns_per_record:.0}, \
         \"speedup_vs_single\": {batch_speedup:.2}, \
         \"per_method\": {{{per_method_json}}}, \
         \"unloaded_ewma\": {{\"single_ns\": {solo_single_ns}, \"batch_ns\": {solo_batch_ns}, \
         \"speedup\": {solo_speedup:.2}}}}},\n  \
         \"alloc\": {{\"ewma_allocs_per_request\": {ewma_allocs}, \
         \"knn_allocs_per_request\": {knn_allocs}}},\n  \
         \"spill\": {{\"entities\": {spill_entities}, \"requests\": {spill_requests}, \
         \"spills\": {spills}, \"restores\": {restores}, \"throughput_rps\": {spill_rps:.1}, \
         \"bitwise_ok\": true}},\n  \
         \"checkpoint\": {{\"profiles\": {entities}, \"bytes_total\": {checkpoint_bytes}, \
         \"bitwise_ok\": true}},\n  \
         \"methods\": [{methods_json}],\n  \
         \"notes\": \"TCP_NODELAY set on server-accepted and client sockets; measured effect \
         of --no-nodelay (Nagle left on client side) is within run noise on p50/p99/max because \
         the request cycle issues exactly one write per message — the pre-striping two-write \
         cycle (head, then body) was the Nagle+delayed-ACK stall risk. Workers = available \
         cores; per-worker connection striping with bounded accept queues (503 + Retry-After \
         when saturated).\"\n}}\n",
        spills = g2.spills,
        restores = g2.restores,
        per_method_json = per_method
            .iter()
            .map(|(label, s, b, x)| format!(
                "\"{label}\": {{\"single_ns\": {s:.0}, \"batch_ns\": {b:.0}, \"speedup\": {x:.2}}}"
            ))
            .collect::<Vec<_>>()
            .join(", "),
        methods_json =
            methods.iter().map(|m| format!("\"{}\"", m.label())).collect::<Vec<_>>().join(", "),
    );
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join("BENCH_serving.json");
    std::fs::write(&path, json).expect("write BENCH_serving.json");
    println!("Wrote {}", path.display());
}
