//! Reproduces **Figures 5 and 8**: record-wise outlier scores of the AE
//! and LSTM methods on specific traces, showing the paper's contrast
//! between AE's smooth window-averaged scores and LSTM's discontinuous
//! spikes (which explain their AD2/AD4 behaviour).

use exathlon_bench::{build_dataset, default_config, Scale};
use exathlon_core::config::AdMethod;
use exathlon_core::experiment::run_pipeline;
use exathlon_sparksim::AnomalyType;

/// Downsample a score series into `cols` buckets rendered as a bar strip.
fn sparkline(scores: &[f64], labels: &[bool], cols: usize) -> String {
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let max = scores.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    let chunk = scores.len().div_ceil(cols).max(1);
    let mut line = String::new();
    let mut marks = String::new();
    for c in scores.chunks(chunk) {
        let v = c.iter().cloned().fold(0.0, f64::max) / max;
        let idx = ((v * (glyphs.len() - 1) as f64).round() as usize).min(glyphs.len() - 1);
        line.push(glyphs[idx]);
    }
    for c in labels.chunks(chunk) {
        marks.push(if c.iter().any(|&l| l) { 'A' } else { ' ' });
    }
    format!("scores |{line}|\nanomaly|{marks}|")
}

/// Spikiness: mean absolute tick-to-tick jump relative to the score scale.
fn spikiness(scores: &[f64]) -> f64 {
    let max = scores.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    let jumps: f64 = scores.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
    jumps / (scores.len().max(2) - 1) as f64 / max
}

fn main() {
    let scale = Scale::from_args();
    let ds = build_dataset(scale);
    let config = default_config(scale);
    let run = run_pipeline(&ds, &config, &[AdMethod::Ae, AdMethod::Lstm], scale.budget());

    for (figure, wanted) in [
        ("Figure 5: T1 (bursty input) trace", AnomalyType::BurstyInput),
        ("Figure 8: T4 (CPU contention) trace", AnomalyType::CpuContention),
    ] {
        println!("=== {figure} ===");
        for method in [AdMethod::Lstm, AdMethod::Ae] {
            let mr = run.method_run(method);
            let Some(t) = mr.scored.iter().find(|t| t.dominant_type == Some(wanted)) else {
                println!("(no {wanted:?} trace at this scale)");
                continue;
            };
            println!("--- {} on trace {} ---", method.label(), t.trace_id);
            println!("{}", sparkline(&t.scores, &t.labels, 100));
            println!("spikiness = {:.4}\n", spikiness(&t.scores));
        }
    }

    // The paper's claim: LSTM scores are spikier than AE's.
    let spk = |m: AdMethod| -> f64 {
        let mr = run.method_run(m);
        let v: Vec<f64> = mr.scored.iter().map(|t| spikiness(&t.scores)).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let (lstm, ae) = (spk(AdMethod::Lstm), spk(AdMethod::Ae));
    println!(
        "Mean spikiness: LSTM {lstm:.4} vs AE {ae:.4} -> {}",
        if lstm > ae {
            "LSTM spikier (paper shape: hurts AD2/AD4)"
        } else {
            "AE spikier (diverges)"
        }
    );
    // Final cumulative profile snapshot (covers post-pipeline phases);
    // no-op unless EXATHLON_PROFILE=1.
    let _ = exathlon_core::obs::emit_report();
}
