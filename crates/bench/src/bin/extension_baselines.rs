//! **Extension study** (beyond the paper's three DL methods): how the
//! classical AD families of the related-work section — distance-based
//! (kNN), density-based (LOF), isolation-based (iForest), statistical
//! (EWMA), and point-outlier (MAD) — fare on the same benchmark, under the
//! identical LS4 / FS_custom / AD2 setting.
//!
//! The paper argues the DL methods "overcome known limitations of previous
//! density- and distance-based methods"; this binary quantifies that claim
//! on the reproduced dataset.

use exathlon_bench::{build_dataset, default_config, Scale};
use exathlon_core::config::AdMethod;
use exathlon_core::experiment::run_pipeline;
use exathlon_core::report::SeparationTable;
use exathlon_tsmetrics::presets::AdLevel;

fn main() {
    let scale = Scale::from_args();
    println!("Extension: classical baselines vs DL methods at {scale:?} scale");
    let ds = build_dataset(scale);
    let config = default_config(scale);

    let mut methods = AdMethod::PAPER_METHODS.to_vec();
    methods.extend(AdMethod::BASELINES);
    let run = run_pipeline(&ds, &config, &methods, scale.budget());

    let mut table = SeparationTable::default();
    for (method, mr) in &run.methods {
        table.push(method.label(), mr.separation.clone());
    }
    println!("\n=== Separation AUPRC (LS4, FS_custom), all methods ===");
    print!("{table}");

    println!("\n=== Detection at AD2 (best / median over 24 thresholds) ===");
    println!("{:<8} {:>8} {:>8}", "Method", "Best F1", "Med F1");
    for method in &methods {
        let (best, median) = run.detection_best_median(*method, AdLevel::Range);
        println!("{:<8} {:>8.2} {:>8.2}", method.label(), best.f1, median.f1);
    }

    println!(
        "\nReading guide: point-wise baselines (MAD, EWMA) lack the windowed\n\
         context to hold a range detection together; distance/density methods\n\
         are competitive at the 19-feature dimensionality but are exactly the\n\
         methods the paper notes degrade as dimensionality grows."
    );
    // Final cumulative profile snapshot (covers post-pipeline phases);
    // no-op unless EXATHLON_PROFILE=1.
    let _ = exathlon_core::obs::emit_report();
}
