//! Records the dense-kernel speedups behind the PR's acceptance
//! criteria: blocked/SIMD GEMM vs the retained naive triple loop, and
//! the Gram-trick batched distance kernel vs the per-pair scalar loop.
//!
//! Runs single-threaded (`EXATHLON_THREADS=1` is forced before any
//! kernel use) so the numbers measure the kernels themselves, not the
//! worker pool. Writes `results/BENCH_kernels.json` with the median
//! ns/op of every measured variant; the vendored criterion stand-in
//! prints but does not persist, so this binary does its own timing.

use exathlon_linalg::kernel::{naive_matmul, DistanceKernel};
use exathlon_linalg::Matrix;
use std::time::Instant;

/// One measured baseline/kernel pair.
struct Group {
    name: String,
    baseline_ns: f64,
    kernel_ns: f64,
}

impl Group {
    fn speedup(&self) -> f64 {
        self.baseline_ns / self.kernel_ns
    }
}

/// Median wall time of `reps` calls, in ns/op (each call is one op).
fn median_ns(reps: usize, mut op: impl FnMut()) -> f64 {
    assert!(reps > 0);
    // One warm-up call outside the sample.
    op();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            op();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn gemm_group(n: usize, reps: usize) -> Group {
    let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j) as f64 * 0.01).sin());
    let b = Matrix::from_fn(n, n, |i, j| ((i + j * 17) as f64 * 0.01).cos());
    Group {
        name: format!("gemm{n}"),
        baseline_ns: median_ns(reps, || {
            std::hint::black_box(naive_matmul(&a, &b));
        }),
        kernel_ns: median_ns(reps, || {
            std::hint::black_box(a.matmul(&b));
        }),
    }
}

fn distance_group(queries: usize, refs: usize, dims: usize, reps: usize) -> Group {
    let reference: Vec<Vec<f64>> = (0..refs)
        .map(|i| (0..dims).map(|j| ((i * 13 + j * 7) as f64 * 0.011).sin()).collect())
        .collect();
    let query: Vec<Vec<f64>> = (0..queries)
        .map(|i| (0..dims).map(|j| ((i * 5 + j * 29) as f64 * 0.017).cos()).collect())
        .collect();
    let kernel = DistanceKernel::fit(&reference);
    Group {
        name: format!("dist{queries}x{refs}d{dims}"),
        baseline_ns: median_ns(reps, || {
            for q in &query {
                std::hint::black_box(kernel.naive_sq_distances_to(q));
            }
        }),
        kernel_ns: median_ns(reps, || {
            std::hint::black_box(kernel.sq_distances(&query));
        }),
    }
}

fn to_json(groups: &[Group]) -> String {
    let mut out = String::from("{\n  \"threads\": 1,\n  \"unit\": \"ns/op (median)\",\n");
    out.push_str("  \"groups\": [\n");
    for (i, g) in groups.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_ns\": {:.0}, \"kernel_ns\": {:.0}, \
             \"speedup\": {:.2}}}{}\n",
            g.name,
            g.baseline_ns,
            g.kernel_ns,
            g.speedup(),
            if i + 1 < groups.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    // Single-core measurement: set before the first kernel call.
    std::env::set_var(exathlon_linalg::par::THREADS_ENV, "1");

    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 5 } else { 15 };

    println!("Dense-kernel benchmarks (single-threaded, {reps} reps, median):\n");
    let groups = vec![
        gemm_group(64, reps * 3),
        gemm_group(128, reps),
        gemm_group(256, reps),
        distance_group(256, 512, 19, reps * 3),
        distance_group(1024, 1024, 19, reps),
    ];

    println!("{:<18} {:>14} {:>14} {:>9}", "group", "baseline ns", "kernel ns", "speedup");
    for g in &groups {
        println!(
            "{:<18} {:>14.0} {:>14.0} {:>8.2}x",
            g.name,
            g.baseline_ns,
            g.kernel_ns,
            g.speedup()
        );
    }

    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join("BENCH_kernels.json");
    std::fs::write(&path, to_json(&groups)).expect("write BENCH_kernels.json");
    println!("\nWrote {}", path.display());
}
