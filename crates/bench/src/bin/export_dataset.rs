//! Export the generated benchmark dataset — traces plus the ground-truth
//! table — as JSON artifacts, the "curated anomaly dataset" deliverable of
//! the paper's contribution (i). Usage:
//!
//! ```sh
//! cargo run --release -p exathlon-bench --bin export_dataset -- [--quick] [out_dir]
//! ```

use exathlon_bench::{build_dataset, Scale};
use exathlon_sparksim::persist::{save_dataset, save_ground_truth};
use std::path::PathBuf;

fn main() {
    let scale = Scale::from_args();
    let out_dir: PathBuf = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "exathlon_dataset".into())
        .into();
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    println!("Building the dataset at {scale:?} scale...");
    let ds = build_dataset(scale);

    let ds_path = out_dir.join("dataset.json");
    save_dataset(&ds, &ds_path).expect("write dataset");
    let gt_path = out_dir.join("ground_truth.json");
    save_ground_truth(&ds.ground_truth, &gt_path).expect("write ground truth");

    let size = std::fs::metadata(&ds_path).map(|m| m.len()).unwrap_or(0);
    println!(
        "Wrote {} traces ({} records, {:.1} MB) to {} and {} ground-truth rows to {}",
        ds.undisturbed.len() + ds.disturbed.len(),
        ds.total_records(),
        size as f64 / 1e6,
        ds_path.display(),
        ds.ground_truth.len(),
        gt_path.display()
    );
}
