//! Records the zero-copy window data plane speedups behind the PR's
//! acceptance criteria: view-based pooled windows + gathered batches
//! against the materialized escape hatch (which re-enacts the old
//! flatten/clone/`from_rows` copies for real), and the fused
//! resample+rescale transform against the staged two-pass version.
//!
//! Runs single-threaded (`EXATHLON_THREADS=1` is forced up front) so the
//! numbers measure the data plane, not the worker pool. Also meters the
//! bytes both planes copy via the `dataplane.*` observability counters
//! and reports the copy-reduction ratio. Writes
//! `results/BENCH_dataplane.json`.

use exathlon_ad::scorer::{pooled_windows, window_batch};
use exathlon_tsdata::resample::resample_mean;
use exathlon_tsdata::scale::{DynamicScaler, StandardScaler};
use exathlon_tsdata::series::default_names;
use exathlon_tsdata::window::{WindowSet, MATERIALIZED_WINDOWS_ENV};
use exathlon_tsdata::TimeSeries;
use std::time::Instant;

/// The AE/LSTM shape on `FS_custom`: 19 features, window 8.
const DIMS: usize = 19;
const WINDOW: usize = 8;
/// Training pool: 10 traces of 4,000 records; window cap as in AE fit.
const TRACES: usize = 10;
const TRACE_LEN: usize = 4_000;
const MAX_WINDOWS: usize = 4_000;

/// One measured baseline/data-plane pair.
struct Group {
    name: String,
    baseline_ns: f64,
    dataplane_ns: f64,
}

impl Group {
    fn speedup(&self) -> f64 {
        self.baseline_ns / self.dataplane_ns
    }
}

/// Median wall time of `reps` calls, in ns/op (each call is one op).
fn median_ns(reps: usize, mut op: impl FnMut()) -> f64 {
    assert!(reps > 0);
    // One warm-up call outside the sample.
    op();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            op();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Time `op` once per mode: under `EXATHLON_MATERIALIZED_WINDOWS=1`
/// (baseline) and with the toggle cleared (data plane).
fn mode_group(name: &str, reps: usize, mut op: impl FnMut()) -> Group {
    std::env::set_var(MATERIALIZED_WINDOWS_ENV, "1");
    let baseline_ns = median_ns(reps, &mut op);
    std::env::remove_var(MATERIALIZED_WINDOWS_ENV);
    let dataplane_ns = median_ns(reps, &mut op);
    Group { name: name.to_string(), baseline_ns, dataplane_ns }
}

fn trace(len: usize, seed: usize) -> TimeSeries {
    let mut values = Vec::with_capacity(len * DIMS);
    for i in 0..len {
        for j in 0..DIMS {
            values.push((((i + seed * 131) * 13 + j * 7) as f64 * 0.011).sin());
        }
    }
    TimeSeries::from_flat(default_names(DIMS), 0, values)
}

/// The full training-pool path of AE/BiGAN fit: pooled stride-1
/// windows, subsampled to the cap, gathered into one batch matrix.
fn run_pooled_batch(train: &[&TimeSeries]) {
    let ws = pooled_windows(train, WINDOW, MAX_WINDOWS);
    std::hint::black_box(window_batch(&ws));
}

/// The AE score path: every stride-1 window of a test trace gathered
/// into one inference batch.
fn run_score_batch(test: &TimeSeries) {
    let ws = WindowSet::from_series(test, WINDOW, 1);
    std::hint::black_box(window_batch(&ws));
}

/// Staged test-time transform: materialize the resampled intermediate,
/// then rescale it (the pre-dataplane chain).
fn run_staged_transform(test: &TimeSeries, scaler: &StandardScaler, l: usize) {
    let mut dynamic = DynamicScaler::from_standard(scaler.clone(), 0.004);
    let unscaled = resample_mean(test, l);
    std::hint::black_box(dynamic.transform_series(&unscaled));
}

/// Fused test-time transform: resample and rescale in one streaming
/// pass, no intermediate series.
fn run_fused_transform(test: &TimeSeries, scaler: &StandardScaler, l: usize) {
    let mut dynamic = DynamicScaler::from_standard(scaler.clone(), 0.004);
    std::hint::black_box(dynamic.transform_series_resampled(test, l));
}

/// Meter the bytes one mode copies across the representative window
/// workload (fit pool + gather, score batch), via the `dataplane.*`
/// counters.
fn measure_bytes(train: &[&TimeSeries], test: &TimeSeries, materialized: bool) -> (u64, u64) {
    if materialized {
        std::env::set_var(MATERIALIZED_WINDOWS_ENV, "1");
    } else {
        std::env::remove_var(MATERIALIZED_WINDOWS_ENV);
    }
    exathlon_linalg::obs::reset();
    run_pooled_batch(train);
    run_score_batch(test);
    let report = exathlon_linalg::obs::report();
    std::env::remove_var(MATERIALIZED_WINDOWS_ENV);
    let get =
        |name: &str| report.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0);
    (get("dataplane.gather_bytes"), get("dataplane.materialized_bytes"))
}

fn to_json(groups: &[Group], gather_bytes: u64, materialized_bytes: u64) -> String {
    let reduction = materialized_bytes as f64 / gather_bytes.max(1) as f64;
    let mut out = String::from("{\n  \"threads\": 1,\n  \"unit\": \"ns/op (median)\",\n");
    out.push_str("  \"groups\": [\n");
    for (i, g) in groups.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_ns\": {:.0}, \"dataplane_ns\": {:.0}, \
             \"speedup\": {:.2}}}{}\n",
            g.name,
            g.baseline_ns,
            g.dataplane_ns,
            g.speedup(),
            if i + 1 < groups.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"bytes\": {{\"gather_bytes\": {gather_bytes}, \
         \"materialized_bytes\": {materialized_bytes}, \"copy_reduction\": {reduction:.2}}}\n"
    ));
    out.push_str("}\n");
    out
}

fn main() {
    // Single-core measurement: set before the first kernel call.
    std::env::set_var(exathlon_linalg::par::THREADS_ENV, "1");
    // Counters are metered below; the timing loops run with profiling off
    // so the data plane is measured without the recording overhead.
    std::env::remove_var(exathlon_linalg::obs::PROFILE_ENV);
    exathlon_linalg::obs::refresh();

    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 5 } else { 15 };

    let traces: Vec<TimeSeries> = (0..TRACES).map(|s| trace(TRACE_LEN, s)).collect();
    let train: Vec<&TimeSeries> = traces.iter().collect();
    let test = trace(TRACE_LEN, TRACES);
    let scaler = StandardScaler::fit_pooled(&train);

    println!("Window data-plane benchmarks (single-threaded, {reps} reps, median):\n");
    let groups = vec![
        mode_group("pooled_windows_batch", reps, || run_pooled_batch(&train)),
        mode_group("ae_score_batch", reps * 3, || run_score_batch(&test)),
        Group {
            name: "fused_transform".to_string(),
            baseline_ns: median_ns(reps * 3, || run_staged_transform(&test, &scaler, 5)),
            dataplane_ns: median_ns(reps * 3, || run_fused_transform(&test, &scaler, 5)),
        },
    ];

    println!("{:<22} {:>14} {:>14} {:>9}", "group", "baseline ns", "dataplane ns", "speedup");
    for g in &groups {
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>8.2}x",
            g.name,
            g.baseline_ns,
            g.dataplane_ns,
            g.speedup()
        );
    }

    // Byte metering: one workload per mode, profiling on.
    std::env::set_var(exathlon_linalg::obs::PROFILE_ENV, "1");
    exathlon_linalg::obs::refresh();
    let (gather_bytes, _) = measure_bytes(&train, &test, false);
    let (_, materialized_bytes) = measure_bytes(&train, &test, true);
    std::env::remove_var(exathlon_linalg::obs::PROFILE_ENV);
    exathlon_linalg::obs::refresh();
    println!(
        "\nbytes copied: gather {gather_bytes} vs materialized {materialized_bytes} \
         ({:.2}x reduction)",
        materialized_bytes as f64 / gather_bytes.max(1) as f64
    );

    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join("BENCH_dataplane.json");
    std::fs::write(&path, to_json(&groups, gather_bytes, materialized_bytes))
        .expect("write BENCH_dataplane.json");
    println!("\nWrote {}", path.display());
}
