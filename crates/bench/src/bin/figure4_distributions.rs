//! Reproduces **Figure 4**: outlier-score distributions of the AE method
//! (LS4, FS_custom) — (a) one disturbed trace, (b) one application's
//! disturbed traces, (c) all test data, and (d) the `D²_train` scores the
//! threshold is fitted on, with the selected threshold.

use exathlon_ad::threshold::{ThresholdRule, ThresholdStat};
use exathlon_bench::{ascii_histogram, build_dataset, default_config, Scale};
use exathlon_core::config::AdMethod;
use exathlon_core::experiment::run_pipeline;

fn main() {
    let scale = Scale::from_args();
    let ds = build_dataset(scale);
    let config = default_config(scale);
    let run = run_pipeline(&ds, &config, &[AdMethod::Ae], scale.budget());
    let mr = run.method_run(AdMethod::Ae);

    // Split scores by label for the separation story.
    let split = |tests: &[&exathlon_core::evaluate::ScoredTest]| -> (Vec<f64>, Vec<f64>) {
        let mut normal = Vec::new();
        let mut anomalous = Vec::new();
        for t in tests {
            for (&s, &l) in t.scores.iter().zip(&t.labels) {
                if l {
                    anomalous.push(s);
                } else {
                    normal.push(s);
                }
            }
        }
        (normal, anomalous)
    };

    // (a) one disturbed trace (a T2 trace, as in the paper).
    let t2 = mr
        .scored
        .iter()
        .find(|t| t.dominant_type == Some(exathlon_sparksim::AnomalyType::BurstyInputUntilCrash))
        .expect("a T2 trace exists");
    let (n, a) = split(&[t2]);
    println!("--- Figure 4(a): trace level ({}, T2) ---", t2.trace_id);
    println!("{}", ascii_histogram(&n, 12, 40, "normal records"));
    println!("{}", ascii_histogram(&a, 12, 40, "anomalous records"));

    // (b) application level: all disturbed traces of that trace's app.
    let app_tests: Vec<&exathlon_core::evaluate::ScoredTest> =
        mr.scored.iter().filter(|t| t.app_id == t2.app_id).collect();
    let (n, a) = split(&app_tests);
    println!("--- Figure 4(b): application level (app {}) ---", t2.app_id);
    println!("{}", ascii_histogram(&n, 12, 40, "normal records"));
    println!("{}", ascii_histogram(&a, 12, 40, "anomalous records"));

    // (c) global level.
    let all: Vec<&exathlon_core::evaluate::ScoredTest> = mr.scored.iter().collect();
    let (n, a) = split(&all);
    println!("--- Figure 4(c): global level ---");
    println!("{}", ascii_histogram(&n, 12, 40, "normal records"));
    println!("{}", ascii_histogram(&a, 12, 40, "anomalous records"));

    // (d) D2_train scores + the selected threshold.
    let rule = ThresholdRule { stat: ThresholdStat::Iqr, factor: 2.0, two_pass: true };
    let threshold = rule.fit(&mr.model.d2_scores);
    // Cut the largest 3% for readability, like the paper.
    let mut d2 = mr.model.d2_scores.clone();
    d2.sort_by(|x, y| x.partial_cmp(y).expect("finite scores"));
    let cut = (d2.len() as f64 * 0.97) as usize;
    println!("--- Figure 4(d): D2_train outlier scores (top 3% cut) ---");
    println!("{}", ascii_histogram(&d2[..cut.max(1)], 12, 40, "D2_train"));
    println!("Selected threshold ({}) = {threshold:.4}", rule.label());
    let missed = a.iter().filter(|&&s| s < threshold).count();
    let false_pos = n.iter().filter(|&&s| s >= threshold).count();
    println!(
        "At this threshold: {missed}/{} anomalous records missed (recall cost), \
         {false_pos}/{} normal records flagged (precision cost)",
        a.len(),
        n.len()
    );
    // Final cumulative profile snapshot (covers post-pipeline phases);
    // no-op unless EXATHLON_PROFILE=1.
    let _ = exathlon_core::obs::emit_report();
}
