//! Reproduces **Table 4**: range-based detection metrics (F1, precision,
//! recall, per-type recall) of LSTM, AE, and BiGAN at AD levels 1–4, with
//! the best and the median of the 24 unsupervised thresholding rules.

use exathlon_bench::{build_dataset, default_config, Scale};
use exathlon_core::config::AdMethod;
use exathlon_core::experiment::run_pipeline;
use exathlon_core::report::DetectionTable;
use exathlon_tsmetrics::presets::AdLevel;

fn main() {
    let scale = Scale::from_args();
    println!("Experiments 2-3 (LS4, FS_custom, AD1:4) at {scale:?} scale");
    let ds = build_dataset(scale);
    let config = default_config(scale);

    let run = run_pipeline(&ds, &config, &AdMethod::PAPER_METHODS, scale.budget());

    println!("\n=== Table 4: anomaly detection results (LS4, FS_custom) ===");
    let mut f1_by_level: Vec<Vec<f64>> = vec![Vec::new(); AdMethod::PAPER_METHODS.len()];
    for level in AdLevel::ALL {
        let mut table = DetectionTable { level: level.label(), ..Default::default() };
        for (mi, method) in AdMethod::PAPER_METHODS.iter().enumerate() {
            let (best, median) = run.detection_best_median(*method, level);
            f1_by_level[mi].push(median.f1);
            table.rows.push((method.label().into(), "Best".into(), best));
            table.rows.push((method.label().into(), "Med".into(), median));
        }
        println!("{table}");
    }

    println!("Shape checks vs the paper:");
    for (mi, method) in AdMethod::PAPER_METHODS.iter().enumerate() {
        let f1s = &f1_by_level[mi];
        let monotone = f1s.windows(2).all(|w| w[0] >= w[1] - 0.05);
        println!(
            "  {:<6} median F1 across AD1..AD4: {:?} -> {}",
            method.label(),
            f1s.iter().map(|f| (f * 100.0).round() / 100.0).collect::<Vec<_>>(),
            if monotone { "non-increasing (ok)" } else { "DIVERGES" }
        );
    }
    // Final cumulative profile snapshot (covers post-pipeline phases);
    // no-op unless EXATHLON_PROFILE=1.
    let _ = exathlon_core::obs::emit_report();
}
