//! Reproduces **Table 1**: the dataset composition — metric counts (a)
//! and the per-type trace/instance/length breakdown with ground-truth
//! format (b).

use exathlon_bench::{build_dataset, Scale};
use exathlon_sparksim::deg::AnomalyType;
use exathlon_sparksim::metrics::{
    FULL_DRIVER_METRICS, FULL_EXECUTOR_METRICS, FULL_METRICS, FULL_OS_METRICS,
};

fn main() {
    let scale = Scale::from_args();
    println!("Building the Exathlon dataset ({scale:?} scale)...");
    let ds = build_dataset(scale);

    println!("\n=== Table 1(a): metrics and data size ===");
    println!("Driver Spark UI metrics:    {FULL_DRIVER_METRICS}");
    println!("Executor Spark UI metrics:  5 x 140 = {FULL_EXECUTOR_METRICS}");
    println!("OS (Nmon) metrics:          4 x 335 = {FULL_OS_METRICS}");
    println!("Total metrics per trace:    {FULL_METRICS}");
    println!("Frequency:                  1 data item per second (1 tick)");
    println!("Data items (records):       {}", ds.total_records());
    let hours = ds.total_records() as f64 / 3600.0;
    println!("Duration:                   {hours:.1} simulated hours");

    println!("\n=== Table 1(b): traces, instances, anomaly lengths ===");
    println!(
        "{:<34} {:>6} {:>9} {:>22}",
        "Trace type", "Traces", "Instances", "Anomaly len min/avg/max"
    );
    println!("{:<34} {:>6} {:>9} {:>22}", "Undisturbed", ds.undisturbed.len(), "-", "-");
    let traces = ds.traces_per_type();
    for (i, t) in AnomalyType::ALL.iter().enumerate() {
        let lens: Vec<u64> = ds
            .ground_truth
            .iter()
            .filter(|e| e.anomaly_type == *t)
            .map(|e| e.anomaly_len())
            .collect();
        let (min, max) =
            (lens.iter().min().copied().unwrap_or(0), lens.iter().max().copied().unwrap_or(0));
        let avg =
            if lens.is_empty() { 0.0 } else { lens.iter().sum::<u64>() as f64 / lens.len() as f64 };
        println!(
            "{:<34} {:>6} {:>9} {:>9}s {:>5.0}s {:>5}s",
            format!("{}: {:?}", t.label(), t),
            traces[i],
            lens.len(),
            min,
            avg,
            max
        );
    }
    let total: usize = ds.instances_per_type().iter().sum();
    println!("Total anomaly instances: {total} over {} disturbed traces", ds.disturbed.len());

    println!("\nGround-truth label format (first 3 rows):");
    for e in ds.ground_truth.iter().take(3) {
        println!(
            "  (app_id={}, trace_id={}, type={}, rci=[{}, {}), eei={:?})",
            e.app_id,
            e.trace_id,
            e.anomaly_type.label(),
            e.root_cause_start,
            e.root_cause_end,
            e.extended_effect
        );
    }
    println!(
        "\nAs JSON: {}",
        serde_json::to_string(&ds.ground_truth[0]).expect("serializable ground truth")
    );
}
