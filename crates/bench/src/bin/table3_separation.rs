//! Reproduces **Table 3**: separation abilities (AUPRC) of LSTM, AE, and
//! BiGAN under the default setting (LS4, FS_custom, AD2), at trace,
//! application, and global level, overall and per anomaly type.
//!
//! The paper's headline shapes this binary should reproduce:
//! * AE separates best, LSTM worst, at every level,
//! * AUPRC decreases from trace to application to global level.

use exathlon_bench::{build_dataset, default_config, Scale};
use exathlon_core::config::AdMethod;
use exathlon_core::experiment::run_pipeline;
use exathlon_core::report::SeparationTable;

fn main() {
    let scale = Scale::from_args();
    println!("Experiment 1 (LS4, FS_custom, AD2) at {scale:?} scale");
    let ds = build_dataset(scale);
    let config = default_config(scale);

    let run = run_pipeline(&ds, &config, &AdMethod::PAPER_METHODS, scale.budget());

    let mut table = SeparationTable::default();
    for (method, mr) in &run.methods {
        table.push(method.label(), mr.separation.clone());
    }
    println!("\n=== Table 3: separation AUPRC (LS4, FS_custom) ===");
    print!("{table}");

    println!("\nShape checks vs the paper:");
    for (method, mr) in &run.methods {
        let s = &mr.separation;
        let monotone =
            s.trace.average >= s.app.average - 0.05 && s.app.average >= s.global.average - 0.05;
        println!(
            "  {:<6} trace {:.2} >= app {:.2} >= global {:.2} : {}",
            method.label(),
            s.trace.average,
            s.app.average,
            s.global.average,
            if monotone { "ok" } else { "DIVERGES" }
        );
    }
    let ae = run.method_run(AdMethod::Ae).separation.trace.average;
    let lstm = run.method_run(AdMethod::Lstm).separation.trace.average;
    println!(
        "  AE ({ae:.2}) vs LSTM ({lstm:.2}) trace-level: {}",
        if ae >= lstm { "AE wins (paper shape)" } else { "LSTM wins (diverges)" }
    );
    // Final cumulative profile snapshot (covers post-pipeline phases);
    // no-op unless EXATHLON_PROFILE=1.
    let _ = exathlon_core::obs::emit_report();
}
