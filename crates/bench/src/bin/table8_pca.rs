//! Reproduces **Table 8** (Experiment 5): global separation AUPRC with
//! PCA-based feature extraction (`FS_pca`, 19 components) instead of the
//! curated `FS_custom` set, for all three methods.
//!
//! Expected shape: global separation drops versus FS_custom for every
//! method — PCA selects by variance and loses the low-variance signals
//! (scheduling delay, input rate) that carry most anomaly types.

use exathlon_bench::{build_dataset, default_config, Scale};
use exathlon_core::config::{AdMethod, ExperimentConfig, FeatureSpace};
use exathlon_core::experiment::run_pipeline;

fn fmt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "  - ".into())
}

fn main() {
    let scale = Scale::from_args();
    println!("Experiment 5: FS_pca vs FS_custom (LS4) at {scale:?} scale");
    let ds = build_dataset(scale);
    let base = default_config(scale);

    let pca_config = ExperimentConfig { feature_space: FeatureSpace::Pca(19), ..base.clone() };
    let custom_run = run_pipeline(&ds, &base, &AdMethod::PAPER_METHODS, scale.budget());
    let pca_run = run_pipeline(&ds, &pca_config, &AdMethod::PAPER_METHODS, scale.budget());

    println!(
        "\n=== Table 8: global separation with FS_pca(19) ===\n\
         {:<7} {:>5}  {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
        "Method", "Ave", "T1", "T2", "T3", "T4", "T5", "T6"
    );
    for (method, mr) in &pca_run.methods {
        let g = &mr.separation.global;
        println!(
            "{:<7} {:>5.2}  {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
            method.label(),
            g.average,
            fmt(g.per_type[0]),
            fmt(g.per_type[1]),
            fmt(g.per_type[2]),
            fmt(g.per_type[3]),
            fmt(g.per_type[4]),
            fmt(g.per_type[5]),
        );
    }

    println!("\nComparison with FS_custom (global Ave):");
    for method in AdMethod::PAPER_METHODS {
        let custom = custom_run.method_run(method).separation.global.average;
        let pca = pca_run.method_run(method).separation.global.average;
        println!(
            "  {:<6} FS_custom {custom:.2} vs FS_pca {pca:.2} -> {}",
            method.label(),
            if pca <= custom + 0.05 {
                "PCA does not beat the curated set (paper shape)"
            } else {
                "PCA wins (diverges)"
            }
        );
    }
    // Final cumulative profile snapshot (covers post-pipeline phases);
    // no-op unless EXATHLON_PROFILE=1.
    let _ = exathlon_core::obs::emit_report();
}
