//! Per-record latency of the streaming detection engine: every
//! `StreamMethod` fitted exactly as the replay driver fits it, then timed
//! feeding a sparksim test trace record-by-record through
//! `StreamingDetector::update`.
//!
//! Runs single-threaded (`EXATHLON_THREADS=1` forced up front) so the
//! numbers measure per-tick detector cost, not the worker pool. Cross-
//! checks the wall-clock timings against the `stream.*` observability
//! counters metered by `replay_series`, and writes
//! `results/BENCH_stream.json`.

use exathlon_core::config::{ExperimentConfig, StreamMethod};
use exathlon_core::experiment::prepare;
use exathlon_core::model::TrainingBudget;
use exathlon_core::replay::{build_streaming, replay_series, stream_seed};
use exathlon_sparksim::dataset::DatasetBuilder;
use std::time::Instant;

/// One measured streaming method.
struct Row {
    name: &'static str,
    records: usize,
    ns_per_record: f64,
}

impl Row {
    fn records_per_sec(&self) -> f64 {
        if self.ns_per_record > 0.0 {
            1e9 / self.ns_per_record
        } else {
            0.0
        }
    }
}

fn to_json(rows: &[Row], obs_records: u64, obs_score_ns: u64) -> String {
    let mut out = String::from("{\n  \"threads\": 1,\n  \"unit\": \"ns/record (median)\",\n");
    out.push_str("  \"methods\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"records\": {}, \"ns_per_record\": {:.1}, \
             \"records_per_sec\": {:.0}}}{}\n",
            r.name,
            r.records,
            r.ns_per_record,
            r.records_per_sec(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"obs\": {{\"stream.records\": {obs_records}, \"stream.score_ns\": {obs_score_ns}}}\n"
    ));
    out.push_str("}\n");
    out
}

fn main() {
    // Single-core measurement: set before the first kernel call.
    std::env::set_var(exathlon_linalg::par::THREADS_ENV, "1");
    std::env::remove_var(exathlon_linalg::obs::PROFILE_ENV);
    exathlon_linalg::obs::refresh();

    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 9 };

    // The replay driver's own data path: simulate, partition, transform.
    let ds = DatasetBuilder::tiny(11).build();
    let config = ExperimentConfig::default();
    let (_transform, train, tests) = prepare(&ds, &config);
    let test = &tests.iter().max_by_key(|t| t.series.len()).expect("no test traces").series;
    let budget = if quick { TrainingBudget::Quick } else { TrainingBudget::Standard };

    println!("Streaming per-record latency ({} records/trace, {reps} reps, median):\n", test.len());
    println!("{:<18} {:>10} {:>16} {:>14}", "method", "records", "ns/record", "records/s");

    let mut rows = Vec::new();
    for method in StreamMethod::ALL {
        let mut det = build_streaming(
            method,
            &train,
            config.threshold_holdout,
            budget,
            stream_seed(config.seed, method),
        );
        // Warm-up replay outside the sample (first-touch allocations).
        std::hint::black_box(replay_series(det.as_mut(), test));
        let mut samples: Vec<f64> = (0..reps)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(replay_series(det.as_mut(), test));
                start.elapsed().as_nanos() as f64 / test.len().max(1) as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        let row = Row {
            name: method.label(),
            records: test.len(),
            ns_per_record: samples[samples.len() / 2],
        };
        println!(
            "{:<18} {:>10} {:>16.1} {:>14.0}",
            row.name,
            row.records,
            row.ns_per_record,
            row.records_per_sec()
        );
        rows.push(row);
    }

    // Cross-check: one profiled replay per method must meter the same
    // record count through the `stream.*` counters.
    std::env::set_var(exathlon_linalg::obs::PROFILE_ENV, "1");
    exathlon_linalg::obs::refresh();
    exathlon_linalg::obs::reset();
    for method in StreamMethod::ALL {
        let mut det = build_streaming(
            method,
            &train,
            config.threshold_holdout,
            TrainingBudget::Quick,
            stream_seed(config.seed, method),
        );
        std::hint::black_box(replay_series(det.as_mut(), test));
    }
    let report = exathlon_linalg::obs::report();
    let get =
        |name: &str| report.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0);
    let obs_records = get("stream.records");
    let obs_score_ns = get("stream.score_ns");
    std::env::remove_var(exathlon_linalg::obs::PROFILE_ENV);
    exathlon_linalg::obs::refresh();
    assert_eq!(
        obs_records,
        (test.len() * StreamMethod::ALL.len()) as u64,
        "stream.records counter disagrees with the replayed record count"
    );
    println!("\nobs: stream.records {obs_records}, stream.score_ns {obs_score_ns}");

    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join("BENCH_stream.json");
    std::fs::write(&path, to_json(&rows, obs_records, obs_score_ns))
        .expect("write BENCH_stream.json");
    println!("\nWrote {}", path.display());
}
