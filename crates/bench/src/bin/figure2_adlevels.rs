//! Reproduces **Figure 2**: how range-based precision and recall behave
//! at AD levels 1–4 on a hand-set example of real ranges R1..R4 and
//! predicted ranges P1..P4.

use exathlon_tsmetrics::presets::{evaluate_at_level, AdLevel};
use exathlon_tsmetrics::Range;

fn main() {
    // The Figure 2 scenario: R1 covered once and fully; R2 detected late;
    // R3 detected as two fragments; R4 missed entirely. P4 is a pure
    // false positive.
    let real = vec![
        Range::new(0, 10),  // R1
        Range::new(20, 30), // R2
        Range::new(40, 50), // R3
        Range::new(60, 70), // R4
    ];
    let predicted = vec![
        Range::new(0, 10),  // P1: exact
        Range::new(27, 33), // P2: late + spill-over
        Range::new(40, 43), // P3a: fragment
        Range::new(45, 48), // P3b: fragment
        Range::new(80, 85), // P4: false positive
    ];

    println!("Real ranges:      {real:?}");
    println!("Predicted ranges: {predicted:?}");
    println!();
    println!("{:<28} {:>9} {:>7} {:>7}", "Level", "Precision", "Recall", "F1");
    for level in AdLevel::ALL {
        let s = evaluate_at_level(&real, &predicted, level);
        println!(
            "{:<28} {:>9.3} {:>7.3} {:>7.3}",
            format!("{} ({:?})", level.label(), level),
            s.precision,
            s.recall,
            s.f1
        );
    }
    println!();
    println!("Monotonicity check: score(AD1) >= score(AD2) >= score(AD3) >= score(AD4)");
    let scores: Vec<f64> =
        AdLevel::ALL.iter().map(|&l| evaluate_at_level(&real, &predicted, l).f1).collect();
    let ok = scores.windows(2).all(|w| w[0] >= w[1] - 1e-12);
    println!(
        "F1 sequence {scores:?} -> {}",
        if ok { "monotone (as designed)" } else { "VIOLATED" }
    );
}
