//! Records the fused-training-step speedups behind the PR's acceptance
//! criteria: SIMD elementwise kernels + reused workspaces against the
//! naive escape hatch (`EXATHLON_NAIVE_ELEMENTWISE=1`), which re-enacts
//! the old clone-heavy training loop for real.
//!
//! Runs single-threaded (`EXATHLON_THREADS=1` is forced up front) so the
//! numbers measure the training step, not the worker pool. The two modes
//! are *interleaved* rep-by-rep (naive, fused, naive, fused, ...) and
//! the per-mode medians compared — on a shared one-core box, sequential
//! per-mode runs pick up clock drift and throttling as phantom speedups
//! or slowdowns; interleaving cancels them. A counting global allocator
//! meters steady-state heap allocations per training step after warm-up
//! — the fused path must be near-zero. Writes `results/BENCH_train.json`.

use exathlon_linalg::elemwise::NAIVE_ELEMENTWISE_ENV;
use exathlon_linalg::Matrix;
use exathlon_nn::activation::Activation;
use exathlon_nn::gan::BiGan;
use exathlon_nn::lstm::Lstm;
use exathlon_nn::mlp::Mlp;
use exathlon_nn::optimizer::Optimizer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The AE/LSTM shape on `FS_custom`: 19 features, window 8.
const DIMS: usize = 19;
const WINDOW: usize = 8;
/// Flattened AE window dimensionality.
const AE_IN: usize = DIMS * WINDOW;
/// Training-pool sizes, scaled down from the paper's 4,000-window cap so
/// one epoch stays measurable in seconds on one core.
const AE_SAMPLES: usize = 512;
const LSTM_SAMPLES: usize = 128;
const GAN_SAMPLES: usize = 256;
const BATCH: usize = 32;

// ---------------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------------

/// Pass-through allocator that counts allocation events and bytes —
/// the "allocation-free steady state" claim is measured, not asserted.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation events and bytes during `op`.
fn count_allocs(mut op: impl FnMut()) -> (u64, u64) {
    let calls0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    op();
    (ALLOC_CALLS.load(Ordering::Relaxed) - calls0, ALLOC_BYTES.load(Ordering::Relaxed) - bytes0)
}

// ---------------------------------------------------------------------------
// Timing
// ---------------------------------------------------------------------------

/// One measured naive/fused pair.
struct Group {
    name: String,
    naive_ns: f64,
    fused_ns: f64,
}

impl Group {
    fn speedup(&self) -> f64 {
        self.naive_ns / self.fused_ns
    }
}

/// Interleaved per-mode medians: one warm-up call per mode (sizes the
/// workspaces), then `reps` alternating naive/fused timed pairs.
fn mode_group(name: &str, reps: usize, mut op: impl FnMut()) -> Group {
    assert!(reps > 0);
    std::env::set_var(NAIVE_ELEMENTWISE_ENV, "1");
    op();
    std::env::remove_var(NAIVE_ELEMENTWISE_ENV);
    op();
    let mut naive = Vec::with_capacity(reps);
    let mut fused = Vec::with_capacity(reps);
    for _ in 0..reps {
        std::env::set_var(NAIVE_ELEMENTWISE_ENV, "1");
        let start = Instant::now();
        op();
        naive.push(start.elapsed().as_nanos() as f64);
        std::env::remove_var(NAIVE_ELEMENTWISE_ENV);
        let start = Instant::now();
        op();
        fused.push(start.elapsed().as_nanos() as f64);
    }
    naive.sort_by(f64::total_cmp);
    fused.sort_by(f64::total_cmp);
    Group { name: name.to_string(), naive_ns: naive[reps / 2], fused_ns: fused[reps / 2] }
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// Deterministic pseudo-window batch: `n` flattened windows of `dim`.
fn sample_matrix(n: usize, dim: usize, seed: usize) -> Matrix {
    Matrix::from_fn(n, dim, |i, j| (((i + seed * 131) * 13 + j * 7) as f64 * 0.011).sin())
}

fn ae_net() -> Mlp {
    // ReLU autoencoder: transcendental-free, so the epoch cost is the
    // training-step machinery itself (GEMM epilogues, backprop buffers,
    // optimizer) rather than a mode-identical libm floor.
    let mut rng = StdRng::seed_from_u64(7);
    Mlp::autoencoder(AE_IN, &[64], 10, Activation::Relu, &mut rng)
}

fn lstm_net() -> Lstm {
    // The ad-crate forecaster shape: hidden 24 over the 19 raw features.
    let mut rng = StdRng::seed_from_u64(11);
    Lstm::new(DIMS, 24, DIMS, &mut rng)
}

fn gan_net() -> BiGan {
    // The ad-crate BiGAN shape on flattened windows: latent 6, hidden 48.
    let mut rng = StdRng::seed_from_u64(29);
    BiGan::new(AE_IN, 6, 48, &mut rng)
}

/// LSTM forecast pairs: window-1 steps of input, last record as target.
fn lstm_data(n: usize) -> Vec<(Vec<f64>, Vec<f64>)> {
    (0..n)
        .map(|s| {
            let m = sample_matrix(WINDOW, DIMS, s);
            let flat = m.as_slice();
            (flat[..(WINDOW - 1) * DIMS].to_vec(), flat[(WINDOW - 1) * DIMS..].to_vec())
        })
        .collect()
}

fn to_json(groups: &[Group], allocs: &[(String, u64, u64, u64, u64)]) -> String {
    let mut out =
        String::from("{\n  \"threads\": 1,\n  \"unit\": \"ns/epoch (interleaved median)\",\n");
    out.push_str("  \"groups\": [\n");
    for (i, g) in groups.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"naive_ns\": {:.0}, \"fused_ns\": {:.0}, \
             \"speedup\": {:.2}}}{}\n",
            g.name,
            g.naive_ns,
            g.fused_ns,
            g.speedup(),
            if i + 1 < groups.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"steady_state_allocs_per_step\": [\n");
    for (i, (name, fc, fb, nc, nb)) in allocs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"fused_allocs\": {fc}, \"fused_bytes\": {fb}, \
             \"naive_allocs\": {nc}, \"naive_bytes\": {nb}}}{}\n",
            if i + 1 < allocs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    // Single-core measurement: set before the first kernel call.
    std::env::set_var(exathlon_linalg::par::THREADS_ENV, "1");
    // Training counters are not needed here; keep profiling off so the
    // loops measure arithmetic, not recording overhead.
    std::env::remove_var(exathlon_linalg::obs::PROFILE_ENV);
    exathlon_linalg::obs::refresh();

    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 11 };

    let opt = Optimizer::adam(1e-3);
    let x = sample_matrix(AE_SAMPLES, AE_IN, 0);
    let gx = sample_matrix(GAN_SAMPLES, AE_IN, 5);
    let seqs = lstm_data(LSTM_SAMPLES);
    let seq_views: Vec<(&[f64], &[f64])> = seqs.iter().map(|(s, t)| (&s[..], &t[..])).collect();

    println!(
        "Fused training-step benchmarks (single-threaded, {reps} interleaved reps, median):\n"
    );

    // Persistent networks: the workspaces warm up once, then every epoch
    // reuses them — exactly the fit-loop steady state being measured.
    let mut ae = ae_net();
    let mut lstm = lstm_net();
    let mut gan = gan_net();
    let mut rng = StdRng::seed_from_u64(23);
    let mut grng = StdRng::seed_from_u64(31);
    let groups = vec![
        mode_group("ae_epoch", reps, || {
            ae.fit(&x, &x, 1, BATCH, &opt, &mut rng);
        }),
        mode_group("lstm_epoch", reps, || {
            lstm.fit_flat(&seq_views, 1, BATCH, &opt, &mut rng);
        }),
        mode_group("gan_epoch", reps, || {
            gan.fit(&gx, 1, BATCH, &opt, &mut grng);
        }),
    ];

    println!("{:<14} {:>14} {:>14} {:>9}", "group", "naive ns", "fused ns", "speedup");
    for g in &groups {
        println!("{:<14} {:>14.0} {:>14.0} {:>8.2}x", g.name, g.naive_ns, g.fused_ns, g.speedup());
    }

    // Steady-state allocations of one training step, after warm-up, per
    // mode. The minibatch is prebuilt so the numbers isolate the step
    // itself (forward, backward, optimizer), like the fit loop's
    // steady state where batch scratch is already sized.
    let xb = sample_matrix(BATCH, AE_IN, 3);
    let gb = sample_matrix(BATCH, AE_IN, 4);
    let step_batch: Vec<(&[f64], &[f64])> = seq_views[..BATCH.min(seq_views.len())].to_vec();
    let mut allocs = Vec::new();
    for (mode, toggle) in [("fused", false), ("naive", true)] {
        if toggle {
            std::env::set_var(NAIVE_ELEMENTWISE_ENV, "1");
        } else {
            std::env::remove_var(NAIVE_ELEMENTWISE_ENV);
        }
        let mut arng = StdRng::seed_from_u64(41);
        for _ in 0..3 {
            ae.train_batch(&xb, &xb, &opt); // warm the workspaces
            lstm.train_batch_flat(&step_batch, &opt);
            gan.train_batch(&gb, &opt, &mut arng);
        }
        let (ae_calls, ae_bytes) = count_allocs(|| {
            ae.train_batch(&xb, &xb, &opt);
        });
        let (lstm_calls, lstm_bytes) = count_allocs(|| {
            lstm.train_batch_flat(&step_batch, &opt);
        });
        let (gan_calls, gan_bytes) = count_allocs(|| {
            gan.train_batch(&gb, &opt, &mut arng);
        });
        allocs.push((mode, ae_calls, ae_bytes, lstm_calls, lstm_bytes, gan_calls, gan_bytes));
    }
    std::env::remove_var(NAIVE_ELEMENTWISE_ENV);

    println!("\nsteady-state allocations per training step (after warm-up):");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "mode", "ae allocs", "ae bytes", "lstm allocs", "lstm bytes", "gan allocs", "gan bytes"
    );
    for (mode, ac, ab, lc, lb, gc, gb) in &allocs {
        println!("{mode:<8} {ac:>10} {ab:>12} {lc:>12} {lb:>12} {gc:>10} {gb:>12}");
    }

    // Reshape per-step rows into per-model fused/naive records.
    let per_model: Vec<(String, u64, u64, u64, u64)> = vec![
        ("ae_step".to_string(), allocs[0].1, allocs[0].2, allocs[1].1, allocs[1].2),
        ("lstm_step".to_string(), allocs[0].3, allocs[0].4, allocs[1].3, allocs[1].4),
        ("gan_step".to_string(), allocs[0].5, allocs[0].6, allocs[1].5, allocs[1].6),
    ];

    println!(
        "\nworkspace bytes held: ae {} lstm {} gan {}",
        ae.workspace_bytes(),
        lstm.workspace_bytes(),
        gan.workspace_bytes()
    );

    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join("BENCH_train.json");
    std::fs::write(&path, to_json(&groups, &per_model)).expect("write BENCH_train.json");
    println!("\nWrote {}", path.display());
}
