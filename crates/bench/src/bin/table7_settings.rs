//! Reproduces **Table 7**: application-wise separation AUPRC of the three
//! methods under each learning setting LS1–LS4 (Experiment 4).
//!
//! The 1-App settings (LS1, LS3) train one model per application; their
//! row reports the average over the evaluated applications.

use exathlon_bench::{build_dataset, default_config, Scale};
use exathlon_core::config::{AdMethod, ExperimentConfig, LearningSetting};
use exathlon_core::evaluate::TypedAuprc;
use exathlon_core::experiment::run_pipeline;
use exathlon_sparksim::dataset::Dataset;

/// Average a list of per-type AUPRC rows (treating absent types as
/// absent).
fn average_rows(rows: &[TypedAuprc]) -> TypedAuprc {
    let mut average = 0.0;
    let mut per_type = [None; 6];
    for (i, slot) in per_type.iter_mut().enumerate() {
        let vals: Vec<f64> = rows.iter().filter_map(|r| r.per_type[i]).collect();
        if !vals.is_empty() {
            *slot = Some(vals.iter().sum::<f64>() / vals.len() as f64);
        }
    }
    for r in rows {
        average += r.average;
    }
    TypedAuprc { average: average / rows.len().max(1) as f64, per_type }
}

fn one_app_row(
    ds: &Dataset,
    base: &ExperimentConfig,
    many: bool,
    method: AdMethod,
    budget: exathlon_core::model::TrainingBudget,
    apps: &[usize],
) -> TypedAuprc {
    let rows: Vec<TypedAuprc> = apps
        .iter()
        .map(|&a| {
            let setting = if many { LearningSetting::ls1(a) } else { LearningSetting::ls3(a) };
            let config = ExperimentConfig { setting, ..base.clone() };
            let run = run_pipeline(ds, &config, &[method], budget);
            run.method_run(method).separation.app.clone()
        })
        .collect();
    average_rows(&rows)
}

fn fmt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "  - ".into())
}

fn main() {
    let scale = Scale::from_args();
    println!("Experiment 4: learning settings LS1-LS4 at {scale:?} scale");
    let ds = build_dataset(scale);
    let base = default_config(scale);
    let budget = scale.budget();

    // Applications that have disturbed traces (1-App settings need test
    // data). Cap the number of per-app trainings to keep runtime sane.
    let mut apps: Vec<usize> = ds.disturbed.iter().map(|t| t.context.app_id).collect();
    apps.sort_unstable();
    apps.dedup();
    apps.truncate(match scale {
        Scale::Quick => 2,
        Scale::Full => 4,
    });
    println!("1-App settings evaluated on applications {apps:?}");

    println!(
        "\n{:<5} {:<7} {:>5}  {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
        "LS", "Method", "Ave", "T1", "T2", "T3", "T4", "T5", "T6"
    );
    for (label, many, n_app) in
        [("LS1", true, false), ("LS2", true, true), ("LS3", false, false), ("LS4", false, true)]
    {
        for method in AdMethod::PAPER_METHODS {
            let row = if n_app {
                let setting = if many { LearningSetting::ls2() } else { LearningSetting::ls4() };
                let config = ExperimentConfig { setting, ..base.clone() };
                let run = run_pipeline(&ds, &config, &[method], budget);
                run.method_run(method).separation.app.clone()
            } else {
                one_app_row(&ds, &base, many, method, budget, &apps)
            };
            println!(
                "{:<5} {:<7} {:>5.2}  {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
                label,
                method.label(),
                row.average,
                fmt(row.per_type[0]),
                fmt(row.per_type[1]),
                fmt(row.per_type[2]),
                fmt(row.per_type[3]),
                fmt(row.per_type[4]),
                fmt(row.per_type[5]),
            );
        }
    }
    println!(
        "\nExpected shape (paper): Many-Examples (LS1/LS2) >= Few-Examples (LS3/LS4) \
         for AE and BiGAN; LSTM may benefit from N-App cardinality instead."
    );
    // Final cumulative profile snapshot (covers post-pipeline phases);
    // no-op unless EXATHLON_PROFILE=1.
    let _ = exathlon_core::obs::emit_report();
}
