//! # exathlon-bench
//!
//! The benchmark harness: one binary per table/figure of the paper's
//! evaluation (§6) plus Criterion benches for the computational
//! performance criteria P1–P3 (§4.3).
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1_dataset` | Table 1: dataset composition |
//! | `figure2_adlevels` | Figure 2: range-based P/R at AD1–AD4 |
//! | `table3_separation` | Table 3: separation AUPRC (LS4, FS_custom) |
//! | `figure4_distributions` | Figure 4: outlier-score distributions |
//! | `figure5_scores` | Figures 5/8: record-wise score profiles |
//! | `table4_detection` | Table 4: detection at AD1–AD4, best/median |
//! | `table5_ed` | Table 5 + Figure 6: ED metrics and examples |
//! | `table7_settings` | Table 7: LS1–LS4 application-wise AUPRC |
//! | `table8_pca` | Table 8: FS_pca global separation |
//!
//! All binaries accept `--quick` (smaller dataset and training budgets —
//! minutes instead of tens of minutes) and honour `EXATHLON_SEED`.

use exathlon_core::config::ExperimentConfig;
use exathlon_core::model::TrainingBudget;
use exathlon_sparksim::dataset::{Dataset, DatasetBuilder};

/// Harness scale, from the `--quick` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced dataset + training budgets (CI / laptop smoke runs).
    Quick,
    /// The full benchmark composition.
    Full,
}

impl Scale {
    /// Parse from process args: `--quick` selects [`Scale::Quick`].
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// The training budget for this scale.
    pub fn budget(self) -> TrainingBudget {
        match self {
            Scale::Quick => TrainingBudget::Quick,
            Scale::Full => TrainingBudget::Standard,
        }
    }
}

/// The benchmark seed (`EXATHLON_SEED`, default 7).
pub fn seed() -> u64 {
    std::env::var("EXATHLON_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(7)
}

/// Build the benchmark dataset at the given scale. Both scales keep the
/// Table 1(b) composition (59 + 34 traces, 97 anomalies); `Quick` shortens
/// the traces.
pub fn build_dataset(scale: Scale) -> Dataset {
    let builder = match scale {
        Scale::Quick => DatasetBuilder::standard(seed()).with_durations(400, 900),
        Scale::Full => DatasetBuilder::standard(seed()),
    };
    builder.build()
}

/// The default experiment configuration at a scale: LS4, FS_custom, with
/// resampling to keep deep-model training tractable (the paper uses
/// `α = 1/15` for the same reason).
pub fn default_config(scale: Scale) -> ExperimentConfig {
    ExperimentConfig {
        resample_interval: match scale {
            Scale::Quick => 5,
            Scale::Full => 5,
        },
        seed: seed(),
        ..ExperimentConfig::default()
    }
}

/// Render a tiny ASCII histogram (for the Figure 4 reproductions).
pub fn ascii_histogram(values: &[f64], bins: usize, width: usize, title: &str) -> String {
    use exathlon_linalg::stats::Histogram;
    let h = Histogram::from_data(values, bins);
    let max = h.counts().iter().copied().max().unwrap_or(1).max(1);
    let mut out = format!("{title} (n={})\n", values.len());
    for (b, &count) in h.counts().iter().enumerate() {
        let (lo, hi) = h.bin_bounds(b);
        let bar = "#".repeat(count * width / max);
        out.push_str(&format!("{lo:>9.3}..{hi:<9.3} |{bar} {count}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_dataset_keeps_composition() {
        let ds = build_dataset(Scale::Quick);
        assert_eq!(ds.undisturbed.len(), 59);
        assert_eq!(ds.disturbed.len(), 34);
        assert_eq!(ds.instances_per_type().iter().sum::<usize>(), 97);
    }

    #[test]
    fn ascii_histogram_renders() {
        let h = ascii_histogram(&[1.0, 1.0, 2.0, 5.0], 4, 20, "demo");
        assert!(h.contains("demo"));
        assert!(h.contains('#'));
    }

    #[test]
    fn config_has_resampling() {
        let c = default_config(Scale::Quick);
        assert!(c.resample_interval > 1);
    }
}
