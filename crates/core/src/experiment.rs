//! One-call experiment orchestration: the glue the benchmark binaries and
//! examples use to run the full pipeline for a set of AD methods.

use crate::config::{AdMethod, ExperimentConfig};
use crate::evaluate::{
    best_and_median, evaluate_detection, score_tests, separation, DetectionOutcome, ScoredTest,
    SeparationScores,
};
use crate::model::{train_model, TrainedModel, TrainingBudget};
use crate::partition::partition;
use crate::transform::{FittedTransform, TransformedTest};
use exathlon_sparksim::dataset::Dataset;
use exathlon_tsmetrics::presets::AdLevel;

/// Everything one pipeline run produces for one AD method.
pub struct MethodRun {
    /// The trained model (scorer + D² scores).
    pub model: TrainedModel,
    /// The scored test traces.
    pub scored: Vec<ScoredTest>,
    /// Separation AUPRC scores.
    pub separation: SeparationScores,
}

/// A full pipeline run: transform state, test traces, per-method results.
pub struct PipelineRun {
    /// The fitted transform (for ED's model-dependent scoring, etc.).
    pub transform: FittedTransform,
    /// Transformed training traces.
    pub train: Vec<exathlon_tsdata::TimeSeries>,
    /// Transformed, labeled test traces.
    pub tests: Vec<TransformedTest>,
    /// One result per requested method, in request order.
    pub methods: Vec<(AdMethod, MethodRun)>,
}

impl PipelineRun {
    /// Detection outcomes of a method at an AD level over the 24 rules.
    pub fn detection(&self, method: AdMethod, level: AdLevel) -> Vec<DetectionOutcome> {
        let run = self.method_run(method);
        evaluate_detection(&run.model, &run.scored, level)
    }

    /// Best and median detection outcome of a method at an AD level.
    pub fn detection_best_median(
        &self,
        method: AdMethod,
        level: AdLevel,
    ) -> (DetectionOutcome, DetectionOutcome) {
        best_and_median(&self.detection(method, level))
    }

    /// The run of one method.
    ///
    /// # Panics
    /// Panics if the method was not part of the run.
    pub fn method_run(&self, method: AdMethod) -> &MethodRun {
        &self
            .methods
            .iter()
            .find(|(m, _)| *m == method)
            .unwrap_or_else(|| panic!("{method:?} was not part of this run"))
            .1
    }
}

/// Run the pipeline end to end: partition, transform, then train and
/// score every requested method.
pub fn run_pipeline(
    ds: &Dataset,
    config: &ExperimentConfig,
    methods: &[AdMethod],
    budget: TrainingBudget,
) -> PipelineRun {
    let partitioned = partition(ds, config.setting, config.peek_fraction);
    let (transform, train) = FittedTransform::fit(&partitioned.train, config);
    let tests: Vec<TransformedTest> =
        partitioned.test.iter().map(|s| transform.apply_test(s)).collect();

    let methods = methods
        .iter()
        .map(|&method| {
            let model = train_model(
                method,
                &train,
                config.threshold_holdout,
                budget,
                config.seed ^ method.label().len() as u64,
            );
            let scored = score_tests(&model, &tests);
            let sep = separation(&scored);
            (method, MethodRun { model, scored, separation: sep })
        })
        .collect();

    PipelineRun { transform, train, tests, methods }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_sparksim::dataset::DatasetBuilder;

    /// End-to-end smoke test of the whole pipeline on the tiny dataset
    /// with the cheap baselines (the deep methods have their own tests).
    #[test]
    fn pipeline_runs_end_to_end_with_baselines() {
        let ds = DatasetBuilder::tiny(11).build();
        let config = ExperimentConfig { resample_interval: 2, ..ExperimentConfig::default() };
        let run = run_pipeline(
            &ds,
            &config,
            &[AdMethod::Knn, AdMethod::Mad],
            TrainingBudget::Quick,
        );
        assert_eq!(run.tests.len(), 2);
        assert_eq!(run.methods.len(), 2);
        for (m, r) in &run.methods {
            assert!(
                r.separation.trace.average.is_finite(),
                "{m:?} separation not finite"
            );
            assert_eq!(r.scored.len(), 2);
        }
        let outcomes = run.detection(AdMethod::Knn, AdLevel::Range);
        assert_eq!(outcomes.len(), 24);
        let (best, median) = run.detection_best_median(AdMethod::Knn, AdLevel::Range);
        assert!(best.f1 >= median.f1);
    }

    /// The kNN baseline actually separates the injected anomalies in the
    /// tiny dataset — the signal is in the data, as the paper claims.
    #[test]
    fn knn_separates_tiny_dataset_anomalies() {
        let ds = DatasetBuilder::tiny(11).build();
        let config = ExperimentConfig { resample_interval: 2, ..ExperimentConfig::default() };
        let run = run_pipeline(&ds, &config, &[AdMethod::Knn], TrainingBudget::Quick);
        let sep = &run.method_run(AdMethod::Knn).separation;
        assert!(
            sep.trace.average > 0.3,
            "kNN trace-level AUPRC too low: {}",
            sep.trace.average
        );
    }

    #[test]
    #[should_panic(expected = "was not part of this run")]
    fn missing_method_panics() {
        let ds = DatasetBuilder::tiny(11).build();
        let run = run_pipeline(
            &ds,
            &ExperimentConfig::default(),
            &[AdMethod::Mad],
            TrainingBudget::Quick,
        );
        let _ = run.method_run(AdMethod::Ae);
    }
}
