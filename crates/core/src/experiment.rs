//! One-call experiment orchestration: the glue the benchmark binaries and
//! examples use to run the full pipeline for a set of AD methods.

use crate::config::{AdMethod, ExperimentConfig};
use crate::evaluate::{
    best_and_median, evaluate_detection, score_tests, separation, DetectionOutcome, ScoredTest,
    SeparationScores,
};
use crate::model::{train_model, TrainedModel, TrainingBudget};
use crate::partition::partition;
use crate::transform::{FittedTransform, TransformedTest};
use exathlon_sparksim::dataset::Dataset;
use exathlon_tsmetrics::presets::AdLevel;

/// Everything one pipeline run produces for one AD method.
pub struct MethodRun {
    /// The trained model (scorer + D² scores).
    pub model: TrainedModel,
    /// The scored test traces.
    pub scored: Vec<ScoredTest>,
    /// Separation AUPRC scores.
    pub separation: SeparationScores,
}

/// A full pipeline run: transform state, test traces, per-method results.
pub struct PipelineRun {
    /// The fitted transform (for ED's model-dependent scoring, etc.).
    pub transform: FittedTransform,
    /// Transformed training traces.
    pub train: Vec<exathlon_tsdata::TimeSeries>,
    /// Transformed, labeled test traces.
    pub tests: Vec<TransformedTest>,
    /// One result per requested method, in request order.
    pub methods: Vec<(AdMethod, MethodRun)>,
}

impl PipelineRun {
    /// Detection outcomes of a method at an AD level over the 24 rules.
    pub fn detection(&self, method: AdMethod, level: AdLevel) -> Vec<DetectionOutcome> {
        let run = self.method_run(method);
        evaluate_detection(&run.model, &run.scored, level)
    }

    /// Best and median detection outcome of a method at an AD level.
    pub fn detection_best_median(
        &self,
        method: AdMethod,
        level: AdLevel,
    ) -> (DetectionOutcome, DetectionOutcome) {
        best_and_median(&self.detection(method, level))
    }

    /// The run of one method.
    ///
    /// # Panics
    /// Panics if the method was not part of the run.
    pub fn method_run(&self, method: AdMethod) -> &MethodRun {
        &self
            .methods
            .iter()
            .find(|(m, _)| *m == method)
            .unwrap_or_else(|| panic!("{method:?} was not part of this run"))
            .1
    }
}

/// Derive a method-specific training seed from the experiment seed.
///
/// The method's full label is folded in with FNV-1a. Hashing only the
/// label *length* (as an earlier revision did) collides for every pair of
/// same-length labels — kNN/LOF/MAD and LSTM/EWMA would train from
/// identical RNG streams, silently correlating methods that the paper
/// evaluates as independent.
pub fn method_seed(experiment_seed: u64, method: AdMethod) -> u64 {
    seed_from_label(experiment_seed, method.label())
}

/// FNV-1a fold of an arbitrary method label into the experiment seed —
/// the label-keyed form of [`method_seed`] the streaming replay driver
/// uses for its stream-native detectors (CUSUM, Page-Hinkley, ...),
/// which have no [`AdMethod`] to key on.
pub fn seed_from_label(experiment_seed: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1_0000_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    experiment_seed ^ h
}

/// Pipeline phases 1–2 (partition + transform), shared by the batch
/// pipeline and the streaming replay driver: both must see bit-identical
/// transformed traces for the equivalence pins to compare scorers rather
/// than data plumbing.
pub fn prepare(
    ds: &Dataset,
    config: &ExperimentConfig,
) -> (FittedTransform, Vec<exathlon_tsdata::TimeSeries>, Vec<TransformedTest>) {
    let partitioned = {
        let _stage = crate::obs::stage("partition");
        partition(ds, config.setting, config.peek_fraction)
    };
    let _stage = crate::obs::stage("transform");
    let (transform, train) = FittedTransform::fit(&partitioned.train, config);
    let tests: Vec<TransformedTest> = partitioned
        .test
        .iter()
        .map(|s| {
            let _sp = crate::obs::span("transform", "apply_test");
            transform.apply_test(s)
        })
        .collect();
    crate::obs::add_records(
        "transform",
        train.iter().map(|t| t.len() as u64).sum::<u64>()
            + tests.iter().map(|t| t.series.len() as u64).sum::<u64>(),
    );
    (transform, train, tests)
}

/// Run the pipeline end to end: partition, transform, then train and
/// score every requested method.
pub fn run_pipeline(
    ds: &Dataset,
    config: &ExperimentConfig,
    methods: &[AdMethod],
    budget: TrainingBudget,
) -> PipelineRun {
    let (transform, train, tests) = prepare(ds, config);

    // Methods train and score on the shared worker pool; each method is
    // fully independent (own seed, own model), and `par_map` preserves
    // request order, so the run is identical to the sequential loop.
    let methods = crate::par::par_map(methods, |&method| {
        let model = train_model(
            method,
            &train,
            config.threshold_holdout,
            budget,
            method_seed(config.seed, method),
        );
        let scored = score_tests(&model, &tests);
        let sep = separation(&scored);
        (method, MethodRun { model, scored, separation: sep })
    });

    // Profiled runs snapshot the registry here: by this point simulate /
    // partition / transform / train / score / evaluate have all recorded.
    crate::obs::emit_report();

    PipelineRun { transform, train, tests, methods }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_sparksim::dataset::DatasetBuilder;

    /// End-to-end smoke test of the whole pipeline on the tiny dataset
    /// with the cheap baselines (the deep methods have their own tests).
    #[test]
    fn pipeline_runs_end_to_end_with_baselines() {
        let ds = DatasetBuilder::tiny(11).build();
        let config = ExperimentConfig { resample_interval: 2, ..ExperimentConfig::default() };
        let run =
            run_pipeline(&ds, &config, &[AdMethod::Knn, AdMethod::Mad], TrainingBudget::Quick);
        assert_eq!(run.tests.len(), 2);
        assert_eq!(run.methods.len(), 2);
        for (m, r) in &run.methods {
            assert!(r.separation.trace.average.is_finite(), "{m:?} separation not finite");
            assert_eq!(r.scored.len(), 2);
        }
        let outcomes = run.detection(AdMethod::Knn, AdLevel::Range);
        assert_eq!(outcomes.len(), 24);
        let (best, median) = run.detection_best_median(AdMethod::Knn, AdLevel::Range);
        assert!(best.f1 >= median.f1);
    }

    /// The kNN baseline actually separates the injected anomalies in the
    /// tiny dataset — the signal is in the data, as the paper claims.
    #[test]
    fn knn_separates_tiny_dataset_anomalies() {
        let ds = DatasetBuilder::tiny(11).build();
        let config = ExperimentConfig { resample_interval: 2, ..ExperimentConfig::default() };
        let run = run_pipeline(&ds, &config, &[AdMethod::Knn], TrainingBudget::Quick);
        let sep = &run.method_run(AdMethod::Knn).separation;
        assert!(sep.trace.average > 0.3, "kNN trace-level AUPRC too low: {}", sep.trace.average);
    }

    /// Regression test: every method must train from a distinct RNG
    /// stream for the same experiment seed. The old derivation
    /// (`seed ^ label.len()`) collided for all same-length labels
    /// (kNN/LOF/MAD, LSTM/EWMA), so this failed before the FNV-1a fix.
    #[test]
    fn method_seeds_are_pairwise_distinct() {
        for experiment_seed in [0u64, 11, u64::MAX] {
            let seeds: Vec<u64> =
                AdMethod::ALL.iter().map(|&m| method_seed(experiment_seed, m)).collect();
            for (i, a) in seeds.iter().enumerate() {
                for (j, b) in seeds.iter().enumerate().skip(i + 1) {
                    assert_ne!(
                        a,
                        b,
                        "seed collision between {:?} and {:?} for experiment seed {}",
                        AdMethod::ALL[i],
                        AdMethod::ALL[j],
                        experiment_seed
                    );
                }
            }
        }
    }

    /// The derived seed still depends on the experiment seed (the hash
    /// perturbs, it must not replace).
    #[test]
    fn method_seed_tracks_experiment_seed() {
        assert_ne!(
            method_seed(1, AdMethod::Knn),
            method_seed(2, AdMethod::Knn),
            "experiment seed ignored"
        );
    }

    #[test]
    #[should_panic(expected = "was not part of this run")]
    fn missing_method_panics() {
        let ds = DatasetBuilder::tiny(11).build();
        let run = run_pipeline(
            &ds,
            &ExperimentConfig::default(),
            &[AdMethod::Mad],
            TrainingBudget::Quick,
        );
        let _ = run.method_run(AdMethod::Ae);
    }
}
