//! The multi-tenant profile registry: LRU-evicted, byte-budgeted.
//!
//! Exathlon's serving setting hosts one [`ServingProfile`] per monitored
//! *entity* — a `(app, entity)` pair such as a Spark application and one
//! of its repeated executions. A gatekeeper node cannot keep every
//! tenant's detector resident (kNN/LOF reference sets dominate), so the
//! registry accounts each profile's encoded byte size and evicts the
//! least-recently-*used* profiles when the configured budget is
//! exceeded. Eviction returns the victims' keys so the caller can
//! checkpoint them to disk before they are dropped — together with
//! [`crate::checkpoint`] this gives a spill/restore cycle that is
//! bitwise lossless.
//!
//! The LRU list is intrusive over a slab (`Vec<Slot>` + free list +
//! `prev`/`next` indices), so touch/insert/evict are O(1) with no
//! per-operation allocation; the map from key to slot is the only
//! hashed structure.

use crate::checkpoint::ServingProfile;
use std::collections::HashMap;

/// FNV-1a over `app`, a `0xff` separator, then `entity` — the one hash
/// the serving layer computes per request and reuses for both shard
/// placement and the registry lookup. Stable across runs.
pub fn key_hash(app: &str, entity: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in app.as_bytes().iter().chain([0xffu8].iter()).chain(entity.as_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Identifies one tenant: a monitored application and one of its
/// entities (trace, executor, run — the serving layer doesn't care).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityKey {
    /// Application identifier.
    pub app: String,
    /// Entity identifier within the application.
    pub entity: String,
}

impl EntityKey {
    /// Build a key from its parts.
    pub fn new(app: impl Into<String>, entity: impl Into<String>) -> Self {
        Self { app: app.into(), entity: entity.into() }
    }
}

impl std::fmt::Display for EntityKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.app, self.entity)
    }
}

/// Registry counters, cumulative over the registry's lifetime (except
/// `resident_bytes`/`resident_profiles`, which are instantaneous).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// `get`/`get_mut` calls that found the profile resident.
    pub hits: u64,
    /// `get`/`get_mut` calls that missed.
    pub misses: u64,
    /// Profiles inserted (including replacements).
    pub insertions: u64,
    /// Profiles evicted to fit the byte budget.
    pub evictions: u64,
    /// Bytes of encoded profile state currently resident.
    pub resident_bytes: usize,
    /// Profiles currently resident.
    pub resident_profiles: usize,
}

/// Sentinel for "no slot" in the intrusive list.
const NIL: usize = usize::MAX;

struct Slot {
    key: EntityKey,
    profile: ServingProfile,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// An LRU-evicted, byte-budgeted map from [`EntityKey`] to
/// [`ServingProfile`]. Not thread-safe by itself — the serving layer
/// shards it behind mutexes.
pub struct ProfileRegistry {
    budget_bytes: usize,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// [`key_hash`] → occupied slot indices with that hash. Keying by the
    /// precomputed hash lets the serving hot path look tenants up from
    /// borrowed `&str` path segments without building an [`EntityKey`]
    /// (two `String` allocations) per request; collisions fall back to a
    /// full string compare against the slot's key.
    index: HashMap<u64, Vec<usize>>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    stats: RegistryStats,
}

impl ProfileRegistry {
    /// An empty registry that evicts past `budget_bytes` of encoded
    /// profile state. The budget is soft by one profile: the most
    /// recently inserted profile always stays resident, even if it alone
    /// exceeds the budget (refusing it would make the tenant unservable).
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
            stats: RegistryStats::default(),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Number of resident profiles.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no profile is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Find the occupied slot for `(app, entity)`, if resident.
    fn find(&self, app: &str, entity: &str) -> Option<usize> {
        let bucket = self.index.get(&key_hash(app, entity))?;
        bucket
            .iter()
            .copied()
            .find(|&s| self.slots[s].key.app == app && self.slots[s].key.entity == entity)
    }

    /// Drop `slot` from its hash bucket (`hash` must be the slot key's).
    fn bucket_remove(&mut self, hash: u64, slot: usize) {
        if let Some(bucket) = self.index.get_mut(&hash) {
            if let Some(at) = bucket.iter().position(|&s| s == slot) {
                bucket.swap_remove(at);
            }
            if bucket.is_empty() {
                self.index.remove(&hash);
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }

    /// Resident keys, most recently used first.
    pub fn keys_mru(&self) -> Vec<EntityKey> {
        let mut keys = Vec::with_capacity(self.index.len());
        let mut at = self.head;
        while at != NIL {
            keys.push(self.slots[at].key.clone());
            at = self.slots[at].next;
        }
        keys
    }

    /// Unlink `slot` from the LRU list.
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    /// Link `slot` at the MRU head.
    fn link_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Move `slot` to the MRU head.
    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.link_front(slot);
        }
    }

    /// Evict LRU profiles until the budget holds (keeping at least the
    /// MRU profile). Returns the victims, LRU-first, so the caller can
    /// checkpoint them.
    fn evict_to_budget(&mut self) -> Vec<(EntityKey, ServingProfile)> {
        let mut evicted = Vec::new();
        while self.stats.resident_bytes > self.budget_bytes && self.len() > 1 {
            let victim = self.tail;
            self.unlink(victim);
            let slot = &mut self.slots[victim];
            self.stats.resident_bytes -= slot.bytes;
            self.stats.evictions += 1;
            let key = std::mem::replace(&mut slot.key, EntityKey::new("", ""));
            let profile = slot.profile.clone();
            self.free.push(victim);
            self.bucket_remove(key_hash(&key.app, &key.entity), victim);
            evicted.push((key, profile));
        }
        self.stats.resident_profiles = self.len();
        evicted
    }

    /// Insert (or replace) a profile, charging `bytes` — its encoded
    /// size — against the budget. Returns any profiles evicted to make
    /// room, LRU-first, so the caller can spill them to checkpoints.
    pub fn insert(
        &mut self,
        key: EntityKey,
        profile: ServingProfile,
        bytes: usize,
    ) -> Vec<(EntityKey, ServingProfile)> {
        self.stats.insertions += 1;
        if let Some(slot) = self.find(&key.app, &key.entity) {
            self.stats.resident_bytes = self.stats.resident_bytes - self.slots[slot].bytes + bytes;
            self.slots[slot].profile = profile;
            self.slots[slot].bytes = bytes;
            self.touch(slot);
        } else {
            let hash = key_hash(&key.app, &key.entity);
            let slot = match self.free.pop() {
                Some(reused) => {
                    self.slots[reused] = Slot { key, profile, bytes, prev: NIL, next: NIL };
                    reused
                }
                None => {
                    self.slots.push(Slot { key, profile, bytes, prev: NIL, next: NIL });
                    self.slots.len() - 1
                }
            };
            self.index.entry(hash).or_default().push(slot);
            self.link_front(slot);
            self.stats.resident_bytes += bytes;
        }
        self.stats.resident_profiles = self.len();
        self.evict_to_budget()
    }

    /// Mutable access to a resident profile; touches it MRU. The serving
    /// hot path (`ingest`) goes through here.
    pub fn get_mut(&mut self, key: &EntityKey) -> Option<&mut ServingProfile> {
        self.get_mut_parts(&key.app, &key.entity)
    }

    /// [`ProfileRegistry::get_mut`] from borrowed key parts — the serving
    /// hot path passes the URL path segments straight through, so a
    /// warmed ingest request allocates nothing to reach its profile.
    pub fn get_mut_parts(&mut self, app: &str, entity: &str) -> Option<&mut ServingProfile> {
        match self.find(app, entity) {
            Some(slot) => {
                self.stats.hits += 1;
                self.touch(slot);
                Some(&mut self.slots[slot].profile)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Read a resident profile without touching recency (checkpoint
    /// downloads should not perturb eviction order).
    pub fn peek(&mut self, key: &EntityKey) -> Option<&ServingProfile> {
        self.peek_parts(&key.app, &key.entity)
    }

    /// [`ProfileRegistry::peek`] from borrowed key parts.
    pub fn peek_parts(&mut self, app: &str, entity: &str) -> Option<&ServingProfile> {
        match self.find(app, entity) {
            Some(slot) => {
                self.stats.hits += 1;
                Some(&self.slots[slot].profile)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Remove a profile, returning it if it was resident.
    pub fn remove(&mut self, key: &EntityKey) -> Option<ServingProfile> {
        self.remove_parts(&key.app, &key.entity)
    }

    /// [`ProfileRegistry::remove`] from borrowed key parts.
    pub fn remove_parts(&mut self, app: &str, entity: &str) -> Option<ServingProfile> {
        let slot = self.find(app, entity)?;
        self.bucket_remove(key_hash(app, entity), slot);
        self.unlink(slot);
        self.stats.resident_bytes -= self.slots[slot].bytes;
        self.free.push(slot);
        self.stats.resident_profiles = self.len();
        let profile = self.slots[slot].profile.clone();
        self.slots[slot].key = EntityKey::new("", "");
        Some(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_ad::stream::StreamingEwma;

    fn profile(dims: usize) -> ServingProfile {
        ServingProfile::new(StreamingEwma::new(0.3, vec![1.0; dims]).into(), 1.0)
    }

    fn sized(dims: usize) -> (ServingProfile, usize) {
        let p = profile(dims);
        let bytes = p.to_bytes().len();
        (p, bytes)
    }

    #[test]
    fn insert_get_touches_mru() {
        let mut reg = ProfileRegistry::new(usize::MAX);
        for name in ["a", "b", "c"] {
            let (p, b) = sized(2);
            assert!(reg.insert(EntityKey::new("app", name), p, b).is_empty());
        }
        assert_eq!(
            reg.keys_mru(),
            vec![
                EntityKey::new("app", "c"),
                EntityKey::new("app", "b"),
                EntityKey::new("app", "a")
            ]
        );
        assert!(reg.get_mut(&EntityKey::new("app", "a")).is_some());
        assert_eq!(reg.keys_mru()[0], EntityKey::new("app", "a"));
        assert_eq!(reg.stats().hits, 1);
    }

    #[test]
    fn evicts_lru_past_budget() {
        let (_, unit) = sized(2);
        // Room for exactly two profiles.
        let mut reg = ProfileRegistry::new(unit * 2);
        for name in ["a", "b"] {
            let (p, b) = sized(2);
            assert!(reg.insert(EntityKey::new("app", name), p, b).is_empty());
        }
        // Touch "a" so "b" is the LRU victim.
        assert!(reg.get_mut(&EntityKey::new("app", "a")).is_some());
        let (p, b) = sized(2);
        let evicted = reg.insert(EntityKey::new("app", "c"), p, b);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, EntityKey::new("app", "b"));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.stats().evictions, 1);
        assert_eq!(reg.stats().resident_bytes, unit * 2);
        // The evicted profile must still be checkpointable.
        assert!(!evicted[0].1.to_bytes().is_empty());
    }

    #[test]
    fn oversized_mru_profile_stays_resident() {
        let mut reg = ProfileRegistry::new(1);
        let (p, b) = sized(4);
        assert!(b > 1);
        assert!(reg.insert(EntityKey::new("app", "big"), p, b).is_empty());
        assert_eq!(reg.len(), 1, "sole profile must not evict itself");
        // A second insert evicts the first.
        let (p, b) = sized(4);
        let evicted = reg.insert(EntityKey::new("app", "big2"), p, b);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, EntityKey::new("app", "big"));
    }

    #[test]
    fn replace_recharges_bytes() {
        let mut reg = ProfileRegistry::new(usize::MAX);
        let (p, b) = sized(2);
        reg.insert(EntityKey::new("app", "a"), p, b);
        let (p2, b2) = sized(8);
        assert_ne!(b, b2);
        reg.insert(EntityKey::new("app", "a"), p2, b2);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.stats().resident_bytes, b2);
        assert_eq!(reg.stats().insertions, 2);
    }

    #[test]
    fn remove_frees_bytes_and_slot() {
        let mut reg = ProfileRegistry::new(usize::MAX);
        let (p, b) = sized(2);
        let key = EntityKey::new("app", "a");
        reg.insert(key.clone(), p, b);
        assert!(reg.remove(&key).is_some());
        assert_eq!(reg.stats().resident_bytes, 0);
        assert!(reg.is_empty());
        assert!(reg.remove(&key).is_none());
        // Slot reuse: a fresh insert must not grow the slab.
        let slabs = reg.slots.len();
        let (p, b) = sized(2);
        reg.insert(EntityKey::new("app", "b"), p, b);
        assert_eq!(reg.slots.len(), slabs);
    }

    #[test]
    fn peek_does_not_touch_recency() {
        let mut reg = ProfileRegistry::new(usize::MAX);
        for name in ["a", "b"] {
            let (p, b) = sized(2);
            reg.insert(EntityKey::new("app", name), p, b);
        }
        assert!(reg.peek(&EntityKey::new("app", "a")).is_some());
        assert_eq!(reg.keys_mru()[0], EntityKey::new("app", "b"), "peek must not promote");
    }

    #[test]
    fn churn_is_consistent() {
        let (_, unit) = sized(2);
        let mut reg = ProfileRegistry::new(unit * 4);
        let mut spilled = 0usize;
        for i in 0..200 {
            let (p, b) = sized(2);
            spilled += reg.insert(EntityKey::new("app", format!("e{}", i % 13)), p, b).len();
            let probe = EntityKey::new("app", format!("e{}", (i * 7) % 13));
            let _ = reg.get_mut(&probe);
        }
        let s = reg.stats();
        assert_eq!(s.resident_profiles, reg.len());
        assert!(reg.len() <= 4, "budget holds four unit profiles, got {}", reg.len());
        assert_eq!(s.resident_bytes, reg.len() * unit);
        assert_eq!(s.evictions as usize, spilled);
        assert_eq!(s.hits + s.misses, 200);
        // Slab never exceeds resident + free.
        assert_eq!(reg.slots.len(), reg.len() + reg.free.len());
    }
}
