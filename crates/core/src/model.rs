//! Pipeline phase 3: AD modeling (§5 step 3).
//!
//! Normality-model training on `D¹_train`, outlier-score derivation, and
//! the held-out `D²_train` scores the unsupervised threshold selection is
//! fitted on (Appendix D.2).

use crate::config::AdMethod;
use exathlon_ad::ae_ad::{AeConfig, AutoencoderDetector};
use exathlon_ad::bigan_ad::{BiGanConfig, BiGanDetector};
use exathlon_ad::ewma::{EwmaConfig, EwmaDetector};
use exathlon_ad::iforest::{IsolationForestConfig, IsolationForestDetector};
use exathlon_ad::knn_ad::{KnnConfig, KnnDetector};
use exathlon_ad::lof::{LofConfig, LofDetector};
use exathlon_ad::lstm_ad::{LstmConfig, LstmDetector};
use exathlon_ad::mad_ad::MadDetector;
use exathlon_ad::AnomalyScorer;
use exathlon_tsdata::TimeSeries;

/// How heavily to train: `Quick` shrinks epochs/window budgets for tests
/// and examples; `Standard` is the benchmark default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingBudget {
    /// Small budgets: seconds of training.
    Quick,
    /// The benchmark defaults.
    Standard,
}

/// A trained AD model together with its held-out training scores.
pub struct TrainedModel {
    /// Which method this is.
    pub method: AdMethod,
    /// The fitted scorer.
    pub scorer: Box<dyn AnomalyScorer + Send + Sync>,
    /// Outlier scores on `D²_train`, the input to threshold selection.
    pub d2_scores: Vec<f64>,
}

impl std::fmt::Debug for TrainedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedModel")
            .field("method", &self.method)
            .field("d2_scores", &self.d2_scores.len())
            .finish()
    }
}

/// Build the (unfitted) scorer for a method.
pub fn build_scorer(
    method: AdMethod,
    budget: TrainingBudget,
    seed: u64,
) -> Box<dyn AnomalyScorer + Send + Sync> {
    let quick = budget == TrainingBudget::Quick;
    match method {
        AdMethod::Lstm => {
            let config = LstmConfig {
                epochs: if quick { 5 } else { 12 },
                hidden: if quick { 10 } else { 24 },
                max_pairs: if quick { 400 } else { 2000 },
                window: if quick { 6 } else { 8 },
                seed,
                ..LstmConfig::default()
            };
            Box::new(LstmDetector::new(config))
        }
        AdMethod::Ae => {
            let config = AeConfig {
                epochs: if quick { 10 } else { 30 },
                hidden: if quick { vec![24] } else { vec![64] },
                code: if quick { 4 } else { 8 },
                max_windows: if quick { 800 } else { 4000 },
                window: if quick { 6 } else { 8 },
                seed,
                ..AeConfig::default()
            };
            Box::new(AutoencoderDetector::new(config))
        }
        AdMethod::BiGan => {
            let config = BiGanConfig {
                epochs: if quick { 8 } else { 20 },
                hidden: if quick { 24 } else { 48 },
                latent: if quick { 3 } else { 6 },
                max_windows: if quick { 600 } else { 2500 },
                window: if quick { 6 } else { 8 },
                seed,
                ..BiGanConfig::default()
            };
            Box::new(BiGanDetector::new(config))
        }
        AdMethod::Knn => Box::new(KnnDetector::new(knn_config_for(budget))),
        AdMethod::Lof => Box::new(LofDetector::new(lof_config_for(budget))),
        AdMethod::IForest => Box::new(IsolationForestDetector::new(IsolationForestConfig {
            n_trees: if quick { 50 } else { 100 },
            sample_size: 256,
            seed,
        })),
        AdMethod::Ewma => Box::new(EwmaDetector::new(EwmaConfig::default())),
        AdMethod::Mad => Box::new(MadDetector::new()),
    }
}

/// The AE configuration matching [`build_scorer`], needed when a
/// model-dependent explainer (LIME) must query the same architecture.
pub fn ae_config_for(budget: TrainingBudget, seed: u64) -> AeConfig {
    let quick = budget == TrainingBudget::Quick;
    AeConfig {
        epochs: if quick { 10 } else { 30 },
        hidden: if quick { vec![24] } else { vec![64] },
        code: if quick { 4 } else { 8 },
        max_windows: if quick { 800 } else { 4000 },
        window: if quick { 6 } else { 8 },
        seed,
        ..AeConfig::default()
    }
}

/// The kNN configuration matching [`build_scorer`] — the single source
/// of truth the streaming replay driver builds from, so the batch-vs-
/// streaming equivalence pin compares identical models.
pub fn knn_config_for(budget: TrainingBudget) -> KnnConfig {
    let quick = budget == TrainingBudget::Quick;
    KnnConfig { k: 5, max_references: if quick { 500 } else { 2000 } }
}

/// The LOF configuration matching [`build_scorer`] (see
/// [`knn_config_for`]).
pub fn lof_config_for(budget: TrainingBudget) -> LofConfig {
    let quick = budget == TrainingBudget::Quick;
    LofConfig { k: 10, max_references: if quick { 300 } else { 1000 } }
}

/// Split the transformed training traces into `D¹_train` (model fitting)
/// and `D²_train` (threshold fitting): the trailing `holdout` fraction of
/// *each* trace goes to `D²`, so both sides see every workload context.
pub fn split_train(train: &[TimeSeries], holdout: f64) -> (Vec<TimeSeries>, Vec<TimeSeries>) {
    assert!((0.0..1.0).contains(&holdout), "holdout must be in [0, 1)");
    let mut d1 = Vec::with_capacity(train.len());
    let mut d2 = Vec::with_capacity(train.len());
    for ts in train {
        let cut = ((ts.len() as f64) * (1.0 - holdout)) as usize;
        let cut = cut.clamp(1, ts.len());
        d1.push(ts.slice(0, cut));
        if cut < ts.len() {
            d2.push(ts.slice(cut, ts.len()));
        }
    }
    (d1, d2)
}

/// Train a method on transformed training traces: fit on `D¹`, score `D²`.
pub fn train_model(
    method: AdMethod,
    train: &[TimeSeries],
    holdout: f64,
    budget: TrainingBudget,
    seed: u64,
) -> TrainedModel {
    let _stage = crate::obs::stage("train");
    let (d1, d2) = split_train(train, holdout);
    let mut scorer = build_scorer(method, budget, seed);
    let _sp = crate::obs::span("train", scorer.name());
    crate::obs::add_records("train", d1.iter().map(|t| t.len() as u64).sum());
    let d1_refs: Vec<&TimeSeries> = d1.iter().collect();
    scorer.fit(&d1_refs);
    let mut d2_scores = Vec::new();
    for ts in &d2 {
        d2_scores.extend(scorer.score_series(ts));
    }
    if d2_scores.is_empty() {
        // Degenerate holdout: fall back to scoring the training data.
        for ts in &d1 {
            d2_scores.extend(scorer.score_series(ts));
        }
    }
    TrainedModel { method, scorer, d2_scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sine_trace(n: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 * 0.3;
                vec![t.sin() + rng.gen_range(-0.05..0.05), t.cos()]
            })
            .collect();
        TimeSeries::from_records(default_names(2), 0, &records)
    }

    #[test]
    fn split_train_fractions() {
        let traces = vec![sine_trace(100, 1), sine_trace(100, 2)];
        let (d1, d2) = split_train(&traces, 0.25);
        assert_eq!(d1.len(), 2);
        assert_eq!(d2.len(), 2);
        assert_eq!(d1[0].len(), 75);
        assert_eq!(d2[0].len(), 25);
    }

    #[test]
    fn split_train_zero_holdout() {
        let traces = vec![sine_trace(50, 1)];
        let (d1, d2) = split_train(&traces, 0.0);
        assert_eq!(d1[0].len(), 50);
        assert!(d2.is_empty());
    }

    #[test]
    fn every_method_trains_and_scores() {
        let traces = vec![sine_trace(150, 1), sine_trace(150, 2)];
        for method in [
            AdMethod::Lstm,
            AdMethod::Ae,
            AdMethod::BiGan,
            AdMethod::Knn,
            AdMethod::Lof,
            AdMethod::IForest,
            AdMethod::Ewma,
            AdMethod::Mad,
        ] {
            let m = train_model(method, &traces, 0.25, TrainingBudget::Quick, 7);
            assert_eq!(m.method, method);
            assert!(!m.d2_scores.is_empty(), "{method:?} produced no D2 scores");
            assert!(
                m.d2_scores.iter().all(|s| s.is_finite()),
                "{method:?} produced non-finite scores"
            );
            let test = sine_trace(60, 9);
            let scores = m.scorer.score_series(&test);
            assert_eq!(scores.len(), 60);
        }
    }

    #[test]
    fn scorer_names_match_method() {
        assert_eq!(build_scorer(AdMethod::Ae, TrainingBudget::Quick, 1).name(), "AE");
        assert_eq!(build_scorer(AdMethod::Lstm, TrainingBudget::Quick, 1).name(), "LSTM");
        assert_eq!(build_scorer(AdMethod::BiGan, TrainingBudget::Quick, 1).name(), "BiGAN");
    }

    #[test]
    #[should_panic(expected = "holdout")]
    fn bad_holdout_panics() {
        let traces = vec![sine_trace(50, 1)];
        let _ = split_train(&traces, 1.0);
    }
}
