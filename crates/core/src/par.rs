//! Re-export of the workspace's shared parallel-execution layer.
//!
//! The implementation lives in `exathlon_linalg::par` (the substrate
//! crate every other crate already depends on, which lets `exathlon-ad`
//! use the same worker budget without a dependency cycle); pipeline-level
//! code conventionally imports it from here.

pub use exathlon_linalg::par::{max_threads, par_map, par_map_indexed, THREADS_ENV};
