//! The gatekeeper: a multi-tenant HTTP serving layer for streaming
//! detectors.
//!
//! Exathlon's monitoring setting (§2) has many repeated Spark executions
//! streaming records concurrently. The gatekeeper hosts one
//! [`ServingProfile`] per `(app, entity)` tenant behind a hand-rolled
//! HTTP/1.1 endpoint on [`std::net::TcpListener`] — no framework, no new
//! dependencies — with a fixed worker pool and a sharded, LRU-evicted
//! [`ProfileRegistry`] ([`crate::registry`]).
//!
//! Routes (all under `/v1`):
//!
//! | method | path | body | response |
//! |---|---|---|---|
//! | `PUT` | `/v1/profile/{app}/{entity}` | binary checkpoint image | `{"stored":true,"bytes":n,"evicted":[...]}` |
//! | `GET` | `/v1/checkpoint/{app}/{entity}` | — | binary checkpoint image |
//! | `POST` | `/v1/ingest/{app}/{entity}` | `{"record":[...]}` | `{"score":s,"anomaly":b}` |
//! | `POST` | `/v1/score/{app}/{entity}` | `{"records":[[...],...]}` | `{"scores":[...],"anomalies":[...]}` |
//! | `DELETE` | `/v1/profile/{app}/{entity}` | — | `{"removed":b}` |
//! | `GET` | `/v1/stats` | — | registry + gatekeeper counters |
//! | `GET` | `/v1/healthz` | — | `{"ok":true}` |
//!
//! Profiles travel as [`crate::checkpoint`] images, so `PUT` → ingest →
//! `GET` round-trips are bitwise lossless: a downloaded checkpoint
//! continues the tenant's stream exactly where the server left it
//! (pinned by `tests/gatekeeper_smoke.rs`). JSON floats follow the
//! repo-wide convention: non-finite values serialize as `null`, and
//! `null` record entries parse back as NaN gaps.
//!
//! ## The serving fast path
//!
//! The request cycle is allocation-free once a connection is warmed.
//! Each worker owns its connections outright (per-worker striping: the
//! acceptor round-robins accepted sockets over bounded per-worker
//! queues) and multiplexes them in a nonblocking event loop, so one
//! slow connection cannot head-of-line-block another behind a busy
//! worker. Per connection, requests are parsed in place from a reused
//! input buffer ([`crate::wire::parse_head`] returns byte ranges, not
//! `String`s), ingest bodies are number-parsed directly into reused row
//! buffers ([`crate::wire::parse_record_body`], falling back to the
//! general tree parser on any structural deviation so responses —
//! including error wording — stay byte-identical), and responses are
//! serialized into a reused output buffer through the shared
//! shortest-roundtrip float writer. All JSON formatting happens outside
//! the shard mutexes: locks scope registry access and spill-file IO
//! only. When every worker queue is full the acceptor sheds load with
//! `503` + `Retry-After` instead of queueing unboundedly.
//!
//! Evicted profiles can spill to disk ([`GatekeeperConfig::spill_dir`]):
//! the LRU victims are written as EXCK images and transparently
//! restored — bitwise — on the next touch of their key, so a byte
//! budget bounds memory without destroying tenant state.
//!
//! Tenant state lives in `shards` mutex-protected registries indexed by
//! FNV-1a of the key, so unrelated tenants do not contend. The hot path
//! (`ingest`) takes one shard lock, one hash lookup, one detector tick.

use crate::checkpoint::ServingProfile;
use crate::registry::{key_hash, EntityKey, ProfileRegistry, RegistryStats};
use crate::spill::SpillDir;
use crate::wire::{self, BodyParse, HeadParse};
use exathlon_linalg::codec::ByteWriter;
use parking_lot::Mutex;
use serde_json::Value;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 64 << 10;

/// Gatekeeper tuning knobs.
#[derive(Debug, Clone)]
pub struct GatekeeperConfig {
    /// Worker threads; each owns a stripe of the connections.
    pub workers: usize,
    /// Registry shards (keys spread by FNV-1a).
    pub shards: usize,
    /// LRU byte budget per shard (encoded profile bytes).
    pub budget_bytes_per_shard: usize,
    /// Largest accepted request body; larger requests get 413.
    pub max_body_bytes: usize,
    /// Idle-connection timeout (also bounds shutdown latency).
    pub read_timeout: Duration,
    /// Accepted-but-unserved connections queued per worker. When every
    /// worker's queue is full the acceptor answers `503` with
    /// `Retry-After` instead of queueing without bound.
    pub accept_queue: usize,
    /// Connections one worker multiplexes concurrently; beyond this it
    /// stops draining its accept queue (new connections wait there).
    pub max_conns_per_worker: usize,
    /// When set, evicted profiles spill here as EXCK images and are
    /// transparently restored on the next touch of their key.
    pub spill_dir: Option<PathBuf>,
}

impl Default for GatekeeperConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            shards: 8,
            budget_bytes_per_shard: 64 << 20,
            max_body_bytes: 16 << 20,
            read_timeout: Duration::from_secs(2),
            accept_queue: 64,
            max_conns_per_worker: 256,
            spill_dir: None,
        }
    }
}

/// Gatekeeper-level counters (the registry keeps its own; see
/// [`RegistryStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateStats {
    /// Evicted profiles written to the spill directory.
    pub spills: u64,
    /// Spilled profiles transparently restored on touch.
    pub restores: u64,
    /// Connections shed with 503 because every worker queue was full.
    pub rejected: u64,
    /// Single-record ingest requests metered by the allocation probe.
    pub ingest_requests: u64,
    /// Heap allocations those requests performed (worker-thread side).
    pub ingest_allocs: u64,
}

/// Per-process allocation probe, read by workers at spawn time.
///
/// A benchmark or test that installs a counting global allocator calls
/// [`set_alloc_probe`] with a function returning the calling thread's
/// cumulative allocation count **before** [`Gatekeeper::bind`]; each
/// worker then meters the probe delta across every single-record ingest
/// request and accumulates it into [`GateStats::ingest_allocs`]. The
/// warmed fast path holds that delta at zero (the CI allocation guard).
static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Install the worker allocation probe. Call before [`Gatekeeper::bind`];
/// later calls are ignored (the probe is read once per worker at spawn).
pub fn set_alloc_probe(probe: fn() -> u64) {
    let _ = ALLOC_PROBE.set(probe);
}

#[derive(Default)]
struct GateCounters {
    spills: AtomicU64,
    restores: AtomicU64,
    rejected: AtomicU64,
    ingest_requests: AtomicU64,
    ingest_allocs: AtomicU64,
}

/// State shared by every worker.
struct Shared {
    shards: Vec<Mutex<ProfileRegistry>>,
    max_body_bytes: usize,
    spill: Option<SpillDir>,
    gate: GateCounters,
}

impl Shared {
    fn shard(&self, app: &str, entity: &str) -> &Mutex<ProfileRegistry> {
        &self.shards[(key_hash(app, entity) % self.shards.len() as u64) as usize]
    }

    /// Counters summed across shards.
    fn stats(&self) -> RegistryStats {
        let mut total = RegistryStats::default();
        for shard in &self.shards {
            let s = shard.lock().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.insertions += s.insertions;
            total.evictions += s.evictions;
            total.resident_bytes += s.resident_bytes;
            total.resident_profiles += s.resident_profiles;
        }
        total
    }

    fn gate_stats(&self) -> GateStats {
        GateStats {
            spills: self.gate.spills.load(Ordering::Relaxed),
            restores: self.gate.restores.load(Ordering::Relaxed),
            rejected: self.gate.rejected.load(Ordering::Relaxed),
            ingest_requests: self.gate.ingest_requests.load(Ordering::Relaxed),
            ingest_allocs: self.gate.ingest_allocs.load(Ordering::Relaxed),
        }
    }

    /// Write eviction victims to the spill tier. The caller must hold
    /// the owning shard's lock: the lock is what serializes all image IO
    /// for a key (see [`crate::spill`]), so a concurrent PUT/DELETE can
    /// never interleave with an in-flight spill and resurrect or lose
    /// state.
    fn spill_victims(&self, victims: &[(EntityKey, ServingProfile)], scratch: &mut ByteWriter) {
        let Some(spill) = &self.spill else { return };
        for (key, profile) in victims {
            if spill.spill(&key.app, &key.entity, profile, scratch).is_ok() {
                self.gate.spills.fetch_add(1, Ordering::Relaxed);
                crate::obs::counter("serve.spills", 1);
            }
        }
    }

    /// Bring a spilled profile back into `reg` (the caller holds its
    /// lock). Returns whether a restore happened.
    fn try_restore(
        &self,
        reg: &mut ProfileRegistry,
        app: &str,
        entity: &str,
        scratch: &mut ByteWriter,
    ) -> bool {
        let Some(spill) = &self.spill else { return false };
        let Ok(Some((profile, bytes))) = spill.restore(app, entity) else { return false };
        let victims = reg.insert(EntityKey::new(app, entity), profile, bytes);
        self.spill_victims(&victims, scratch);
        let _ = spill.remove(app, entity);
        self.gate.restores.fetch_add(1, Ordering::Relaxed);
        crate::obs::counter("serve.restores", 1);
        true
    }
}

/// A running gatekeeper. Dropping it (or calling
/// [`Gatekeeper::shutdown`]) stops the acceptor and joins every worker.
pub struct Gatekeeper {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

#[derive(Clone, Copy)]
struct WorkerCfg {
    read_timeout: Duration,
    max_conns: usize,
}

impl Gatekeeper {
    /// Bind and start serving. Pass port 0 for an ephemeral port and read
    /// it back with [`Gatekeeper::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs, config: GatekeeperConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shards = config.shards.max(1);
        let spill = match &config.spill_dir {
            Some(dir) => Some(SpillDir::create(dir)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            shards: (0..shards)
                .map(|_| Mutex::new(ProfileRegistry::new(config.budget_bytes_per_shard)))
                .collect(),
            max_body_bytes: config.max_body_bytes,
            spill,
            gate: GateCounters::default(),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let probe = ALLOC_PROBE.get().copied();
        let wcfg = WorkerCfg {
            read_timeout: config.read_timeout,
            max_conns: config.max_conns_per_worker.max(1),
        };

        let mut txs = Vec::new();
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.accept_queue.max(1));
                txs.push(tx);
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("gk-worker-{i}"))
                    .spawn(move || worker_loop(rx, &shared, &stop, wcfg, probe))
                    .expect("spawn gatekeeper worker")
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gk-acceptor".into())
                .spawn(move || accept_loop(listener, txs, &shared, &stop))
                .expect("spawn gatekeeper acceptor")
        };

        Ok(Self { addr: local, shared, stop, acceptor: Some(acceptor), workers })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registry counters summed across shards.
    pub fn stats(&self) -> RegistryStats {
        self.shared.stats()
    }

    /// Gatekeeper-level counters (spills, restores, shed connections,
    /// allocation metering).
    pub fn gate_stats(&self) -> GateStats {
        self.shared.gate_stats()
    }

    /// Stop accepting, close striped connections, join every thread.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Gatekeeper {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop_threads();
        }
    }
}

// --------------------------------------------------------- accept striping

fn accept_loop(
    listener: TcpListener,
    txs: Vec<SyncSender<TcpStream>>,
    shared: &Shared,
    stop: &AtomicBool,
) {
    // The saturation response is fixed; build it once.
    let body = br#"{"error":"server overloaded"}"#;
    let mut reject = format!(
        "HTTP/1.1 503 Service Unavailable\r\ncontent-type: application/json\r\n\
         retry-after: 1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    reject.extend_from_slice(body);

    let mut next = 0usize;
    for conn in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break; // the shutdown self-connect lands here
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_nonblocking(true);
        // Round-robin striping over the per-worker queues: the first
        // worker with queue room owns this connection for its lifetime.
        let mut stream = Some(stream);
        for i in 0..txs.len() {
            let w = (next + i) % txs.len();
            match txs[w].try_send(stream.take().expect("stream present until sent")) {
                Ok(()) => {
                    next = (w + 1) % txs.len();
                    break;
                }
                Err(TrySendError::Full(s)) | Err(TrySendError::Disconnected(s)) => {
                    stream = Some(s);
                }
            }
        }
        if let Some(s) = stream {
            // Every queue is full: shed load now, tell the client when
            // to come back, and never block the accept loop on it.
            shared.gate.rejected.fetch_add(1, Ordering::Relaxed);
            crate::obs::counter("serve.rejected", 1);
            let _ = s.set_nonblocking(false);
            let _ = s.set_write_timeout(Some(Duration::from_secs(1)));
            let mut s = s;
            let _ = s.write_all(&reject);
            let _ = s.shutdown(Shutdown::Both);
        }
    }
    // `txs` drop here; idle workers see Disconnected and exit.
}

// ------------------------------------------------------------ worker loop

/// One multiplexed connection: reused buffers plus framing state.
struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes (complete requests are consumed in place).
    inbuf: Vec<u8>,
    /// Serialized responses not yet accepted by the socket.
    outbuf: Vec<u8>,
    /// Prefix of `outbuf` already written.
    out_pos: usize,
    last_active: Instant,
    /// Flush what is pending, then close (explicit `connection: close`,
    /// protocol errors, EOF).
    close_after_flush: bool,
}

/// Per-worker reusable workspaces; nothing here is allocated per request
/// once warmed.
struct Scratch {
    /// Parsed record values, all rows flattened.
    rows: Vec<f64>,
    /// Exclusive end offset of each row in `rows`.
    row_ends: Vec<usize>,
    /// One `(score, anomaly)` per scored record.
    scores: Vec<(f64, bool)>,
    /// Response body staging.
    body: String,
    /// Spill-image encode buffer.
    writer: ByteWriter,
    /// Socket read staging.
    tmp: Vec<u8>,
}

impl Scratch {
    fn new() -> Self {
        Self {
            rows: Vec::new(),
            row_ends: Vec::new(),
            scores: Vec::new(),
            body: String::new(),
            writer: ByteWriter::new(),
            tmp: vec![0u8; 64 << 10],
        }
    }
}

fn worker_loop(
    rx: Receiver<TcpStream>,
    shared: &Shared,
    stop: &AtomicBool,
    cfg: WorkerCfg,
    probe: Option<fn() -> u64>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut pool: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut scratch = Scratch::new();
    let mut idle_spins = 0u32;
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        // Admit queued connections up to this worker's multiplex cap.
        while conns.len() < cfg.max_conns {
            match rx.try_recv() {
                Ok(s) => conns.push(admit(s, &mut pool)),
                Err(_) => break,
            }
        }
        if conns.is_empty() {
            // Nothing to poll: block on the queue instead of spinning.
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(s) => conns.push(admit(s, &mut pool)),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let now = Instant::now();
        let mut progressed = false;
        let mut i = 0;
        while i < conns.len() {
            match poll_conn(&mut conns[i], shared, &mut scratch, now, cfg, probe) {
                Poll::Keep(p) => {
                    progressed |= p;
                    i += 1;
                }
                Poll::Close => {
                    let c = conns.swap_remove(i);
                    let _ = c.stream.shutdown(Shutdown::Both);
                    pool.push((c.inbuf, c.outbuf));
                    progressed = true;
                }
            }
        }
        // Single-core friendly backoff: yield first, then sleep with an
        // escalating cap so an idle worker never busy-spins a shared CPU
        // while waking fast once traffic resumes.
        if progressed {
            idle_spins = 0;
        } else {
            idle_spins += 1;
            if idle_spins <= 16 {
                std::thread::yield_now();
            } else {
                let us = (100u64 << (idle_spins - 16).min(5)).min(2_000);
                std::thread::sleep(Duration::from_micros(us));
            }
        }
    }
}

fn admit(stream: TcpStream, pool: &mut Vec<(Vec<u8>, Vec<u8>)>) -> Conn {
    let (mut inbuf, mut outbuf) = pool.pop().unwrap_or_default();
    inbuf.clear();
    outbuf.clear();
    Conn {
        stream,
        inbuf,
        outbuf,
        out_pos: 0,
        last_active: Instant::now(),
        close_after_flush: false,
    }
}

enum Poll {
    /// Connection stays; the flag reports whether any bytes moved.
    Keep(bool),
    Close,
}

fn poll_conn(
    conn: &mut Conn,
    shared: &Shared,
    scratch: &mut Scratch,
    now: Instant,
    cfg: WorkerCfg,
    probe: Option<fn() -> u64>,
) -> Poll {
    let mut progressed = false;
    match flush_out(conn, now) {
        Flush::Closed => return Poll::Close,
        Flush::Progress(p) => progressed |= p,
    }
    if conn.close_after_flush {
        if conn.out_pos == conn.outbuf.len() {
            return Poll::Close;
        }
        // Still draining; the idle timeout below bounds a stuck peer.
    } else {
        // Read until the socket would block (bounded so a pipelining
        // peer cannot grow the buffer past one max-size request).
        let cap = shared.max_body_bytes + MAX_HEAD_BYTES + (64 << 10);
        let mut eof = false;
        while conn.inbuf.len() < cap {
            match conn.stream.read(&mut scratch.tmp) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&scratch.tmp[..n]);
                    conn.last_active = now;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Poll::Close,
            }
        }

        // Handle every complete request buffered so far.
        let mut consumed = 0usize;
        loop {
            let buf = &conn.inbuf[consumed..];
            if buf.is_empty() {
                break;
            }
            match wire::parse_head(buf, MAX_HEAD_BYTES) {
                HeadParse::Partial => break,
                HeadParse::Hangup => return Poll::Close,
                HeadParse::Bad(status, msg) => {
                    stage_error_response(scratch, &mut conn.outbuf, status, msg);
                    conn.close_after_flush = true;
                    consumed = conn.inbuf.len();
                    progressed = true;
                    break;
                }
                HeadParse::Complete(head) => {
                    if head.content_length > shared.max_body_bytes {
                        stage_error_response(scratch, &mut conn.outbuf, 413, "body too large");
                        conn.close_after_flush = true;
                        consumed = conn.inbuf.len();
                        progressed = true;
                        break;
                    }
                    let total = head.head_len + head.content_length;
                    if buf.len() < total {
                        break; // body not fully buffered yet
                    }
                    // Head lines were UTF-8-validated by the parser.
                    let method =
                        std::str::from_utf8(&buf[head.method.0..head.method.1]).unwrap_or_default();
                    let path =
                        std::str::from_utf8(&buf[head.path.0..head.path.1]).unwrap_or_default();
                    let body = &buf[head.head_len..total];
                    handle(
                        shared,
                        scratch,
                        method,
                        path,
                        body,
                        head.keep_alive,
                        &mut conn.outbuf,
                        probe,
                    );
                    progressed = true;
                    conn.last_active = now;
                    consumed += total;
                    if !head.keep_alive {
                        conn.close_after_flush = true;
                        break;
                    }
                }
            }
        }
        if consumed > 0 {
            conn.inbuf.drain(..consumed);
        }
        if eof {
            // Peer is done sending; flush whatever is staged, then close
            // (an incomplete buffered request is dropped silently, like
            // the old reader's Hangup).
            conn.close_after_flush = true;
        }
        match flush_out(conn, now) {
            Flush::Closed => return Poll::Close,
            Flush::Progress(p) => progressed |= p,
        }
        if conn.close_after_flush && conn.out_pos == conn.outbuf.len() {
            return Poll::Close;
        }
    }
    if now.duration_since(conn.last_active) > cfg.read_timeout {
        return Poll::Close;
    }
    Poll::Keep(progressed)
}

enum Flush {
    Progress(bool),
    Closed,
}

fn flush_out(conn: &mut Conn, now: Instant) -> Flush {
    let mut progressed = false;
    while conn.out_pos < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.out_pos..]) {
            Ok(0) => return Flush::Closed,
            Ok(n) => {
                conn.out_pos += n;
                conn.last_active = now;
                progressed = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Flush::Closed,
        }
    }
    if conn.out_pos == conn.outbuf.len() && conn.out_pos > 0 {
        conn.outbuf.clear();
        conn.out_pos = 0;
    }
    Flush::Progress(progressed)
}

// --------------------------------------------------------------- routing

/// What a handler produced: a JSON body staged in `scratch.body`, or an
/// owned binary payload (checkpoint images).
enum Reply {
    Json(u16),
    Octets(Vec<u8>),
}

fn stage_error(scratch: &mut Scratch, status: u16, message: &str) -> Reply {
    scratch.body.clear();
    wire::write_error_body(&mut scratch.body, message);
    Reply::Json(status)
}

/// Serialize an error straight to a connection's output buffer (protocol
/// errors that bypass routing). Always closes, mirroring the old server.
fn stage_error_response(scratch: &mut Scratch, out: &mut Vec<u8>, status: u16, message: &str) {
    scratch.body.clear();
    wire::write_error_body(&mut scratch.body, message);
    wire::write_head(out, status, "application/json", scratch.body.len(), false);
    out.extend_from_slice(scratch.body.as_bytes());
}

#[allow(clippy::too_many_arguments)]
fn handle(
    shared: &Shared,
    scratch: &mut Scratch,
    method: &str,
    path: &str,
    body: &[u8],
    keep_alive: bool,
    out: &mut Vec<u8>,
    probe: Option<fn() -> u64>,
) {
    crate::obs::counter("serve.requests", 1);
    crate::obs::counter("serve.bytes_in", body.len() as u64);
    let clean = path.split('?').next().unwrap_or("");
    // The single-record ingest route is the allocation-metered hot path.
    let metered = probe.is_some() && method == "POST" && clean.starts_with("/v1/ingest/");
    let allocs_before = if metered { (probe.expect("metered"))() } else { 0 };

    let mut segs = [""; 4];
    let mut n = 0usize;
    let mut overflow = false;
    for s in clean.split('/').filter(|s| !s.is_empty()) {
        if n < segs.len() {
            segs[n] = s;
            n += 1;
        } else {
            overflow = true;
            break;
        }
    }
    let reply = if overflow {
        stage_error(scratch, 404, "no such route")
    } else {
        match (method, &segs[..n]) {
            ("GET", ["v1", "healthz"]) => {
                scratch.body.clear();
                scratch.body.push_str("{\"ok\":true}");
                Reply::Json(200)
            }
            ("GET", ["v1", "stats"]) => stats_reply(shared, scratch),
            ("PUT", ["v1", "profile", app, entity]) => {
                put_profile(shared, scratch, app, entity, body)
            }
            ("DELETE", ["v1", "profile", app, entity]) => {
                delete_profile(shared, scratch, app, entity)
            }
            ("GET", ["v1", "checkpoint", app, entity]) => {
                get_checkpoint(shared, scratch, app, entity)
            }
            ("POST", ["v1", "ingest", app, entity]) => {
                ingest(shared, scratch, app, entity, body, false)
            }
            ("POST", ["v1", "score", app, entity]) => {
                ingest(shared, scratch, app, entity, body, true)
            }
            _ => stage_error(scratch, 404, "no such route"),
        }
    };
    match reply {
        Reply::Json(status) => {
            crate::obs::counter("serve.bytes_out", scratch.body.len() as u64);
            wire::write_head(out, status, "application/json", scratch.body.len(), keep_alive);
            out.extend_from_slice(scratch.body.as_bytes());
        }
        Reply::Octets(bytes) => {
            crate::obs::counter("serve.bytes_out", bytes.len() as u64);
            wire::write_head(out, 200, "application/octet-stream", bytes.len(), keep_alive);
            out.extend_from_slice(&bytes);
        }
    }
    if metered {
        let delta = (probe.expect("metered"))() - allocs_before;
        shared.gate.ingest_requests.fetch_add(1, Ordering::Relaxed);
        shared.gate.ingest_allocs.fetch_add(delta, Ordering::Relaxed);
    }
}

fn stats_reply(shared: &Shared, scratch: &mut Scratch) -> Reply {
    // Counters are collected under the shard locks; all JSON formatting
    // happens after every lock is released.
    let s = shared.stats();
    let g = shared.gate_stats();
    scratch.body.clear();
    let _ = write!(
        scratch.body,
        "{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\
         \"resident_bytes\":{},\"resident_profiles\":{},\"spills\":{},\"restores\":{},\
         \"rejected\":{},\"ingest_requests\":{},\"ingest_allocs\":{}}}",
        s.hits,
        s.misses,
        s.insertions,
        s.evictions,
        s.resident_bytes,
        s.resident_profiles,
        g.spills,
        g.restores,
        g.rejected,
        g.ingest_requests,
        g.ingest_allocs,
    );
    Reply::Json(200)
}

fn put_profile(
    shared: &Shared,
    scratch: &mut Scratch,
    app: &str,
    entity: &str,
    body: &[u8],
) -> Reply {
    let profile = match ServingProfile::from_bytes(body) {
        Ok(p) => p,
        Err(e) => {
            let msg = format!("bad checkpoint image: {e}");
            return stage_error(scratch, 400, &msg);
        }
    };
    let evicted = {
        let mut reg = shared.shard(app, entity).lock();
        let victims = reg.insert(EntityKey::new(app, entity), profile, body.len());
        shared.spill_victims(&victims, &mut scratch.writer);
        // This PUT supersedes any image spilled from an earlier
        // eviction; drop it so a later miss cannot resurrect old state.
        if let Some(spill) = &shared.spill {
            let _ = spill.remove(app, entity);
        }
        victims
    };
    // Eviction list formatting happens outside the shard lock.
    scratch.body.clear();
    let _ = write!(scratch.body, "{{\"stored\":true,\"bytes\":{},\"evicted\":[", body.len());
    for (i, (victim, _)) in evicted.iter().enumerate() {
        if i > 0 {
            scratch.body.push(',');
        }
        serde::write_json_string(&mut scratch.body, &victim.to_string());
    }
    scratch.body.push_str("]}");
    Reply::Json(200)
}

fn delete_profile(shared: &Shared, scratch: &mut Scratch, app: &str, entity: &str) -> Reply {
    let removed = {
        let mut reg = shared.shard(app, entity).lock();
        let resident = reg.remove_parts(app, entity).is_some();
        let imaged = match &shared.spill {
            Some(spill) => spill.remove(app, entity).unwrap_or(false),
            None => false,
        };
        resident || imaged
    };
    scratch.body.clear();
    let _ = write!(scratch.body, "{{\"removed\":{removed}}}");
    Reply::Json(200)
}

fn get_checkpoint(shared: &Shared, scratch: &mut Scratch, app: &str, entity: &str) -> Reply {
    let bytes = {
        let mut reg = shared.shard(app, entity).lock();
        match reg.peek_parts(app, entity) {
            Some(p) => Some(p.to_bytes()),
            None => {
                if shared.try_restore(&mut reg, app, entity, &mut scratch.writer) {
                    reg.peek_parts(app, entity).map(|p| p.to_bytes())
                } else {
                    None
                }
            }
        }
    };
    match bytes {
        Some(b) => Reply::Octets(b),
        None => stage_error(scratch, 404, "unknown profile"),
    }
}

/// JSON number → f64, with `null` as a NaN gap (the repo-wide float
/// convention: the writer maps non-finite to `null`, so the reader must
/// accept it back).
fn json_num(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Null => Some(f64::NAN),
        _ => None,
    }
}

/// The general (tree-parser) body parse, used whenever the strict fast
/// path declines. Owns every error message so wording is unchanged from
/// the pre-fast-path server.
fn parse_records_slow(
    body: &[u8],
    batch: bool,
    scratch: &mut Scratch,
) -> Result<(), (u16, String)> {
    scratch.rows.clear();
    scratch.row_ends.clear();
    let text = std::str::from_utf8(body).map_err(|_| (400, "body is not UTF-8".to_string()))?;
    let parsed = serde_json::parse_value(text).map_err(|e| (400, format!("bad JSON: {e}")))?;
    if batch {
        let rows = parsed
            .get("records")
            .and_then(|v| v.as_array())
            .ok_or_else(|| (400, "missing \"records\" array".to_string()))?;
        for row in rows {
            let arr = row
                .as_array()
                .ok_or_else(|| (400, "records must be arrays of numbers".to_string()))?;
            for v in arr {
                let x = json_num(v)
                    .ok_or_else(|| (400, "records must be arrays of numbers".to_string()))?;
                scratch.rows.push(x);
            }
            scratch.row_ends.push(scratch.rows.len());
        }
    } else {
        let arr = parsed
            .get("record")
            .and_then(|v| v.as_array())
            .ok_or_else(|| (400, "missing \"record\" array of numbers".to_string()))?;
        for v in arr {
            let x = json_num(v)
                .ok_or_else(|| (400, "missing \"record\" array of numbers".to_string()))?;
            scratch.rows.push(x);
        }
        scratch.row_ends.push(scratch.rows.len());
    }
    Ok(())
}

fn ingest(
    shared: &Shared,
    scratch: &mut Scratch,
    app: &str,
    entity: &str,
    body: &[u8],
    batch: bool,
) -> Reply {
    if wire::parse_record_body(body, batch, &mut scratch.rows, &mut scratch.row_ends)
        == BodyParse::Fallback
    {
        if let Err((status, msg)) = parse_records_slow(body, batch, scratch) {
            return stage_error(scratch, status, &msg);
        }
    }

    scratch.scores.clear();
    let verdict: Result<(), (u16, &'static str)> = {
        let mut reg = shared.shard(app, entity).lock();
        if reg.get_mut_parts(app, entity).is_none() {
            shared.try_restore(&mut reg, app, entity, &mut scratch.writer);
        }
        match reg.get_mut_parts(app, entity) {
            None => Err((404, "unknown profile")),
            Some(profile) => {
                let mut verdict = Ok(());
                let mut start = 0usize;
                for &end in &scratch.row_ends {
                    let record = &scratch.rows[start..end];
                    // A record of the wrong width panics deep in the
                    // detector; surface that as a client error instead
                    // of losing a worker.
                    let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        profile.ingest(record)
                    }));
                    match scored {
                        Ok(pair) => scratch.scores.push(pair),
                        Err(_) => {
                            verdict = Err((400, "record rejected by detector"));
                            break;
                        }
                    }
                    start = end;
                }
                verdict
            }
        }
    };
    match verdict {
        Err((status, msg)) => stage_error(scratch, status, msg),
        Ok(()) => {
            crate::obs::counter("serve.ingest_records", scratch.row_ends.len() as u64);
            // Response formatting happens after the shard lock dropped.
            scratch.body.clear();
            if batch {
                wire::write_batch_scores(&mut scratch.body, &scratch.scores);
            } else {
                let (s, a) = scratch.scores[0];
                wire::write_single_score(&mut scratch.body, s, a);
            }
            Reply::Json(200)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_ad::stream::StreamingEwma;
    use std::io::BufRead as _;
    use std::io::BufReader;

    /// Minimal test client: one request per call over a fresh connection.
    fn call(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let split = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("no header break") + 4;
        let head = std::str::from_utf8(&raw[..split]).unwrap();
        let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
        (status, raw[split..].to_vec())
    }

    fn profile() -> ServingProfile {
        ServingProfile::new(StreamingEwma::new(0.3, vec![1.0, 2.0]).into(), 0.5)
    }

    #[test]
    fn full_cycle_put_ingest_checkpoint() {
        let gk = Gatekeeper::bind("127.0.0.1:0", GatekeeperConfig::default()).unwrap();
        let addr = gk.local_addr();

        let (status, body) = call(addr, "GET", "/v1/healthz", b"");
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));

        // Upload, then drive the server twin and a local twin in lockstep.
        let mut local = profile();
        let (status, _) = call(addr, "PUT", "/v1/profile/app1/exec1", &local.to_bytes());
        assert_eq!(status, 200);

        for i in 0..10 {
            let rec = [i as f64 * 0.7, (i as f64).sin()];
            let (want, want_flag) = local.ingest(&rec);
            let req = format!("{{\"record\":[{},{}]}}", rec[0], rec[1]);
            let (status, body) = call(addr, "POST", "/v1/ingest/app1/exec1", req.as_bytes());
            assert_eq!(status, 200);
            let v = serde_json::parse_value(std::str::from_utf8(&body).unwrap()).unwrap();
            let got = match v.get("score").unwrap() {
                Value::Int(i) => *i as f64,
                Value::Float(f) => *f,
                other => panic!("score was {other:?}"),
            };
            assert_eq!(got.to_bits(), want.to_bits(), "record {i}");
            assert_eq!(v.get("anomaly"), Some(&Value::Bool(want_flag)));
        }

        // The downloaded checkpoint is the advanced state, bitwise.
        let (status, image) = call(addr, "GET", "/v1/checkpoint/app1/exec1", b"");
        assert_eq!(status, 200);
        assert_eq!(image, local.to_bytes());

        let stats = gk.stats();
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.resident_profiles, 1);
        gk.shutdown();
    }

    #[test]
    fn batch_score_matches_sequential_ingest() {
        let gk = Gatekeeper::bind("127.0.0.1:0", GatekeeperConfig::default()).unwrap();
        let addr = gk.local_addr();
        let mut local = profile();
        call(addr, "PUT", "/v1/profile/a/e", &local.to_bytes());
        let mut want = Vec::new();
        let mut rows = Vec::new();
        for i in 0..5 {
            let rec = [i as f64, -(i as f64)];
            want.push(local.ingest(&rec).0);
            rows.push(format!("[{},{}]", rec[0], rec[1]));
        }
        let req = format!("{{\"records\":[{}]}}", rows.join(","));
        let (status, body) = call(addr, "POST", "/v1/score/a/e", req.as_bytes());
        assert_eq!(status, 200);
        let v = serde_json::parse_value(std::str::from_utf8(&body).unwrap()).unwrap();
        let got: Vec<f64> = v
            .get("scores")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|x| json_num(x).unwrap())
            .collect();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn errors_are_typed_not_fatal() {
        let gk = Gatekeeper::bind("127.0.0.1:0", GatekeeperConfig::default()).unwrap();
        let addr = gk.local_addr();
        // Unknown route, unknown profile, corrupt image, bad JSON, wrong
        // record width — each a clean client error, server stays up.
        assert_eq!(call(addr, "GET", "/nope", b"").0, 404);
        assert_eq!(call(addr, "POST", "/v1/ingest/a/e", b"{\"record\":[1]}").0, 404);
        assert_eq!(call(addr, "PUT", "/v1/profile/a/e", b"garbage").0, 400);
        call(addr, "PUT", "/v1/profile/a/e", &profile().to_bytes());
        assert_eq!(call(addr, "POST", "/v1/ingest/a/e", b"not json").0, 400);
        assert_eq!(call(addr, "POST", "/v1/ingest/a/e", b"{\"record\":[1]}").0, 400);
        // Still alive and consistent afterwards.
        assert_eq!(call(addr, "POST", "/v1/ingest/a/e", b"{\"record\":[1,2]}").0, 200);
        assert_eq!(call(addr, "DELETE", "/v1/profile/a/e", b"").0, 200);
        assert_eq!(call(addr, "POST", "/v1/ingest/a/e", b"{\"record\":[1,2]}").0, 404);
        gk.shutdown();
    }

    #[test]
    fn null_record_entries_are_nan_gaps() {
        let gk = Gatekeeper::bind("127.0.0.1:0", GatekeeperConfig::default()).unwrap();
        let addr = gk.local_addr();
        let mut local = profile();
        call(addr, "PUT", "/v1/profile/a/e", &local.to_bytes());
        let (want, _) = local.ingest(&[f64::NAN, 1.0]);
        let (status, body) = call(addr, "POST", "/v1/ingest/a/e", b"{\"record\":[null,1]}");
        assert_eq!(status, 200);
        let v = serde_json::parse_value(std::str::from_utf8(&body).unwrap()).unwrap();
        let got = json_num(v.get("score").unwrap()).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn keep_alive_serves_many_requests_per_connection() {
        let gk = Gatekeeper::bind("127.0.0.1:0", GatekeeperConfig::default()).unwrap();
        let addr = gk.local_addr();
        call(addr, "PUT", "/v1/profile/a/e", &profile().to_bytes());
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..20 {
            let body = format!("{{\"record\":[{i},0]}}");
            let head = format!(
                "POST /v1/ingest/a/e HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
                body.len()
            );
            stream.write_all(head.as_bytes()).unwrap();
            stream.write_all(body.as_bytes()).unwrap();
            // Read one response: headers, then content-length bytes.
            let mut status_line = String::new();
            reader.read_line(&mut status_line).unwrap();
            assert!(status_line.contains("200"), "request {i}: {status_line}");
            let mut len = 0usize;
            loop {
                let mut h = String::new();
                reader.read_line(&mut h).unwrap();
                let h = h.trim_end();
                if h.is_empty() {
                    break;
                }
                if let Some((k, v)) = h.split_once(':') {
                    if k.eq_ignore_ascii_case("content-length") {
                        len = v.trim().parse().unwrap();
                    }
                }
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).unwrap();
        }
        gk.shutdown();
    }

    #[test]
    fn saturated_accept_queues_answer_503_with_retry_after() {
        let config = GatekeeperConfig {
            workers: 1,
            accept_queue: 1,
            max_conns_per_worker: 1,
            ..GatekeeperConfig::default()
        };
        let gk = Gatekeeper::bind("127.0.0.1:0", config).unwrap();
        let addr = gk.local_addr();

        // c1: admitted by the only worker (a served round-trip proves it
        // occupies the worker's single connection slot).
        let mut c1 = TcpStream::connect(addr).unwrap();
        c1.write_all(b"GET /v1/healthz HTTP/1.1\r\ncontent-length: 0\r\n\r\n").unwrap();
        let mut reader = BufReader::new(c1.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("200"), "{line}");

        // c2: parks in the worker's accept queue (capacity 1).
        let c2 = TcpStream::connect(addr).unwrap();
        // Give the acceptor a moment to enqueue c2 before c3 arrives.
        std::thread::sleep(Duration::from_millis(50));

        // c3: every queue is full — the acceptor must shed it.
        let mut c3 = TcpStream::connect(addr).unwrap();
        let mut raw = Vec::new();
        c3.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable"), "{text}");
        assert!(text.contains("retry-after: 1"), "{text}");
        assert!(text.contains("server overloaded"), "{text}");
        assert_eq!(gk.gate_stats().rejected, 1);

        // Freeing c1 lets the worker drain the queue and serve c2.
        drop(reader);
        drop(c1);
        let mut c2 = c2;
        c2.write_all(b"GET /v1/healthz HTTP/1.1\r\ncontent-length: 0\r\nconnection: close\r\n\r\n")
            .unwrap();
        let mut raw = Vec::new();
        c2.read_to_end(&mut raw).unwrap();
        assert!(
            String::from_utf8_lossy(&raw).contains("200 OK"),
            "c2 must be served after c1 frees its slot"
        );
        gk.shutdown();
    }

    #[test]
    fn evicted_profiles_spill_to_disk_and_restore_bitwise() {
        let dir = std::env::temp_dir().join(format!("exathlon-gk-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = GatekeeperConfig {
            shards: 1,
            budget_bytes_per_shard: 1, // every insert evicts the previous LRU
            spill_dir: Some(dir.clone()),
            ..GatekeeperConfig::default()
        };
        let gk = Gatekeeper::bind("127.0.0.1:0", config).unwrap();
        let addr = gk.local_addr();

        let mut twin_a = profile();
        let mut twin_b = profile();
        call(addr, "PUT", "/v1/profile/app/a", &twin_a.to_bytes());
        // Advance a while resident.
        for i in 0..5 {
            let (want, _) = twin_a.ingest(&[i as f64, 0.25]);
            let req = format!("{{\"record\":[{},0.25]}}", i);
            let (status, body) = call(addr, "POST", "/v1/ingest/app/a", req.as_bytes());
            assert_eq!(status, 200);
            let v = serde_json::parse_value(std::str::from_utf8(&body).unwrap()).unwrap();
            assert_eq!(json_num(v.get("score").unwrap()).unwrap().to_bits(), want.to_bits());
        }

        // Inserting b evicts a (budget holds one profile); a's advanced
        // state must land on disk, not vanish.
        call(addr, "PUT", "/v1/profile/app/b", &twin_b.to_bytes());
        assert!(gk.gate_stats().spills >= 1, "eviction must spill");

        // Touching a restores it transparently and the score stream
        // continues bitwise from the pre-eviction state.
        let (want, _) = twin_a.ingest(&[9.0, -1.0]);
        let (status, body) = call(addr, "POST", "/v1/ingest/app/a", b"{\"record\":[9,-1]}");
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let v = serde_json::parse_value(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(json_num(v.get("score").unwrap()).unwrap().to_bits(), want.to_bits());
        assert_eq!(gk.gate_stats().restores, 1);

        // b was evicted by a's restore; its checkpoint must also come
        // back through the spill tier, bitwise.
        let _ = twin_b.ingest(&[1.0, 1.0]);
        let (status, body) = call(addr, "POST", "/v1/ingest/app/b", b"{\"record\":[1,1]}");
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let (status, image) = call(addr, "GET", "/v1/checkpoint/app/b", b"");
        assert_eq!(status, 200);
        assert_eq!(image, twin_b.to_bytes(), "restore must be bitwise lossless");

        // DELETE removes both the resident profile and any spill image.
        assert_eq!(call(addr, "DELETE", "/v1/profile/app/a", b"").0, 200);
        assert_eq!(call(addr, "POST", "/v1/ingest/app/a", b"{\"record\":[1,1]}").0, 404);
        gk.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_expose_gatekeeper_counters() {
        let gk = Gatekeeper::bind("127.0.0.1:0", GatekeeperConfig::default()).unwrap();
        let addr = gk.local_addr();
        let (status, body) = call(addr, "GET", "/v1/stats", b"");
        assert_eq!(status, 200);
        let v = serde_json::parse_value(std::str::from_utf8(&body).unwrap()).unwrap();
        for field in
            ["hits", "misses", "spills", "restores", "rejected", "ingest_requests", "ingest_allocs"]
        {
            assert!(v.get(field).is_some(), "stats must expose {field}");
        }
        gk.shutdown();
    }
}
