//! The gatekeeper: a multi-tenant HTTP serving layer for streaming
//! detectors.
//!
//! Exathlon's monitoring setting (§2) has many repeated Spark executions
//! streaming records concurrently. The gatekeeper hosts one
//! [`ServingProfile`] per `(app, entity)` tenant behind a hand-rolled
//! HTTP/1.1 endpoint on [`std::net::TcpListener`] — no framework, no new
//! dependencies — with a fixed worker pool and a sharded, LRU-evicted
//! [`ProfileRegistry`] ([`crate::registry`]).
//!
//! Routes (all under `/v1`):
//!
//! | method | path | body | response |
//! |---|---|---|---|
//! | `PUT` | `/v1/profile/{app}/{entity}` | binary checkpoint image | `{"stored":true,"bytes":n,"evicted":[...]}` |
//! | `GET` | `/v1/checkpoint/{app}/{entity}` | — | binary checkpoint image |
//! | `POST` | `/v1/ingest/{app}/{entity}` | `{"record":[...]}` | `{"score":s,"anomaly":b}` |
//! | `POST` | `/v1/score/{app}/{entity}` | `{"records":[[...],...]}` | `{"scores":[...],"anomalies":[...]}` |
//! | `DELETE` | `/v1/profile/{app}/{entity}` | — | `{"removed":b}` |
//! | `GET` | `/v1/stats` | — | registry counters |
//! | `GET` | `/v1/healthz` | — | `{"ok":true}` |
//!
//! Profiles travel as [`crate::checkpoint`] images, so `PUT` → ingest →
//! `GET` round-trips are bitwise lossless: a downloaded checkpoint
//! continues the tenant's stream exactly where the server left it
//! (pinned by `tests/gatekeeper_smoke.rs`). JSON floats follow the
//! repo-wide convention: non-finite values serialize as `null`, and
//! `null` record entries parse back as NaN gaps.
//!
//! Concurrency model: one acceptor thread hands connections to a fixed
//! pool of workers over an [`std::sync::mpsc`] channel; each worker
//! speaks keep-alive HTTP/1.1 on its connection. Tenant state lives in
//! `shards` mutex-protected registries indexed by FNV-1a of the key, so
//! unrelated tenants do not contend. The hot path (`ingest`) takes one
//! shard lock, one hash lookup, one detector tick.

use crate::checkpoint::ServingProfile;
use crate::registry::{EntityKey, ProfileRegistry, RegistryStats};
use parking_lot::Mutex;
use serde_json::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Gatekeeper tuning knobs.
#[derive(Debug, Clone)]
pub struct GatekeeperConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Registry shards (keys spread by FNV-1a).
    pub shards: usize,
    /// LRU byte budget per shard (encoded profile bytes).
    pub budget_bytes_per_shard: usize,
    /// Largest accepted request body; larger requests get 413.
    pub max_body_bytes: usize,
    /// Per-connection read timeout (also bounds shutdown latency).
    pub read_timeout: Duration,
}

impl Default for GatekeeperConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            shards: 8,
            budget_bytes_per_shard: 64 << 20,
            max_body_bytes: 16 << 20,
            read_timeout: Duration::from_secs(2),
        }
    }
}

/// FNV-1a over the key's parts; stable shard placement across runs.
fn fnv1a(key: &EntityKey) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key.app.as_bytes().iter().chain([0xffu8].iter()).chain(key.entity.as_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// State shared by every worker.
struct Shared {
    shards: Vec<Mutex<ProfileRegistry>>,
    max_body_bytes: usize,
}

impl Shared {
    fn shard(&self, key: &EntityKey) -> &Mutex<ProfileRegistry> {
        &self.shards[(fnv1a(key) % self.shards.len() as u64) as usize]
    }

    /// Counters summed across shards.
    fn stats(&self) -> RegistryStats {
        let mut total = RegistryStats::default();
        for shard in &self.shards {
            let s = shard.lock().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.insertions += s.insertions;
            total.evictions += s.evictions;
            total.resident_bytes += s.resident_bytes;
            total.resident_profiles += s.resident_profiles;
        }
        total
    }
}

/// A running gatekeeper. Dropping it (or calling
/// [`Gatekeeper::shutdown`]) stops the acceptor and joins every worker.
pub struct Gatekeeper {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Gatekeeper {
    /// Bind and start serving. Pass port 0 for an ephemeral port and read
    /// it back with [`Gatekeeper::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs, config: GatekeeperConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shards = config.shards.max(1);
        let shared = Arc::new(Shared {
            shards: (0..shards)
                .map(|_| Mutex::new(ProfileRegistry::new(config.budget_bytes_per_shard)))
                .collect(),
            max_body_bytes: config.max_body_bytes,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || loop {
                    // Hold the receiver lock only while dequeuing.
                    let conn = rx.lock().recv();
                    match conn {
                        Ok(stream) => serve_connection(stream, &shared, &stop),
                        Err(_) => break, // acceptor gone: drain complete
                    }
                })
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            let read_timeout = config.read_timeout;
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break; // the shutdown self-connect lands here
                    }
                    if let Ok(stream) = conn {
                        let _ = stream.set_read_timeout(Some(read_timeout));
                        let _ = stream.set_nodelay(true);
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                }
                // `tx` drops here; workers drain the queue and exit.
            })
        };

        Ok(Self { addr: local, shared, stop, acceptor: Some(acceptor), workers })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registry counters summed across shards.
    pub fn stats(&self) -> RegistryStats {
        self.shared.stats()
    }

    /// Stop accepting, drain the connection queue, join every thread.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Gatekeeper {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop_threads();
        }
    }
}

// ------------------------------------------------------------- HTTP layer

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
    keep_alive: bool,
}

enum ReadOutcome {
    Request(Request),
    /// Clean close (EOF before a request line) or I/O error / timeout.
    Hangup,
    /// Malformed request; answer with this status and close.
    Bad(u16, &'static str),
}

fn read_request(reader: &mut BufReader<TcpStream>, max_body: usize) -> ReadOutcome {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) | Err(_) => return ReadOutcome::Hangup,
        Ok(_) => {}
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return ReadOutcome::Bad(400, "malformed request line"),
    };
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) | Err(_) => return ReadOutcome::Hangup,
            Ok(_) => {}
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.parse() {
                    Ok(n) => n,
                    Err(_) => return ReadOutcome::Bad(400, "bad content-length"),
                };
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
        }
    }
    if content_length > max_body {
        return ReadOutcome::Bad(413, "body too large");
    }
    let mut body = vec![0u8; content_length];
    if reader.read_exact(&mut body).is_err() {
        return ReadOutcome::Hangup;
    }
    ReadOutcome::Request(Request { method, path, body, keep_alive })
}

struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    fn json(status: u16, body: String) -> Self {
        Self { status, content_type: "application/json", body: body.into_bytes() }
    }

    fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":");
        serde::write_json_string(&mut body, message);
        body.push('}');
        Self::json(status, body)
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

fn serve_connection(mut stream: TcpStream, shared: &Shared, stop: &AtomicBool) {
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let request = match read_request(&mut reader, shared.max_body_bytes) {
            ReadOutcome::Request(r) => r,
            ReadOutcome::Hangup => break,
            ReadOutcome::Bad(status, msg) => {
                let _ = write_response(&mut stream, &Response::error(status, msg), false);
                break;
            }
        };
        crate::obs::counter("serve.requests", 1);
        crate::obs::counter("serve.bytes_in", request.body.len() as u64);
        let response = route(&request, shared);
        crate::obs::counter("serve.bytes_out", response.body.len() as u64);
        if write_response(&mut stream, &response, request.keep_alive).is_err() {
            break;
        }
        if !request.keep_alive {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

// --------------------------------------------------------------- routing

fn route(req: &Request, shared: &Shared) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => Response::json(200, "{\"ok\":true}".into()),
        ("GET", ["v1", "stats"]) => stats_response(shared),
        ("PUT", ["v1", "profile", app, entity]) => {
            put_profile(shared, EntityKey::new(*app, *entity), &req.body)
        }
        ("DELETE", ["v1", "profile", app, entity]) => {
            let removed = shared
                .shard(&EntityKey::new(*app, *entity))
                .lock()
                .remove(&EntityKey::new(*app, *entity))
                .is_some();
            Response::json(200, format!("{{\"removed\":{removed}}}"))
        }
        ("GET", ["v1", "checkpoint", app, entity]) => {
            get_checkpoint(shared, EntityKey::new(*app, *entity))
        }
        ("POST", ["v1", "ingest", app, entity]) => {
            ingest(shared, EntityKey::new(*app, *entity), &req.body, false)
        }
        ("POST", ["v1", "score", app, entity]) => {
            ingest(shared, EntityKey::new(*app, *entity), &req.body, true)
        }
        _ => Response::error(404, "no such route"),
    }
}

fn stats_response(shared: &Shared) -> Response {
    let s = shared.stats();
    Response::json(
        200,
        format!(
            "{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\
             \"resident_bytes\":{},\"resident_profiles\":{}}}",
            s.hits, s.misses, s.insertions, s.evictions, s.resident_bytes, s.resident_profiles
        ),
    )
}

fn put_profile(shared: &Shared, key: EntityKey, body: &[u8]) -> Response {
    let profile = match ServingProfile::from_bytes(body) {
        Ok(p) => p,
        Err(e) => return Response::error(400, &format!("bad checkpoint image: {e}")),
    };
    let evicted = shared.shard(&key).lock().insert(key, profile, body.len());
    let mut out = format!("{{\"stored\":true,\"bytes\":{},\"evicted\":[", body.len());
    for (i, (victim, _)) in evicted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        serde::write_json_string(&mut out, &victim.to_string());
    }
    out.push_str("]}");
    Response::json(200, out)
}

fn get_checkpoint(shared: &Shared, key: EntityKey) -> Response {
    match shared.shard(&key).lock().peek(&key) {
        Some(profile) => Response {
            status: 200,
            content_type: "application/octet-stream",
            body: profile.to_bytes(),
        },
        None => Response::error(404, "unknown profile"),
    }
}

/// JSON number → f64, with `null` as a NaN gap (the repo-wide float
/// convention: the writer maps non-finite to `null`, so the reader must
/// accept it back).
fn json_num(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Null => Some(f64::NAN),
        _ => None,
    }
}

fn json_record(v: &Value) -> Option<Vec<f64>> {
    v.as_array()?.iter().map(json_num).collect()
}

/// A float as JSON: non-finite becomes `null`; finite values print the
/// shortest representation that parses back to the same bits.
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

fn ingest(shared: &Shared, key: EntityKey, body: &[u8], batch: bool) -> Response {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "body is not UTF-8"),
    };
    let parsed = match serde_json::parse_value(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
    };
    let records: Vec<Vec<f64>> = if batch {
        match parsed.get("records").and_then(|v| v.as_array()) {
            Some(rows) => match rows.iter().map(json_record).collect() {
                Some(rs) => rs,
                None => return Response::error(400, "records must be arrays of numbers"),
            },
            None => return Response::error(400, "missing \"records\" array"),
        }
    } else {
        match parsed.get("record").and_then(json_record) {
            Some(r) => vec![r],
            None => return Response::error(400, "missing \"record\" array of numbers"),
        }
    };

    let mut scores = Vec::with_capacity(records.len());
    {
        let shard = shared.shard(&key);
        let mut reg = shard.lock();
        let profile = match reg.get_mut(&key) {
            Some(p) => p,
            None => return Response::error(404, "unknown profile"),
        };
        for record in &records {
            // A record of the wrong width panics deep in the detector;
            // surface that as a client error instead of losing a worker.
            let scored =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| profile.ingest(record)));
            match scored {
                Ok(pair) => scores.push(pair),
                Err(_) => return Response::error(400, "record rejected by detector"),
            }
        }
    }
    crate::obs::counter("serve.ingest_records", records.len() as u64);

    if batch {
        let mut out = String::from("{\"scores\":[");
        for (i, (s, _)) in scores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&fmt_f64(*s));
        }
        out.push_str("],\"anomalies\":[");
        for (i, (_, a)) in scores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(if *a { "true" } else { "false" });
        }
        out.push_str("]}");
        Response::json(200, out)
    } else {
        let (s, a) = scores[0];
        Response::json(200, format!("{{\"score\":{},\"anomaly\":{}}}", fmt_f64(s), a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_ad::stream::StreamingEwma;

    /// Minimal test client: one request per call over a fresh connection.
    fn call(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let split = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("no header break") + 4;
        let head = std::str::from_utf8(&raw[..split]).unwrap();
        let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
        (status, raw[split..].to_vec())
    }

    fn profile() -> ServingProfile {
        ServingProfile::new(StreamingEwma::new(0.3, vec![1.0, 2.0]).into(), 0.5)
    }

    #[test]
    fn full_cycle_put_ingest_checkpoint() {
        let gk = Gatekeeper::bind("127.0.0.1:0", GatekeeperConfig::default()).unwrap();
        let addr = gk.local_addr();

        let (status, body) = call(addr, "GET", "/v1/healthz", b"");
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));

        // Upload, then drive the server twin and a local twin in lockstep.
        let mut local = profile();
        let (status, _) = call(addr, "PUT", "/v1/profile/app1/exec1", &local.to_bytes());
        assert_eq!(status, 200);

        for i in 0..10 {
            let rec = [i as f64 * 0.7, (i as f64).sin()];
            let (want, want_flag) = local.ingest(&rec);
            let req = format!("{{\"record\":[{},{}]}}", rec[0], rec[1]);
            let (status, body) = call(addr, "POST", "/v1/ingest/app1/exec1", req.as_bytes());
            assert_eq!(status, 200);
            let v = serde_json::parse_value(std::str::from_utf8(&body).unwrap()).unwrap();
            let got = match v.get("score").unwrap() {
                Value::Int(i) => *i as f64,
                Value::Float(f) => *f,
                other => panic!("score was {other:?}"),
            };
            assert_eq!(got.to_bits(), want.to_bits(), "record {i}");
            assert_eq!(v.get("anomaly"), Some(&Value::Bool(want_flag)));
        }

        // The downloaded checkpoint is the advanced state, bitwise.
        let (status, image) = call(addr, "GET", "/v1/checkpoint/app1/exec1", b"");
        assert_eq!(status, 200);
        assert_eq!(image, local.to_bytes());

        let stats = gk.stats();
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.resident_profiles, 1);
        gk.shutdown();
    }

    #[test]
    fn batch_score_matches_sequential_ingest() {
        let gk = Gatekeeper::bind("127.0.0.1:0", GatekeeperConfig::default()).unwrap();
        let addr = gk.local_addr();
        let mut local = profile();
        call(addr, "PUT", "/v1/profile/a/e", &local.to_bytes());
        let mut want = Vec::new();
        let mut rows = Vec::new();
        for i in 0..5 {
            let rec = [i as f64, -(i as f64)];
            want.push(local.ingest(&rec).0);
            rows.push(format!("[{},{}]", rec[0], rec[1]));
        }
        let req = format!("{{\"records\":[{}]}}", rows.join(","));
        let (status, body) = call(addr, "POST", "/v1/score/a/e", req.as_bytes());
        assert_eq!(status, 200);
        let v = serde_json::parse_value(std::str::from_utf8(&body).unwrap()).unwrap();
        let got: Vec<f64> = v
            .get("scores")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|x| json_num(x).unwrap())
            .collect();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn errors_are_typed_not_fatal() {
        let gk = Gatekeeper::bind("127.0.0.1:0", GatekeeperConfig::default()).unwrap();
        let addr = gk.local_addr();
        // Unknown route, unknown profile, corrupt image, bad JSON, wrong
        // record width — each a clean client error, server stays up.
        assert_eq!(call(addr, "GET", "/nope", b"").0, 404);
        assert_eq!(call(addr, "POST", "/v1/ingest/a/e", b"{\"record\":[1]}").0, 404);
        assert_eq!(call(addr, "PUT", "/v1/profile/a/e", b"garbage").0, 400);
        call(addr, "PUT", "/v1/profile/a/e", &profile().to_bytes());
        assert_eq!(call(addr, "POST", "/v1/ingest/a/e", b"not json").0, 400);
        assert_eq!(call(addr, "POST", "/v1/ingest/a/e", b"{\"record\":[1]}").0, 400);
        // Still alive and consistent afterwards.
        assert_eq!(call(addr, "POST", "/v1/ingest/a/e", b"{\"record\":[1,2]}").0, 200);
        assert_eq!(call(addr, "DELETE", "/v1/profile/a/e", b"").0, 200);
        assert_eq!(call(addr, "POST", "/v1/ingest/a/e", b"{\"record\":[1,2]}").0, 404);
        gk.shutdown();
    }

    #[test]
    fn null_record_entries_are_nan_gaps() {
        let gk = Gatekeeper::bind("127.0.0.1:0", GatekeeperConfig::default()).unwrap();
        let addr = gk.local_addr();
        let mut local = profile();
        call(addr, "PUT", "/v1/profile/a/e", &local.to_bytes());
        let (want, _) = local.ingest(&[f64::NAN, 1.0]);
        let (status, body) = call(addr, "POST", "/v1/ingest/a/e", b"{\"record\":[null,1]}");
        assert_eq!(status, 200);
        let v = serde_json::parse_value(std::str::from_utf8(&body).unwrap()).unwrap();
        let got = json_num(v.get("score").unwrap()).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn keep_alive_serves_many_requests_per_connection() {
        let gk = Gatekeeper::bind("127.0.0.1:0", GatekeeperConfig::default()).unwrap();
        let addr = gk.local_addr();
        call(addr, "PUT", "/v1/profile/a/e", &profile().to_bytes());
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..20 {
            let body = format!("{{\"record\":[{i},0]}}");
            let head = format!(
                "POST /v1/ingest/a/e HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
                body.len()
            );
            stream.write_all(head.as_bytes()).unwrap();
            stream.write_all(body.as_bytes()).unwrap();
            // Read one response: headers, then content-length bytes.
            let mut status_line = String::new();
            reader.read_line(&mut status_line).unwrap();
            assert!(status_line.contains("200"), "request {i}: {status_line}");
            let mut len = 0usize;
            loop {
                let mut h = String::new();
                reader.read_line(&mut h).unwrap();
                let h = h.trim_end();
                if h.is_empty() {
                    break;
                }
                if let Some((k, v)) = h.split_once(':') {
                    if k.eq_ignore_ascii_case("content-length") {
                        len = v.trim().parse().unwrap();
                    }
                }
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).unwrap();
        }
        gk.shutdown();
    }
}
