//! Pipeline observability, re-exported from `exathlon-linalg` (the
//! substrate crate every other crate already depends on, so sparksim/ad/
//! ed instrumentation and the core pipeline share one registry).
//!
//! See [`exathlon_linalg::obs`] for the span model, env vars
//! (`EXATHLON_PROFILE`, `EXATHLON_PROFILE_DIR`), and report schema.

pub use exathlon_linalg::obs::{
    add_records, counter, emit_report, enabled, refresh, report, report_dir, reset, span, stage,
    Report, SpanReport, StageReport, PROFILE_DIR_ENV, PROFILE_ENV, REPORT_FILE,
};
