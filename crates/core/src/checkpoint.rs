//! Versioned binary checkpoints of serving profiles.
//!
//! A [`ServingProfile`] is everything one tenant's online scoring needs:
//! the dynamic test-time scaler (running per-feature moments), an
//! optional PCA projection, the streaming detector (fitted model *plus*
//! in-flight per-trace state), and the alert threshold. `encode` writes
//! it as a magic-tagged, versioned byte image with every `f64` as its
//! raw bit pattern; `decode` restores a profile that scores **bitwise
//! identically** and continues the stream exactly where the snapshot
//! left it. `crates/core/tests/checkpoint_roundtrip.rs` pins this.
//!
//! Wire layout (version 1):
//!
//! ```text
//! "EXCK" | version u8 | scaler? | pca? | detector | threshold f64
//! ```
//!
//! Optional sections are a presence byte followed by the section. Any
//! truncation, bad magic, unknown version, or corrupt length errors out
//! — decode never panics and never over-allocates on corrupt input.

use exathlon_ad::stream::{ServableDetector, StreamingDetector};
use exathlon_linalg::codec::{ByteReader, ByteWriter, CodecError};
use exathlon_linalg::pca::Pca;
use exathlon_tsdata::scale::DynamicScaler;

/// Checkpoint file magic: "EXathlon ChecKpoint".
pub const MAGIC: &[u8; 4] = b"EXCK";
/// Current wire version.
pub const VERSION: u8 = 1;

/// Errors of the file-level checkpoint API.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error while reading or writing the image.
    Io(std::io::Error),
    /// The image failed to decode (truncated, corrupt, wrong version).
    Codec(CodecError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::Codec(e) => write!(f, "checkpoint decode error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        Self::Codec(e)
    }
}

/// One tenant's complete online-scoring state.
#[derive(Debug, Clone)]
pub struct ServingProfile {
    /// Optional per-tenant dynamic scaler (running moments evolve with
    /// the tenant's own traffic). `None` when records arrive pre-scaled.
    pub scaler: Option<DynamicScaler>,
    /// Optional PCA projection applied before scaling.
    pub pca: Option<Pca>,
    /// The streaming detector, including in-flight state.
    pub detector: ServableDetector,
    /// Scores strictly above this flag an anomaly.
    pub threshold: f64,
}

impl ServingProfile {
    /// A profile that scores records as-is (no projection, no scaling).
    pub fn new(detector: ServableDetector, threshold: f64) -> Self {
        Self { scaler: None, pca: None, detector, threshold }
    }

    /// Ingest one record: optional PCA projection, optional dynamic
    /// rescale (which also advances the scaler's running moments), one
    /// detector tick. Returns `(score, is_anomaly)`.
    pub fn ingest(&mut self, record: &[f64]) -> (f64, bool) {
        let projected;
        let record = match &self.pca {
            Some(pca) => {
                projected = pca.transform_row(record);
                &projected[..]
            }
            None => record,
        };
        let scaled;
        let record = match &mut self.scaler {
            Some(scaler) => {
                scaled = scaler.transform_and_update(record);
                &scaled[..]
            }
            None => record,
        };
        let score = self.detector.update(record);
        (score, score > self.threshold)
    }

    /// Drop per-trace state (detector scratch), keeping the fitted model,
    /// scaler moments, and threshold.
    pub fn reset(&mut self) {
        self.detector.reset();
    }

    /// Serialize into `w` — magic, version, then every section bitwise.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_bytes(MAGIC);
        w.put_u8(VERSION);
        w.put_bool(self.scaler.is_some());
        if let Some(s) = &self.scaler {
            w.put_f64s(s.means());
            w.put_f64s(s.vars());
            w.put_f64(s.alpha());
        }
        w.put_bool(self.pca.is_some());
        if let Some(pca) = &self.pca {
            pca.encode(w);
        }
        self.detector.encode(w);
        w.put_f64(self.threshold);
    }

    /// The encoded image as a fresh byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decode a profile written by [`ServingProfile::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let magic = r.get_bytes(4)?;
        if magic != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.get_u8()?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let scaler = if r.get_bool()? {
            let means = r.get_f64s()?;
            let vars = r.get_f64s()?;
            let alpha = r.get_f64()?;
            if means.is_empty() || vars.len() != means.len() {
                return Err(CodecError::Corrupt("scaler state length mismatch"));
            }
            if !(alpha > 0.0 && alpha < 1.0) {
                return Err(CodecError::Corrupt("scaler alpha out of range"));
            }
            Some(DynamicScaler::from_state(means, vars, alpha))
        } else {
            None
        };
        let pca = if r.get_bool()? { Some(Pca::decode(r)?) } else { None };
        let detector = ServableDetector::decode(r)?;
        let threshold = r.get_f64()?;
        Ok(Self { scaler, pca, detector, threshold })
    }

    /// Decode from a byte image, requiring the image to end exactly at
    /// the profile's last byte (a checkpoint file holds one profile).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let profile = Self::decode(&mut r)?;
        if !r.is_done() {
            return Err(CodecError::Corrupt("trailing bytes after checkpoint"));
        }
        Ok(profile)
    }

    /// Write the encoded image to a file.
    pub fn save(&self, path: &std::path::Path) -> Result<(), CheckpointError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Read and decode a checkpoint file.
    pub fn load(path: &std::path::Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Ok(Self::from_bytes(&bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_ad::stream::{CusumConfig, CusumDetector};
    use exathlon_ad::AnomalyScorer;
    use exathlon_tsdata::scale::StandardScaler;
    use exathlon_tsdata::series::default_names;
    use exathlon_tsdata::TimeSeries;

    fn profile() -> ServingProfile {
        let records: Vec<Vec<f64>> =
            (0..200).map(|i| vec![(i as f64 * 0.2).sin(), (i as f64 * 0.11).cos()]).collect();
        let train = TimeSeries::from_records(default_names(2), 0, &records);
        let mut det = CusumDetector::new(CusumConfig::default());
        det.fit(&[&train]);
        let base = StandardScaler::fit(&train);
        ServingProfile {
            scaler: Some(DynamicScaler::from_standard(base, 0.01)),
            pca: None,
            detector: det.into(),
            threshold: 2.5,
        }
    }

    #[test]
    fn round_trip_continues_bitwise() {
        let mut p = profile();
        // Advance the stream, snapshot mid-flight, continue both copies.
        for i in 0..50 {
            let _ = p.ingest(&[(i as f64 * 0.3).sin(), i as f64 * 0.01]);
        }
        let bytes = p.to_bytes();
        let mut restored = ServingProfile::from_bytes(&bytes).unwrap();
        for i in 50..120 {
            let rec = [(i as f64 * 0.3).sin() + if i > 90 { 4.0 } else { 0.0 }, i as f64 * 0.01];
            let (a, fa) = p.ingest(&rec);
            let (b, fb) = restored.ingest(&rec);
            assert_eq!(a.to_bits(), b.to_bits(), "diverged at {i}");
            assert_eq!(fa, fb);
        }
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = profile().to_bytes();
        for cut in 0..bytes.len() {
            assert!(ServingProfile::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = profile().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(ServingProfile::from_bytes(&bytes), Err(CodecError::BadMagic)));
        let mut bytes = profile().to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            ServingProfile::from_bytes(&bytes),
            Err(CodecError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = profile().to_bytes();
        bytes.push(0);
        assert!(matches!(
            ServingProfile::from_bytes(&bytes),
            Err(CodecError::Corrupt("trailing bytes after checkpoint"))
        ));
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join("exathlon_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.exck");
        let mut p = profile();
        p.save(&path).unwrap();
        let mut restored = ServingProfile::load(&path).unwrap();
        let (a, _) = p.ingest(&[0.5, -0.5]);
        let (b, _) = restored.ingest(&[0.5, -0.5]);
        assert_eq!(a.to_bits(), b.to_bits());
        std::fs::remove_file(&path).unwrap();
    }
}
