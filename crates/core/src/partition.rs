//! Pipeline phase 1: data selection and partitioning (§5 step 1).
//!
//! * **1-App settings** (LS1/LS3): keep only the traces of one
//!   application; undisturbed traces train, disturbed traces test.
//! * **N-App settings** (LS2/LS4): all traces; undisturbed train,
//!   disturbed test.
//! * **Many-Examples** (LS1/LS2): additionally move an early, normal
//!   segment of each disturbed trace into the training data — the "peek"
//!   at the test trace's workload context — and test on the remainder.

use crate::config::{LearningSetting, ModelingSubject, TrainingConstraint};
use exathlon_sparksim::dataset::Dataset;
use exathlon_sparksim::deg::AnomalyType;
use exathlon_sparksim::ground_truth::GroundTruthEntry;
use exathlon_tsdata::TimeSeries;

/// One test trace segment with its ground truth.
#[derive(Debug, Clone)]
pub struct TestSegment {
    /// Trace id in the dataset.
    pub trace_id: usize,
    /// Application id.
    pub app_id: usize,
    /// Dominant anomaly type of the trace (type of its first injected
    /// event), used for per-type reporting.
    pub dominant_type: Option<AnomalyType>,
    /// The base-metric segment under test (ticks preserved from the full
    /// trace).
    pub series: TimeSeries,
    /// Ground-truth entries of the full trace (tick-space; may partially
    /// precede the segment under Many-Examples).
    pub entries: Vec<GroundTruthEntry>,
}

/// Output of the partitioning phase: training series and labeled test
/// segments, all still in the raw base-metric space.
#[derive(Debug, Clone)]
pub struct Partitioned {
    /// Normal training series (base metrics).
    pub train: Vec<TimeSeries>,
    /// Test segments with ground truth.
    pub test: Vec<TestSegment>,
}

/// Partition a dataset according to a learning setting. `peek_fraction`
/// controls how much of each disturbed trace the Many-Examples settings
/// prepend to training (always clipped before the first anomaly).
///
/// # Panics
/// Panics if the selection leaves no training or no test traces (e.g. a
/// 1-App setting for an application with no disturbed traces).
pub fn partition(ds: &Dataset, setting: LearningSetting, peek_fraction: f64) -> Partitioned {
    let keep = |app_id: usize| match setting.subject {
        ModelingSubject::OneApp(a) => app_id == a,
        ModelingSubject::NApp => true,
    };

    let mut train: Vec<TimeSeries> =
        ds.undisturbed.iter().filter(|t| keep(t.context.app_id)).map(|t| t.base.clone()).collect();

    let mut test = Vec::new();
    for trace in ds.disturbed.iter().filter(|t| keep(t.context.app_id)) {
        let entries: Vec<GroundTruthEntry> =
            ds.ground_truth.iter().filter(|e| e.trace_id == trace.trace_id).cloned().collect();
        let dominant_type = trace.schedule.events().first().map(|e| e.atype);

        let mut segment = trace.base.clone();
        if setting.constraint == TrainingConstraint::ManyExamples {
            let first_anomaly =
                entries.iter().map(|e| e.root_cause_start).min().unwrap_or(trace.len() as u64);
            // Peek at the normal head: at most `peek_fraction` of the
            // trace, and never into the first anomaly (with a safety gap).
            let cut =
                ((trace.len() as f64 * peek_fraction) as u64).min(first_anomaly.saturating_sub(30));
            if cut >= 60 {
                train.push(trace.base.slice(0, cut as usize));
                segment = trace.base.slice(cut as usize, trace.len());
            }
        }
        test.push(TestSegment {
            trace_id: trace.trace_id,
            app_id: trace.context.app_id,
            dominant_type,
            series: segment,
            entries,
        });
    }

    assert!(!train.is_empty(), "partitioning produced no training traces");
    assert!(!test.is_empty(), "partitioning produced no test traces");
    Partitioned { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LearningSetting;
    use exathlon_sparksim::dataset::DatasetBuilder;

    fn ds() -> Dataset {
        DatasetBuilder::tiny(5).build()
    }

    #[test]
    fn ls4_uses_all_traces() {
        let d = ds();
        let p = partition(&d, LearningSetting::ls4(), 0.2);
        assert_eq!(p.train.len(), d.undisturbed.len());
        assert_eq!(p.test.len(), d.disturbed.len());
        // Few-Examples: test segments are full traces.
        assert_eq!(p.test[0].series.len(), d.disturbed[0].len());
        assert_eq!(p.test[0].series.start_tick(), 0);
    }

    #[test]
    fn ls3_filters_by_app() {
        let d = ds();
        let p = partition(&d, LearningSetting::ls3(0), 0.2);
        assert!(p.test.iter().all(|t| t.app_id == 0));
        assert_eq!(p.train.len(), 2, "tiny dataset has 2 undisturbed app0 traces");
    }

    #[test]
    fn ls2_peeks_at_test_heads() {
        let d = ds();
        let few = partition(&d, LearningSetting::ls4(), 0.2);
        let many = partition(&d, LearningSetting::ls2(), 0.2);
        assert!(many.train.len() > few.train.len(), "peek segments must join training");
        // Test segments are shortened and tick-shifted.
        let seg = &many.test[0];
        assert!(seg.series.len() < d.disturbed[0].len());
        assert!(seg.series.start_tick() > 0);
    }

    #[test]
    fn peek_never_reaches_first_anomaly() {
        let d = ds();
        let many = partition(&d, LearningSetting::ls2(), 0.9); // aggressive peek
        for seg in &many.test {
            let first = seg.entries.iter().map(|e| e.root_cause_start).min().unwrap();
            assert!(
                seg.series.start_tick() + 20 <= first,
                "peek cut {} too close to anomaly at {first}",
                seg.series.start_tick()
            );
        }
    }

    #[test]
    fn dominant_type_recorded() {
        let d = ds();
        let p = partition(&d, LearningSetting::ls4(), 0.2);
        assert!(p.test.iter().all(|t| t.dominant_type.is_some()));
    }

    #[test]
    #[should_panic(expected = "no training traces")]
    fn unknown_app_panics() {
        let d = ds();
        let _ = partition(&d, LearningSetting::ls3(9), 0.2);
    }
}
