//! # exathlon-core
//!
//! The Exathlon benchmark pipeline (§5, Figure 3): everything between the
//! raw simulated traces and the benchmark scores.
//!
//! The seven pipeline phases map onto the modules of this crate:
//!
//! 1. **Data partitioning** — [`partition`]: select and split the 93
//!    traces according to the learning setting (LS1–LS4, [`config`]).
//! 2. **Data transformation** — [`transform`]: optional `α`-resampling,
//!    dimensionality reduction (`FS_custom` 19 features or `FS_pca`), and
//!    rescaling fitted on training data.
//! 3. **AD modeling** — [`model`]: fit a normality model (LSTM / AE /
//!    BiGAN / baselines) on `D¹_train`, derive outlier scores, and fit
//!    unsupervised thresholds on `D²_train`.
//! 4. **AD inference** — score every test trace; contiguous positive
//!    predictions form predicted anomaly ranges. [`replay`] is the online
//!    form of this phase: the streaming engine feeds each trace
//!    record-by-record through `exathlon_ad::stream` detectors.
//! 5. **AD evaluation** — [`evaluate`]: separation AUPRC at trace /
//!    application / global level (Table 3) and range-based
//!    precision/recall at AD1–AD4 across the 24 thresholding rules
//!    (Table 4).
//! 6. **ED execution** — [`edrun`]: explain each detected anomaly with
//!    the model-free (EXstream, MacroBase) and model-dependent (LIME)
//!    methods.
//! 7. **ED evaluation** — [`edrun`]: conciseness, stability, concordance,
//!    accuracy, and time (Table 5).
//!
//! [`report`] holds the serializable result tables the benchmark binaries
//! print.
//!
//! [`checkpoint`], [`registry`], [`spill`], [`wire`] and [`serve`] form
//! the multi-tenant serving layer over phase 4's streaming engine:
//! bitwise-lossless profile snapshots, an LRU byte-budgeted profile
//! cache with spill-to-disk eviction, the allocation-free HTTP wire
//! format, and the gatekeeper hosting many `(app, entity)` tenants
//! concurrently.

pub mod checkpoint;
pub mod config;
pub mod edrun;
pub mod evaluate;
pub mod experiment;
pub mod model;
pub mod obs;
pub mod par;
pub mod partition;
pub mod registry;
pub mod replay;
pub mod report;
pub mod serve;
pub mod spill;
pub mod transform;
pub mod wire;

pub use config::{ExperimentConfig, FeatureSpace, LearningSetting};
