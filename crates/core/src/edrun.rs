//! Pipeline phases 6–7: ED execution and evaluation (§5 steps 6–7,
//! Appendix C).
//!
//! For each ground-truth anomaly in a test trace, the ED module is handed
//! the anomalous subsequence `X_{t,w}` and a *reference* dataset: the
//! normal records immediately preceding it. Model-free methods (EXstream,
//! MacroBase) explain the separation between the two; the model-dependent
//! method (LIME) explains the AD model's outlier score on windows of the
//! anomaly.
//!
//! Evaluation per §4.2:
//! * **conciseness** — mean explanation size,
//! * **stability (ED1)** — consistency entropy over explanations of
//!   random 80% subsamples of the same anomaly (for LIME: different
//!   windows of the anomalous period),
//! * **concordance (ED2)** — consistency entropy over the explanations of
//!   different anomalies of the same type,
//! * **accuracy (ED1)** — the subsample explanation replayed as a
//!   point-based predictor on the held-out anomalous records plus the
//!   adjacent normal data (not defined for LIME),
//! * **time** — mean wall-clock seconds per explanation.

use crate::transform::TransformedTest;
use exathlon_ad::ae_ad::AutoencoderDetector;
use exathlon_ed::exstream::ExstreamExplainer;
use exathlon_ed::lime::LimeExplainer;
use exathlon_ed::macrobase::MacroBaseExplainer;
use exathlon_ed::Explanation;
use exathlon_sparksim::deg::AnomalyType;
use exathlon_tsdata::TimeSeries;
use exathlon_tsmetrics::ed_metrics::{conciseness, concordance, stability};
use exathlon_tsmetrics::point::Confusion;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// Number of subsamples for the ED1 stability/accuracy procedure.
const N_SUBSAMPLES: usize = 5;
/// Subsample fraction (Appendix C: 80%).
const SUBSAMPLE_FRACTION: f64 = 0.8;

/// The three ED methods of the experimental study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdMethodKind {
    /// MacroBase (model-free).
    MacroBase,
    /// EXstream (model-free).
    Exstream,
    /// LIME (model-dependent).
    Lime,
}

impl EdMethodKind {
    /// All three, in the paper's Table 5 column order.
    pub const ALL: [EdMethodKind; 3] =
        [EdMethodKind::MacroBase, EdMethodKind::Exstream, EdMethodKind::Lime];

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            EdMethodKind::MacroBase => "MacroBase",
            EdMethodKind::Exstream => "EXstream",
            EdMethodKind::Lime => "LIME",
        }
    }

    /// Whether the method needs an AD model.
    pub fn is_model_dependent(&self) -> bool {
        matches!(self, EdMethodKind::Lime)
    }
}

/// One anomaly to explain: the anomalous subsequence and its reference.
#[derive(Debug, Clone)]
pub struct EdCase {
    /// The anomaly's type.
    pub atype: AnomalyType,
    /// Trace the anomaly came from.
    pub trace_id: usize,
    /// The anomalous records (transformed space).
    pub anomaly: TimeSeries,
    /// Normal records immediately preceding the anomaly.
    pub reference: TimeSeries,
}

/// Collect ED cases from transformed test traces. Anomalies without
/// enough preceding normal data (fewer than `min_reference` records) are
/// skipped, mirroring the pipeline's reliance on a normal neighborhood.
pub fn collect_cases(tests: &[TransformedTest], min_reference: usize) -> Vec<EdCase> {
    let mut cases = Vec::new();
    for t in tests {
        for (atype, range) in &t.typed_ranges {
            let start = range.start as usize;
            let end = (range.end as usize).min(t.series.len());
            if end <= start + 3 {
                continue; // too short to subsample
            }
            // Reference: up to `3 x` the anomaly length of preceding
            // normal records, at least `min_reference`.
            let want = ((end - start) * 3).max(min_reference);
            let ref_start = start.saturating_sub(want);
            // Clip the reference against any earlier anomaly.
            let ref_start = t
                .typed_ranges
                .iter()
                .filter(|(_, r)| (r.end as usize) <= start)
                .map(|(_, r)| r.end as usize)
                .fold(ref_start, usize::max);
            if start - ref_start < min_reference {
                continue;
            }
            cases.push(EdCase {
                atype: *atype,
                trace_id: t.trace_id,
                anomaly: t.series.slice(start, end),
                reference: t.series.slice(ref_start, start),
            });
        }
    }
    cases
}

/// The per-type Table 5 row.
#[derive(Debug, Clone)]
pub struct EdTypeRow {
    /// Anomaly type (1..6), or `None` for the average row.
    pub anomaly_type: Option<AnomalyType>,
    /// Mean explanation size (ED1 == ED2 here, as in the paper).
    pub conciseness: f64,
    /// Mean ED1 stability entropy.
    pub stability: f64,
    /// ED2 concordance entropy.
    pub concordance: f64,
    /// Mean ED1 accuracy precision (`None` for LIME).
    pub precision: Option<f64>,
    /// Mean ED1 accuracy recall (`None` for LIME).
    pub recall: Option<f64>,
    /// Mean seconds per explanation.
    pub time_secs: f64,
    /// Number of anomalies behind the row.
    pub n_cases: usize,
}

/// Full Table 5 block for one ED method.
#[derive(Debug, Clone)]
pub struct EdEvaluation {
    /// The method.
    pub method: EdMethodKind,
    /// One row per anomaly type present in the cases.
    pub per_type: Vec<EdTypeRow>,
    /// The "Ave" row.
    pub average: EdTypeRow,
    /// Example explanations (one per type), for the Figure 6 style output.
    pub examples: Vec<(AnomalyType, String)>,
}

/// Everything needed to run one ED method.
pub struct EdRunner<'a> {
    /// Which method to run.
    pub method: EdMethodKind,
    /// The AD model for model-dependent methods (the paper uses AE, its
    /// best AD method).
    pub ae_model: Option<&'a AutoencoderDetector>,
    /// RNG seed for subsampling.
    pub seed: u64,
}

impl EdRunner<'_> {
    /// Produce the explanation of one anomaly (its full data).
    pub fn explain(&self, anomaly: &TimeSeries, reference: &TimeSeries) -> Explanation {
        let _sp = crate::obs::span("ed", self.method.label());
        match self.method {
            EdMethodKind::MacroBase => MacroBaseExplainer::default().explain(anomaly, reference),
            EdMethodKind::Exstream => ExstreamExplainer::default().explain(anomaly, reference),
            EdMethodKind::Lime => {
                let model = self.ae_model.expect("LIME requires the AE model (model-dependent ED)");
                let window = padded_window(anomaly, 0, model.window_len());
                let score_fn = |flat: &[f64]| model.window_score(flat);
                LimeExplainer::default().explain(&window, &score_fn)
            }
        }
    }

    /// Explanations of the ED1 subsamples of one case. For logical methods
    /// these come from random 80% subsamples of the anomaly and reference;
    /// for LIME from windows evenly spread across the anomalous period
    /// (Appendix C).
    fn subsample_explanations(
        &self,
        case: &EdCase,
        rng: &mut StdRng,
    ) -> Vec<(Explanation, Vec<usize>)> {
        let n = case.anomaly.len();
        match self.method {
            EdMethodKind::Lime => {
                let model = self.ae_model.expect("LIME requires the AE model");
                let w = model.window_len();
                let score_fn = |flat: &[f64]| model.window_score(flat);
                (0..N_SUBSAMPLES)
                    .map(|i| {
                        let max_start = n.saturating_sub(w);
                        let start =
                            if N_SUBSAMPLES > 1 { max_start * i / (N_SUBSAMPLES - 1) } else { 0 };
                        let window = padded_window(&case.anomaly, start, w);
                        let e = LimeExplainer::default().explain(&window, &score_fn);
                        (e, Vec::new())
                    })
                    .collect()
            }
            _ => (0..N_SUBSAMPLES)
                .map(|_| {
                    let keep = ((n as f64) * SUBSAMPLE_FRACTION).ceil() as usize;
                    let mut idx: Vec<usize> = (0..n).collect();
                    idx.shuffle(rng);
                    let mut sample_idx = idx[..keep.min(n)].to_vec();
                    sample_idx.sort_unstable();
                    let holdout: Vec<usize> = idx[keep.min(n)..].to_vec();
                    let sample = select_records(&case.anomaly, &sample_idx);
                    // Reference subsampled at the same rate.
                    let rn = case.reference.len();
                    let rkeep = ((rn as f64) * SUBSAMPLE_FRACTION).ceil() as usize;
                    let mut ridx: Vec<usize> = (0..rn).collect();
                    ridx.shuffle(rng);
                    let mut rsample_idx = ridx[..rkeep.min(rn)].to_vec();
                    rsample_idx.sort_unstable();
                    let rsample = select_records(&case.reference, &rsample_idx);
                    let e = self.explain(&sample, &rsample);
                    (e, holdout)
                })
                .collect(),
        }
    }
}

/// Slice `[start, start + w)` of a series, padded by repeating the last
/// record when the series is shorter than `w` — LIME must query the AD
/// model with windows of exactly the model's input size.
fn padded_window(ts: &TimeSeries, start: usize, w: usize) -> TimeSeries {
    let end = (start + w).min(ts.len());
    let mut records: Vec<Vec<f64>> = (start..end).map(|i| ts.record(i).to_vec()).collect();
    while records.len() < w {
        let last = records.last().cloned().unwrap_or_else(|| vec![0.0; ts.dims()]);
        records.push(last);
    }
    TimeSeries::from_records(ts.names().to_vec(), ts.start_tick(), &records)
}

fn select_records(ts: &TimeSeries, indices: &[usize]) -> TimeSeries {
    let records: Vec<Vec<f64>> = indices.iter().map(|&i| ts.record(i).to_vec()).collect();
    TimeSeries::from_records(ts.names().to_vec(), ts.start_tick(), &records)
}

/// Run and evaluate one ED method over the collected cases.
pub fn evaluate_ed(runner: &EdRunner<'_>, cases: &[EdCase]) -> EdEvaluation {
    let _stage = crate::obs::stage("ed");
    crate::obs::add_records("ed", cases.iter().map(|c| c.anomaly.len() as u64).sum());
    let mut rng = StdRng::seed_from_u64(runner.seed);

    struct CaseResult {
        atype: AnomalyType,
        explanation: Explanation,
        sub_features: Vec<Vec<usize>>,
        accuracy: Option<(f64, f64)>,
        secs: f64,
    }

    let mut results: Vec<CaseResult> = Vec::with_capacity(cases.len());
    for case in cases {
        let start = Instant::now();
        let explanation = runner.explain(&case.anomaly, &case.reference);
        let secs = start.elapsed().as_secs_f64();

        let subs = runner.subsample_explanations(case, &mut rng);
        let sub_features: Vec<Vec<usize>> = subs.iter().map(|(e, _)| e.features()).collect();

        // ED1 accuracy: the subsample explanations predict the held-out
        // anomalous records (label 1) and the adjacent normal reference
        // records (label 0).
        let mut accuracy = None;
        if runner.method != EdMethodKind::Lime {
            let mut confusion = Confusion::default();
            let mut any = false;
            for (e, holdout) in &subs {
                let Some(formula) = e.as_predictive() else { continue };
                let mut predicted = Vec::new();
                let mut actual = Vec::new();
                for &i in holdout {
                    predicted.push(formula.predict(case.anomaly.record(i)));
                    actual.push(true);
                }
                // Adjacent normal data: the tail of the reference.
                let ref_take = holdout.len().max(4).min(case.reference.len());
                for i in case.reference.len() - ref_take..case.reference.len() {
                    predicted.push(formula.predict(case.reference.record(i)));
                    actual.push(false);
                }
                if !predicted.is_empty() {
                    let c = Confusion::from_predictions(&predicted, &actual);
                    confusion.tp += c.tp;
                    confusion.fp += c.fp;
                    confusion.fn_ += c.fn_;
                    confusion.tn += c.tn;
                    any = true;
                }
            }
            if any {
                accuracy = Some((confusion.precision(), confusion.recall()));
            }
        }

        results.push(CaseResult { atype: case.atype, explanation, sub_features, accuracy, secs });
    }

    let row_for = |atype: Option<AnomalyType>| -> EdTypeRow {
        let subset: Vec<&CaseResult> =
            results.iter().filter(|r| atype.is_none() || Some(r.atype) == atype).collect();
        let feature_sets: Vec<Vec<usize>> =
            subset.iter().map(|r| r.explanation.features()).collect();
        let stab = if subset.is_empty() {
            0.0
        } else {
            subset.iter().map(|r| stability(&r.sub_features)).sum::<f64>() / subset.len() as f64
        };
        let accs: Vec<(f64, f64)> = subset.iter().filter_map(|r| r.accuracy).collect();
        let (precision, recall) = if accs.is_empty() {
            (None, None)
        } else {
            let p = accs.iter().map(|a| a.0).sum::<f64>() / accs.len() as f64;
            let r = accs.iter().map(|a| a.1).sum::<f64>() / accs.len() as f64;
            (Some(p), Some(r))
        };
        EdTypeRow {
            anomaly_type: atype,
            conciseness: conciseness(&feature_sets),
            stability: stab,
            concordance: concordance(&feature_sets),
            precision,
            recall,
            time_secs: if subset.is_empty() {
                0.0
            } else {
                subset.iter().map(|r| r.secs).sum::<f64>() / subset.len() as f64
            },
            n_cases: subset.len(),
        }
    };

    let mut per_type = Vec::new();
    let mut examples = Vec::new();
    for t in AnomalyType::ALL {
        let row = row_for(Some(t));
        if row.n_cases > 0 {
            per_type.push(row);
            if let Some(r) = results.iter().find(|r| r.atype == t) {
                examples.push((t, format!("{}", r.explanation)));
            }
        }
    }
    EdEvaluation { method: runner.method, per_type, average: row_for(None), examples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsmetrics::Range;

    /// A synthetic transformed test: feature 0 jumps during the anomaly.
    fn synthetic_test() -> TransformedTest {
        let n = 120;
        let a = Range::new(80, 110);
        let records: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let anomalous = (a.start as usize..a.end as usize).contains(&i);
                let base = (i as f64 * 0.37).sin() * 0.1;
                vec![if anomalous { 5.0 + base } else { base }, (i as f64 * 0.21).cos() * 0.1]
            })
            .collect();
        let series =
            TimeSeries::from_records(exathlon_tsdata::series::default_names(2), 0, &records);
        let labels = (0..n).map(|i| (80..110).contains(&i)).collect();
        TransformedTest {
            trace_id: 0,
            app_id: 0,
            dominant_type: Some(AnomalyType::BurstyInput),
            series,
            labels,
            typed_ranges: vec![(AnomalyType::BurstyInput, a)],
        }
    }

    #[test]
    fn collect_cases_extracts_anomaly_and_reference() {
        let tests = vec![synthetic_test()];
        let cases = collect_cases(&tests, 10);
        assert_eq!(cases.len(), 1);
        let c = &cases[0];
        assert_eq!(c.anomaly.len(), 30);
        assert!(c.reference.len() >= 10);
        assert_eq!(c.atype, AnomalyType::BurstyInput);
        // Reference records are normal: feature 0 small.
        assert!(c.reference.records().all(|r| r[0].abs() < 1.0));
    }

    #[test]
    fn exstream_evaluation_finds_the_jump_feature() {
        let tests = vec![synthetic_test()];
        let cases = collect_cases(&tests, 10);
        let runner = EdRunner { method: EdMethodKind::Exstream, ae_model: None, seed: 3 };
        let eval = evaluate_ed(&runner, &cases);
        assert_eq!(eval.average.n_cases, 1);
        assert!(eval.average.conciseness >= 1.0);
        // The separating feature is 0; a concise stable explanation uses it.
        assert!(!eval.examples.is_empty());
        let acc_p = eval.average.precision.expect("EXstream is predictive");
        assert!(acc_p > 0.5, "precision {acc_p}");
    }

    #[test]
    fn macrobase_runs_and_reports_accuracy() {
        let tests = vec![synthetic_test()];
        let cases = collect_cases(&tests, 10);
        let runner = EdRunner { method: EdMethodKind::MacroBase, ae_model: None, seed: 3 };
        let eval = evaluate_ed(&runner, &cases);
        assert!(eval.average.precision.is_some());
        assert!(eval.average.time_secs >= 0.0);
    }

    #[test]
    fn stability_within_good_bound_for_clean_case() {
        let tests = vec![synthetic_test()];
        let cases = collect_cases(&tests, 10);
        let runner = EdRunner { method: EdMethodKind::Exstream, ae_model: None, seed: 3 };
        let eval = evaluate_ed(&runner, &cases);
        assert!(
            eval.average.stability
                <= exathlon_tsmetrics::ed_metrics::good_consistency_bound() + 0.5,
            "stability {} too high for a clean single-feature case",
            eval.average.stability
        );
    }

    #[test]
    fn too_short_anomalies_skipped() {
        let mut t = synthetic_test();
        t.typed_ranges = vec![(AnomalyType::BurstyInput, Range::new(80, 82))];
        let cases = collect_cases(&[t], 10);
        assert!(cases.is_empty());
    }

    #[test]
    #[should_panic(expected = "LIME requires the AE model")]
    fn lime_without_model_panics() {
        let tests = vec![synthetic_test()];
        let cases = collect_cases(&tests, 10);
        let runner = EdRunner { method: EdMethodKind::Lime, ae_model: None, seed: 3 };
        let _ = evaluate_ed(&runner, &cases);
    }
}
