//! The serving wire format: allocation-free HTTP/1.1 head parsing and
//! response serialization over reused buffers.
//!
//! The gatekeeper's request cycle ([`crate::serve`]) is allocation-free
//! once a connection is warmed, in the same style the fused training
//! step uses for its workspaces: every per-request artifact lives in a
//! buffer owned by the worker or the connection and is `clear()`ed, not
//! reallocated. This module holds the pure parsing/serialization pieces
//! so they can be unit-tested and benchmarked without sockets:
//!
//! * [`parse_head`] — an incremental HTTP/1.1 request-head parser over a
//!   byte slice. Returns borrowed ranges for method/path instead of
//!   `String`s, and mirrors the previous `BufReader::read_line` parser
//!   line for line (lines split on `\n`, trailing whitespace trimmed,
//!   `split_whitespace` request line, case-insensitive headers) so
//!   responses stay byte-identical.
//! * [`parse_record_body`] — a strict single-pass parser for the two hot
//!   ingest bodies `{"record":[...]}` and `{"records":[[...],...]}`,
//!   writing straight into reused row buffers. Number tokens replicate
//!   the vendored `serde_json` classification exactly (a token is a
//!   float iff the greedy scan consumed `.`/`e`/`E`/`+`/`-` past the
//!   leading sign; integers parse as `i128` then cast) so the parsed
//!   `f64`s are bitwise identical to the tree parser's. Any deviation
//!   from the strict grammar reports [`BodyParse::Fallback`] and the
//!   caller re-parses through the general tree parser — which also owns
//!   every error message, so error responses stay byte-identical too.
//! * [`write_head`] / [`write_single_score`] / [`write_batch_scores`] /
//!   [`write_error_body`] — response serialization into reused buffers
//!   via `fmt::Write` and the shared shortest-roundtrip float writer
//!   ([`serde::write_json_f64`]); no `format!` temporaries.

use std::io::Write as _;

/// Byte range into the connection buffer (start, end).
pub type Span = (usize, usize);

/// A parsed request head: borrowed ranges plus framing facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Head {
    /// Range of the method token.
    pub method: Span,
    /// Range of the request-target token.
    pub path: Span,
    /// Declared body length (0 when absent).
    pub content_length: usize,
    /// Whether the connection stays open after the response.
    pub keep_alive: bool,
    /// Bytes consumed by the head, including the blank line.
    pub head_len: usize,
}

/// Outcome of one [`parse_head`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadParse {
    /// A complete head was parsed.
    Complete(Head),
    /// The buffer does not yet hold a complete head; read more bytes.
    Partial,
    /// The head is unreadable (invalid UTF-8); close without a response,
    /// mirroring the old reader's `Hangup` on `read_line` errors.
    Hangup,
    /// Malformed head; answer with this status and message, then close.
    Bad(u16, &'static str),
}

/// Incrementally parse an HTTP/1.1 request head from `buf`.
///
/// `max_head` bounds the head block (request line + headers); a longer
/// head is rejected rather than buffered without limit.
pub fn parse_head(buf: &[u8], max_head: usize) -> HeadParse {
    let mut pos = 0usize;
    let mut line_no = 0usize;
    let mut head =
        Head { method: (0, 0), path: (0, 0), content_length: 0, keep_alive: false, head_len: 0 };
    loop {
        let Some(nl) = buf[pos..].iter().position(|&b| b == b'\n') else {
            if buf.len() - pos > max_head {
                return HeadParse::Bad(400, "header block too large");
            }
            return HeadParse::Partial;
        };
        let raw = &buf[pos..pos + nl + 1];
        let line_start = pos;
        pos += nl + 1;
        if pos > max_head {
            return HeadParse::Bad(400, "header block too large");
        }
        let Ok(line) = std::str::from_utf8(raw) else {
            return HeadParse::Hangup;
        };
        let line = line.trim_end();
        if line_no == 0 {
            let mut parts = line.split_whitespace();
            let (Some(m), Some(p), Some(v)) = (parts.next(), parts.next(), parts.next()) else {
                return HeadParse::Bad(400, "malformed request line");
            };
            let base = line_start;
            let off = |tok: &str| {
                let s = base + (tok.as_ptr() as usize - raw.as_ptr() as usize);
                (s, s + tok.len())
            };
            head.method = off(m);
            head.path = off(p);
            head.keep_alive = v == "HTTP/1.1";
        } else if line.is_empty() {
            head.head_len = pos;
            return HeadParse::Complete(head);
        } else if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                match value.parse() {
                    Ok(n) => head.content_length = n,
                    Err(_) => return HeadParse::Bad(400, "bad content-length"),
                }
            } else if name.eq_ignore_ascii_case("connection") {
                head.keep_alive = !value.eq_ignore_ascii_case("close");
            }
        }
        line_no += 1;
    }
}

// ------------------------------------------------------------ body parse

/// Outcome of the strict fast-path record-body parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyParse {
    /// The body parsed; rows are in the caller's buffers.
    Parsed,
    /// The body deviates from the strict hot grammar (or is outright
    /// invalid); the caller must re-parse through the general tree
    /// parser, which owns both lenient acceptance and error wording.
    Fallback,
}

/// Parse `{"record":[...]}` (`batch == false`) or
/// `{"records":[[...],...]}` (`batch == true`) into reused buffers:
/// `rows` receives every value flattened, `row_ends` the exclusive end
/// offset of each row in `rows`. `null` entries become NaN gaps per the
/// repo-wide JSON float convention.
pub fn parse_record_body(
    body: &[u8],
    batch: bool,
    rows: &mut Vec<f64>,
    row_ends: &mut Vec<usize>,
) -> BodyParse {
    rows.clear();
    row_ends.clear();
    let mut pos = 0usize;
    let b = body;
    skip_ws(b, &mut pos);
    if !eat(b, &mut pos, b"{") {
        return BodyParse::Fallback;
    }
    skip_ws(b, &mut pos);
    let key: &[u8] = if batch { b"\"records\"" } else { b"\"record\"" };
    if !eat(b, &mut pos, key) {
        return BodyParse::Fallback;
    }
    skip_ws(b, &mut pos);
    if !eat(b, &mut pos, b":") {
        return BodyParse::Fallback;
    }
    skip_ws(b, &mut pos);
    if batch {
        if !eat(b, &mut pos, b"[") {
            return BodyParse::Fallback;
        }
        skip_ws(b, &mut pos);
        if eat(b, &mut pos, b"]") {
            // Zero rows: defer to the tree parser's empty-batch handling.
        } else {
            loop {
                if parse_row(b, &mut pos, rows) == BodyParse::Fallback {
                    return BodyParse::Fallback;
                }
                row_ends.push(rows.len());
                skip_ws(b, &mut pos);
                if eat(b, &mut pos, b",") {
                    skip_ws(b, &mut pos);
                    continue;
                }
                if eat(b, &mut pos, b"]") {
                    break;
                }
                return BodyParse::Fallback;
            }
        }
    } else {
        if parse_row(b, &mut pos, rows) == BodyParse::Fallback {
            return BodyParse::Fallback;
        }
        row_ends.push(rows.len());
    }
    skip_ws(b, &mut pos);
    if !eat(b, &mut pos, b"}") {
        return BodyParse::Fallback;
    }
    skip_ws(b, &mut pos);
    if pos != b.len() || row_ends.is_empty() {
        return BodyParse::Fallback;
    }
    BodyParse::Parsed
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

/// One `[v, v, ...]` array of numbers/nulls appended to `rows`.
fn parse_row(b: &[u8], pos: &mut usize, rows: &mut Vec<f64>) -> BodyParse {
    if !eat(b, pos, b"[") {
        return BodyParse::Fallback;
    }
    skip_ws(b, pos);
    if eat(b, pos, b"]") {
        return BodyParse::Parsed;
    }
    loop {
        match parse_value(b, pos) {
            Some(v) => rows.push(v),
            None => return BodyParse::Fallback,
        }
        skip_ws(b, pos);
        if eat(b, pos, b",") {
            skip_ws(b, pos);
            continue;
        }
        if eat(b, pos, b"]") {
            return BodyParse::Parsed;
        }
        return BodyParse::Fallback;
    }
}

/// `null` or a number token, with the tree parser's exact float/int
/// classification so the resulting bits match it.
fn parse_value(b: &[u8], pos: &mut usize) -> Option<f64> {
    match b.get(*pos)? {
        b'n' => {
            if eat(b, pos, b"null") {
                Some(f64::NAN)
            } else {
                None
            }
        }
        b'-' | b'0'..=b'9' => {
            let start = *pos;
            let mut is_float = false;
            if b[*pos] == b'-' {
                *pos += 1;
            }
            while let Some(&c) = b.get(*pos) {
                match c {
                    b'0'..=b'9' => *pos += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        is_float = true;
                        *pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&b[start..*pos]).ok()?;
            if is_float {
                text.parse::<f64>().ok()
            } else {
                text.parse::<i128>().ok().map(|i| i as f64)
            }
        }
        _ => None,
    }
}

// ------------------------------------------------------------- responses

/// Canonical reason phrases for every status the gatekeeper emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Append a response head to `out` — identical bytes to the previous
/// `format!`-built head, without the temporary.
pub fn write_head(
    out: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    content_length: usize,
    keep_alive: bool,
) {
    let _ = write!(
        out,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        content_length,
        if keep_alive { "keep-alive" } else { "close" },
    );
}

/// `{"score":s,"anomaly":b}` into a reused body buffer.
pub fn write_single_score(body: &mut String, score: f64, anomaly: bool) {
    body.push_str("{\"score\":");
    serde::write_json_f64(body, score);
    body.push_str(",\"anomaly\":");
    body.push_str(if anomaly { "true" } else { "false" });
    body.push('}');
}

/// `{"scores":[...],"anomalies":[...]}` into a reused body buffer.
pub fn write_batch_scores(body: &mut String, scores: &[(f64, bool)]) {
    body.push_str("{\"scores\":[");
    for (i, (s, _)) in scores.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        serde::write_json_f64(body, *s);
    }
    body.push_str("],\"anomalies\":[");
    for (i, (_, a)) in scores.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(if *a { "true" } else { "false" });
    }
    body.push_str("]}");
}

/// `{"error":"..."}` into a reused body buffer.
pub fn write_error_body(body: &mut String, message: &str) {
    body.push_str("{\"error\":");
    serde::write_json_string(body, message);
    body.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(raw: &[u8]) -> Head {
        match parse_head(raw, 1 << 16) {
            HeadParse::Complete(h) => h,
            other => panic!("expected complete head, got {other:?}"),
        }
    }

    #[test]
    fn head_parses_tokens_and_framing() {
        let raw = b"POST /v1/ingest/a/e HTTP/1.1\r\nhost: x\r\ncontent-length: 12\r\n\r\nrest";
        let h = complete(raw);
        assert_eq!(&raw[h.method.0..h.method.1], b"POST");
        assert_eq!(&raw[h.path.0..h.path.1], b"/v1/ingest/a/e");
        assert_eq!(h.content_length, 12);
        assert!(h.keep_alive);
        assert_eq!(h.head_len, raw.len() - 4);
    }

    #[test]
    fn head_connection_close_and_version() {
        let h = complete(b"GET / HTTP/1.1\r\nconnection: Close\r\n\r\n");
        assert!(!h.keep_alive);
        let h = complete(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!h.keep_alive);
        let h = complete(b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n");
        assert!(h.keep_alive);
    }

    #[test]
    fn head_partial_and_bad() {
        assert_eq!(parse_head(b"GET / HTTP/1.1\r\nhost: x", 1 << 16), HeadParse::Partial);
        assert_eq!(parse_head(b"\r\n", 1 << 16), HeadParse::Bad(400, "malformed request line"));
        assert_eq!(
            parse_head(b"GET / HTTP/1.1\r\ncontent-length: x\r\n\r\n", 1 << 16),
            HeadParse::Bad(400, "bad content-length")
        );
        assert_eq!(
            parse_head(b"GET / HTTP/1.1\r\nxxxxxxxxxxxxxxxx", 8),
            HeadParse::Bad(400, "header block too large")
        );
        assert_eq!(parse_head(b"GET /\xff\xfe HTTP/1.1\r\n\r\n", 1 << 16), HeadParse::Hangup);
    }

    #[test]
    fn head_accepts_bare_lf_like_the_line_reader_did() {
        let h = complete(b"GET /v1/healthz HTTP/1.1\ncontent-length: 3\n\n");
        assert_eq!(h.content_length, 3);
    }

    fn rows_of(body: &[u8], batch: bool) -> Option<(Vec<f64>, Vec<usize>)> {
        let mut rows = Vec::new();
        let mut ends = Vec::new();
        match parse_record_body(body, batch, &mut rows, &mut ends) {
            BodyParse::Parsed => Some((rows, ends)),
            BodyParse::Fallback => None,
        }
    }

    #[test]
    fn single_record_parses_with_gaps() {
        let (rows, ends) = rows_of(b"{\"record\":[1,-2.5,null,3e2]}", false).unwrap();
        assert_eq!(ends, vec![4]);
        assert_eq!(rows[0].to_bits(), 1.0f64.to_bits());
        assert_eq!(rows[1].to_bits(), (-2.5f64).to_bits());
        assert!(rows[2].is_nan());
        assert_eq!(rows[3].to_bits(), 300.0f64.to_bits());
    }

    #[test]
    fn batch_records_parse_rows() {
        let (rows, ends) = rows_of(b"{\"records\":[[1,2],[3,4],[5,6]]}", true).unwrap();
        assert_eq!(ends, vec![2, 4, 6]);
        assert_eq!(rows, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn whitespace_tolerated_like_the_tree_parser() {
        let (rows, _) = rows_of(b" { \"record\" : [ 1 , 2 ] } ", false).unwrap();
        assert_eq!(rows, vec![1.0, 2.0]);
    }

    #[test]
    fn deviations_fall_back() {
        for body in [
            &b"{\"wrong\":[1]}"[..],
            b"{\"record\":[1],\"x\":2}",
            b"{\"record\":\"nope\"}",
            b"not json",
            b"{\"record\":[1,]}",
            b"{\"record\":[1-2]}",
            b"{\"record\":[true]}",
        ] {
            assert!(rows_of(body, false).is_none(), "{:?}", std::str::from_utf8(body));
        }
        assert!(rows_of(b"{\"records\":[]}", true).is_none(), "empty batch defers");
    }

    #[test]
    fn number_bits_match_the_tree_parser() {
        // Same classification: int unless the scan ate . e E + -.
        for text in ["0", "-7", "1e-3", "2.5E+4", "123456789012345678", "-0.0"] {
            let body = format!("{{\"record\":[{text}]}}");
            let (rows, _) = rows_of(body.as_bytes(), false).unwrap();
            let tree = serde_json::parse_value(&body).unwrap();
            let want = match tree.get("record").unwrap().as_array().unwrap()[0] {
                serde_json::Value::Int(i) => i as f64,
                serde_json::Value::Float(f) => f,
                ref other => panic!("{other:?}"),
            };
            assert_eq!(rows[0].to_bits(), want.to_bits(), "{text}");
        }
    }

    #[test]
    fn response_builders_match_format_output() {
        let mut out = Vec::new();
        write_head(&mut out, 200, "application/json", 17, true);
        assert_eq!(
            std::str::from_utf8(&out).unwrap(),
            "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 17\r\nconnection: keep-alive\r\n\r\n"
        );
        let mut body = String::new();
        write_single_score(&mut body, 0.25, false);
        assert_eq!(body, "{\"score\":0.25,\"anomaly\":false}");
        body.clear();
        write_single_score(&mut body, f64::NAN, true);
        assert_eq!(body, "{\"score\":null,\"anomaly\":true}");
        body.clear();
        write_batch_scores(&mut body, &[(1.5, false), (f64::INFINITY, true)]);
        assert_eq!(body, "{\"scores\":[1.5,null],\"anomalies\":[false,true]}");
        body.clear();
        write_error_body(&mut body, "no such route");
        assert_eq!(body, "{\"error\":\"no such route\"}");
    }
}
