//! Pipeline phase 2: data transformation (§5 step 2).
//!
//! Resampling (cardinality factor `α = 1/l`), dimensionality reduction
//! (`FS_custom` / `FS_pca`), and rescaling. The transform is *fitted* on
//! training data only; test traces are rescaled dynamically (the paper's
//! customized test-time scaler) because each test trace may come from an
//! unseen (rate, concurrency) context.
//!
//! This module also owns the bookkeeping the later phases need: mapping
//! ground-truth tick intervals into the transformed record-index space
//! (differencing shifts ticks by one; resampling collapses `l` ticks per
//! record).

use crate::config::{ExperimentConfig, FeatureSpace};
use crate::partition::TestSegment;
use exathlon_linalg::pca::{ComponentSelection, Pca};
use exathlon_linalg::Matrix;
use exathlon_sparksim::deg::AnomalyType;
use exathlon_sparksim::metrics::custom_feature_set;
use exathlon_tsdata::resample::resample_mean;
use exathlon_tsdata::scale::{DynamicScaler, StandardScaler};
use exathlon_tsdata::window::materialized_windows_mode;
use exathlon_tsdata::TimeSeries;
use exathlon_tsmetrics::Range;

/// Adaptation rate of the dynamic test-time scaler.
const DYNAMIC_ALPHA: f64 = 0.004;

/// Input dimensionality `FS_pca` operates on. The paper applies PCA to the
/// raw 2,283-metric layout; fitting a Jacobi eigendecomposition at 2,283
/// dims is out of laptop budget, so PCA runs on a 300-dimension expansion
/// with the same structure (base signals + correlated noisy mixtures +
/// executor nulls) — large enough that variance-based selection drowns the
/// low-variance delay signals, which is the effect Table 8 measures.
const PCA_INPUT_DIMS: usize = 300;
/// Cap on the records used to fit the PCA (uniform stride subsample).
const PCA_FIT_RECORDS: usize = 4000;

/// A fitted end-to-end transform: feature extraction + resampling +
/// scaling.
#[derive(Debug, Clone)]
pub struct FittedTransform {
    feature_space: FeatureSpace,
    resample_l: usize,
    pca: Option<Pca>,
    scaler: StandardScaler,
}

/// A transformed test segment, ready for AD inference and evaluation.
#[derive(Debug, Clone)]
pub struct TransformedTest {
    /// Trace id in the dataset.
    pub trace_id: usize,
    /// Application id.
    pub app_id: usize,
    /// Dominant anomaly type of the trace.
    pub dominant_type: Option<AnomalyType>,
    /// The transformed series (record-index space).
    pub series: TimeSeries,
    /// Point-wise ground-truth labels, one per transformed record.
    pub labels: Vec<bool>,
    /// Ground-truth anomaly ranges in record-index space, tagged by type.
    pub typed_ranges: Vec<(AnomalyType, Range)>,
}

impl TransformedTest {
    /// The untyped real anomaly ranges.
    pub fn real_ranges(&self) -> Vec<Range> {
        self.typed_ranges.iter().map(|(_, r)| *r).collect()
    }
}

impl FittedTransform {
    /// Fit the transform on training base-metric series and return it
    /// along with the transformed training series.
    ///
    /// # Panics
    /// Panics if `train` is empty or traces are too short to difference.
    pub fn fit(train: &[TimeSeries], config: &ExperimentConfig) -> (Self, Vec<TimeSeries>) {
        assert!(!train.is_empty(), "no training traces to fit on");
        let l = config.resample_interval.max(1);

        // Feature extraction (unscaled).
        let pca = match config.feature_space {
            FeatureSpace::Custom => None,
            FeatureSpace::Pca(k) => {
                // PCA is fitted on the expanded raw metric layout of the
                // training traces (NaN imputed to 0, as inactive-executor
                // nulls), subsampled to keep the covariance fit tractable.
                // The subsample indices are picked up front so only the
                // selected records are ever gathered (NaN-filled straight
                // into the fit matrix), instead of materializing and
                // filling every expanded record first.
                let total: usize = train.iter().map(|ts| ts.len()).sum();
                let picks = exathlon_tsdata::sample::stride_indices(total, PCA_FIT_RECORDS);
                let mut data = Matrix::zeros(picks.len(), PCA_INPUT_DIMS);
                let mut next = 0usize;
                let mut base_idx = 0usize;
                for ts in train {
                    let expanded = exathlon_sparksim::metrics::expand_to_full(ts, PCA_INPUT_DIMS);
                    while next < picks.len() && picks[next] < base_idx + expanded.len() {
                        let rec = expanded.record(picks[next] - base_idx);
                        for (o, &v) in data.row_mut(next).iter_mut().zip(rec) {
                            *o = if v.is_nan() { 0.0 } else { v };
                        }
                        next += 1;
                    }
                    base_idx += expanded.len();
                }
                Some(Pca::fit(&data, ComponentSelection::Fixed(k)))
            }
        };

        // Extract + resample all training traces, then fit the scaler on
        // the pool via streaming moments (no concatenated clone).
        let unscaled: Vec<TimeSeries> = train
            .iter()
            .map(|ts| resample_mean(&Self::extract(config.feature_space, pca.as_ref(), ts), l))
            .collect();
        let refs: Vec<&TimeSeries> = unscaled.iter().collect();
        let scaler = StandardScaler::fit_pooled(&refs);
        let this = Self { feature_space: config.feature_space, resample_l: l, pca, scaler };

        let transformed = unscaled.iter().map(|ts| this.scaler.transform(ts)).collect();
        (this, transformed)
    }

    /// Dimensionality of the transformed space.
    pub fn output_dims(&self) -> usize {
        match self.feature_space {
            FeatureSpace::Custom => 19,
            FeatureSpace::Pca(k) => k,
        }
    }

    /// Feature extraction, no resampling or scaling. An associated
    /// function (not `&self`) so [`FittedTransform::fit`] can extract
    /// before the scaler exists.
    fn extract(feature_space: FeatureSpace, pca: Option<&Pca>, base: &TimeSeries) -> TimeSeries {
        match (feature_space, pca) {
            (FeatureSpace::Custom, _) => custom_feature_set(base),
            (FeatureSpace::Pca(k), Some(pca)) => {
                let expanded = exathlon_sparksim::metrics::expand_to_full(base, PCA_INPUT_DIMS);
                // NaN must be imputed to 0 *before* projecting — the
                // projection's own NaN handling imputes in centered space,
                // which is a different value. One reused scratch record
                // replaces the whole-series filled clone.
                let mut scratch = vec![0.0; expanded.dims()];
                let mut values = Vec::with_capacity(expanded.len() * k);
                for rec in expanded.records() {
                    for (s, &v) in scratch.iter_mut().zip(rec) {
                        *s = if v.is_nan() { 0.0 } else { v };
                    }
                    values.extend_from_slice(&pca.transform_row(&scratch));
                }
                let names = (0..k).map(|i| format!("pc{i}")).collect();
                TimeSeries::from_flat(names, base.start_tick(), values)
            }
            (FeatureSpace::Pca(_), None) => unreachable!("PCA space requires a fitted PCA"),
        }
    }

    /// Feature extraction + resampling, no scaling (staged path).
    fn extract_and_resample(&self, base: &TimeSeries) -> TimeSeries {
        let extracted = Self::extract(self.feature_space, self.pca.as_ref(), base);
        resample_mean(&extracted, self.resample_l)
    }

    /// Public form of the unscaled test transform, for callers that feed
    /// the serving layer: extract + resample a raw trace, leaving the
    /// dynamic scaling to the per-tenant [`DynamicScaler`] owned by the
    /// serving profile.
    pub fn extract_unscaled(&self, base: &TimeSeries) -> TimeSeries {
        self.extract_and_resample(base)
    }

    /// A fresh test-time dynamic scaler seeded from this transform's
    /// training statistics — the same construction
    /// [`FittedTransform::apply_test`] performs per trace. Serving
    /// profiles own one of these per tenant so each entity adapts to its
    /// own context.
    pub fn serving_scaler(&self) -> DynamicScaler {
        DynamicScaler::from_standard(self.scaler.clone(), DYNAMIC_ALPHA)
    }

    /// Transform a test segment: extract, resample, dynamically rescale,
    /// and project the ground truth into record-index space.
    ///
    /// Resampling and rescaling run as one fused streaming pass; the
    /// `EXATHLON_MATERIALIZED_WINDOWS` escape hatch restores the staged
    /// path that materializes the resampled intermediate first (the two
    /// are bitwise identical).
    pub fn apply_test(&self, segment: &TestSegment) -> TransformedTest {
        // Dynamic test-time rescaling seeded from the training statistics:
        // clone per trace so traces do not contaminate each other.
        let mut dynamic = DynamicScaler::from_standard(self.scaler.clone(), DYNAMIC_ALPHA);
        let series = if materialized_windows_mode() {
            let unscaled = self.extract_and_resample(&segment.series);
            exathlon_linalg::obs::counter(
                "dataplane.materialized_bytes",
                (unscaled.len() * unscaled.dims() * 8) as u64,
            );
            dynamic.transform_series(&unscaled)
        } else {
            let extracted = Self::extract(self.feature_space, self.pca.as_ref(), &segment.series);
            dynamic.transform_series_resampled(&extracted, self.resample_l)
        };
        self.finish_test(segment, series)
    }

    /// Ablation variant of [`FittedTransform::apply_test`]: rescale the
    /// test segment with a frozen scaler (training statistics only, no
    /// test-time adaptation). Used by the `ablation_scaling` bench binary
    /// to quantify the paper's dynamic-rescaling design choice.
    pub fn apply_test_static(
        &self,
        segment: &TestSegment,
        scaler: &StandardScaler,
    ) -> TransformedTest {
        let unscaled = self.extract_and_resample(&segment.series);
        let series = scaler.transform(&self.scaler.transform(&unscaled));
        self.finish_test(segment, series)
    }

    /// Shared tail of the test transforms: ground-truth projection into
    /// record-index space.
    fn finish_test(&self, segment: &TestSegment, series: TimeSeries) -> TransformedTest {
        let n = series.len();
        let st = series.start_tick();
        let l = self.resample_l as u64;
        // Record i covers ticks [st + i*l, st + (i+1)*l).
        let mut labels = vec![false; n];
        let mut typed_ranges = Vec::new();
        for e in &segment.entries {
            let (a_start, a_end) = e.anomaly_interval();
            if a_end <= st {
                continue; // anomaly entirely before the segment (peeked head)
            }
            let i_start = a_start.saturating_sub(st) / l;
            let i_end = a_end.saturating_sub(st).div_ceil(l).min(n as u64);
            if i_start >= i_end {
                continue;
            }
            for i in i_start..i_end {
                labels[i as usize] = true;
            }
            typed_ranges.push((e.anomaly_type, Range::new(i_start, i_end)));
        }

        TransformedTest {
            trace_id: segment.trace_id,
            app_id: segment.app_id,
            dominant_type: segment.dominant_type,
            series,
            labels,
            typed_ranges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LearningSetting;
    use crate::partition::partition;
    use exathlon_sparksim::dataset::DatasetBuilder;

    fn setup(
        config: &ExperimentConfig,
    ) -> (FittedTransform, Vec<TimeSeries>, Vec<TransformedTest>) {
        let ds = DatasetBuilder::tiny(5).build();
        let p = partition(&ds, LearningSetting::ls4(), 0.2);
        let (ft, train) = FittedTransform::fit(&p.train, config);
        let test: Vec<TransformedTest> = p.test.iter().map(|s| ft.apply_test(s)).collect();
        (ft, train, test)
    }

    #[test]
    fn custom_space_is_19_dimensional() {
        let (ft, train, test) = setup(&ExperimentConfig::default());
        assert_eq!(ft.output_dims(), 19);
        assert!(train.iter().all(|t| t.dims() == 19));
        assert!(test.iter().all(|t| t.series.dims() == 19));
    }

    #[test]
    fn pca_space_has_requested_dims() {
        let config =
            ExperimentConfig { feature_space: FeatureSpace::Pca(8), ..ExperimentConfig::default() };
        let (ft, train, _) = setup(&config);
        assert_eq!(ft.output_dims(), 8);
        assert!(train.iter().all(|t| t.dims() == 8));
    }

    #[test]
    fn training_data_roughly_standardized() {
        let (_, train, _) = setup(&ExperimentConfig::default());
        let mut pooled = train[0].clone();
        for t in &train[1..] {
            pooled.append(t);
        }
        for j in 0..pooled.dims() {
            let col = pooled.feature_column(j);
            let m = exathlon_linalg::stats::mean(&col);
            assert!(m.abs() < 0.2, "feature {j} mean {m} not centered");
        }
    }

    #[test]
    fn labels_align_with_ground_truth() {
        let (_, _, test) = setup(&ExperimentConfig::default());
        for t in &test {
            assert_eq!(t.labels.len(), t.series.len());
            let flagged = t.labels.iter().filter(|&&b| b).count();
            assert!(flagged > 0, "test trace {} has no anomalous records", t.trace_id);
            assert!(flagged < t.labels.len(), "test trace {} is entirely anomalous", t.trace_id);
            // Ranges agree with labels.
            for (_, r) in &t.typed_ranges {
                assert!(t.labels[r.start as usize]);
                assert!(t.labels[(r.end - 1) as usize]);
            }
        }
    }

    #[test]
    fn resampling_shrinks_series_and_keeps_labels() {
        let config = ExperimentConfig { resample_interval: 5, ..ExperimentConfig::default() };
        let (_, _, test5) = setup(&config);
        let (_, _, test1) = setup(&ExperimentConfig::default());
        for (a, b) in test5.iter().zip(&test1) {
            assert!(a.series.len() < b.series.len() / 4);
            assert!(a.labels.iter().any(|&l| l), "resampled labels lost");
        }
    }

    #[test]
    fn typed_ranges_carry_types() {
        let (_, _, test) = setup(&ExperimentConfig::default());
        let types: Vec<AnomalyType> =
            test.iter().flat_map(|t| t.typed_ranges.iter().map(|(a, _)| *a)).collect();
        assert!(types.contains(&AnomalyType::BurstyInput));
        assert!(types.contains(&AnomalyType::StalledInput));
    }
}
