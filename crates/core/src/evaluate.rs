//! Pipeline phases 4–5: AD inference and evaluation (§5 steps 4–5).
//!
//! Separation ability (`g`) is assessed as AUPRC at trace, application,
//! and global level, overall and per anomaly type (Table 3). Detection
//! ability (`f`) applies the 24 unsupervised thresholding rules and
//! reports range-based precision/recall/F1 at a chosen AD level, with
//! per-type recall (Table 4); the paper reports the best and the median
//! rule.

use crate::model::TrainedModel;
use crate::transform::TransformedTest;
use exathlon_ad::threshold::ThresholdRule;
use exathlon_sparksim::deg::AnomalyType;
use exathlon_tsmetrics::auprc::auprc;
use exathlon_tsmetrics::presets::{evaluate_at_level, AdLevel};
use exathlon_tsmetrics::range_pr::range_recall;
use exathlon_tsmetrics::Range;

/// A test trace with its outlier scores (AD inference output).
#[derive(Debug, Clone)]
pub struct ScoredTest {
    /// Trace id.
    pub trace_id: usize,
    /// Application id.
    pub app_id: usize,
    /// Dominant anomaly type.
    pub dominant_type: Option<AnomalyType>,
    /// Per-record outlier scores.
    pub scores: Vec<f64>,
    /// Per-record ground-truth labels.
    pub labels: Vec<bool>,
    /// Real anomaly ranges (record-index space), typed.
    pub typed_ranges: Vec<(AnomalyType, Range)>,
}

/// Run AD inference: score every transformed test trace.
///
/// Traces are scored on the shared worker pool ([`crate::par`]); each
/// trace is independent and results keep input order, so the output is
/// identical to the sequential map for any `EXATHLON_THREADS`.
pub fn score_tests(model: &TrainedModel, tests: &[TransformedTest]) -> Vec<ScoredTest> {
    let _stage = crate::obs::stage("score");
    crate::obs::add_records("score", tests.iter().map(|t| t.series.len() as u64).sum());
    let scorer_name = model.scorer.name();
    crate::par::par_map(tests, |t| {
        let _sp = crate::obs::span("score", scorer_name);
        ScoredTest {
            trace_id: t.trace_id,
            app_id: t.app_id,
            dominant_type: t.dominant_type,
            scores: model.scorer.score_series(&t.series),
            labels: t.labels.clone(),
            typed_ranges: t.typed_ranges.clone(),
        }
    })
}

/// Separation (AUPRC) results at the three aggregation levels, overall
/// ("Ave") and per anomaly type — one Table 3 row triple.
#[derive(Debug, Clone, PartialEq)]
pub struct SeparationScores {
    /// Trace-level: mean per-trace AUPRC.
    pub trace: TypedAuprc,
    /// Application-level: mean per-application AUPRC (scores pooled within
    /// an application).
    pub app: TypedAuprc,
    /// Global: AUPRC over all pooled test data.
    pub global: TypedAuprc,
}

/// AUPRC per anomaly type T1..T6 (`None` when the type has no instances
/// in scope) and their mean — the paper's "Ave" column is the mean of the
/// six per-type values (verifiable from Table 3's printed numbers).
#[derive(Debug, Clone, PartialEq)]
pub struct TypedAuprc {
    /// The "Ave" column: mean of the available per-type AUPRCs.
    pub average: f64,
    /// Per-type AUPRCs.
    pub per_type: [Option<f64>; 6],
}

fn pooled_auprc(tests: &[&ScoredTest]) -> Option<f64> {
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for t in tests {
        scores.extend_from_slice(&t.scores);
        labels.extend_from_slice(&t.labels);
    }
    if labels.iter().any(|&l| l) {
        Some(auprc(&scores, &labels))
    } else {
        None
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Compute the separation scores of a scored test set.
pub fn separation(tests: &[ScoredTest]) -> SeparationScores {
    let _stage = crate::obs::stage("evaluate");
    let by_type = |filter: Option<AnomalyType>| -> Vec<&ScoredTest> {
        tests.iter().filter(|t| filter.is_none() || t.dominant_type == filter).collect()
    };

    let trace_level = |subset: &[&ScoredTest]| -> Option<f64> {
        let per_trace: Vec<f64> = subset.iter().filter_map(|t| pooled_auprc(&[t])).collect();
        if per_trace.is_empty() {
            None
        } else {
            Some(mean(&per_trace))
        }
    };
    let app_level = |subset: &[&ScoredTest]| -> Option<f64> {
        let mut apps: Vec<usize> = subset.iter().map(|t| t.app_id).collect();
        apps.sort_unstable();
        apps.dedup();
        let per_app: Vec<f64> = apps
            .iter()
            .filter_map(|&a| {
                let group: Vec<&ScoredTest> =
                    subset.iter().filter(|t| t.app_id == a).copied().collect();
                pooled_auprc(&group)
            })
            .collect();
        if per_app.is_empty() {
            None
        } else {
            Some(mean(&per_app))
        }
    };
    let global_level = |subset: &[&ScoredTest]| -> Option<f64> { pooled_auprc(subset) };

    let typed = |level: &dyn Fn(&[&ScoredTest]) -> Option<f64>| -> TypedAuprc {
        let mut per_type = [None; 6];
        for (i, t) in AnomalyType::ALL.iter().enumerate() {
            per_type[i] = level(&by_type(Some(*t)));
        }
        let available: Vec<f64> = per_type.iter().flatten().copied().collect();
        TypedAuprc { average: mean(&available), per_type }
    };

    SeparationScores {
        trace: typed(&trace_level),
        app: typed(&app_level),
        global: typed(&global_level),
    }
}

/// Detection performance of one thresholding rule at one AD level.
#[derive(Debug, Clone)]
pub struct DetectionOutcome {
    /// Rule label (e.g. `"IQR x2.5 (2-pass)"`).
    pub rule: String,
    /// The fitted threshold value.
    pub threshold: f64,
    /// Range-based F1 over all pooled test traces.
    pub f1: f64,
    /// Range-based precision.
    pub precision: f64,
    /// Range-based recall.
    pub recall: f64,
    /// Recall restricted to each anomaly type T1..T6.
    pub per_type_recall: [Option<f64>; 6],
}

/// The threshold-independent half of a detection evaluation, computed
/// once per sweep instead of once per rule: the real anomaly ranges on
/// the pooled timeline, their per-type subsets, and each trace's start
/// offset. Traces are separated by a one-tick gap so cross-trace ranges
/// never interact.
#[derive(Debug, Clone)]
struct PooledTruth {
    /// All real anomaly ranges on the pooled timeline.
    real: Vec<Range>,
    /// Real ranges restricted to each anomaly type T1..T6, in pooled
    /// order (the same order the old per-rule filter produced).
    per_type: [Vec<Range>; 6],
    /// Pooled-timeline start offset of each test trace.
    offsets: Vec<u64>,
}

fn pooled_truth(tests: &[ScoredTest]) -> PooledTruth {
    let mut real = Vec::new();
    let mut per_type: [Vec<Range>; 6] = Default::default();
    let mut offsets = Vec::with_capacity(tests.len());
    let mut offset = 0u64;
    for t in tests {
        offsets.push(offset);
        for (atype, r) in &t.typed_ranges {
            let shifted = Range::new(r.start + offset, r.end + offset);
            real.push(shifted);
            if let Some(i) = AnomalyType::ALL.iter().position(|a| a == atype) {
                per_type[i].push(shifted);
            }
        }
        offset += t.scores.len() as u64 + 1;
    }
    PooledTruth { real, per_type, offsets }
}

/// Predicted ranges for one threshold, derived directly from the scores:
/// one range per maximal run of `score >= threshold` per trace, shifted
/// to the pooled timeline. Exactly the ranges
/// `ranges_from_flags(ThresholdRule::apply(threshold, scores), offset)`
/// produces, without materializing a per-record flag vector per rule.
fn predicted_ranges(tests: &[ScoredTest], offsets: &[u64], threshold: f64) -> Vec<Range> {
    let mut predicted = Vec::new();
    for (t, &offset) in tests.iter().zip(offsets) {
        let mut open: Option<u64> = None;
        for (i, &s) in t.scores.iter().enumerate() {
            let tick = offset + i as u64;
            match (s >= threshold, open) {
                (true, None) => open = Some(tick),
                (false, Some(start)) => {
                    predicted.push(Range::new(start, tick));
                    open = None;
                }
                _ => {}
            }
        }
        if let Some(start) = open {
            predicted.push(Range::new(start, offset + t.scores.len() as u64));
        }
    }
    predicted
}

/// Evaluate a model's detection ability at one AD level across all 24
/// thresholding rules.
///
/// The pooled ground truth (real ranges, typed subsets, trace offsets)
/// is computed once and shared by every rule; only the predicted ranges
/// depend on the threshold. The rule grid fans out on the shared worker
/// pool ([`crate::par`]); every rule evaluation is independent and
/// output order matches `ThresholdRule::all_rules()`, so results are
/// identical to the sequential sweep.
pub fn evaluate_detection(
    model: &TrainedModel,
    tests: &[ScoredTest],
    level: AdLevel,
) -> Vec<DetectionOutcome> {
    let _stage = crate::obs::stage("threshold");
    let rules = ThresholdRule::all_rules();
    let truth = pooled_truth(tests);
    crate::par::par_map(&rules, |rule| {
        let _sp = crate::obs::span("threshold", "rule");
        let threshold = rule.fit(&model.d2_scores);
        detection_core(&rule.label(), threshold, tests, &truth, level)
    })
}

/// Evaluate detection at a fixed threshold (used both by the rule sweep
/// and by ablation benches).
pub fn detection_with_threshold(
    rule_label: &str,
    threshold: f64,
    tests: &[ScoredTest],
    level: AdLevel,
) -> DetectionOutcome {
    detection_core(rule_label, threshold, tests, &pooled_truth(tests), level)
}

/// The per-rule half of a detection evaluation against a precomputed
/// [`PooledTruth`].
fn detection_core(
    rule_label: &str,
    threshold: f64,
    tests: &[ScoredTest],
    truth: &PooledTruth,
    level: AdLevel,
) -> DetectionOutcome {
    let predicted = predicted_ranges(tests, &truth.offsets, threshold);
    let scores = evaluate_at_level(&truth.real, &predicted, level);
    let mut per_type_recall = [None; 6];
    for (i, subset) in truth.per_type.iter().enumerate() {
        if !subset.is_empty() {
            per_type_recall[i] = Some(range_recall(subset, &predicted, &level.recall_params()));
        }
    }
    DetectionOutcome {
        rule: rule_label.to_string(),
        threshold,
        f1: scores.f1,
        precision: scores.precision,
        recall: scores.recall,
        per_type_recall,
    }
}

/// The paper's reporting: the best (upper bound) and the median
/// (realistic) outcome by F1 over the rule grid.
pub fn best_and_median(outcomes: &[DetectionOutcome]) -> (DetectionOutcome, DetectionOutcome) {
    assert!(!outcomes.is_empty(), "no outcomes to rank");
    let mut sorted: Vec<&DetectionOutcome> = outcomes.iter().collect();
    sorted.sort_by(|a, b| b.f1.total_cmp(&a.f1));
    let best = sorted[0].clone();
    let median = sorted[sorted.len() / 2].clone();
    (best, median)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built scored test: scores perfectly track labels.
    fn perfect_test(trace_id: usize, app_id: usize, atype: AnomalyType) -> ScoredTest {
        let labels: Vec<bool> = (0..100).map(|i| (40..60).contains(&i)).collect();
        let scores: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
        ScoredTest {
            trace_id,
            app_id,
            dominant_type: Some(atype),
            scores,
            labels,
            typed_ranges: vec![(atype, Range::new(40, 60))],
        }
    }

    /// Scores uncorrelated with labels.
    fn random_test(trace_id: usize, app_id: usize, atype: AnomalyType) -> ScoredTest {
        let labels: Vec<bool> = (0..100).map(|i| (40..60).contains(&i)).collect();
        let scores: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64 / 100.0).collect();
        ScoredTest {
            trace_id,
            app_id,
            dominant_type: Some(atype),
            scores,
            labels,
            typed_ranges: vec![(atype, Range::new(40, 60))],
        }
    }

    #[test]
    fn perfect_scores_give_unit_auprc_everywhere() {
        let tests = vec![
            perfect_test(0, 0, AnomalyType::BurstyInput),
            perfect_test(1, 1, AnomalyType::StalledInput),
        ];
        let s = separation(&tests);
        assert!((s.trace.average - 1.0).abs() < 1e-9);
        assert!((s.app.average - 1.0).abs() < 1e-9);
        assert!((s.global.average - 1.0).abs() < 1e-9);
        assert_eq!(s.trace.per_type[0], Some(1.0)); // T1
        assert_eq!(s.trace.per_type[2], Some(1.0)); // T3
        assert_eq!(s.trace.per_type[1], None); // no T2 traces
    }

    #[test]
    fn separation_degrades_from_trace_to_global() {
        // Two traces of the SAME type whose score scales differ: each
        // separates perfectly on its own, but pooled the low-scale trace's
        // anomalies rank below the other's normals — the paper's trace ->
        // global degradation.
        let mut low_scale = perfect_test(0, 0, AnomalyType::BurstyInput);
        for s in &mut low_scale.scores {
            *s *= 0.1; // anomalies score 0.1 here
        }
        let mut high_noise = perfect_test(1, 1, AnomalyType::BurstyInput);
        for (i, s) in high_noise.scores.iter_mut().enumerate() {
            *s = if high_noise.labels[i] { 2.0 } else { 0.5 };
        }
        let tests = vec![low_scale, high_noise];
        let s = separation(&tests);
        assert!((s.trace.average - 1.0).abs() < 1e-9, "each trace separates perfectly");
        assert!(
            s.global.average < s.trace.average,
            "pooling must hurt: trace {} vs global {}",
            s.trace.average,
            s.global.average
        );
    }

    #[test]
    fn average_is_mean_of_per_type_values() {
        let tests = vec![
            perfect_test(0, 0, AnomalyType::BurstyInput),
            random_test(1, 1, AnomalyType::StalledInput),
        ];
        let s = separation(&tests);
        let t1 = s.trace.per_type[0].unwrap();
        let t3 = s.trace.per_type[2].unwrap();
        assert!((s.trace.average - (t1 + t3) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn detection_pooling_counts_all_traces() {
        let tests = vec![
            perfect_test(0, 0, AnomalyType::BurstyInput),
            perfect_test(1, 0, AnomalyType::BurstyInput),
        ];
        let out = detection_with_threshold("fixed", 0.5, &tests, AdLevel::Range);
        assert!((out.f1 - 1.0).abs() < 1e-9);
        assert_eq!(out.per_type_recall[0], Some(1.0));
        assert_eq!(out.per_type_recall[3], None);
    }

    #[test]
    fn threshold_too_high_kills_recall() {
        let tests = vec![perfect_test(0, 0, AnomalyType::BurstyInput)];
        let out = detection_with_threshold("fixed", 2.0, &tests, AdLevel::Range);
        assert_eq!(out.recall, 0.0);
        assert_eq!(out.precision, 1.0, "no predictions, no false alarms");
    }

    #[test]
    fn best_and_median_ordering() {
        let mk = |f1: f64| DetectionOutcome {
            rule: format!("r{f1}"),
            threshold: 0.0,
            f1,
            precision: f1,
            recall: f1,
            per_type_recall: [None; 6],
        };
        let outcomes = vec![mk(0.2), mk(0.9), mk(0.5)];
        let (best, median) = best_and_median(&outcomes);
        assert_eq!(best.f1, 0.9);
        assert_eq!(median.f1, 0.5);
    }

    #[test]
    fn pooled_ranges_do_not_collide() {
        let tests = vec![
            perfect_test(0, 0, AnomalyType::BurstyInput),
            perfect_test(1, 0, AnomalyType::BurstyInput),
        ];
        let truth = pooled_truth(&tests);
        let predicted = predicted_ranges(&tests, &truth.offsets, 0.5);
        assert_eq!(truth.real.len(), 2);
        assert_eq!(predicted.len(), 2);
        assert!(truth.real[1].start > truth.real[0].end, "trace offsets must separate ranges");
    }

    /// The direct score-run derivation must produce exactly the ranges the
    /// historical `ranges_from_flags(ThresholdRule::apply(..))` composition
    /// did, for every threshold position — including all-above (trailing
    /// open run), all-below (no ranges), and runs touching both ends.
    #[test]
    fn predicted_ranges_match_flags_composition() {
        use exathlon_tsmetrics::ranges::ranges_from_flags;
        let mut edge = perfect_test(2, 1, AnomalyType::CpuContention);
        // Runs touching both ends of the trace plus an interior run.
        for (i, s) in edge.scores.iter_mut().enumerate() {
            *s = if i < 5 || (30..33).contains(&i) || i >= 95 { 1.0 } else { 0.0 };
        }
        let tests = vec![
            perfect_test(0, 0, AnomalyType::BurstyInput),
            random_test(1, 0, AnomalyType::StalledInput),
            edge,
        ];
        let truth = pooled_truth(&tests);
        for &threshold in &[-1.0, 0.0, 0.25, 0.5, 0.99, 1.0, 2.0] {
            let direct = predicted_ranges(&tests, &truth.offsets, threshold);
            let mut expected = Vec::new();
            let mut offset = 0u64;
            for t in &tests {
                let flags = ThresholdRule::apply(threshold, &t.scores);
                expected.extend(ranges_from_flags(&flags, offset));
                offset += t.scores.len() as u64 + 1;
            }
            assert_eq!(direct, expected, "threshold {threshold}");
        }
    }
}
