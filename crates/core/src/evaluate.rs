//! Pipeline phases 4–5: AD inference and evaluation (§5 steps 4–5).
//!
//! Separation ability (`g`) is assessed as AUPRC at trace, application,
//! and global level, overall and per anomaly type (Table 3). Detection
//! ability (`f`) applies the 24 unsupervised thresholding rules and
//! reports range-based precision/recall/F1 at a chosen AD level, with
//! per-type recall (Table 4); the paper reports the best and the median
//! rule.

use crate::model::TrainedModel;
use crate::transform::TransformedTest;
use exathlon_ad::threshold::ThresholdRule;
use exathlon_sparksim::deg::AnomalyType;
use exathlon_tsmetrics::auprc::auprc;
use exathlon_tsmetrics::presets::{evaluate_at_level, AdLevel};
use exathlon_tsmetrics::range_pr::range_recall;
use exathlon_tsmetrics::ranges::ranges_from_flags;
use exathlon_tsmetrics::Range;

/// A test trace with its outlier scores (AD inference output).
#[derive(Debug, Clone)]
pub struct ScoredTest {
    /// Trace id.
    pub trace_id: usize,
    /// Application id.
    pub app_id: usize,
    /// Dominant anomaly type.
    pub dominant_type: Option<AnomalyType>,
    /// Per-record outlier scores.
    pub scores: Vec<f64>,
    /// Per-record ground-truth labels.
    pub labels: Vec<bool>,
    /// Real anomaly ranges (record-index space), typed.
    pub typed_ranges: Vec<(AnomalyType, Range)>,
}

/// Run AD inference: score every transformed test trace.
///
/// Traces are scored on the shared worker pool ([`crate::par`]); each
/// trace is independent and results keep input order, so the output is
/// identical to the sequential map for any `EXATHLON_THREADS`.
pub fn score_tests(model: &TrainedModel, tests: &[TransformedTest]) -> Vec<ScoredTest> {
    let _stage = crate::obs::stage("score");
    crate::obs::add_records("score", tests.iter().map(|t| t.series.len() as u64).sum());
    let scorer_name = model.scorer.name();
    crate::par::par_map(tests, |t| {
        let _sp = crate::obs::span("score", scorer_name);
        ScoredTest {
            trace_id: t.trace_id,
            app_id: t.app_id,
            dominant_type: t.dominant_type,
            scores: model.scorer.score_series(&t.series),
            labels: t.labels.clone(),
            typed_ranges: t.typed_ranges.clone(),
        }
    })
}

/// Separation (AUPRC) results at the three aggregation levels, overall
/// ("Ave") and per anomaly type — one Table 3 row triple.
#[derive(Debug, Clone, PartialEq)]
pub struct SeparationScores {
    /// Trace-level: mean per-trace AUPRC.
    pub trace: TypedAuprc,
    /// Application-level: mean per-application AUPRC (scores pooled within
    /// an application).
    pub app: TypedAuprc,
    /// Global: AUPRC over all pooled test data.
    pub global: TypedAuprc,
}

/// AUPRC per anomaly type T1..T6 (`None` when the type has no instances
/// in scope) and their mean — the paper's "Ave" column is the mean of the
/// six per-type values (verifiable from Table 3's printed numbers).
#[derive(Debug, Clone, PartialEq)]
pub struct TypedAuprc {
    /// The "Ave" column: mean of the available per-type AUPRCs.
    pub average: f64,
    /// Per-type AUPRCs.
    pub per_type: [Option<f64>; 6],
}

fn pooled_auprc(tests: &[&ScoredTest]) -> Option<f64> {
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for t in tests {
        scores.extend_from_slice(&t.scores);
        labels.extend_from_slice(&t.labels);
    }
    if labels.iter().any(|&l| l) {
        Some(auprc(&scores, &labels))
    } else {
        None
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Compute the separation scores of a scored test set.
pub fn separation(tests: &[ScoredTest]) -> SeparationScores {
    let _stage = crate::obs::stage("evaluate");
    let by_type = |filter: Option<AnomalyType>| -> Vec<&ScoredTest> {
        tests.iter().filter(|t| filter.is_none() || t.dominant_type == filter).collect()
    };

    let trace_level = |subset: &[&ScoredTest]| -> Option<f64> {
        let per_trace: Vec<f64> = subset.iter().filter_map(|t| pooled_auprc(&[t])).collect();
        if per_trace.is_empty() {
            None
        } else {
            Some(mean(&per_trace))
        }
    };
    let app_level = |subset: &[&ScoredTest]| -> Option<f64> {
        let mut apps: Vec<usize> = subset.iter().map(|t| t.app_id).collect();
        apps.sort_unstable();
        apps.dedup();
        let per_app: Vec<f64> = apps
            .iter()
            .filter_map(|&a| {
                let group: Vec<&ScoredTest> =
                    subset.iter().filter(|t| t.app_id == a).copied().collect();
                pooled_auprc(&group)
            })
            .collect();
        if per_app.is_empty() {
            None
        } else {
            Some(mean(&per_app))
        }
    };
    let global_level = |subset: &[&ScoredTest]| -> Option<f64> { pooled_auprc(subset) };

    let typed = |level: &dyn Fn(&[&ScoredTest]) -> Option<f64>| -> TypedAuprc {
        let mut per_type = [None; 6];
        for (i, t) in AnomalyType::ALL.iter().enumerate() {
            per_type[i] = level(&by_type(Some(*t)));
        }
        let available: Vec<f64> = per_type.iter().flatten().copied().collect();
        TypedAuprc { average: mean(&available), per_type }
    };

    SeparationScores {
        trace: typed(&trace_level),
        app: typed(&app_level),
        global: typed(&global_level),
    }
}

/// Detection performance of one thresholding rule at one AD level.
#[derive(Debug, Clone)]
pub struct DetectionOutcome {
    /// Rule label (e.g. `"IQR x2.5 (2-pass)"`).
    pub rule: String,
    /// The fitted threshold value.
    pub threshold: f64,
    /// Range-based F1 over all pooled test traces.
    pub f1: f64,
    /// Range-based precision.
    pub precision: f64,
    /// Range-based recall.
    pub recall: f64,
    /// Recall restricted to each anomaly type T1..T6.
    pub per_type_recall: [Option<f64>; 6],
}

/// Pool the real/predicted ranges of all traces into one timeline by
/// offsetting each trace with a gap, so that cross-trace ranges never
/// interact.
fn pooled_ranges(
    tests: &[ScoredTest],
    flags_per_test: &[Vec<bool>],
) -> (Vec<Range>, Vec<Range>, Vec<(AnomalyType, Range)>) {
    let mut real = Vec::new();
    let mut predicted = Vec::new();
    let mut typed = Vec::new();
    let mut offset = 0u64;
    for (t, flags) in tests.iter().zip(flags_per_test) {
        for (atype, r) in &t.typed_ranges {
            let shifted = Range::new(r.start + offset, r.end + offset);
            real.push(shifted);
            typed.push((*atype, shifted));
        }
        for r in ranges_from_flags(flags, offset) {
            predicted.push(r);
        }
        offset += t.scores.len() as u64 + 1;
    }
    (real, predicted, typed)
}

/// Evaluate a model's detection ability at one AD level across all 24
/// thresholding rules.
///
/// The rule grid fans out on the shared worker pool ([`crate::par`]);
/// every rule evaluation is independent and output order matches
/// `ThresholdRule::all_rules()`, so results are identical to the
/// sequential sweep.
pub fn evaluate_detection(
    model: &TrainedModel,
    tests: &[ScoredTest],
    level: AdLevel,
) -> Vec<DetectionOutcome> {
    let _stage = crate::obs::stage("threshold");
    let rules = ThresholdRule::all_rules();
    crate::par::par_map(&rules, |rule| {
        let _sp = crate::obs::span("threshold", "rule");
        let threshold = rule.fit(&model.d2_scores);
        detection_with_threshold(&rule.label(), threshold, tests, level)
    })
}

/// Evaluate detection at a fixed threshold (used both by the rule sweep
/// and by ablation benches).
pub fn detection_with_threshold(
    rule_label: &str,
    threshold: f64,
    tests: &[ScoredTest],
    level: AdLevel,
) -> DetectionOutcome {
    let flags: Vec<Vec<bool>> =
        tests.iter().map(|t| ThresholdRule::apply(threshold, &t.scores)).collect();
    let (real, predicted, typed) = pooled_ranges(tests, &flags);
    let scores = evaluate_at_level(&real, &predicted, level);
    let mut per_type_recall = [None; 6];
    for (i, t) in AnomalyType::ALL.iter().enumerate() {
        let subset: Vec<Range> = typed.iter().filter(|(a, _)| a == t).map(|(_, r)| *r).collect();
        if !subset.is_empty() {
            per_type_recall[i] = Some(range_recall(&subset, &predicted, &level.recall_params()));
        }
    }
    DetectionOutcome {
        rule: rule_label.to_string(),
        threshold,
        f1: scores.f1,
        precision: scores.precision,
        recall: scores.recall,
        per_type_recall,
    }
}

/// The paper's reporting: the best (upper bound) and the median
/// (realistic) outcome by F1 over the rule grid.
pub fn best_and_median(outcomes: &[DetectionOutcome]) -> (DetectionOutcome, DetectionOutcome) {
    assert!(!outcomes.is_empty(), "no outcomes to rank");
    let mut sorted: Vec<&DetectionOutcome> = outcomes.iter().collect();
    sorted.sort_by(|a, b| b.f1.total_cmp(&a.f1));
    let best = sorted[0].clone();
    let median = sorted[sorted.len() / 2].clone();
    (best, median)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built scored test: scores perfectly track labels.
    fn perfect_test(trace_id: usize, app_id: usize, atype: AnomalyType) -> ScoredTest {
        let labels: Vec<bool> = (0..100).map(|i| (40..60).contains(&i)).collect();
        let scores: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
        ScoredTest {
            trace_id,
            app_id,
            dominant_type: Some(atype),
            scores,
            labels,
            typed_ranges: vec![(atype, Range::new(40, 60))],
        }
    }

    /// Scores uncorrelated with labels.
    fn random_test(trace_id: usize, app_id: usize, atype: AnomalyType) -> ScoredTest {
        let labels: Vec<bool> = (0..100).map(|i| (40..60).contains(&i)).collect();
        let scores: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64 / 100.0).collect();
        ScoredTest {
            trace_id,
            app_id,
            dominant_type: Some(atype),
            scores,
            labels,
            typed_ranges: vec![(atype, Range::new(40, 60))],
        }
    }

    #[test]
    fn perfect_scores_give_unit_auprc_everywhere() {
        let tests = vec![
            perfect_test(0, 0, AnomalyType::BurstyInput),
            perfect_test(1, 1, AnomalyType::StalledInput),
        ];
        let s = separation(&tests);
        assert!((s.trace.average - 1.0).abs() < 1e-9);
        assert!((s.app.average - 1.0).abs() < 1e-9);
        assert!((s.global.average - 1.0).abs() < 1e-9);
        assert_eq!(s.trace.per_type[0], Some(1.0)); // T1
        assert_eq!(s.trace.per_type[2], Some(1.0)); // T3
        assert_eq!(s.trace.per_type[1], None); // no T2 traces
    }

    #[test]
    fn separation_degrades_from_trace_to_global() {
        // Two traces of the SAME type whose score scales differ: each
        // separates perfectly on its own, but pooled the low-scale trace's
        // anomalies rank below the other's normals — the paper's trace ->
        // global degradation.
        let mut low_scale = perfect_test(0, 0, AnomalyType::BurstyInput);
        for s in &mut low_scale.scores {
            *s *= 0.1; // anomalies score 0.1 here
        }
        let mut high_noise = perfect_test(1, 1, AnomalyType::BurstyInput);
        for (i, s) in high_noise.scores.iter_mut().enumerate() {
            *s = if high_noise.labels[i] { 2.0 } else { 0.5 };
        }
        let tests = vec![low_scale, high_noise];
        let s = separation(&tests);
        assert!((s.trace.average - 1.0).abs() < 1e-9, "each trace separates perfectly");
        assert!(
            s.global.average < s.trace.average,
            "pooling must hurt: trace {} vs global {}",
            s.trace.average,
            s.global.average
        );
    }

    #[test]
    fn average_is_mean_of_per_type_values() {
        let tests = vec![
            perfect_test(0, 0, AnomalyType::BurstyInput),
            random_test(1, 1, AnomalyType::StalledInput),
        ];
        let s = separation(&tests);
        let t1 = s.trace.per_type[0].unwrap();
        let t3 = s.trace.per_type[2].unwrap();
        assert!((s.trace.average - (t1 + t3) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn detection_pooling_counts_all_traces() {
        let tests = vec![
            perfect_test(0, 0, AnomalyType::BurstyInput),
            perfect_test(1, 0, AnomalyType::BurstyInput),
        ];
        let out = detection_with_threshold("fixed", 0.5, &tests, AdLevel::Range);
        assert!((out.f1 - 1.0).abs() < 1e-9);
        assert_eq!(out.per_type_recall[0], Some(1.0));
        assert_eq!(out.per_type_recall[3], None);
    }

    #[test]
    fn threshold_too_high_kills_recall() {
        let tests = vec![perfect_test(0, 0, AnomalyType::BurstyInput)];
        let out = detection_with_threshold("fixed", 2.0, &tests, AdLevel::Range);
        assert_eq!(out.recall, 0.0);
        assert_eq!(out.precision, 1.0, "no predictions, no false alarms");
    }

    #[test]
    fn best_and_median_ordering() {
        let mk = |f1: f64| DetectionOutcome {
            rule: format!("r{f1}"),
            threshold: 0.0,
            f1,
            precision: f1,
            recall: f1,
            per_type_recall: [None; 6],
        };
        let outcomes = vec![mk(0.2), mk(0.9), mk(0.5)];
        let (best, median) = best_and_median(&outcomes);
        assert_eq!(best.f1, 0.9);
        assert_eq!(median.f1, 0.5);
    }

    #[test]
    fn pooled_ranges_do_not_collide() {
        let tests = vec![
            perfect_test(0, 0, AnomalyType::BurstyInput),
            perfect_test(1, 0, AnomalyType::BurstyInput),
        ];
        let flags: Vec<Vec<bool>> = tests.iter().map(|t| t.labels.clone()).collect();
        let (real, predicted, _) = pooled_ranges(&tests, &flags);
        assert_eq!(real.len(), 2);
        assert_eq!(predicted.len(), 2);
        assert!(real[1].start > real[0].end, "trace offsets must separate ranges");
    }
}
