//! Streaming replay driver: pipeline phase 4 in its online form.
//!
//! The batch pipeline ([`crate::experiment::run_pipeline`]) materializes
//! every test trace and scores it in one call. Exathlon's target setting
//! is *monitoring*: records of a repeated Spark execution arrive one at a
//! time and the detector must emit a score per tick from bounded state.
//! This module drives that path over the same simulated dataset:
//!
//! 1. [`crate::experiment::prepare`] — the exact partition + transform of
//!    the batch pipeline (bit-identical traces),
//! 2. [`build_streaming`] — fit a batch model on `D¹_train` (same split,
//!    same config literals, same derived seed as [`crate::model`]) and
//!    wrap it as a [`StreamingDetector`],
//! 3. [`replay_series`] — feed a trace record-by-record through
//!    `update`, metering `stream.records` / `stream.score_ns` /
//!    `stream.ns_per_record` observability counters.
//!
//! Because steps 1–2 reuse the batch code paths, replaying a trace
//! reproduces the batch scores exactly for the wrapped methods (bitwise
//! for EWMA / kNN / LOF, window-shifted for AE) — pinned end-to-end by
//! `tests/stream_equivalence.rs`.

use crate::config::{ExperimentConfig, StreamMethod};
use crate::evaluate::ScoredTest;
use crate::experiment::{method_seed, prepare, seed_from_label};
use crate::model::{ae_config_for, knn_config_for, lof_config_for, split_train, TrainingBudget};
use crate::transform::TransformedTest;
use exathlon_ad::ae_ad::AutoencoderDetector;
use exathlon_ad::ewma::{EwmaConfig, EwmaDetector};
use exathlon_ad::knn_ad::KnnDetector;
use exathlon_ad::lof::LofDetector;
use exathlon_ad::stream::{
    CusumConfig, CusumDetector, HistogramConfig, HistogramDetector, PageHinkleyConfig,
    PageHinkleyDetector, ServableDetector, SpectralResidualConfig, SpectralResidualDetector,
    StreamingAe, StreamingDetector, StreamingKnn, StreamingLof,
};
use exathlon_ad::AnomalyScorer;
use exathlon_sparksim::dataset::Dataset;
use exathlon_tsdata::TimeSeries;

/// A replay run: the transformed test traces and, per requested method,
/// their streamed per-record scores (in [`ScoredTest`] form, so the
/// batch evaluation machinery applies unchanged).
pub struct ReplayRun {
    /// Transformed, labeled test traces.
    pub tests: Vec<TransformedTest>,
    /// One scored-test set per requested method, in request order.
    pub methods: Vec<(StreamMethod, Vec<ScoredTest>)>,
}

impl ReplayRun {
    /// The scored tests of one method.
    ///
    /// # Panics
    /// Panics if the method was not part of the run.
    pub fn scored(&self, method: StreamMethod) -> &[ScoredTest] {
        &self
            .methods
            .iter()
            .find(|(m, _)| *m == method)
            .unwrap_or_else(|| panic!("{method:?} was not part of this run"))
            .1
    }
}

/// Fit a streaming detector on the transformed training traces: split
/// off `D¹_train` exactly as [`crate::model::train_model`] does, fit the
/// underlying batch model with the shared config literals, and wrap its
/// online face.
pub fn build_streaming(
    method: StreamMethod,
    train: &[TimeSeries],
    holdout: f64,
    budget: TrainingBudget,
    seed: u64,
) -> Box<dyn StreamingDetector + Send> {
    Box::new(build_servable(method, train, holdout, budget, seed))
}

/// [`build_streaming`] in serializable form: the same fit, returned as
/// the concrete [`ServableDetector`] enum so the serving layer can
/// snapshot and restore it. `build_streaming` is a thin wrapper over
/// this, so the replay and serving paths fit identical models.
pub fn build_servable(
    method: StreamMethod,
    train: &[TimeSeries],
    holdout: f64,
    budget: TrainingBudget,
    seed: u64,
) -> ServableDetector {
    let _sp = crate::obs::span("train", method.label());
    let (d1, _d2) = split_train(train, holdout);
    let d1_refs: Vec<&TimeSeries> = d1.iter().collect();
    match method {
        StreamMethod::Ewma => {
            let mut det = EwmaDetector::new(EwmaConfig::default());
            det.fit(&d1_refs);
            det.streaming().into()
        }
        StreamMethod::Cusum => {
            let mut det = CusumDetector::new(CusumConfig::default());
            det.fit(&d1_refs);
            det.into()
        }
        StreamMethod::PageHinkley => {
            let mut det = PageHinkleyDetector::new(PageHinkleyConfig::default());
            det.fit(&d1_refs);
            det.into()
        }
        StreamMethod::Histogram => {
            let mut det = HistogramDetector::new(HistogramConfig::default());
            det.fit(&d1_refs);
            det.into()
        }
        StreamMethod::SpectralResidual => {
            // Training-free: the detector carries only its ring buffer.
            SpectralResidualDetector::new(SpectralResidualConfig::default()).into()
        }
        StreamMethod::Ae => {
            let mut det = AutoencoderDetector::new(ae_config_for(budget, seed));
            det.fit(&d1_refs);
            let dims = train.first().map(|t| t.dims()).expect("no training traces");
            StreamingAe::new(det, dims).into()
        }
        StreamMethod::Knn => {
            let mut det = KnnDetector::new(knn_config_for(budget));
            det.fit(&d1_refs);
            StreamingKnn::new(det).into()
        }
        StreamMethod::Lof => {
            let mut det = LofDetector::new(lof_config_for(budget));
            det.fit(&d1_refs);
            StreamingLof::new(det).into()
        }
    }
}

/// The training seed of a streaming method: the wrapped methods reuse
/// their batch twin's [`method_seed`] (same fitted model on both sides
/// of the equivalence pin); stream-native methods fold their own label.
pub fn stream_seed(experiment_seed: u64, method: StreamMethod) -> u64 {
    match method.batch_method() {
        Some(batch) => method_seed(experiment_seed, batch),
        None => seed_from_label(experiment_seed, method.label()),
    }
}

/// Replay one trace record-by-record: `reset`, then one `update` per
/// record. Meters the per-record cost into the observability counters —
/// `stream.records` and `stream.score_ns` accumulate totals across
/// calls; `stream.ns_per_record` adds each trace's average (so a
/// single-trace replay reads directly as per-record latency).
pub fn replay_series(det: &mut dyn StreamingDetector, ts: &TimeSeries) -> Vec<f64> {
    let _sp = crate::obs::span("score", "stream.replay");
    let start = std::time::Instant::now();
    det.reset();
    let scores: Vec<f64> = ts.records().map(|r| det.update(r)).collect();
    let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    crate::obs::counter("stream.records", ts.len() as u64);
    crate::obs::counter("stream.score_ns", ns);
    if !ts.is_empty() {
        crate::obs::counter("stream.ns_per_record", ns / ts.len() as u64);
    }
    scores
}

/// Run the replay driver end to end: partition + transform exactly as
/// the batch pipeline, then fit each requested streaming detector and
/// feed it every test trace record-by-record.
pub fn run_replay(
    ds: &Dataset,
    config: &ExperimentConfig,
    methods: &[StreamMethod],
    budget: TrainingBudget,
) -> ReplayRun {
    let (_transform, train, tests) = prepare(ds, config);
    let methods = methods
        .iter()
        .map(|&method| {
            let mut det = {
                let _stage = crate::obs::stage("train");
                build_streaming(
                    method,
                    &train,
                    config.threshold_holdout,
                    budget,
                    stream_seed(config.seed, method),
                )
            };
            let _stage = crate::obs::stage("score");
            crate::obs::add_records("score", tests.iter().map(|t| t.series.len() as u64).sum());
            let scored = tests
                .iter()
                .map(|t| ScoredTest {
                    trace_id: t.trace_id,
                    app_id: t.app_id,
                    dominant_type: t.dominant_type,
                    scores: replay_series(det.as_mut(), &t.series),
                    labels: t.labels.clone(),
                    typed_ranges: t.typed_ranges.clone(),
                })
                .collect();
            (method, scored)
        })
        .collect();
    crate::obs::emit_report();
    ReplayRun { tests, methods }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_sparksim::dataset::DatasetBuilder;

    #[test]
    fn replay_runs_every_streaming_method() {
        let ds = DatasetBuilder::tiny(11).build();
        let config = ExperimentConfig { resample_interval: 2, ..ExperimentConfig::default() };
        let run = run_replay(&ds, &config, &StreamMethod::ALL, TrainingBudget::Quick);
        assert_eq!(run.methods.len(), StreamMethod::ALL.len());
        for (m, scored) in &run.methods {
            assert_eq!(scored.len(), run.tests.len(), "{m:?} missed traces");
            for (s, t) in scored.iter().zip(&run.tests) {
                assert_eq!(s.scores.len(), t.series.len(), "{m:?} missed records");
                assert!(
                    s.scores.iter().all(|v| v.is_finite()),
                    "{m:?} produced non-finite streaming scores"
                );
            }
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let ds = DatasetBuilder::tiny(13).build();
        let config = ExperimentConfig::default();
        let methods = [StreamMethod::Cusum, StreamMethod::Knn];
        let a = run_replay(&ds, &config, &methods, TrainingBudget::Quick);
        let b = run_replay(&ds, &config, &methods, TrainingBudget::Quick);
        for ((ma, sa), (mb, sb)) in a.methods.iter().zip(&b.methods) {
            assert_eq!(ma, mb);
            for (x, y) in sa.iter().zip(sb) {
                assert_eq!(x.scores, y.scores, "{ma:?} replay not deterministic");
            }
        }
    }

    #[test]
    fn wrapped_methods_share_the_batch_seed() {
        use crate::config::AdMethod;
        assert_eq!(stream_seed(7, StreamMethod::Knn), method_seed(7, AdMethod::Knn));
        assert_eq!(stream_seed(7, StreamMethod::Ae), method_seed(7, AdMethod::Ae));
        // Stream-native labels must not collide with each other.
        assert_ne!(stream_seed(7, StreamMethod::Cusum), stream_seed(7, StreamMethod::PageHinkley));
    }

    #[test]
    #[should_panic(expected = "was not part of this run")]
    fn missing_method_panics() {
        let ds = DatasetBuilder::tiny(11).build();
        let run = run_replay(
            &ds,
            &ExperimentConfig::default(),
            &[StreamMethod::Ewma],
            TrainingBudget::Quick,
        );
        let _ = run.scored(StreamMethod::Knn);
    }
}
