//! Serializable, printable result tables matching the paper's layout.

use crate::edrun::EdEvaluation;
use crate::evaluate::{DetectionOutcome, SeparationScores};
use std::fmt;

/// Format an optional score as the paper's tables do (blank when the type
/// has no instances in scope).
fn opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "  - ".into(),
    }
}

/// A Table 3 / 7 / 8 style separation table: one block of trace / app /
/// global rows per method.
#[derive(Debug, Clone, Default)]
pub struct SeparationTable {
    /// `(method label, scores)` pairs.
    pub rows: Vec<(String, SeparationScores)>,
}

impl SeparationTable {
    /// Add a method's scores.
    pub fn push(&mut self, method: impl Into<String>, scores: SeparationScores) {
        self.rows.push((method.into(), scores));
    }
}

impl fmt::Display for SeparationTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<8} {:<7} {:>5}  {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
            "SepLvl", "Method", "Ave", "T1", "T2", "T3", "T4", "T5", "T6"
        )?;
        for level in ["Trace", "App", "Global"] {
            for (method, s) in &self.rows {
                let t = match level {
                    "Trace" => &s.trace,
                    "App" => &s.app,
                    _ => &s.global,
                };
                writeln!(
                    f,
                    "{:<8} {:<7} {:>5.2}  {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
                    level,
                    method,
                    t.average,
                    opt(t.per_type[0]),
                    opt(t.per_type[1]),
                    opt(t.per_type[2]),
                    opt(t.per_type[3]),
                    opt(t.per_type[4]),
                    opt(t.per_type[5]),
                )?;
            }
        }
        Ok(())
    }
}

/// A Table 4 style block: best/median detection rows per method at one AD
/// level.
#[derive(Debug, Clone, Default)]
pub struct DetectionTable {
    /// Level label (e.g. `"AD2"`).
    pub level: String,
    /// `(method, "Best"/"Med", outcome)` triples.
    pub rows: Vec<(String, String, DetectionOutcome)>,
}

impl fmt::Display for DetectionTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {:<7} {:<5} {:>5} {:>5} {:>5}  {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
            self.level, "Method", "TS", "F1", "Prec", "Rcl", "T1", "T2", "T3", "T4", "T5", "T6"
        )?;
        for (method, ts, o) in &self.rows {
            writeln!(
                f,
                "    {:<7} {:<5} {:>5.2} {:>5.2} {:>5.2}  {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
                method,
                ts,
                o.f1,
                o.precision,
                o.recall,
                opt(o.per_type_recall[0]),
                opt(o.per_type_recall[1]),
                opt(o.per_type_recall[2]),
                opt(o.per_type_recall[3]),
                opt(o.per_type_recall[4]),
                opt(o.per_type_recall[5]),
            )?;
        }
        Ok(())
    }
}

/// A Table 5 style ED results table.
#[derive(Debug, Clone, Default)]
pub struct EdTable {
    /// One evaluation block per method.
    pub evaluations: Vec<EdEvaluation>,
}

impl fmt::Display for EdTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for eval in &self.evaluations {
            writeln!(f, "== {} ==", eval.method.label())?;
            writeln!(
                f,
                "{:<5} {:>8} {:>9} {:>11} {:>6} {:>6} {:>10} {:>4}",
                "Type", "Concise", "Stab(ED1)", "Concd(ED2)", "Prec", "Rcl", "Time(s)", "N"
            )?;
            for row in eval.per_type.iter().chain(std::iter::once(&eval.average)) {
                let label = match row.anomaly_type {
                    Some(t) => t.label(),
                    None => "Ave".to_string(),
                };
                writeln!(
                    f,
                    "{:<5} {:>8.2} {:>9.2} {:>11.2} {:>6} {:>6} {:>10.4} {:>4}",
                    label,
                    row.conciseness,
                    row.stability,
                    row.concordance,
                    opt(row.precision),
                    opt(row.recall),
                    row.time_secs,
                    row.n_cases,
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::TypedAuprc;

    fn scores() -> SeparationScores {
        let t =
            TypedAuprc { average: 0.5, per_type: [Some(0.6), None, Some(0.4), None, None, None] };
        SeparationScores { trace: t.clone(), app: t.clone(), global: t }
    }

    #[test]
    fn separation_table_prints_all_levels() {
        let mut table = SeparationTable::default();
        table.push("AE", scores());
        let text = format!("{table}");
        assert!(text.contains("Trace"));
        assert!(text.contains("App"));
        assert!(text.contains("Global"));
        assert!(text.contains("0.60"));
        assert!(text.contains("-"), "missing types print a dash");
    }

    #[test]
    fn detection_table_prints_rows() {
        let o = DetectionOutcome {
            rule: "IQR x2".into(),
            threshold: 1.0,
            f1: 0.5,
            precision: 0.6,
            recall: 0.4,
            per_type_recall: [Some(1.0), None, None, None, None, None],
        };
        let table =
            DetectionTable { level: "AD2".into(), rows: vec![("AE".into(), "Best".into(), o)] };
        let text = format!("{table}");
        assert!(text.contains("AD2"));
        assert!(text.contains("Best"));
        assert!(text.contains("0.50"));
    }
}
