//! Spill-to-disk for evicted serving profiles.
//!
//! The gatekeeper's registry shards are byte-budgeted: when a tenant set
//! outgrows a shard's budget the LRU profiles are evicted. Before this
//! module, eviction destroyed the profile's streaming state — the next
//! touch of that entity saw `404 unknown profile` and the operator had
//! to re-`PUT` a (stale) checkpoint. A [`SpillDir`] instead writes the
//! evicted [`ServingProfile`] to disk as a standard EXCK checkpoint
//! image and transparently restores it on the next touch, so eviction
//! becomes a tier demotion rather than data loss.
//!
//! The EXCK codec stores every `f64` as raw bits ([`crate::checkpoint`]),
//! so a spill → restore cycle is bitwise-lossless: the score stream an
//! entity produces is identical whether or not it was evicted in the
//! middle (pinned by a proptest over arbitrary cut points in
//! `crates/core/tests/checkpoint_roundtrip.rs`).
//!
//! File layout: one file per entity, named by lowercase-hex-encoding the
//! key parts (`{hex(app)}-{hex(entity)}.exck`). Hex encoding makes the
//! name bijective with the key and immune to path traversal or
//! separator collisions, at 2x name length — fine for cache files.
//! Writes go to a `.tmp` sibling and are renamed into place so a crash
//! mid-spill never leaves a torn image where `restore` can find it.
//! Per-key mutual exclusion is inherited from the registry shard lock:
//! a key lives on exactly one shard, and the gatekeeper only spills or
//! restores a key while holding that shard's mutex.

use std::io;
use std::path::{Path, PathBuf};

use crate::checkpoint::ServingProfile;
use exathlon_linalg::codec::ByteWriter;

/// A directory holding spilled profile images.
#[derive(Debug, Clone)]
pub struct SpillDir {
    dir: PathBuf,
}

impl SpillDir {
    /// Open (creating if needed) a spill directory.
    pub fn create(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory backing this spill tier.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// The image path for one entity key.
    pub fn file_path(&self, app: &str, entity: &str) -> PathBuf {
        let mut name = String::with_capacity(2 * (app.len() + entity.len()) + 6);
        push_hex(&mut name, app.as_bytes());
        name.push('-');
        push_hex(&mut name, entity.as_bytes());
        name.push_str(".exck");
        self.dir.join(name)
    }

    /// Write `profile` as an EXCK image, atomically (tmp + rename).
    ///
    /// `scratch` is a reused encode buffer so steady-state spilling does
    /// not reallocate; returns the image size in bytes.
    pub fn spill(
        &self,
        app: &str,
        entity: &str,
        profile: &ServingProfile,
        scratch: &mut ByteWriter,
    ) -> io::Result<usize> {
        scratch.clear();
        profile.encode(scratch);
        let path = self.file_path(app, entity);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, scratch.as_slice())?;
        std::fs::rename(&tmp, &path)?;
        Ok(scratch.len())
    }

    /// Read back a spilled profile and its encoded size in bytes (the
    /// registry charges that size against its budget), or `None` if this
    /// key has no image.
    ///
    /// A present-but-corrupt image is an error (`InvalidData`), not a
    /// silent miss: restoring a torn profile would corrupt the score
    /// stream the spill tier exists to preserve.
    pub fn restore(&self, app: &str, entity: &str) -> io::Result<Option<(ServingProfile, usize)>> {
        let bytes = match std::fs::read(self.file_path(app, entity)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        ServingProfile::from_bytes(&bytes).map(|p| Some((p, bytes.len()))).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad spill image: {e}"))
        })
    }

    /// Delete the image for a key (after restore, or on profile DELETE).
    /// Returns whether an image existed.
    pub fn remove(&self, app: &str, entity: &str) -> io::Result<bool> {
        match std::fs::remove_file(self.file_path(app, entity)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }
}

fn push_hex(out: &mut String, bytes: &[u8]) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_ad::stream::StreamingEwma;

    fn profile() -> ServingProfile {
        ServingProfile::new(StreamingEwma::new(0.3, vec![1.0, 2.0]).into(), 0.5)
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("exathlon-spill-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spill_restore_is_bitwise() {
        let dir = tempdir("roundtrip");
        let spill = SpillDir::create(&dir).unwrap();
        let mut p = profile();
        for i in 0..17 {
            p.ingest(&[i as f64, -0.5 * i as f64]);
        }
        let mut scratch = ByteWriter::new();
        let n = spill.spill("app", "ent", &p, &mut scratch).unwrap();
        assert_eq!(n, p.to_bytes().len());
        let (restored, size) = spill.restore("app", "ent").unwrap().unwrap();
        assert_eq!(size, n);
        assert_eq!(restored.to_bytes(), p.to_bytes(), "EXCK image must be bitwise stable");
        // A second spill reuses the scratch buffer without growing state.
        let n2 = spill.spill("app", "ent", &p, &mut scratch).unwrap();
        assert_eq!(n, n2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_and_removed_images() {
        let dir = tempdir("missing");
        let spill = SpillDir::create(&dir).unwrap();
        assert!(spill.restore("a", "b").unwrap().is_none());
        assert!(!spill.remove("a", "b").unwrap());
        let mut scratch = ByteWriter::new();
        spill.spill("a", "b", &profile(), &mut scratch).unwrap();
        assert!(spill.restore("a", "b").unwrap().is_some());
        assert!(spill.remove("a", "b").unwrap());
        assert!(spill.restore("a", "b").unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hostile_key_parts_stay_inside_the_dir() {
        let dir = tempdir("hostile");
        let spill = SpillDir::create(&dir).unwrap();
        let path = spill.file_path("../../etc", "pass/wd");
        assert!(path.starts_with(&dir), "{path:?}");
        let name = path.file_name().unwrap().to_str().unwrap();
        assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.'), "{name}");
        // Distinct keys that would collide under naive joining do not.
        assert_ne!(spill.file_path("a-b", "c"), spill.file_path("a", "b-c"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_image_is_an_error_not_a_miss() {
        let dir = tempdir("corrupt");
        let spill = SpillDir::create(&dir).unwrap();
        let mut scratch = ByteWriter::new();
        spill.spill("a", "b", &profile(), &mut scratch).unwrap();
        let path = spill.file_path("a", "b");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&path, &bytes).unwrap();
        let err = spill.restore("a", "b").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
