//! Benchmark configuration: learning settings, feature spaces, methods.

use serde::{Deserialize, Serialize};

/// Whose traces a model is trained and evaluated on (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelingSubject {
    /// 1-App learning: train and evaluate on a single application.
    OneApp(usize),
    /// N-App learning: one model across all applications.
    NApp,
}

/// How much of each workload context the training data may peek at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainingConstraint {
    /// Many-Examples: training may include an early (normal) segment of
    /// each disturbed test trace.
    ManyExamples,
    /// Few-Examples: training data is the undisturbed traces only (the
    /// realistic default).
    FewExamples,
}

/// A learning setting LS1–LS4 (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LearningSetting {
    /// 1-App vs N-App.
    pub subject: ModelingSubject,
    /// Many vs Few examples.
    pub constraint: TrainingConstraint,
}

impl LearningSetting {
    /// LS1: 1-App, Many-Examples.
    pub fn ls1(app_id: usize) -> Self {
        Self {
            subject: ModelingSubject::OneApp(app_id),
            constraint: TrainingConstraint::ManyExamples,
        }
    }

    /// LS2: N-App, Many-Examples.
    pub fn ls2() -> Self {
        Self { subject: ModelingSubject::NApp, constraint: TrainingConstraint::ManyExamples }
    }

    /// LS3: 1-App, Few-Examples.
    pub fn ls3(app_id: usize) -> Self {
        Self {
            subject: ModelingSubject::OneApp(app_id),
            constraint: TrainingConstraint::FewExamples,
        }
    }

    /// LS4: N-App, Few-Examples — the paper's default, most realistic
    /// setting.
    pub fn ls4() -> Self {
        Self { subject: ModelingSubject::NApp, constraint: TrainingConstraint::FewExamples }
    }

    /// Label like `"LS4"` (app-qualified for 1-App settings).
    pub fn label(&self) -> String {
        match (self.subject, self.constraint) {
            (ModelingSubject::OneApp(a), TrainingConstraint::ManyExamples) => {
                format!("LS1(app{a})")
            }
            (ModelingSubject::NApp, TrainingConstraint::ManyExamples) => "LS2".into(),
            (ModelingSubject::OneApp(a), TrainingConstraint::FewExamples) => format!("LS3(app{a})"),
            (ModelingSubject::NApp, TrainingConstraint::FewExamples) => "LS4".into(),
        }
    }
}

/// Feature-space choice of the transformation phase (§5 step 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureSpace {
    /// The curated 19-feature set of Appendix D.1 (`FS_custom`).
    Custom,
    /// PCA on the raw base metrics with this many components (`FS_pca`;
    /// the paper uses 19 to match the custom set's size).
    Pca(usize),
}

impl FeatureSpace {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            FeatureSpace::Custom => "FS_custom".into(),
            FeatureSpace::Pca(k) => format!("FS_pca({k})"),
        }
    }
}

/// The AD method to benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdMethod {
    /// LSTM forecaster.
    Lstm,
    /// Dense autoencoder.
    Ae,
    /// Bidirectional GAN.
    BiGan,
    /// Distance-based baseline.
    Knn,
    /// Density-based baseline (local outlier factor).
    Lof,
    /// Isolation forest baseline.
    IForest,
    /// EWMA statistical forecaster baseline.
    Ewma,
    /// MAD point-outlier baseline.
    Mad,
}

impl AdMethod {
    /// The three deep methods of the paper's study.
    pub const PAPER_METHODS: [AdMethod; 3] = [AdMethod::Lstm, AdMethod::Ae, AdMethod::BiGan];

    /// The classical baselines for the ablation/extension study.
    pub const BASELINES: [AdMethod; 5] =
        [AdMethod::Knn, AdMethod::Lof, AdMethod::IForest, AdMethod::Ewma, AdMethod::Mad];

    /// Every method, deep and baseline.
    pub const ALL: [AdMethod; 8] = [
        AdMethod::Lstm,
        AdMethod::Ae,
        AdMethod::BiGan,
        AdMethod::Knn,
        AdMethod::Lof,
        AdMethod::IForest,
        AdMethod::Ewma,
        AdMethod::Mad,
    ];

    /// Display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            AdMethod::Lstm => "LSTM",
            AdMethod::Ae => "AE",
            AdMethod::BiGan => "BiGAN",
            AdMethod::Knn => "kNN",
            AdMethod::Lof => "LOF",
            AdMethod::IForest => "iForest",
            AdMethod::Ewma => "EWMA",
            AdMethod::Mad => "MAD",
        }
    }
}

/// A detector of the streaming replay driver (the online counterpart of
/// [`AdMethod`]). Four of these wrap a batch method's fitted model and
/// reproduce its scores record-by-record; the others are stream-native
/// drift/rarity detectors with no batch twin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamMethod {
    /// Streaming EWMA forecaster (bitwise-equal to the batch EWMA).
    Ewma,
    /// Two-sided CUSUM mean-shift detector over robust z-scores.
    Cusum,
    /// Page-Hinkley drift detector over robust z-scores.
    PageHinkley,
    /// Per-feature histogram rarity threshold.
    Histogram,
    /// Spectral residual saliency over a ring-buffer window.
    SpectralResidual,
    /// Autoencoder scored over a sliding ring-buffer window.
    Ae,
    /// Per-record kNN against the frozen reference set (bitwise-equal).
    Knn,
    /// Per-record LOF against the frozen reference set (bitwise-equal).
    Lof,
}

impl StreamMethod {
    /// Every streaming detector, cheap statistical ones first.
    pub const ALL: [StreamMethod; 8] = [
        StreamMethod::Ewma,
        StreamMethod::Cusum,
        StreamMethod::PageHinkley,
        StreamMethod::Histogram,
        StreamMethod::SpectralResidual,
        StreamMethod::Ae,
        StreamMethod::Knn,
        StreamMethod::Lof,
    ];

    /// Display name for reports and bench labels.
    pub fn label(&self) -> &'static str {
        match self {
            StreamMethod::Ewma => "EWMA",
            StreamMethod::Cusum => "CUSUM",
            StreamMethod::PageHinkley => "PageHinkley",
            StreamMethod::Histogram => "Histogram",
            StreamMethod::SpectralResidual => "SpectralResidual",
            StreamMethod::Ae => "AE",
            StreamMethod::Knn => "kNN",
            StreamMethod::Lof => "LOF",
        }
    }

    /// The batch method whose fitted model this streaming detector
    /// replays (`None` for the stream-native detectors). Shared-method
    /// pairs must derive the same training seed so the equivalence tests
    /// compare identical models.
    pub fn batch_method(&self) -> Option<AdMethod> {
        match self {
            StreamMethod::Ewma => Some(AdMethod::Ewma),
            StreamMethod::Ae => Some(AdMethod::Ae),
            StreamMethod::Knn => Some(AdMethod::Knn),
            StreamMethod::Lof => Some(AdMethod::Lof),
            _ => None,
        }
    }
}

/// A full experiment configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Learning setting (LS1–LS4).
    pub setting: LearningSetting,
    /// Feature space (`FS_custom` / `FS_pca`).
    pub feature_space: FeatureSpace,
    /// Resampling interval `l` in ticks (cardinality factor `α = 1/l`);
    /// 1 disables resampling.
    pub resample_interval: usize,
    /// Fraction of the training records held out as `D²_train` for
    /// threshold selection.
    pub threshold_holdout: f64,
    /// Fraction of each disturbed trace prepended to training under
    /// Many-Examples (clipped before the first anomaly).
    pub peek_fraction: f64,
    /// Experiment RNG seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            setting: LearningSetting::ls4(),
            feature_space: FeatureSpace::Custom,
            resample_interval: 1,
            threshold_holdout: 0.25,
            peek_fraction: 0.2,
            seed: 1234,
        }
    }
}

impl ExperimentConfig {
    /// The cardinality factor `α = 1/l` of the configuration.
    pub fn cardinality_factor(&self) -> f64 {
        1.0 / self.resample_interval.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(LearningSetting::ls1(3).label(), "LS1(app3)");
        assert_eq!(LearningSetting::ls2().label(), "LS2");
        assert_eq!(LearningSetting::ls3(0).label(), "LS3(app0)");
        assert_eq!(LearningSetting::ls4().label(), "LS4");
        assert_eq!(FeatureSpace::Custom.label(), "FS_custom");
        assert_eq!(FeatureSpace::Pca(19).label(), "FS_pca(19)");
        assert_eq!(AdMethod::Ae.label(), "AE");
    }

    #[test]
    fn stream_methods_pair_with_their_batch_twins() {
        // Wrapped methods share the batch label (same fitted model, two
        // drivers); stream-native detectors have no twin.
        for m in StreamMethod::ALL {
            match m.batch_method() {
                Some(b) => assert_eq!(b.label(), m.label(), "{m:?} label drifted"),
                None => assert!(matches!(
                    m,
                    StreamMethod::Cusum
                        | StreamMethod::PageHinkley
                        | StreamMethod::Histogram
                        | StreamMethod::SpectralResidual
                )),
            }
        }
    }

    #[test]
    fn default_config_is_paper_default() {
        let c = ExperimentConfig::default();
        assert_eq!(c.setting, LearningSetting::ls4());
        assert_eq!(c.feature_space, FeatureSpace::Custom);
        assert_eq!(c.cardinality_factor(), 1.0);
    }

    #[test]
    fn cardinality_factor_of_resampling() {
        let c = ExperimentConfig { resample_interval: 15, ..Default::default() };
        assert!((c.cardinality_factor() - 1.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let c = ExperimentConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.setting, c.setting);
        assert_eq!(back.feature_space, c.feature_space);
    }
}
