//! Checkpoint round-trip properties: save → load → score must be
//! **bitwise** for both batch-backed (kNN) and stream-native (CUSUM)
//! detectors, for arbitrary traces and arbitrary snapshot points; every
//! corrupt image — truncated, wrong magic, wrong version, trailing
//! garbage — must be a typed error, never a panic.

use exathlon_ad::knn_ad::{KnnConfig, KnnDetector};
use exathlon_ad::stream::{CusumConfig, CusumDetector, StreamingKnn};
use exathlon_ad::AnomalyScorer;
use exathlon_core::checkpoint::{ServingProfile, VERSION};
use exathlon_linalg::codec::CodecError;
use exathlon_tsdata::scale::DynamicScaler;
use exathlon_tsdata::series::default_names;
use exathlon_tsdata::TimeSeries;
use proptest::prelude::*;

/// A deterministic pseudo-random trace from a few shape parameters, so
/// proptest explores trace space without shipping huge inputs.
fn trace(n: usize, dims: usize, seed: u64) -> TimeSeries {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
    };
    let records: Vec<Vec<f64>> = (0..n).map(|_| (0..dims).map(|_| next()).collect()).collect();
    TimeSeries::from_records(default_names(dims), 0, &records)
}

fn knn_profile(train: &TimeSeries, threshold: f64) -> ServingProfile {
    let mut det = KnnDetector::new(KnnConfig { k: 3, max_references: 64 });
    det.fit(&[train]);
    ServingProfile::new(StreamingKnn::new(det).into(), threshold)
}

fn cusum_profile(train: &TimeSeries, threshold: f64) -> ServingProfile {
    let mut det = CusumDetector::new(CusumConfig::default());
    det.fit(&[train]);
    let mut p = ServingProfile::new(det.into(), threshold);
    p.scaler = Some(DynamicScaler::fit(train, 0.01));
    p
}

proptest! {
    /// kNN (batch-backed): snapshot at an arbitrary point mid-stream,
    /// restore, and the rest of the trace scores bitwise identically.
    #[test]
    fn knn_round_trip_is_bitwise(
        seed in 0u64..1000,
        dims in 1usize..5,
        cut in 0usize..40,
    ) {
        let train = trace(120, dims, seed);
        let mut original = knn_profile(&train, 1.0);
        let test = trace(40, dims, seed.wrapping_add(1));
        for i in 0..cut {
            let _ = original.ingest(test.record(i));
        }
        let bytes = original.to_bytes();
        let mut restored = ServingProfile::from_bytes(&bytes).unwrap();
        for i in cut..test.len() {
            let (a, fa) = original.ingest(test.record(i));
            let (b, fb) = restored.ingest(test.record(i));
            prop_assert_eq!(a.to_bits(), b.to_bits(), "diverged at record {}", i);
            prop_assert_eq!(fa, fb);
        }
        // A second snapshot of the restored twin equals the original's.
        prop_assert_eq!(original.to_bytes(), restored.to_bytes());
    }

    /// CUSUM (stream-native, with a dynamic scaler in front): the
    /// snapshot carries the in-flight CUSUM sums *and* the scaler's
    /// running moments, so continuation is bitwise from any cut point.
    #[test]
    fn cusum_round_trip_is_bitwise(
        seed in 0u64..1000,
        dims in 1usize..5,
        cut in 0usize..40,
    ) {
        let train = trace(150, dims, seed);
        let mut original = cusum_profile(&train, 2.0);
        let test = trace(40, dims, seed.wrapping_add(2));
        for i in 0..cut {
            let _ = original.ingest(test.record(i));
        }
        let bytes = original.to_bytes();
        let mut restored = ServingProfile::from_bytes(&bytes).unwrap();
        for i in cut..test.len() {
            let (a, fa) = original.ingest(test.record(i));
            let (b, fb) = restored.ingest(test.record(i));
            prop_assert_eq!(a.to_bits(), b.to_bits(), "diverged at record {}", i);
            prop_assert_eq!(fa, fb);
        }
        prop_assert_eq!(original.to_bytes(), restored.to_bytes());
    }

    /// Evict → spill-to-disk → lazy restore at an arbitrary cut point
    /// continues the score stream bitwise for both detector families:
    /// spilling is a tier demotion, never data loss. This is the
    /// contract the gatekeeper's spill tier ([`exathlon_core::spill`])
    /// leans on when a byte-budgeted shard evicts a hot profile.
    #[test]
    fn spill_restore_continues_bitwise(
        seed in 0u64..500,
        dims in 1usize..5,
        cut in 0usize..40,
        family in 0u8..2,
    ) {
        use exathlon_core::spill::SpillDir;
        use exathlon_linalg::codec::ByteWriter;

        let dir = std::env::temp_dir()
            .join(format!("exathlon-spill-prop-{}", std::process::id()));
        let spill = SpillDir::create(&dir).unwrap();
        let train = trace(120, dims, seed);
        let mut twin =
            if family == 0 { knn_profile(&train, 1.0) } else { cusum_profile(&train, 2.0) };
        let mut served = twin.clone();
        let test = trace(40, dims, seed.wrapping_add(3));
        for i in 0..cut {
            let (a, _) = twin.ingest(test.record(i));
            let (b, _) = served.ingest(test.record(i));
            prop_assert_eq!(a.to_bits(), b.to_bits(), "pre-spill diverged at {}", i);
        }
        // Evict: write the profile out and drop the resident copy.
        let entity = format!("e-{seed}-{dims}-{cut}-{family}");
        let mut scratch = ByteWriter::new();
        let written = spill.spill("app", &entity, &served, &mut scratch).unwrap();
        drop(served);
        // Next touch: lazy restore, image removed, stream continues.
        let (mut served, size) = spill.restore("app", &entity).unwrap().unwrap();
        prop_assert_eq!(size, written);
        prop_assert!(spill.remove("app", &entity).unwrap());
        for i in cut..test.len() {
            let (a, fa) = twin.ingest(test.record(i));
            let (b, fb) = served.ingest(test.record(i));
            prop_assert_eq!(a.to_bits(), b.to_bits(), "post-restore diverged at {}", i);
            prop_assert_eq!(fa, fb);
        }
        prop_assert_eq!(served.to_bytes(), twin.to_bytes());
    }

    /// Every strict prefix of a valid image is an error, never a panic —
    /// for both detector families.
    #[test]
    fn truncation_never_panics(seed in 0u64..200, family in 0u8..2) {
        let knn = family == 0;
        let train = trace(100, 2, seed);
        let profile =
            if knn { knn_profile(&train, 1.0) } else { cusum_profile(&train, 2.0) };
        let bytes = profile.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(ServingProfile::from_bytes(&bytes[..cut]).is_err(), "cut {}", cut);
        }
    }

    /// Flipping the version byte to any other value is
    /// `UnsupportedVersion(v)` — the forward-compatibility contract.
    #[test]
    fn version_mismatch_is_typed(wrong in 0u8..=255) {
        prop_assume!(wrong != VERSION);
        let train = trace(80, 2, 7);
        let mut bytes = cusum_profile(&train, 2.0).to_bytes();
        bytes[4] = wrong;
        match ServingProfile::from_bytes(&bytes) {
            Err(CodecError::UnsupportedVersion(v)) => prop_assert_eq!(v, wrong),
            other => prop_assert!(false, "expected UnsupportedVersion, got {:?}", other),
        }
    }
}

#[test]
fn truncated_file_and_bad_magic_error_via_file_api() {
    let dir = std::env::temp_dir().join("exathlon_ckpt_it");
    std::fs::create_dir_all(&dir).unwrap();
    let train = trace(80, 2, 3);
    let profile = knn_profile(&train, 1.0);
    let bytes = profile.to_bytes();

    let truncated = dir.join("truncated.exck");
    std::fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
    assert!(matches!(
        ServingProfile::load(&truncated),
        Err(exathlon_core::checkpoint::CheckpointError::Codec(_))
    ));

    let mangled = dir.join("mangled.exck");
    let mut bad = bytes.clone();
    bad[0] ^= 0x55;
    std::fs::write(&mangled, &bad).unwrap();
    assert!(matches!(
        ServingProfile::load(&mangled),
        Err(exathlon_core::checkpoint::CheckpointError::Codec(CodecError::BadMagic))
    ));

    let missing = dir.join("does_not_exist.exck");
    assert!(matches!(
        ServingProfile::load(&missing),
        Err(exathlon_core::checkpoint::CheckpointError::Io(_))
    ));

    std::fs::remove_file(&truncated).unwrap();
    std::fs::remove_file(&mangled).unwrap();
}

/// The restored detector is the *same* model, not a retrained one: its
/// batch scores over a fresh trace match the original's batch twin.
#[test]
fn restored_knn_matches_batch_scorer() {
    let train = trace(120, 3, 11);
    let mut det = KnnDetector::new(KnnConfig { k: 3, max_references: 64 });
    det.fit(&[&train]);
    let batch = det.clone();
    let profile = ServingProfile::new(StreamingKnn::new(det).into(), 1.0);
    let mut restored = ServingProfile::from_bytes(&profile.to_bytes()).unwrap();
    let test = trace(50, 3, 12);
    let want = batch.score_series(&test);
    for (i, rec) in test.records().enumerate() {
        let (got, _) = restored.ingest(rec);
        assert_eq!(got.to_bits(), want[i].to_bits(), "record {i}");
    }
}
