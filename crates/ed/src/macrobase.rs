//! MacroBase's explanation module: risk-ratio screening over discretized
//! features plus an Apriori-style itemset search.
//!
//! Following Bailis et al. (SIGMOD'17) as used by the paper (Appendix
//! D.3): numeric features are first discretized by equal-width binning
//! ("since it is designed for categorical features ... we add an extra
//! step transforming each numerical feature into categorical values (via
//! equal width binning)"). Single items `(feature, bin)` with enough
//! support among the anomalous records and a high enough *risk ratio* are
//! kept, then combined into larger itemsets while support and risk ratio
//! stay above threshold. The highest-risk-ratio itemset becomes the
//! explanation, as a conjunction of bin-interval predicates.

use crate::explanation::{Conjunction, Explanation, Predicate};
use exathlon_tsdata::TimeSeries;

/// Configuration of the MacroBase explainer.
#[derive(Debug, Clone)]
pub struct MacroBaseConfig {
    /// Equal-width bins per feature.
    pub bins: usize,
    /// Minimum support of an itemset among the anomalous records.
    pub min_support: f64,
    /// Minimum risk ratio to keep an itemset.
    pub min_risk_ratio: f64,
    /// Maximum itemset size to search (Apriori depth).
    pub max_itemset: usize,
}

impl Default for MacroBaseConfig {
    fn default() -> Self {
        Self { bins: 6, min_support: 0.5, min_risk_ratio: 2.5, max_itemset: 6 }
    }
}

/// An item: one feature falling into one bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Item {
    feature: usize,
    bin: usize,
}

/// The MacroBase explainer (model-free).
#[derive(Debug, Clone, Default)]
pub struct MacroBaseExplainer {
    config: MacroBaseConfig,
}

impl MacroBaseExplainer {
    /// Create with the given configuration.
    pub fn new(config: MacroBaseConfig) -> Self {
        Self { config }
    }

    /// Explain the separation between `anomaly` and `reference`.
    ///
    /// # Panics
    /// Panics if either series is empty or dimensions differ.
    pub fn explain(&self, anomaly: &TimeSeries, reference: &TimeSeries) -> Explanation {
        let _sp = exathlon_linalg::obs::span("ed", "MacroBase.explain");
        assert!(!anomaly.is_empty() && !reference.is_empty(), "empty ED input");
        assert_eq!(anomaly.dims(), reference.dims(), "ED input dimension mismatch");
        let m = anomaly.dims();
        let cfg = &self.config;

        // Discretize: per-feature equal-width bins over the combined data.
        let mut bounds = Vec::with_capacity(m);
        for j in 0..m {
            let mut col = anomaly.feature_column(j);
            col.extend(reference.feature_column(j));
            let lo = exathlon_linalg::stats::min(&col);
            let hi = exathlon_linalg::stats::max(&col);
            bounds.push(if lo.is_finite() && hi > lo { (lo, hi) } else { (0.0, 1.0) });
        }
        let bin_of = |j: usize, x: f64| -> Option<usize> {
            if x.is_nan() {
                return None;
            }
            let (lo, hi) = bounds[j];
            let frac = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
            Some(((frac * cfg.bins as f64) as usize).min(cfg.bins - 1))
        };
        let itemize = |ts: &TimeSeries| -> Vec<Vec<Item>> {
            ts.records()
                .map(|r| {
                    (0..m)
                        .filter_map(|j| bin_of(j, r[j]).map(|bin| Item { feature: j, bin }))
                        .collect()
                })
                .collect()
        };
        let anom_items = itemize(anomaly);
        let ref_items = itemize(reference);
        let n_anom = anom_items.len() as f64;
        let n_ref = ref_items.len() as f64;

        let support_count = |records: &[Vec<Item>], set: &[Item]| -> f64 {
            records.iter().filter(|items| set.iter().all(|s| items.contains(s))).count() as f64
        };
        // Risk ratio with the standard 0.5 smoothing against empty cells.
        let risk_ratio = |set: &[Item]| -> (f64, f64) {
            let a = support_count(&anom_items, set); // anomalous with item
            let b = support_count(&ref_items, set); // reference with item
            let support = a / n_anom;
            let rr = ((a + 0.5) / (n_anom + 1.0)) / ((b + 0.5) / (n_ref + 1.0));
            (support, rr)
        };

        // Level 1: screen single items.
        let mut level: Vec<(Vec<Item>, f64)> = Vec::new();
        for j in 0..m {
            for bin in 0..cfg.bins {
                let set = vec![Item { feature: j, bin }];
                let (support, rr) = risk_ratio(&set);
                if support >= cfg.min_support && rr >= cfg.min_risk_ratio {
                    level.push((set, rr));
                }
            }
        }
        let singles = level.clone();
        let mut best: Option<(Vec<Item>, f64)> = None;
        let consider = |best: &mut Option<(Vec<Item>, f64)>, cand: &(Vec<Item>, f64)| {
            let better = match best {
                // Prefer larger itemsets (more specific), then higher rr:
                // MacroBase "prefers longer explanations to take care of
                // correlated features".
                Some((set, rr)) => {
                    cand.0.len() > set.len() || (cand.0.len() == set.len() && cand.1 > *rr)
                }
                None => true,
            };
            if better {
                *best = Some(cand.clone());
            }
        };
        for cand in &level {
            consider(&mut best, cand);
        }

        // Apriori growth: extend surviving sets with surviving single items
        // on new features.
        for _ in 2..=cfg.max_itemset {
            let mut next: Vec<(Vec<Item>, f64)> = Vec::new();
            for (set, _) in &level {
                for (single, _) in &singles {
                    let item = single[0];
                    if set.iter().any(|s| s.feature >= item.feature) {
                        continue; // canonical order prevents duplicates
                    }
                    let mut grown = set.clone();
                    grown.push(item);
                    let (support, rr) = risk_ratio(&grown);
                    if support >= cfg.min_support && rr >= cfg.min_risk_ratio {
                        consider(&mut best, &(grown.clone(), rr));
                        next.push((grown, rr));
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            level = next;
        }

        let predicates = match best {
            Some((set, _)) => set
                .iter()
                .map(|item| {
                    let (lo, hi) = bounds[item.feature];
                    let width = (hi - lo) / cfg.bins as f64;
                    Predicate::between(
                        item.feature,
                        lo + item.bin as f64 * width,
                        lo + (item.bin + 1) as f64 * width,
                    )
                })
                .collect(),
            None => Vec::new(),
        };
        Explanation::Formula(Conjunction { predicates })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    fn ts(cols: Vec<Vec<f64>>) -> TimeSeries {
        let n = cols[0].len();
        let records: Vec<Vec<f64>> = (0..n).map(|i| cols.iter().map(|c| c[i]).collect()).collect();
        TimeSeries::from_records(default_names(cols.len()), 0, &records)
    }

    #[test]
    fn finds_the_separating_feature() {
        let anomaly = ts(vec![vec![10.0, 10.5, 11.0, 10.2, 10.8], vec![1.0, 1.5, 1.2, 1.3, 1.1]]);
        let reference = ts(vec![vec![1.0, 1.2, 0.8, 1.1, 0.9], vec![1.1, 1.4, 1.3, 1.2, 1.0]]);
        let e = MacroBaseExplainer::default().explain(&anomaly, &reference);
        assert!(e.features().contains(&0), "feature 0 separates: {e}");
        assert!(!e.features().contains(&1), "feature 1 does not separate: {e}");
    }

    #[test]
    fn explanation_is_predictive() {
        let anomaly = ts(vec![vec![10.0, 10.5, 11.0, 10.2, 10.8]]);
        let reference = ts(vec![vec![1.0, 1.2, 0.8, 1.1, 0.9]]);
        let e = MacroBaseExplainer::default().explain(&anomaly, &reference);
        let c = e.as_predictive().unwrap();
        assert!(c.predict(&[10.4]));
        assert!(!c.predict(&[1.0]));
    }

    #[test]
    fn correlated_features_give_longer_explanations() {
        // Two perfectly correlated separating features: MacroBase keeps
        // both (it prefers longer itemsets).
        let anomaly = ts(vec![vec![10.0, 10.5, 11.0, 10.2], vec![20.0, 21.0, 22.0, 20.4]]);
        let reference = ts(vec![vec![1.0, 1.2, 0.8, 1.1], vec![2.0, 2.4, 1.6, 2.2]]);
        let e = MacroBaseExplainer::default().explain(&anomaly, &reference);
        assert_eq!(e.features(), vec![0, 1], "{e}");
    }

    #[test]
    fn no_separation_gives_empty_explanation() {
        let data = vec![vec![1.0, 2.0, 3.0, 4.0, 1.5, 2.5]];
        let anomaly = ts(data.clone());
        let reference = ts(data);
        let e = MacroBaseExplainer::default().explain(&anomaly, &reference);
        assert_eq!(e.size(), 0);
    }

    #[test]
    fn respects_min_support() {
        // Only 1 of 5 anomalous records in the extreme bin: with
        // min_support 0.5 that bin cannot carry the explanation.
        let anomaly = ts(vec![vec![1.0, 1.1, 0.9, 1.05, 50.0]]);
        let reference = ts(vec![vec![1.0, 1.2, 0.8, 1.1, 0.95]]);
        let e = MacroBaseExplainer::default().explain(&anomaly, &reference);
        if let Some(c) = e.as_predictive() {
            assert!(!c.predict(&[50.0]) || c.predicates.is_empty());
        }
    }

    #[test]
    fn nan_records_do_not_crash() {
        let anomaly = ts(vec![vec![10.0, f64::NAN, 11.0]]);
        let reference = ts(vec![vec![1.0, 1.2, f64::NAN]]);
        let e = MacroBaseExplainer::default().explain(&anomaly, &reference);
        assert!(e.size() <= 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dim_mismatch_panics() {
        let anomaly = ts(vec![vec![1.0]]);
        let reference = ts(vec![vec![1.0], vec![2.0]]);
        let _ = MacroBaseExplainer::default().explain(&anomaly, &reference);
    }
}
