//! EXstream: entropy-based explanation of the separation between an
//! anomalous period and a reference (normal) period.
//!
//! Following Zhang, Diao & Meliou (EDBT'17) as used by the paper
//! (Appendix D.3):
//!
//! 1. For every feature, compute the **single-feature reward**: the class
//!    entropy divided by the *segmentation entropy* of the feature's
//!    sorted values — a feature that separates the two classes into few
//!    pure segments has low segmentation entropy and high reward.
//! 2. Sort rewards descending and cut at the **sharpest leap** (the
//!    non-monotone submodular pruning heuristic): only features before the
//!    biggest relative drop enter the explanation.
//! 3. Emit one threshold predicate per selected feature, oriented by where
//!    the anomalous mass sits relative to the reference.
//!
//! The false-positive-filtering step of the original algorithm is omitted
//! (it requires user-labeled data, Appendix D.3).

use crate::explanation::{Conjunction, Explanation, Predicate};
use exathlon_linalg::stats::{median, pearson};
use exathlon_tsdata::TimeSeries;

/// Configuration of the EXstream explainer.
#[derive(Debug, Clone)]
pub struct ExstreamConfig {
    /// Hard cap on explanation size (the leap heuristic usually selects
    /// fewer).
    pub max_features: usize,
    /// Minimum reward for a feature to be considered at all.
    pub min_reward: f64,
    /// Absolute Pearson correlation above which two selected features are
    /// considered redundant; only the higher-reward one is kept (the
    /// original's correlation-clustering pruning).
    pub correlation_prune: f64,
}

impl Default for ExstreamConfig {
    fn default() -> Self {
        Self { max_features: 8, min_reward: 0.01, correlation_prune: 0.8 }
    }
}

/// The EXstream explainer (model-free).
#[derive(Debug, Clone, Default)]
pub struct ExstreamExplainer {
    config: ExstreamConfig,
}

impl ExstreamExplainer {
    /// Create with the given configuration.
    pub fn new(config: ExstreamConfig) -> Self {
        Self { config }
    }

    /// Explain the separation between `anomaly` and `reference`.
    ///
    /// # Panics
    /// Panics if either series is empty or dimensions differ.
    pub fn explain(&self, anomaly: &TimeSeries, reference: &TimeSeries) -> Explanation {
        let _sp = exathlon_linalg::obs::span("ed", "EXstream.explain");
        assert!(!anomaly.is_empty() && !reference.is_empty(), "empty ED input");
        assert_eq!(anomaly.dims(), reference.dims(), "ED input dimension mismatch");
        let m = anomaly.dims();

        // Step 1: single-feature rewards.
        let mut rewards: Vec<(usize, f64)> = (0..m)
            .map(|j| {
                let a = anomaly.feature_column(j);
                let r = reference.feature_column(j);
                (j, single_feature_reward(&a, &r))
            })
            .filter(|(_, r)| r.is_finite() && *r >= self.config.min_reward)
            .collect();
        rewards.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite rewards"));

        // Step 2a: prune correlated duplicates — among features whose
        // values move together across the combined data, keep only the
        // highest-reward representative (rewards are sorted descending,
        // so a greedy scan keeps the first of each correlated cluster).
        let combined_col = |j: usize| -> Vec<f64> {
            let mut col = anomaly.feature_column(j);
            col.extend(reference.feature_column(j));
            col
        };
        let mut decorrelated: Vec<(usize, f64)> = Vec::new();
        for &(j, r) in &rewards {
            let col_j = combined_col(j);
            let redundant = decorrelated.iter().any(|&(k, _)| {
                pearson(&col_j, &combined_col(k)).abs() >= self.config.correlation_prune
            });
            if !redundant {
                decorrelated.push((j, r));
            }
        }

        // Step 2b: cut at the sharpest leap in the reward sequence.
        let keep = leap_cutoff(&decorrelated.iter().map(|(_, r)| *r).collect::<Vec<_>>())
            .min(self.config.max_features);
        let selected = &decorrelated[..keep.min(decorrelated.len())];

        // Step 3: one threshold predicate per feature.
        let predicates: Vec<Predicate> = selected
            .iter()
            .map(|&(j, _)| {
                threshold_predicate(j, &anomaly.feature_column(j), &reference.feature_column(j))
            })
            .collect();
        Explanation::Formula(Conjunction { predicates })
    }
}

/// The entropy-based single-feature reward: `H(class) / H(segmentation)`.
///
/// Values of both classes are merged and sorted; maximal runs of
/// same-class values form segments. Pure, long segments mean the feature
/// separates the classes well (low segmentation entropy -> high reward).
/// Value ties across classes are penalized by splitting them into
/// singleton mixed segments, as in the original regularization.
pub fn single_feature_reward(anomalous: &[f64], reference: &[f64]) -> f64 {
    let mut merged: Vec<(f64, bool)> = anomalous
        .iter()
        .filter(|v| !v.is_nan())
        .map(|&v| (v, true))
        .chain(reference.iter().filter(|v| !v.is_nan()).map(|&v| (v, false)))
        .collect();
    if merged.is_empty() {
        return 0.0;
    }
    let n = merged.len() as f64;
    merged.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN after filter"));

    // Class entropy.
    let n_anom = merged.iter().filter(|(_, c)| *c).count() as f64;
    let n_ref = n - n_anom;
    if n_anom == 0.0 || n_ref == 0.0 {
        return 0.0;
    }
    let h_class = -(n_anom / n) * (n_anom / n).log2() - (n_ref / n) * (n_ref / n).log2();

    // Segmentation entropy over maximal same-class runs, with ties between
    // classes broken into singletons (the mixed-segment regularization).
    let mut h_seg = 0.0;
    let mut i = 0;
    while i < merged.len() {
        // A tie group spanning both classes becomes singletons.
        let mut j = i + 1;
        while j < merged.len() && merged[j].0 == merged[i].0 {
            j += 1;
        }
        let tie_mixed =
            merged[i..j].iter().any(|(_, c)| *c) && merged[i..j].iter().any(|(_, c)| !*c);
        if tie_mixed {
            for _ in i..j {
                h_seg += (1.0 / n) * n.log2();
            }
            i = j;
            continue;
        }
        // Extend the run across equal-class neighbours (also absorbing the
        // tie group we just validated as pure).
        let class = merged[i].1;
        let mut k = j;
        while k < merged.len() && merged[k].1 == class && {
            // Stop if the next value ties with a different-class value.
            let mut t = k + 1;
            while t < merged.len() && merged[t].0 == merged[k].0 {
                t += 1;
            }
            merged[k..t].iter().all(|(_, c)| *c == class)
        } {
            k += 1;
        }
        let run = (k - i) as f64;
        h_seg += (run / n) * (n / run).log2();
        i = k;
    }
    if h_seg <= 0.0 {
        // A single pure segment would mean only one class is present,
        // already handled; zero here means degenerate input.
        return 0.0;
    }
    h_class / h_seg
}

/// Index of the sharpest relative drop in a descending reward sequence;
/// everything before the drop is kept. The cut is unconditional — as in
/// the original EXstream, which eagerly prunes marginally related
/// features: uniform reward profiles therefore yield minimal (single
/// feature) explanations rather than maximal ones.
pub fn leap_cutoff(sorted_rewards: &[f64]) -> usize {
    if sorted_rewards.len() <= 1 {
        return sorted_rewards.len();
    }
    let mut best_idx = 1;
    let mut best_leap = f64::MIN;
    for i in 0..sorted_rewards.len() - 1 {
        let hi = sorted_rewards[i];
        let lo = sorted_rewards[i + 1];
        if hi <= 0.0 {
            break;
        }
        let leap = (hi - lo) / hi;
        if leap > best_leap {
            best_leap = leap;
            best_idx = i + 1;
        }
    }
    best_idx
}

/// A one-sided threshold predicate separating the anomalous values from
/// the reference values, oriented by their medians; the threshold is the
/// midpoint between the anomalous median-side boundary and the nearest
/// reference mass.
fn threshold_predicate(feature: usize, anomalous: &[f64], reference: &[f64]) -> Predicate {
    let med_a = median(anomalous);
    let med_r = median(reference);
    if med_a >= med_r {
        // Anomalous values sit above: v >= theta.
        let lo_a = percentile(anomalous, 0.1);
        let hi_r = percentile(reference, 0.9);
        let theta = if lo_a > hi_r { (lo_a + hi_r) / 2.0 } else { lo_a.min(med_a) };
        Predicate::at_least(feature, theta)
    } else {
        let hi_a = percentile(anomalous, 0.9);
        let lo_r = percentile(reference, 0.1);
        let theta = if hi_a < lo_r { (hi_a + lo_r) / 2.0 } else { hi_a.max(med_a) };
        Predicate::at_most(feature, theta)
    }
}

fn percentile(xs: &[f64], q: f64) -> f64 {
    exathlon_linalg::stats::quantile(xs, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    fn ts(cols: Vec<Vec<f64>>) -> TimeSeries {
        let n = cols[0].len();
        let records: Vec<Vec<f64>> = (0..n).map(|i| cols.iter().map(|c| c[i]).collect()).collect();
        TimeSeries::from_records(default_names(cols.len()), 0, &records)
    }

    #[test]
    fn reward_high_for_separating_feature() {
        let anom = [10.0, 11.0, 12.0, 10.5];
        let refr = [1.0, 1.2, 0.8, 1.1];
        let mixed_a = [1.0, 10.0, 1.2, 9.0];
        let mixed_r = [1.1, 9.5, 0.9, 10.5];
        assert!(
            single_feature_reward(&anom, &refr) > 2.5 * single_feature_reward(&mixed_a, &mixed_r)
        );
    }

    #[test]
    fn reward_zero_for_single_class() {
        assert_eq!(single_feature_reward(&[1.0, 2.0], &[]), 0.0);
    }

    #[test]
    fn tied_values_penalized() {
        // Identical distributions: heavy tie penalty, low reward.
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0];
        let separating = single_feature_reward(&[10.0, 11.0, 12.0], &[1.0, 2.0, 3.0]);
        assert!(single_feature_reward(&a, &b) < 0.5 * separating);
    }

    #[test]
    fn leap_cutoff_finds_drop() {
        assert_eq!(leap_cutoff(&[1.0, 0.95, 0.1, 0.08]), 2);
        assert_eq!(leap_cutoff(&[1.0, 0.2]), 1);
        // Near-uniform rewards: the sharpest (small) leap still prunes.
        assert_eq!(leap_cutoff(&[0.5, 0.45, 0.42, 0.40]), 1);
        assert_eq!(leap_cutoff(&[]), 0);
        assert_eq!(leap_cutoff(&[1.0]), 1);
    }

    #[test]
    fn explains_with_the_separating_feature() {
        // Feature 0 separates; feature 1 is identical noise.
        let anomaly = ts(vec![vec![10.0, 11.0, 12.0, 10.5], vec![1.0, 2.0, 1.5, 1.8]]);
        let reference = ts(vec![vec![1.0, 1.2, 0.8, 1.1], vec![1.1, 1.9, 1.4, 1.7]]);
        let e = ExstreamExplainer::default().explain(&anomaly, &reference);
        assert_eq!(e.features(), vec![0], "should select only the separating feature");
    }

    #[test]
    fn explanation_is_predictive_in_neighborhood() {
        let anomaly = ts(vec![vec![10.0, 11.0, 12.0, 10.5]]);
        let reference = ts(vec![vec![1.0, 1.2, 0.8, 1.1]]);
        let e = ExstreamExplainer::default().explain(&anomaly, &reference);
        let c = e.as_predictive().expect("formula");
        assert!(c.predict(&[10.8]), "anomalous value should match");
        assert!(!c.predict(&[1.0]), "normal value should not match");
    }

    #[test]
    fn downward_anomaly_gets_at_most_predicate() {
        let anomaly = ts(vec![vec![-5.0, -6.0, -5.5]]);
        let reference = ts(vec![vec![1.0, 1.2, 0.8]]);
        let e = ExstreamExplainer::default().explain(&anomaly, &reference);
        let c = e.as_predictive().unwrap();
        assert!(c.predict(&[-5.5]));
        assert!(!c.predict(&[1.0]));
    }

    #[test]
    fn conciseness_bounded_by_config() {
        // Many weakly separating features; cap at 2.
        let anomaly = ts((0..6).map(|k| vec![5.0 + k as f64, 6.0, 5.5, 5.8]).collect());
        let reference = ts((0..6).map(|k| vec![1.0 + k as f64 * 0.1, 1.2, 0.8, 1.1]).collect());
        let cfg = ExstreamConfig { max_features: 2, min_reward: 0.0, ..Default::default() };
        let e = ExstreamExplainer::new(cfg).explain(&anomaly, &reference);
        assert!(e.size() <= 2);
    }

    #[test]
    #[should_panic(expected = "empty ED input")]
    fn empty_input_panics() {
        let anomaly = TimeSeries::empty(default_names(1));
        let reference = ts(vec![vec![1.0]]);
        let _ = ExstreamExplainer::default().explain(&anomaly, &reference);
    }
}
