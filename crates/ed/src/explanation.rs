//! The abstract explanation form the benchmark evaluates (§4.2).
//!
//! Exathlon "does not pose any restrictions on the form of explanation
//! used. Instead, it takes an abstract view": an explanation is a function
//! of the features, and the benchmark only needs (i) the *feature set*
//! `G_A(F)` it uses and (ii), when the explanation is a logical formula, a
//! point-based 0/1 predictive model.

use std::fmt;

/// An interval predicate on one feature: `lo <= x[feature] <= hi`.
/// Half-open sides are expressed with infinities.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Feature index the predicate tests.
    pub feature: usize,
    /// Lower bound (inclusive; `-inf` for "no lower bound").
    pub lo: f64,
    /// Upper bound (inclusive; `+inf` for "no upper bound").
    pub hi: f64,
}

impl Predicate {
    /// `x[feature] <= hi`.
    pub fn at_most(feature: usize, hi: f64) -> Self {
        Self { feature, lo: f64::NEG_INFINITY, hi }
    }

    /// `x[feature] >= lo`.
    pub fn at_least(feature: usize, lo: f64) -> Self {
        Self { feature, lo, hi: f64::INFINITY }
    }

    /// `lo <= x[feature] <= hi`.
    pub fn between(feature: usize, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "inverted predicate bounds");
        Self { feature, lo, hi }
    }

    /// Evaluate on a record. NaN never satisfies a predicate.
    pub fn matches(&self, record: &[f64]) -> bool {
        let x = record[self.feature];
        !x.is_nan() && x >= self.lo && x <= self.hi
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.lo.is_finite(), self.hi.is_finite()) {
            (false, true) => write!(f, "v_{} <= {:.4}", self.feature, self.hi),
            (true, false) => write!(f, "v_{} >= {:.4}", self.feature, self.lo),
            _ => write!(f, "{:.4} <= v_{} <= {:.4}", self.lo, self.feature, self.hi),
        }
    }
}

/// A conjunction of predicates — the logical-formula explanation form of
/// EXstream and MacroBase. Usable as a point-based predictive model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Conjunction {
    /// The conjuncts; a record is anomalous iff it satisfies all of them.
    pub predicates: Vec<Predicate>,
}

impl Conjunction {
    /// Predict a single record: 1 (anomalous) iff all predicates match.
    /// An empty conjunction predicts 0 (nothing to assert).
    pub fn predict(&self, record: &[f64]) -> bool {
        !self.predicates.is_empty() && self.predicates.iter().all(|p| p.matches(record))
    }

    /// Distinct features used, ascending.
    pub fn features(&self) -> Vec<usize> {
        let mut f: Vec<usize> = self.predicates.iter().map(|p| p.feature).collect();
        f.sort_unstable();
        f.dedup();
        f
    }
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.predicates.is_empty() {
            return write!(f, "(true)");
        }
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// One term of a feature-importance explanation (LIME): a `(feature, lag)`
/// cell within the explained window and its learned weight.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportanceTerm {
    /// Feature index.
    pub feature: usize,
    /// Time offset within the window, counted backwards (`lag = 0` is the
    /// last record of the window — LIME's `t-0`).
    pub lag: usize,
    /// Signed importance weight (linear-model coefficient).
    pub weight: f64,
    /// Human-readable condition the weight applies to, e.g.
    /// `"v_1_t-39 <= -0.20"`.
    pub condition: String,
}

/// An explanation in one of the supported forms.
#[derive(Debug, Clone, PartialEq)]
pub enum Explanation {
    /// Logical formula (EXstream, MacroBase): predictive.
    Formula(Conjunction),
    /// Feature-importance scores (LIME): not predictive (§6.3: "the
    /// coefficients of the returned features ... cannot be applied for
    /// prediction").
    Importance(Vec<ImportanceTerm>),
}

impl Explanation {
    /// The extraction function `G_A`: the distinct features used by the
    /// explanation (non-zero coefficients / predicate features), ascending.
    pub fn features(&self) -> Vec<usize> {
        match self {
            Explanation::Formula(c) => c.features(),
            Explanation::Importance(terms) => {
                let mut f: Vec<usize> =
                    terms.iter().filter(|t| t.weight != 0.0).map(|t| t.feature).collect();
                f.sort_unstable();
                f.dedup();
                f
            }
        }
    }

    /// Explanation size `|F|` = number of distinct features (§4.2
    /// conciseness).
    pub fn size(&self) -> usize {
        self.features().len()
    }

    /// The point-based predictive model, when the form supports one.
    pub fn as_predictive(&self) -> Option<&Conjunction> {
        match self {
            Explanation::Formula(c) => Some(c),
            Explanation::Importance(_) => None,
        }
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Explanation::Formula(c) => write!(f, "{c}"),
            Explanation::Importance(terms) => {
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "{}: {:.3}", t.condition, t.weight)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_matching() {
        let p = Predicate::at_most(1, 5.0);
        assert!(p.matches(&[0.0, 5.0]));
        assert!(!p.matches(&[0.0, 5.1]));
        let q = Predicate::between(0, -1.0, 1.0);
        assert!(q.matches(&[0.0, 99.0]));
        assert!(!q.matches(&[2.0, 0.0]));
    }

    #[test]
    fn nan_never_matches() {
        let p = Predicate::at_least(0, -10.0);
        assert!(!p.matches(&[f64::NAN]));
    }

    #[test]
    fn conjunction_predicts_all_must_hold() {
        let c = Conjunction {
            predicates: vec![Predicate::at_most(0, 1.0), Predicate::at_least(1, 2.0)],
        };
        assert!(c.predict(&[0.5, 3.0]));
        assert!(!c.predict(&[1.5, 3.0]));
        assert!(!c.predict(&[0.5, 1.0]));
    }

    #[test]
    fn empty_conjunction_predicts_false() {
        assert!(!Conjunction::default().predict(&[1.0]));
    }

    #[test]
    fn features_deduplicate() {
        let c = Conjunction {
            predicates: vec![
                Predicate::at_most(3, 1.0),
                Predicate::at_least(3, 0.0),
                Predicate::at_most(1, 2.0),
            ],
        };
        assert_eq!(c.features(), vec![1, 3]);
        let e = Explanation::Formula(c);
        assert_eq!(e.size(), 2);
    }

    #[test]
    fn importance_features_skip_zero_weights() {
        let e = Explanation::Importance(vec![
            ImportanceTerm { feature: 2, lag: 0, weight: 0.5, condition: "a".into() },
            ImportanceTerm { feature: 4, lag: 1, weight: 0.0, condition: "b".into() },
            ImportanceTerm { feature: 2, lag: 3, weight: -0.1, condition: "c".into() },
        ]);
        assert_eq!(e.features(), vec![2]);
        assert!(e.as_predictive().is_none());
    }

    #[test]
    fn formula_is_predictive() {
        let e = Explanation::Formula(Conjunction { predicates: vec![Predicate::at_most(0, 0.0)] });
        assert!(e.as_predictive().is_some());
    }

    #[test]
    fn display_formats() {
        let p = Predicate::at_most(5, -0.012);
        assert_eq!(format!("{p}"), "v_5 <= -0.0120");
        let c = Conjunction {
            predicates: vec![Predicate::at_most(5, -0.012), Predicate::at_least(0, 1.0)],
        };
        assert!(format!("{c}").contains(" AND "));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_bounds_panic() {
        let _ = Predicate::between(0, 2.0, 1.0);
    }
}
