//! LIME in its recurrent-tabular form (Appendix D.3).
//!
//! LIME explains why the AD model assigns a high outlier score to an
//! anomalous window: it samples perturbations of the window, queries the
//! model on each, weighs samples by proximity, fits a weighted
//! [Lasso](crate::lasso), and reports the `k = 5` cells — `(feature,
//! lag)` pairs inside the window — with the largest absolute
//! coefficients. Model-dependent and *not* usable for prediction ("the
//! coefficients ... cannot be applied for prediction", §6.3).

use crate::explanation::{Explanation, ImportanceTerm};
use crate::lasso::weighted_lasso;
use exathlon_tsdata::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the LIME explainer.
#[derive(Debug, Clone)]
pub struct LimeConfig {
    /// Number of perturbation samples.
    pub n_samples: usize,
    /// Number of features to report (the paper sets `k = 5`).
    pub k: usize,
    /// Perturbation noise scale relative to each cell's standard deviation
    /// across the window (floored for constant cells).
    pub noise_scale: f64,
    /// Proximity-kernel width (on normalized distances).
    pub kernel_width: f64,
    /// Lasso penalty.
    pub lambda: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LimeConfig {
    fn default() -> Self {
        Self { n_samples: 300, k: 5, noise_scale: 1.0, kernel_width: 0.75, lambda: 0.01, seed: 41 }
    }
}

/// The LIME explainer (model-dependent).
#[derive(Debug, Clone, Default)]
pub struct LimeExplainer {
    config: LimeConfig,
}

impl LimeExplainer {
    /// Create with the given configuration.
    pub fn new(config: LimeConfig) -> Self {
        Self { config }
    }

    /// Explain the model's outlier score on `window`. `score_fn` maps a
    /// flattened window (record-major, `window.len() * window.dims()`
    /// values) to the model's outlier score.
    ///
    /// # Panics
    /// Panics if the window is empty.
    pub fn explain(&self, window: &TimeSeries, score_fn: &dyn Fn(&[f64]) -> f64) -> Explanation {
        let _sp = exathlon_linalg::obs::span("ed", "LIME.explain");
        assert!(!window.is_empty(), "empty LIME window");
        let cfg = &self.config;
        let t_len = window.len();
        let m = window.dims();
        let d = t_len * m;

        // Flatten the window; impute NaN cells with 0 for perturbation.
        let mut x0 = Vec::with_capacity(d);
        for rec in window.records() {
            x0.extend(rec.iter().map(|v| if v.is_nan() { 0.0 } else { *v }));
        }

        // Per-cell noise scales: std of the feature across the window.
        let mut scales = vec![0.0; d];
        for j in 0..m {
            let col = window.feature_column(j);
            let std = exathlon_linalg::stats::std_dev(&col).max(0.05);
            for t in 0..t_len {
                scales[t * m + j] = std * cfg.noise_scale;
            }
        }

        // Perturbation sampling.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut samples: Vec<Vec<f64>> = Vec::with_capacity(cfg.n_samples + 1);
        samples.push(x0.clone());
        for _ in 0..cfg.n_samples {
            let s: Vec<f64> =
                x0.iter().zip(&scales).map(|(&v, &sc)| v + rng.gen_range(-1.5..1.5) * sc).collect();
            samples.push(s);
        }

        // Model responses and proximity-kernel weights.
        let responses: Vec<f64> = samples.iter().map(|s| score_fn(s)).collect();
        let weights: Vec<f64> = samples
            .iter()
            .map(|s| {
                let d2: f64 = s
                    .iter()
                    .zip(&x0)
                    .zip(&scales)
                    .map(|((a, b), &sc)| {
                        let z = (a - b) / sc.max(1e-9);
                        z * z
                    })
                    .sum::<f64>()
                    / d as f64;
                (-d2 / (cfg.kernel_width * cfg.kernel_width)).exp()
            })
            .collect();

        let fit = weighted_lasso(&samples, &responses, &weights, cfg.lambda, 300, 1e-8);

        // Top-k cells by |coefficient|; non-finite coefficients from a
        // degenerate fit are dropped rather than aborting the run.
        let order = crate::lasso::top_coefficients(&fit.coefficients, cfg.k);

        let terms: Vec<ImportanceTerm> = order
            .iter()
            .map(|&cell| {
                let t = cell / m;
                let feature = cell % m;
                let lag = t_len - 1 - t;
                let value = x0[cell];
                let weight = fit.coefficients[cell];
                // Human-readable condition in the LIME output style: the
                // direction that increases the outlier score.
                let condition = if weight >= 0.0 {
                    format!("v_{feature}_t-{lag} > {value:.2}")
                } else {
                    format!("v_{feature}_t-{lag} <= {value:.2}")
                };
                ImportanceTerm { feature, lag, weight, condition }
            })
            .collect();
        Explanation::Importance(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    fn window(records: &[Vec<f64>]) -> TimeSeries {
        TimeSeries::from_records(default_names(records[0].len()), 0, records)
    }

    fn quick() -> LimeExplainer {
        LimeExplainer::new(LimeConfig { n_samples: 200, ..LimeConfig::default() })
    }

    #[test]
    fn identifies_the_influential_feature() {
        // Model score depends only on feature 0 of the last record.
        let w = window(&[vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]]);
        let m = w.dims();
        let score = move |flat: &[f64]| flat[2 * m] * 10.0; // feature 0 at t=2
        let e = quick().explain(&w, &score);
        let feats = e.features();
        assert!(feats.contains(&0), "feature 0 must be found: {e}");
        if let Explanation::Importance(terms) = &e {
            assert_eq!(terms[0].feature, 0);
            assert_eq!(terms[0].lag, 0, "influential cell is the last record");
            assert!(terms[0].weight > 0.0);
        }
    }

    #[test]
    fn reports_at_most_k_terms() {
        let w = window(&[vec![1.0; 8], vec![2.0; 8], vec![3.0; 8]]);
        let score = |flat: &[f64]| flat.iter().sum::<f64>();
        let e = quick().explain(&w, &score);
        if let Explanation::Importance(terms) = &e {
            assert!(terms.len() <= 5);
        } else {
            panic!("LIME must return importance terms");
        }
    }

    #[test]
    fn not_predictive() {
        let w = window(&[vec![1.0]]);
        let e = quick().explain(&w, &|f: &[f64]| f[0]);
        assert!(e.as_predictive().is_none());
    }

    #[test]
    fn constant_model_yields_no_features() {
        let w = window(&[vec![1.0, 2.0], vec![1.5, 2.5]]);
        let e = quick().explain(&w, &|_: &[f64]| 7.0);
        assert_eq!(e.size(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let w = window(&[vec![1.0, 2.0], vec![1.5, 2.5]]);
        let score = |flat: &[f64]| flat[0] * 2.0 - flat[3];
        let a = quick().explain(&w, &score);
        let b = quick().explain(&w, &score);
        assert_eq!(a, b);
    }

    #[test]
    fn negative_influence_reported_with_sign() {
        let w = window(&[vec![1.0, 5.0]]);
        let score = |flat: &[f64]| -3.0 * flat[1];
        let e = quick().explain(&w, &score);
        if let Explanation::Importance(terms) = &e {
            let t = terms.iter().find(|t| t.feature == 1).expect("feature 1 found");
            assert!(t.weight < 0.0);
            assert!(t.condition.contains("<="));
        }
    }

    #[test]
    #[should_panic(expected = "empty LIME window")]
    fn empty_window_panics() {
        let w = TimeSeries::empty(default_names(2));
        let _ = quick().explain(&w, &|_: &[f64]| 0.0);
    }
}
