//! KernelSHAP — the Shapley-value feature-importance explainer the paper
//! lists among the instance-level ED forms (§2: "SHAP scores ... are also
//! instance-level explanations that assign a numerical score to each
//! feature"). Model-dependent, like LIME, and likewise not predictive
//! (§4.2: importance scores cannot be replayed as a 0/1 model).
//!
//! This is the kernel-regression estimator of Lundberg & Lee: sample
//! coalitions `z ∈ {0,1}^d`, evaluate the model with absent cells replaced
//! by a background value, weight by the Shapley kernel
//! `π(|z|) = (d-1) / (C(d,|z|) · |z| · (d-|z|))`, and solve the weighted
//! least-squares problem whose coefficients are the Shapley values.

use crate::explanation::{Explanation, ImportanceTerm};
use crate::lasso::weighted_lasso;
use exathlon_tsdata::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the KernelSHAP explainer.
#[derive(Debug, Clone)]
pub struct ShapConfig {
    /// Number of sampled coalitions.
    pub n_samples: usize,
    /// Number of features to report.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ShapConfig {
    fn default() -> Self {
        Self { n_samples: 400, k: 5, seed: 47 }
    }
}

/// The KernelSHAP explainer (model-dependent).
#[derive(Debug, Clone, Default)]
pub struct ShapExplainer {
    config: ShapConfig,
}

impl ShapExplainer {
    /// Create with the given configuration.
    pub fn new(config: ShapConfig) -> Self {
        Self { config }
    }

    /// Explain the model's output on `window` against a `background`
    /// window (typically the mean of the preceding normal records).
    /// `score_fn` maps a flattened window to the model's outlier score.
    ///
    /// # Panics
    /// Panics if the window is empty or shapes disagree.
    pub fn explain(
        &self,
        window: &TimeSeries,
        background: &[f64],
        score_fn: &dyn Fn(&[f64]) -> f64,
    ) -> Explanation {
        let _sp = exathlon_linalg::obs::span("ed", "SHAP.explain");
        assert!(!window.is_empty(), "empty SHAP window");
        let t_len = window.len();
        let m = window.dims();
        let d = t_len * m;
        assert_eq!(background.len(), d, "background length must match the window");

        let mut x0 = Vec::with_capacity(d);
        for rec in window.records() {
            x0.extend(rec.iter().map(|v| if v.is_nan() { 0.0 } else { *v }));
        }

        // Shapley kernel weight for coalition size s (0 < s < d).
        let kernel = |s: usize| -> f64 {
            let s_f = s as f64;
            let d_f = d as f64;
            // (d-1) / (C(d, s) * s * (d-s)); compute C(d, s) in log space
            // to avoid overflow for large windows.
            let mut log_c = 0.0;
            for i in 0..s {
                log_c += ((d - i) as f64).ln() - ((i + 1) as f64).ln();
            }
            ((d_f - 1.0).ln() - log_c - s_f.ln() - (d_f - s_f).ln()).exp()
        };

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut masks: Vec<Vec<f64>> = Vec::with_capacity(self.config.n_samples);
        let mut responses = Vec::with_capacity(self.config.n_samples);
        let mut weights = Vec::with_capacity(self.config.n_samples);
        for _ in 0..self.config.n_samples {
            // Sample coalition size uniformly in 1..d, then the members.
            let s = rng.gen_range(1..d.max(2));
            let mut mask = vec![0.0; d];
            let mut present = 0;
            while present < s {
                let j = rng.gen_range(0..d);
                if mask[j] == 0.0 {
                    mask[j] = 1.0;
                    present += 1;
                }
            }
            let input: Vec<f64> =
                (0..d).map(|j| if mask[j] == 1.0 { x0[j] } else { background[j] }).collect();
            responses.push(score_fn(&input));
            weights.push(kernel(s).max(1e-12));
            masks.push(mask);
        }
        // Anchor the regression with the two exact endpoints, heavily
        // weighted (the infinite-weight constraints of the exact method).
        masks.push(vec![1.0; d]);
        responses.push(score_fn(&x0));
        weights.push(1e4);
        masks.push(vec![0.0; d]);
        responses.push(score_fn(background));
        weights.push(1e4);

        let fit = weighted_lasso(&masks, &responses, &weights, 0.0, 2000, 1e-12);

        let order = crate::lasso::top_coefficients(&fit.coefficients, self.config.k);

        let terms: Vec<ImportanceTerm> = order
            .iter()
            .map(|&cell| {
                let t = cell / m;
                let feature = cell % m;
                let lag = t_len - 1 - t;
                let weight = fit.coefficients[cell];
                ImportanceTerm {
                    feature,
                    lag,
                    weight,
                    condition: format!("phi(v_{feature}_t-{lag})"),
                }
            })
            .collect();
        Explanation::Importance(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    fn window(records: &[Vec<f64>]) -> TimeSeries {
        TimeSeries::from_records(default_names(records[0].len()), 0, records)
    }

    #[test]
    fn additive_model_recovers_exact_shapley_values() {
        // f(x) = 3 x0 + 1 x1: Shapley value of cell j is w_j (x_j - bg_j).
        let w = window(&[vec![2.0, 4.0]]);
        let background = vec![0.0, 0.0];
        let score = |flat: &[f64]| 3.0 * flat[0] + 1.0 * flat[1];
        let e = ShapExplainer::default().explain(&w, &background, &score);
        let Explanation::Importance(terms) = &e else { panic!("importance expected") };
        let phi0 = terms.iter().find(|t| t.feature == 0).expect("feature 0").weight;
        let phi1 = terms.iter().find(|t| t.feature == 1).expect("feature 1").weight;
        assert!((phi0 - 6.0).abs() < 0.5, "phi0 = {phi0}, want 3 * 2 = 6");
        assert!((phi1 - 4.0).abs() < 0.5, "phi1 = {phi1}, want 1 * 4 = 4");
    }

    #[test]
    fn attributions_sum_to_model_delta() {
        // Completeness axiom: sum(phi) ≈ f(x) - f(background).
        let w = window(&[vec![1.0, 2.0, 3.0]]);
        let background = vec![0.5, 0.5, 0.5];
        let score = |flat: &[f64]| 2.0 * flat[0] - flat[1] + 0.5 * flat[2];
        let cfg = ShapConfig { k: 3, ..ShapConfig::default() };
        let e = ShapExplainer::new(cfg).explain(&w, &background, &score);
        let Explanation::Importance(terms) = &e else { panic!("importance expected") };
        let total: f64 = terms.iter().map(|t| t.weight).sum();
        let delta = score(&[1.0, 2.0, 3.0]) - score(&background);
        assert!((total - delta).abs() < 0.3, "sum(phi) = {total}, delta = {delta}");
    }

    #[test]
    fn irrelevant_feature_gets_no_attribution() {
        let w = window(&[vec![1.0, 9.0]]);
        let background = vec![0.0, 0.0];
        let score = |flat: &[f64]| 5.0 * flat[0];
        let e = ShapExplainer::default().explain(&w, &background, &score);
        let Explanation::Importance(terms) = &e else { panic!("importance expected") };
        let phi1 = terms.iter().find(|t| t.feature == 1).map(|t| t.weight).unwrap_or(0.0);
        assert!(phi1.abs() < 0.3, "irrelevant feature attributed {phi1}");
    }

    #[test]
    fn not_predictive_and_deterministic() {
        let w = window(&[vec![1.0]]);
        let bg = vec![0.0];
        let run = || ShapExplainer::default().explain(&w, &bg, &|f: &[f64]| f[0]);
        assert!(run().as_predictive().is_none());
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "background length")]
    fn background_mismatch_panics() {
        let w = window(&[vec![1.0, 2.0]]);
        let _ = ShapExplainer::default().explain(&w, &[0.0], &|_: &[f64]| 0.0);
    }
}
