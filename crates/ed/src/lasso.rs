//! Weighted Lasso regression via cyclic coordinate descent.
//!
//! LIME fits a sparse, locally-weighted linear model around the instance
//! being explained; the original uses LARS/Lasso. This is the standard
//! coordinate-descent solver with per-sample weights and soft
//! thresholding, on standardized features.
//!
//! The design matrix is held feature-major (each feature one contiguous
//! row), so the per-feature correlation and residual-update sweeps
//! stream memory through the kernel layer's [`dot`]/[`axpy`] primitives
//! instead of striding by the feature count.

use exathlon_linalg::kernel::{axpy, dot};
use exathlon_linalg::Matrix;

/// Result of a Lasso fit.
#[derive(Debug, Clone)]
pub struct LassoFit {
    /// Intercept in the original feature scale.
    pub intercept: f64,
    /// Coefficients in the original feature scale (sparse: many zeros).
    pub coefficients: Vec<f64>,
    /// Number of coordinate-descent sweeps performed.
    pub iterations: usize,
}

impl LassoFit {
    /// Predict one sample.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.intercept + x.iter().zip(&self.coefficients).map(|(a, b)| a * b).sum::<f64>()
    }

    /// Indices of non-zero coefficients.
    pub fn support(&self) -> Vec<usize> {
        self.coefficients.iter().enumerate().filter(|(_, &c)| c != 0.0).map(|(i, _)| i).collect()
    }
}

/// Fit `y ~ X` with sample weights and an L1 penalty `lambda` (on
/// standardized features). `x` is row-major `n x d`.
///
/// # Panics
/// Panics on shape mismatches or empty input.
pub fn weighted_lasso(
    x: &[Vec<f64>],
    y: &[f64],
    weights: &[f64],
    lambda: f64,
    max_iters: usize,
    tol: f64,
) -> LassoFit {
    let n = x.len();
    assert!(n > 0, "empty design matrix");
    let d = x[0].len();
    assert_eq!(y.len(), n, "y length mismatch");
    assert_eq!(weights.len(), n, "weights length mismatch");
    assert!(x.iter().all(|r| r.len() == d), "ragged design matrix");

    let w_total: f64 = weights.iter().sum();
    assert!(w_total > 0.0, "weights sum to zero");

    // Feature-major design (`d × n`): feature `j` is the contiguous row
    // `xf.row(j)`. Every sweep below walks samples in the same ascending
    // order as the row-major loops it replaces, so results are bitwise
    // unchanged.
    let mut xf = Matrix::zeros(d, n);
    for (i, r) in x.iter().enumerate() {
        for (j, &v) in r.iter().enumerate() {
            xf[(j, i)] = v;
        }
    }

    // Weighted standardization of features and centering of y.
    let mut means = vec![0.0; d];
    let mut stds = vec![0.0; d];
    for j in 0..d {
        let row = xf.row(j);
        let mu = dot(row, weights) / w_total;
        let var: f64 =
            row.iter().zip(weights).map(|(&v, &w)| w * (v - mu) * (v - mu)).sum::<f64>() / w_total;
        means[j] = mu;
        stds[j] = var.sqrt().max(1e-12);
    }
    let y_mean: f64 = y.iter().zip(weights).map(|(&v, &w)| w * v).sum::<f64>() / w_total;

    // Standardize in place (owned copy; LIME problems are small).
    for j in 0..d {
        let (m, s) = (means[j], stds[j]);
        for v in xf.row_mut(j) {
            *v = (*v - m) / s;
        }
    }
    let yc: Vec<f64> = y.iter().map(|&v| v - y_mean).collect();

    let mut beta = vec![0.0; d];
    let mut residual = yc.clone();
    // Per-feature weighted squared norms.
    let norms: Vec<f64> = (0..d)
        .map(|j| xf.row(j).iter().zip(weights).map(|(&v, &w)| w * v * v).sum::<f64>() / w_total)
        .collect();

    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let mut max_delta = 0.0_f64;
        for j in 0..d {
            if norms[j] <= 1e-14 {
                continue;
            }
            let xj = xf.row(j);
            let bj = beta[j];
            // rho = weighted correlation of feature j with the residual
            // (adding back its own contribution).
            let rho: f64 = xj
                .iter()
                .zip(&residual)
                .zip(weights)
                .map(|((&v, &res), &w)| w * v * (res + v * bj))
                .sum::<f64>()
                / w_total;
            let new_beta = soft_threshold(rho, lambda) / norms[j];
            let delta = new_beta - bj;
            if delta != 0.0 {
                // `res += (−delta)·xj` — IEEE negation is exact, so this
                // matches the old `res -= xj·delta` bit for bit.
                axpy(-delta, xj, &mut residual);
                beta[j] = new_beta;
                max_delta = max_delta.max(delta.abs());
            }
        }
        if max_delta < tol {
            break;
        }
    }

    // De-standardize.
    let coefficients: Vec<f64> = beta.iter().zip(&stds).map(|(b, s)| b / s).collect();
    let intercept = y_mean - coefficients.iter().zip(&means).map(|(c, m)| c * m).sum::<f64>();
    LassoFit { intercept, coefficients, iterations }
}

/// Indices of the `k` largest coefficients by absolute value, descending
/// (ties broken by index for determinism). Zero and non-finite
/// coefficients are excluded: a NaN produced by a degenerate Lasso fit
/// drops out of the explanation instead of poisoning the ranking —
/// `partial_cmp().expect(...)` here used to abort the whole run.
pub fn top_coefficients(coefficients: &[f64], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..coefficients.len())
        .filter(|&j| coefficients[j] != 0.0 && coefficients[j].is_finite())
        .collect();
    order.sort_by(|&a, &b| {
        coefficients[b].abs().total_cmp(&coefficients[a].abs()).then_with(|| a.cmp(&b))
    });
    order.truncate(k);
    order
}

fn soft_threshold(x: f64, lambda: f64) -> f64 {
    if x > lambda {
        x - lambda
    } else if x < -lambda {
        x + lambda
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 3 x0 - 2 x1 + 0 * x2 + 1
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = (i as f64 * 0.713).sin();
                let b = (i as f64 * 1.311).cos();
                let c = (i as f64 * 0.237).sin() * (i as f64 * 0.119).cos();
                vec![a, b, c]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 1.0).collect();
        (x, y)
    }

    #[test]
    fn recovers_linear_model_with_tiny_lambda() {
        let (x, y) = design(100);
        let w = vec![1.0; 100];
        let fit = weighted_lasso(&x, &y, &w, 1e-6, 500, 1e-10);
        assert!((fit.coefficients[0] - 3.0).abs() < 0.01, "{:?}", fit.coefficients);
        assert!((fit.coefficients[1] + 2.0).abs() < 0.01);
        assert!(fit.coefficients[2].abs() < 0.01);
        assert!((fit.intercept - 1.0).abs() < 0.01);
    }

    #[test]
    fn large_lambda_zeroes_everything() {
        let (x, y) = design(100);
        let w = vec![1.0; 100];
        let fit = weighted_lasso(&x, &y, &w, 100.0, 200, 1e-10);
        assert!(fit.coefficients.iter().all(|&c| c == 0.0));
        assert!(fit.support().is_empty());
    }

    #[test]
    fn moderate_lambda_sparsifies() {
        let (x, y) = design(100);
        let w = vec![1.0; 100];
        let fit = weighted_lasso(&x, &y, &w, 0.5, 500, 1e-10);
        // The irrelevant feature must be dropped; the strong ones survive.
        assert_eq!(fit.coefficients[2], 0.0);
        assert!(fit.coefficients[0] > 1.0);
        assert_eq!(fit.support(), vec![0, 1]);
    }

    #[test]
    fn weights_focus_the_fit() {
        // Two regimes: y = x for the first half, y = -x for the second.
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![(i as f64 * 0.17).sin()]).collect();
        let y: Vec<f64> =
            x.iter().enumerate().map(|(i, r)| if i < 50 { r[0] } else { -r[0] }).collect();
        let w_first: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 0.001 }).collect();
        let fit = weighted_lasso(&x, &y, &w_first, 1e-4, 500, 1e-10);
        assert!(fit.coefficients[0] > 0.8, "weighted fit should follow the first regime");
    }

    #[test]
    fn predict_matches_training_data() {
        let (x, y) = design(60);
        let w = vec![1.0; 60];
        let fit = weighted_lasso(&x, &y, &w, 1e-6, 500, 1e-10);
        for (r, &target) in x.iter().zip(&y) {
            assert!((fit.predict(r) - target).abs() < 0.05);
        }
    }

    #[test]
    #[should_panic(expected = "empty design")]
    fn empty_input_panics() {
        let _ = weighted_lasso(&[], &[], &[], 0.1, 10, 1e-6);
    }

    #[test]
    fn top_coefficients_ranks_by_magnitude() {
        let c = [0.5, -3.0, 0.0, 2.0, -0.1];
        assert_eq!(top_coefficients(&c, 3), vec![1, 3, 0]);
        assert_eq!(top_coefficients(&c, 10), vec![1, 3, 0, 4]);
        assert_eq!(top_coefficients(&c, 0), Vec::<usize>::new());
    }

    #[test]
    fn top_coefficients_survives_non_finite() {
        // Regression: ranking with the old `partial_cmp(..).expect(
        // "finite coefficients")` comparator panics on this input; the
        // hardened version drops the NaN/inf entries and keeps going.
        let c = [f64::NAN, 1.0, f64::INFINITY, -2.0, f64::NEG_INFINITY];
        assert_eq!(top_coefficients(&c, 5), vec![3, 1]);
        let all_bad = [f64::NAN, f64::NAN];
        assert!(top_coefficients(&all_bad, 2).is_empty());
    }

    #[test]
    fn top_coefficients_breaks_ties_by_index() {
        let c = [1.0, -1.0, 1.0];
        assert_eq!(top_coefficients(&c, 3), vec![0, 1, 2]);
    }
}
