//! # exathlon-ed
//!
//! The explanation-discovery methods of the Exathlon experimental study
//! (§6.3, Appendix D.3), re-implemented from scratch:
//!
//! * [`exstream`] — **EXstream** (Zhang, Diao, Meliou; EDBT'17):
//!   entropy-based single-feature rewards, reward-leap feature selection,
//!   and threshold predicates. Model-free. The false-positive-filtering
//!   step is intentionally omitted, as in the paper's implementation
//!   (it needs user-labeled data the benchmark does not provide).
//! * [`macrobase`] — **MacroBase**'s ED module (Bailis et al.; SIGMOD'17):
//!   equal-width binning of numeric features, risk-ratio screening, and an
//!   Apriori-style search over itemsets. Model-free.
//! * [`shap`] — **KernelSHAP** (Lundberg & Lee; NIPS'17): Shapley-value
//!   attributions via the kernel-regression estimator, with the exact
//!   endpoint constraints. Model-dependent, not predictive.
//! * [`lime`] — **LIME** (Ribeiro et al.; KDD'16) in its recurrent-tabular
//!   form: perturbation sampling around the anomalous window, a proximity
//!   kernel, and a weighted [Lasso](lasso) (k = 5) producing per-(feature,
//!   lag) importance scores. Model-dependent: explains the AD model's
//!   outlier score.
//!
//! All methods produce an [`explanation::Explanation`], the abstract form
//! the benchmark's ED metrics consume: a feature set via the extraction
//! function `G_A`, and — for logical explanations — a point-based
//! predictive model (§4.2).

pub mod explanation;
pub mod exstream;
pub mod lasso;
pub mod lime;
pub mod macrobase;
pub mod shap;

pub use explanation::{Conjunction, Explanation, Predicate};
pub use exstream::ExstreamExplainer;
pub use lime::LimeExplainer;
pub use macrobase::MacroBaseExplainer;
pub use shap::ShapExplainer;
