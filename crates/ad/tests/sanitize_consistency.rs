//! Regression suite for the single non-finite sanitization rule kNN and
//! LOF share through [`exathlon_linalg::kernel::DistanceKernel`]: NaN
//! and ±∞ features are zeroed once at fit/query time, identically in the
//! batched Gram-trick path and the retained scalar (naive-mode) path.
//!
//! `EXATHLON_NAIVE_KERNELS` is process-global, so every toggle happens
//! under one lock and is restored before the test returns.

use exathlon_ad::knn_ad::{KnnConfig, KnnDetector};
use exathlon_ad::lof::{LofConfig, LofDetector};
use exathlon_ad::AnomalyScorer;
use exathlon_linalg::kernel::NAIVE_KERNELS_ENV;
use exathlon_tsdata::series::default_names;
use exathlon_tsdata::TimeSeries;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Take the env lock AND clear any inherited `EXATHLON_NAIVE_KERNELS`
/// (CI sets it for some jobs) so the "batched" measurements below really
/// take the batched path.
fn lock_batched_mode() -> std::sync::MutexGuard<'static, ()> {
    let guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::remove_var(NAIVE_KERNELS_ENV);
    guard
}

fn with_naive_kernels<R>(body: impl FnOnce() -> R) -> R {
    std::env::set_var(NAIVE_KERNELS_ENV, "1");
    let result = body();
    std::env::remove_var(NAIVE_KERNELS_ENV);
    result
}

/// Deterministic 3-feature training trace with NaN and ±∞ planted in
/// every feature column.
fn messy_train() -> TimeSeries {
    let mut records: Vec<Vec<f64>> = (0..120)
        .map(|i| {
            let t = i as f64;
            vec![(t * 0.37).sin() * 4.0, (t * 0.11).cos() * 2.0 + 0.5, (t % 13.0) * 0.3]
        })
        .collect();
    records[7][0] = f64::NAN;
    records[19][1] = f64::INFINITY;
    records[31][2] = f64::NEG_INFINITY;
    records[53][0] = f64::INFINITY;
    records[71][1] = f64::NAN;
    TimeSeries::from_records(default_names(3), 0, &records)
}

/// Queries mixing clean rows, partially non-finite rows, and rows that
/// are non-finite in every feature.
fn messy_queries() -> TimeSeries {
    TimeSeries::from_records(
        default_names(3),
        0,
        &[
            vec![0.1, 0.7, 1.2],
            vec![f64::NAN, 0.7, 1.2],
            vec![0.1, f64::INFINITY, 1.2],
            vec![0.1, 0.7, f64::NEG_INFINITY],
            vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY],
            vec![9.0, -4.0, 6.5],
        ],
    )
}

fn assert_close(batched: &[f64], naive: &[f64], context: &str) {
    assert_eq!(batched.len(), naive.len(), "{context}: score count differs");
    for (i, (b, n)) in batched.iter().zip(naive).enumerate() {
        assert!(b.is_finite(), "{context}: batched score {i} not finite: {b}");
        assert!(n.is_finite(), "{context}: naive score {i} not finite: {n}");
        let tol = 1e-8 * n.abs().max(1.0);
        assert!((b - n).abs() <= tol, "{context}: score {i} diverged: batched {b} vs naive {n}");
    }
}

/// Both detectors score NaN/∞-laden data identically (within the kernel
/// tolerance) through the batched path and the retained scalar path —
/// one sanitization rule, two distance implementations.
#[test]
fn knn_and_lof_batched_matches_naive_on_messy_data() {
    let _guard = lock_batched_mode();
    let train = messy_train();
    let queries = messy_queries();

    let mut knn = KnnDetector::new(KnnConfig { k: 4, max_references: 500 });
    knn.fit(&[&train]);
    let mut lof = LofDetector::new(LofConfig { k: 6, max_references: 500 });
    lof.fit(&[&train]);

    let knn_batched = knn.score_series(&queries);
    let lof_batched = lof.score_series(&queries);
    let (knn_naive, lof_naive) =
        with_naive_kernels(|| (knn.score_series(&queries), lof.score_series(&queries)));

    assert_close(&knn_batched, &knn_naive, "kNN");
    assert_close(&lof_batched, &lof_naive, "LOF");
}

/// The sanitization rule is "non-finite → 0.0", so a query row that is
/// non-finite in every feature must score bitwise identically to the
/// all-zero row — for both detectors.
#[test]
fn fully_non_finite_row_scores_as_zero_row() {
    let _guard = lock_batched_mode();
    let train = messy_train();
    let probe = TimeSeries::from_records(
        default_names(3),
        0,
        &[vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY], vec![0.0, 0.0, 0.0]],
    );

    let mut knn = KnnDetector::new(KnnConfig { k: 4, max_references: 500 });
    knn.fit(&[&train]);
    let mut lof = LofDetector::new(LofConfig { k: 6, max_references: 500 });
    lof.fit(&[&train]);

    for (name, scores) in [("kNN", knn.score_series(&probe)), ("LOF", lof.score_series(&probe))] {
        assert_eq!(
            scores[0].to_bits(),
            scores[1].to_bits(),
            "{name}: sanitized row {} vs zero row {}",
            scores[0],
            scores[1]
        );
    }
}

/// Fit-time sanitization also goes through the shared rule: training on
/// non-finite-laden data and scoring clean data stays finite and agrees
/// across both distance paths.
#[test]
fn messy_training_data_scores_clean_queries_consistently() {
    let _guard = lock_batched_mode();
    let train = messy_train();
    let clean = TimeSeries::from_records(
        default_names(3),
        0,
        &(0..40).map(|i| vec![i as f64 * 0.1, 1.0 - i as f64 * 0.05, 2.0]).collect::<Vec<_>>(),
    );

    let mut knn = KnnDetector::new(KnnConfig { k: 3, max_references: 64 });
    knn.fit(&[&train]);
    let mut lof = LofDetector::new(LofConfig { k: 5, max_references: 64 });
    lof.fit(&[&train]);

    let knn_batched = knn.score_series(&clean);
    let lof_batched = lof.score_series(&clean);
    let (knn_naive, lof_naive) =
        with_naive_kernels(|| (knn.score_series(&clean), lof.score_series(&clean)));

    assert_close(&knn_batched, &knn_naive, "kNN (messy fit)");
    assert_close(&lof_batched, &lof_naive, "LOF (messy fit)");
}
