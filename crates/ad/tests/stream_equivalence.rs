//! Property pins for the streaming engine's equivalence contract:
//! replaying any trace record-by-record through a `StreamingDetector`
//! reproduces the batch scorer.
//!
//! * EWMA / kNN / LOF: **bitwise** — the streaming path runs identical
//!   arithmetic against identical fitted state (the distance kernel pins
//!   each query row independent of batch shape),
//! * CUSUM / Page-Hinkley / Histogram / Spectral Residual: **bitwise** —
//!   their `score_series` *is* a replay of a fresh clone, so batch and
//!   stream are one recurrence with two drivers, and replay must also be
//!   insensitive to whatever state an earlier trace left behind,
//! * AE: **window-shifted** — the streaming score at tick `t` equals the
//!   batch score of the window ending at `t` (a stream cannot average in
//!   future windows); warm-up ticks are zero.
//!
//! Traces carry injected NaN gaps, so the pins also cover the missing-
//! value semantics the statistical-baseline fixes established.

use exathlon_ad::ae_ad::{AeConfig, AutoencoderDetector};
use exathlon_ad::ewma::{EwmaConfig, EwmaDetector};
use exathlon_ad::knn_ad::{KnnConfig, KnnDetector};
use exathlon_ad::lof::{LofConfig, LofDetector};
use exathlon_ad::stream::{
    replay, CusumConfig, CusumDetector, HistogramConfig, HistogramDetector, PageHinkleyConfig,
    PageHinkleyDetector, SpectralResidualConfig, SpectralResidualDetector, StreamingAe,
    StreamingDetector, StreamingKnn, StreamingLof,
};
use exathlon_ad::AnomalyScorer;
use exathlon_tsdata::series::default_names;
use exathlon_tsdata::window::WindowSet;
use exathlon_tsdata::TimeSeries;
use proptest::prelude::*;

/// Random traces: `dims` features, length in `min_len..=max_len`, each
/// value NaN with probability 1/10 when `with_nan` (the missing metrics
/// of inactive executors).
fn trace(
    dims: usize,
    min_len: usize,
    max_len: usize,
    with_nan: bool,
) -> impl Strategy<Value = TimeSeries> {
    let value = (0..10u8, -50.0..50.0f64)
        .prop_map(move |(gap, v)| if with_nan && gap == 0 { f64::NAN } else { v });
    proptest::collection::vec(proptest::collection::vec(value, dims), min_len..=max_len)
        .prop_map(move |records| TimeSeries::from_records(default_names(dims), 0, &records))
}

fn assert_bitwise(batch: &[f64], streamed: &[f64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(batch.len(), streamed.len());
    for (i, (b, s)) in batch.iter().zip(streamed).enumerate() {
        prop_assert_eq!(b.to_bits(), s.to_bits(), "record {}: batch {} vs stream {}", i, b, s);
    }
    Ok(())
}

/// Replay after polluting the detector with a different trace — catches
/// state that `reset` fails to clear.
fn polluted_replay(
    det: &mut dyn StreamingDetector,
    pollution: &TimeSeries,
    test: &TimeSeries,
) -> Vec<f64> {
    let _ = replay(det, pollution);
    replay(det, test)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ewma_replay_matches_batch_bitwise(
        train in trace(3, 30, 120, true),
        test in trace(3, 1, 120, true),
        pollution in trace(3, 1, 30, true),
    ) {
        let mut det = EwmaDetector::new(EwmaConfig::default());
        det.fit(&[&train]);
        let batch = det.score_series(&test);
        assert_bitwise(&batch, &replay(&mut det.streaming(), &test))?;
        assert_bitwise(&batch, &polluted_replay(&mut det.streaming(), &pollution, &test))?;
    }

    #[test]
    fn knn_replay_matches_batch_bitwise(
        train in trace(3, 20, 100, true),
        test in trace(3, 1, 100, true),
    ) {
        let mut det = KnnDetector::new(KnnConfig { k: 3, max_references: 64 });
        det.fit(&[&train]);
        let batch = det.score_series(&test);
        assert_bitwise(&batch, &replay(&mut StreamingKnn::new(det), &test))?;
    }

    #[test]
    fn lof_replay_matches_batch_bitwise(
        train in trace(3, 20, 100, true),
        test in trace(3, 1, 100, true),
    ) {
        let mut det = LofDetector::new(LofConfig { k: 5, max_references: 64 });
        det.fit(&[&train]);
        let batch = det.score_series(&test);
        assert_bitwise(&batch, &replay(&mut StreamingLof::new(det), &test))?;
    }

    #[test]
    fn cusum_replay_matches_batch_bitwise(
        train in trace(2, 20, 100, true),
        test in trace(2, 1, 100, true),
        pollution in trace(2, 1, 30, true),
    ) {
        let mut det = CusumDetector::new(CusumConfig::default());
        det.fit(&[&train]);
        let batch = det.score_series(&test);
        assert_bitwise(&batch, &replay(&mut det, &test))?;
        assert_bitwise(&batch, &polluted_replay(&mut det, &pollution, &test))?;
    }

    #[test]
    fn page_hinkley_replay_matches_batch_bitwise(
        train in trace(2, 20, 100, true),
        test in trace(2, 1, 100, true),
        pollution in trace(2, 1, 30, true),
    ) {
        let mut det = PageHinkleyDetector::new(PageHinkleyConfig::default());
        det.fit(&[&train]);
        let batch = det.score_series(&test);
        assert_bitwise(&batch, &replay(&mut det, &test))?;
        assert_bitwise(&batch, &polluted_replay(&mut det, &pollution, &test))?;
    }

    #[test]
    fn histogram_replay_matches_batch_bitwise(
        train in trace(2, 20, 100, true),
        test in trace(2, 1, 100, true),
    ) {
        let mut det = HistogramDetector::new(HistogramConfig { bins: 16 });
        det.fit(&[&train]);
        let batch = det.score_series(&test);
        assert_bitwise(&batch, &replay(&mut det, &test))?;
    }

    #[test]
    fn spectral_residual_replay_matches_batch_bitwise(
        test in trace(2, 1, 100, true),
        pollution in trace(2, 1, 40, true),
    ) {
        let mut det = SpectralResidualDetector::new(SpectralResidualConfig {
            window: 16,
            saliency_avg: 3,
        });
        let batch = det.score_series(&test);
        assert_bitwise(&batch, &replay(&mut det, &test))?;
        assert_bitwise(&batch, &polluted_replay(&mut det, &pollution, &test))?;
    }
}

proptest! {
    // AE cases train a (tiny) network each, so fewer of them.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn ae_stream_scores_the_window_ending_at_each_tick(
        train in trace(2, 40, 80, false),
        test in trace(2, 1, 60, false),
    ) {
        let cfg = AeConfig {
            window: 4,
            hidden: vec![8],
            code: 2,
            epochs: 2,
            batch_size: 16,
            max_windows: 200,
            seed: 5,
            ..AeConfig::default()
        };
        let w = cfg.window;
        let mut det = AutoencoderDetector::new(cfg);
        det.fit(&[&train]);
        let expected: Vec<f64> = if test.len() >= w {
            let windows = WindowSet::from_series(&test, w, 1);
            (0..windows.len()).map(|i| det.window_score(windows.window(i))).collect()
        } else {
            Vec::new()
        };
        let streamed = replay(&mut StreamingAe::new(det, test.dims()), &test);
        prop_assert_eq!(streamed.len(), test.len());
        for (t, &s) in streamed.iter().enumerate() {
            if t < w - 1 {
                prop_assert_eq!(s, 0.0, "tick {} is pre-warmup", t);
            } else {
                let b = expected[t - (w - 1)];
                prop_assert_eq!(b.to_bits(), s.to_bits(), "tick {}: batch {} vs stream {}", t, b, s);
            }
        }
    }
}
