//! Distance-based baseline: mean Euclidean distance to the `k` nearest
//! training records.
//!
//! Included as the classical comparator the paper's related-work section
//! positions the DL methods against (distance-based methods "are very
//! sensitive to data dimensions"), and used by the ablation benches.

use crate::scorer::AnomalyScorer;
use exathlon_linalg::codec::{ByteReader, ByteWriter, CodecError};
use exathlon_linalg::kernel::{self, DistanceKernel};
use exathlon_tsdata::window::{materialized_windows_mode, WindowSet};
use exathlon_tsdata::TimeSeries;

/// Configuration of the kNN scorer.
#[derive(Debug, Clone)]
pub struct KnnConfig {
    /// Number of neighbours to average over.
    pub k: usize,
    /// Cap on the stored reference set (uniform subsample of the training
    /// records).
    pub max_references: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        Self { k: 5, max_references: 2000 }
    }
}

/// The kNN anomaly detector, backed by the shared batched distance
/// kernel: references are sanitized once at fit time (non-finite
/// features zeroed by [`kernel::sanitize_rows`] — the single rule kNN
/// and LOF now share), and scoring evaluates query chunks through the
/// Gram-trick GEMM instead of per-pair scalar loops.
#[derive(Debug, Clone)]
pub struct KnnDetector {
    config: KnnConfig,
    kernel: DistanceKernel,
}

impl KnnDetector {
    /// Create an (unfitted) detector.
    pub fn new(config: KnnConfig) -> Self {
        assert!(config.k > 0, "k must be positive");
        Self { config, kernel: DistanceKernel::fit::<Vec<f64>>(&[]) }
    }

    /// Mean-of-`k`-nearest score for one row of squared distances.
    fn score_row(k: usize, mut dists: Vec<f64>) -> f64 {
        // total_cmp: squared distances of finite features can still
        // overflow to ∞; ordering must never panic.
        dists.select_nth_unstable_by(k - 1, f64::total_cmp);
        let mean: f64 = dists[..k].iter().sum::<f64>() / k as f64;
        mean.sqrt()
    }

    /// Score one record against the frozen reference set — the streaming
    /// engine's per-tick path. Bitwise equal to the record's batch score:
    /// the kernel pins each query row's distances independent of the
    /// query-batch shape, and the k-selection afterwards is shared.
    ///
    /// # Panics
    /// Panics if the detector is unfitted.
    pub fn score_record(&self, record: &[f64]) -> f64 {
        assert!(!self.kernel.is_empty(), "detector not fitted");
        let k = self.config.k.min(self.kernel.len());
        let dists = if kernel::naive_distance_mode() {
            self.kernel.naive_sq_distances_to(record)
        } else {
            self.kernel.sq_distances(&[record]).row(0).to_vec()
        };
        Self::score_row(k, dists)
    }

    /// Serialize the fitted detector (config + reference kernel) into `w`.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.config.k);
        w.put_usize(self.config.max_references);
        self.kernel.encode(w);
    }

    /// Decode a detector written by [`KnnDetector::encode`]. The kernel
    /// rederives its transposed/norm caches from the references with the
    /// fit-time arithmetic, so restored scores are bitwise identical.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let k = r.get_usize()?;
        if k == 0 {
            return Err(CodecError::Corrupt("kNN k must be positive"));
        }
        let max_references = r.get_usize()?;
        let kernel = DistanceKernel::decode(r)?;
        Ok(Self { config: KnnConfig { k, max_references }, kernel })
    }
}

impl AnomalyScorer for KnnDetector {
    fn name(&self) -> &'static str {
        "kNN"
    }

    fn fit(&mut self, train: &[&TimeSeries]) {
        let _sp = exathlon_linalg::obs::span("train", "kNN.fit");
        assert!(!train.is_empty(), "no training traces");
        if materialized_windows_mode() {
            // Pre-dataplane path: clone every record, then clone the
            // subsample survivors.
            let mut all: Vec<Vec<f64>> = Vec::new();
            for ts in train {
                all.extend(ts.records().map(|r| r.to_vec()));
            }
            assert!(!all.is_empty(), "empty training traces");
            let refs = exathlon_tsdata::sample::stride_subsample(&all, self.config.max_references);
            let bytes = ((all.len() + refs.len()) * train[0].dims() * 8) as u64;
            exathlon_linalg::obs::counter("dataplane.materialized_bytes", bytes);
            self.kernel = DistanceKernel::fit(&refs);
        } else {
            // Size-1 windows are record views: the kernel fits straight
            // from borrowed slices, zero copies before its own sanitize.
            let mut refs = WindowSet::pooled(train, 1);
            assert!(!refs.is_empty(), "empty training traces");
            refs.subsample(self.config.max_references);
            let views: Vec<&[f64]> = (0..refs.len()).map(|i| refs.window(i)).collect();
            self.kernel = DistanceKernel::fit(&views);
        }
    }

    fn score_series(&self, ts: &TimeSeries) -> Vec<f64> {
        let _sp = exathlon_linalg::obs::span("score", "kNN.series");
        assert!(!self.kernel.is_empty(), "detector not fitted");
        let k = self.config.k.min(self.kernel.len());
        // Fixed-size query chunks scored independently on the shared
        // worker pool (chunk boundaries never depend on the thread
        // count, so output is identical for any `EXATHLON_THREADS`).
        // This is the O(records × references) hot loop of the P2
        // inference bench, evaluated as one Gram-trick GEMM per chunk.
        let records: Vec<&[f64]> = ts.records().collect();
        let chunks: Vec<&[&[f64]]> = records.chunks(kernel::DIST_CHUNK).collect();
        let scored: Vec<Vec<f64>> = exathlon_linalg::par::par_map(&chunks, |chunk| {
            if kernel::naive_distance_mode() {
                chunk
                    .iter()
                    .map(|r| Self::score_row(k, self.kernel.naive_sq_distances_to(r)))
                    .collect()
            } else {
                let dists = self.kernel.sq_distances(chunk);
                (0..dists.rows()).map(|i| Self::score_row(k, dists.row(i).to_vec())).collect()
            }
        });
        scored.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    fn ts(records: &[Vec<f64>]) -> TimeSeries {
        TimeSeries::from_records(default_names(records[0].len()), 0, records)
    }

    #[test]
    fn far_points_score_higher() {
        let train = ts(&(0..100).map(|i| vec![(i % 10) as f64 * 0.1]).collect::<Vec<_>>());
        let mut det = KnnDetector::new(KnnConfig { k: 3, max_references: 1000 });
        det.fit(&[&train]);
        let test = ts(&[vec![0.5], vec![10.0]]);
        let scores = det.score_series(&test);
        assert!(scores[1] > scores[0] * 5.0, "{scores:?}");
    }

    #[test]
    fn training_points_score_near_zero() {
        let train = ts(&(0..50).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let mut det = KnnDetector::new(KnnConfig { k: 1, max_references: 1000 });
        det.fit(&[&train]);
        let scores = det.score_series(&ts(&[vec![25.0]]));
        assert!(scores[0] < 1e-9);
    }

    #[test]
    fn reference_subsampling_caps_memory() {
        let train = ts(&(0..500).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let mut det = KnnDetector::new(KnnConfig { k: 2, max_references: 50 });
        det.fit(&[&train]);
        assert_eq!(det.kernel.len(), 50);
    }

    #[test]
    fn nan_values_treated_as_zero() {
        let train = ts(&[vec![0.0], vec![0.1]]);
        let mut det = KnnDetector::new(KnnConfig::default());
        det.fit(&[&train]);
        let scores = det.score_series(&ts(&[vec![f64::NAN]]));
        assert!(scores[0].is_finite());
    }

    /// Regression test: ∞ features used to survive sanitization (only
    /// NaN was zeroed), so an ∞ in both a reference and a query produced
    /// ∞ − ∞ = NaN distances and the selection comparator panicked.
    #[test]
    fn infinite_values_do_not_panic() {
        let train = ts(&[vec![f64::INFINITY, 1.0], vec![f64::NEG_INFINITY, 2.0], vec![0.0, 3.0]]);
        let mut det = KnnDetector::new(KnnConfig { k: 2, max_references: 1000 });
        det.fit(&[&train]);
        let scores = det.score_series(&ts(&[
            vec![f64::INFINITY, 1.0],
            vec![f64::NEG_INFINITY, 2.5],
            vec![f64::NAN, 3.0],
        ]));
        assert!(scores.iter().all(|s| s.is_finite()), "{scores:?}");
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_panics() {
        let det = KnnDetector::new(KnnConfig::default());
        let _ = det.score_series(&ts(&[vec![1.0]]));
    }
}
