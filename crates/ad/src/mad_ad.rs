//! MAD point-outlier baseline.
//!
//! MacroBase's AD module "uses simple statistical methods like MAD, which
//! is known to be suitable only for detecting simple point outliers" (§2).
//! This detector reproduces it: per-feature robust z-scores against the
//! training median/MAD, aggregated by the maximum across features.

use crate::scorer::AnomalyScorer;
use exathlon_linalg::stats::{mad, median};
use exathlon_tsdata::TimeSeries;

/// The MAD point-outlier detector (no configuration: it is the simplest
/// possible baseline by design).
#[derive(Debug, Clone, Default)]
pub struct MadDetector {
    medians: Vec<f64>,
    mads: Vec<f64>,
}

impl MadDetector {
    /// Create an (unfitted) detector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AnomalyScorer for MadDetector {
    fn name(&self) -> &'static str {
        "MAD"
    }

    fn fit(&mut self, train: &[&TimeSeries]) {
        let _sp = exathlon_linalg::obs::span("train", "MAD.fit");
        assert!(!train.is_empty(), "no training traces");
        let dims = train[0].dims();
        let mut medians = Vec::with_capacity(dims);
        let mut mads = Vec::with_capacity(dims);
        for j in 0..dims {
            let mut col = Vec::new();
            for ts in train {
                col.extend(ts.feature_column(j));
            }
            medians.push(median(&col));
            mads.push(mad(&col));
        }
        self.medians = medians;
        self.mads = mads;
    }

    fn score_series(&self, ts: &TimeSeries) -> Vec<f64> {
        let _sp = exathlon_linalg::obs::span("score", "MAD.series");
        assert!(!self.medians.is_empty(), "detector not fitted");
        assert_eq!(ts.dims(), self.medians.len(), "dimension mismatch");
        ts.records()
            .map(|r| {
                r.iter()
                    .zip(self.medians.iter().zip(&self.mads))
                    .filter(|(x, _)| !x.is_nan())
                    .map(|(&x, (&med, &m))| {
                        if m > 1e-12 {
                            (x - med).abs() / m
                        } else {
                            // A constant training feature: any deviation is
                            // infinitely surprising; use the raw deviation.
                            (x - med).abs()
                        }
                    })
                    .fold(0.0, f64::max)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    fn ts(records: &[Vec<f64>]) -> TimeSeries {
        TimeSeries::from_records(default_names(records[0].len()), 0, records)
    }

    #[test]
    fn point_outlier_scores_high() {
        let train =
            ts(&(0..100).map(|i| vec![(i % 7) as f64, 5.0 + (i % 3) as f64]).collect::<Vec<_>>());
        let mut det = MadDetector::new();
        det.fit(&[&train]);
        let scores = det.score_series(&ts(&[vec![3.0, 6.0], vec![100.0, 6.0]]));
        assert!(scores[1] > 10.0 * scores[0].max(0.1), "{scores:?}");
    }

    #[test]
    fn max_aggregation_over_features() {
        let train = ts(&(0..50).map(|i| vec![i as f64 % 5.0, i as f64 % 5.0]).collect::<Vec<_>>());
        let mut det = MadDetector::new();
        det.fit(&[&train]);
        // Outlier only in the second feature still triggers.
        let scores = det.score_series(&ts(&[vec![2.0, 50.0]]));
        assert!(scores[0] > 5.0);
    }

    #[test]
    fn nan_features_ignored() {
        let train = ts(&(0..50).map(|i| vec![i as f64 % 5.0]).collect::<Vec<_>>());
        let mut det = MadDetector::new();
        det.fit(&[&train]);
        let scores = det.score_series(&ts(&[vec![f64::NAN]]));
        assert_eq!(scores[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_panics() {
        let det = MadDetector::new();
        let _ = det.score_series(&ts(&[vec![1.0]]));
    }
}
