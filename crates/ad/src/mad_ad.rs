//! MAD point-outlier baseline.
//!
//! MacroBase's AD module "uses simple statistical methods like MAD, which
//! is known to be suitable only for detecting simple point outliers" (§2).
//! This detector reproduces it: per-feature robust z-scores against the
//! training median/MAD, aggregated by the maximum across features.

use crate::scorer::AnomalyScorer;
use exathlon_linalg::stats::{mad, median};
use exathlon_tsdata::TimeSeries;

/// The MAD point-outlier detector (no configuration: it is the simplest
/// possible baseline by design).
#[derive(Debug, Clone, Default)]
pub struct MadDetector {
    medians: Vec<f64>,
    mads: Vec<f64>,
}

impl MadDetector {
    /// Create an (unfitted) detector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AnomalyScorer for MadDetector {
    fn name(&self) -> &'static str {
        "MAD"
    }

    fn fit(&mut self, train: &[&TimeSeries]) {
        let _sp = exathlon_linalg::obs::span("train", "MAD.fit");
        assert!(!train.is_empty(), "no training traces");
        let dims = train[0].dims();
        let mut medians = Vec::with_capacity(dims);
        let mut mads = Vec::with_capacity(dims);
        for j in 0..dims {
            let mut col = Vec::new();
            for ts in train {
                col.extend(ts.feature_column(j));
            }
            medians.push(median(&col));
            // Floor the scale (as EWMA floors `error_scale`) so every
            // feature contributes a *MAD-normalized* z-score to the max.
            // The previous revision special-cased MAD ≈ 0 by feeding the
            // raw absolute deviation into the max alongside normalized
            // z-scores — one constant feature then dominated (or was
            // dominated) on the wrong scale. `f64::max` also turns an
            // all-NaN column's NaN MAD into the floor.
            mads.push(mad(&col).max(1e-6));
        }
        self.medians = medians;
        self.mads = mads;
    }

    fn score_series(&self, ts: &TimeSeries) -> Vec<f64> {
        let _sp = exathlon_linalg::obs::span("score", "MAD.series");
        assert!(!self.medians.is_empty(), "detector not fitted");
        assert_eq!(ts.dims(), self.medians.len(), "dimension mismatch");
        ts.records()
            .map(|r| {
                r.iter()
                    .zip(self.medians.iter().zip(&self.mads))
                    .filter(|(x, _)| !x.is_nan())
                    .map(|(&x, (&med, &m))| (x - med).abs() / m)
                    .fold(0.0, f64::max)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    fn ts(records: &[Vec<f64>]) -> TimeSeries {
        TimeSeries::from_records(default_names(records[0].len()), 0, records)
    }

    #[test]
    fn point_outlier_scores_high() {
        let train =
            ts(&(0..100).map(|i| vec![(i % 7) as f64, 5.0 + (i % 3) as f64]).collect::<Vec<_>>());
        let mut det = MadDetector::new();
        det.fit(&[&train]);
        let scores = det.score_series(&ts(&[vec![3.0, 6.0], vec![100.0, 6.0]]));
        assert!(scores[1] > 10.0 * scores[0].max(0.1), "{scores:?}");
    }

    #[test]
    fn max_aggregation_over_features() {
        let train = ts(&(0..50).map(|i| vec![i as f64 % 5.0, i as f64 % 5.0]).collect::<Vec<_>>());
        let mut det = MadDetector::new();
        det.fit(&[&train]);
        // Outlier only in the second feature still triggers.
        let scores = det.score_series(&ts(&[vec![2.0, 50.0]]));
        assert!(scores[0] > 5.0);
    }

    /// Regression test: a constant training feature used to contribute its
    /// *raw* absolute deviation to the max, on a different scale from the
    /// MAD-normalized z-scores of the other features. A clear break of the
    /// constant (deviation 3.0 from a feature that never moved) was then
    /// outranked by a moderate z = 10 wiggle of a noisy feature; with the
    /// floored scale all features are commensurate robust z-scores and the
    /// infinitely-surprising constant break dominates.
    #[test]
    fn constant_feature_break_outranks_moderate_z() {
        // f0 constant at 10.0 (MAD 0), f1 noisy with MAD ~ 1.5-3.
        let train = ts(&(0..100).map(|i| vec![10.0, (i % 7) as f64]).collect::<Vec<_>>());
        let mut det = MadDetector::new();
        det.fit(&[&train]);
        let z_break = det.score_series(&ts(&[vec![13.0, 3.0]]))[0]; // constant breaks by 3
        let z_wiggle = det.score_series(&ts(&[vec![10.0, 25.0]]))[0]; // noisy feature at z ~ 10
        assert!(
            z_break > z_wiggle,
            "constant-feature break {z_break} must outrank moderate z {z_wiggle}"
        );
    }

    /// An exactly-constant test value on a constant training feature still
    /// scores 0 under the floored scale (0 / 1e-6 = 0): the floor changes
    /// the units of deviations, never invents one.
    #[test]
    fn constant_feature_at_its_value_scores_zero() {
        let train = ts(&(0..50).map(|_| vec![42.0]).collect::<Vec<_>>());
        let mut det = MadDetector::new();
        det.fit(&[&train]);
        assert_eq!(det.score_series(&ts(&[vec![42.0]]))[0], 0.0);
    }

    #[test]
    fn all_nan_training_feature_is_benign() {
        // An all-NaN column fits median 0 / floored MAD; scoring stays
        // finite instead of propagating NaN scales.
        let train = ts(&(0..50).map(|i| vec![f64::NAN, i as f64 % 5.0]).collect::<Vec<_>>());
        let mut det = MadDetector::new();
        det.fit(&[&train]);
        let scores = det.score_series(&ts(&[vec![f64::NAN, 2.0]]));
        assert!(scores[0].is_finite());
    }

    #[test]
    fn empty_series_scores_empty() {
        let train = ts(&(0..50).map(|i| vec![i as f64 % 5.0]).collect::<Vec<_>>());
        let mut det = MadDetector::new();
        det.fit(&[&train]);
        let empty = TimeSeries::empty(default_names(1));
        assert!(det.score_series(&empty).is_empty());
    }

    #[test]
    fn nan_features_ignored() {
        let train = ts(&(0..50).map(|i| vec![i as f64 % 5.0]).collect::<Vec<_>>());
        let mut det = MadDetector::new();
        det.fit(&[&train]);
        let scores = det.score_series(&ts(&[vec![f64::NAN]]));
        assert_eq!(scores[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_panics() {
        let det = MadDetector::new();
        let _ = det.score_series(&ts(&[vec![1.0]]));
    }
}
