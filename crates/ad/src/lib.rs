//! # exathlon-ad
//!
//! The anomaly-detection methods of the Exathlon experimental study
//! (§6.1, Appendix D.2) plus two classical baselines, and the paper's
//! unsupervised threshold-selection procedure.
//!
//! Every method implements [`scorer::AnomalyScorer`]: fit a *normality
//! model* on (mostly) normal training traces, then map each record of a
//! test trace to a real-valued outlier score. Thresholding the scores into
//! 0/1 predictions is a separate, pluggable step ([`threshold`]).
//!
//! * [`lstm_ad`] — LSTM forecaster: score = relative forecast error,
//!   deliberately **not** window-averaged (the paper keeps the scores "as
//!   is", which is why LSTM scores are spiky and suffer at AD2/AD4),
//! * [`ae_ad`] — dense autoencoder over sliding windows: window MSE,
//!   averaged back onto records (smooth scores),
//! * [`bigan_ad`] — BiGAN over sliding windows: reconstruction + feature
//!   loss, averaged back onto records,
//! * [`knn_ad`] — distance-based baseline (mean distance to the k nearest
//!   training records),
//! * [`lof`] — density-based baseline (local outlier factor, Breunig et
//!   al.),
//! * [`iforest`] — isolation forest (Liu, Ting & Zhou),
//! * [`ewma`] — EWMA statistical forecaster baseline,
//! * [`mad_ad`] — MAD point-outlier baseline (MacroBase's AD module),
//! * [`threshold`] — the STD / MAD / IQR `S1 + c*S2` rules with factors
//!   `c ∈ {1.5, 2, 2.5, 3}` and optional second pass: the 24 combinations
//!   behind Table 4's best/median reporting,
//! * [`stream`] — the streaming detection engine: the
//!   [`stream::StreamingDetector`] trait (one score per record from
//!   O(window) state), cheap online detectors (streaming EWMA,
//!   CUSUM / Page-Hinkley, histogram rarity, spectral residual) and
//!   incremental adapters over the fitted batch scorers.

pub mod ae_ad;
pub mod bigan_ad;
pub mod ewma;
pub mod iforest;
pub mod knn_ad;
pub mod lof;
pub mod lstm_ad;
pub mod mad_ad;
pub mod scorer;
pub mod stream;
pub mod threshold;

pub use scorer::AnomalyScorer;
pub use threshold::ThresholdRule;
