//! The common interface of all AD methods: the outlier-score function
//! `g: x -> R` of §5 step 3.

use exathlon_tsdata::TimeSeries;

/// A semi-supervised anomaly scorer: fit a normality model on normal
/// traces, then score every record of a test trace.
pub trait AnomalyScorer {
    /// Method name as it appears in the paper's tables (`"LSTM"`, `"AE"`,
    /// `"BiGAN"`, ...).
    fn name(&self) -> &'static str;

    /// Fit the normality model on training traces (assumed mostly normal,
    /// possibly noisy — the paper's "noisy semi-supervised" setting).
    ///
    /// # Panics
    /// Implementations panic when `train` is empty or traces are too short
    /// for the method's window size.
    fn fit(&mut self, train: &[&TimeSeries]);

    /// Outlier score per record of `ts` (same length as `ts`). Higher
    /// means more anomalous.
    fn score_series(&self, ts: &TimeSeries) -> Vec<f64>;
}

/// Collect windows from several traces into one training pool, capped at
/// `max_windows` by uniform striding (the cardinality-reduction lever the
/// benchmark grants user algorithms, §4.3).
pub fn pooled_windows(train: &[&TimeSeries], window: usize, max_windows: usize) -> Vec<Vec<f64>> {
    assert!(!train.is_empty(), "no training traces");
    let mut all = Vec::new();
    for ts in train {
        if ts.len() >= window {
            all.extend(exathlon_tsdata::window::flattened_windows(ts, window, 1));
        }
    }
    assert!(!all.is_empty(), "training traces shorter than the window size");
    exathlon_tsdata::sample::stride_subsample(&all, max_windows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    fn ts(n: usize) -> TimeSeries {
        let records: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        TimeSeries::from_records(default_names(1), 0, &records)
    }

    #[test]
    fn pooled_windows_combines_traces() {
        let a = ts(10);
        let b = ts(10);
        let w = pooled_windows(&[&a, &b], 3, 1000);
        assert_eq!(w.len(), 16); // 8 per trace
        assert_eq!(w[0].len(), 3);
    }

    #[test]
    fn pooled_windows_caps_count() {
        let a = ts(100);
        let w = pooled_windows(&[&a], 4, 10);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn pooled_windows_skips_short_traces() {
        let a = ts(2);
        let b = ts(10);
        let w = pooled_windows(&[&a, &b], 5, 100);
        assert_eq!(w.len(), 6);
    }

    #[test]
    #[should_panic(expected = "shorter than the window")]
    fn all_short_panics() {
        let a = ts(2);
        let _ = pooled_windows(&[&a], 5, 100);
    }
}
