//! The common interface of all AD methods: the outlier-score function
//! `g: x -> R` of §5 step 3 — plus the window data plane shared by the
//! window-based methods: pooled [`WindowSet`] views and the batch gather
//! that assembles them into a `Matrix` with one `copy_from_slice` per
//! window. `EXATHLON_MATERIALIZED_WINDOWS=1` switches back to the
//! pre-dataplane owned-row path; both modes meter their copies through the
//! `dataplane.gather_bytes` / `dataplane.materialized_bytes` obs counters.

use exathlon_linalg::Matrix;
use exathlon_tsdata::window::{materialized_windows_mode, WindowSet};
use exathlon_tsdata::TimeSeries;

/// A semi-supervised anomaly scorer: fit a normality model on normal
/// traces, then score every record of a test trace.
pub trait AnomalyScorer {
    /// Method name as it appears in the paper's tables (`"LSTM"`, `"AE"`,
    /// `"BiGAN"`, ...).
    fn name(&self) -> &'static str;

    /// Fit the normality model on training traces (assumed mostly normal,
    /// possibly noisy — the paper's "noisy semi-supervised" setting).
    ///
    /// # Panics
    /// Implementations panic when `train` is empty or traces are too short
    /// for the method's window size.
    fn fit(&mut self, train: &[&TimeSeries]);

    /// Outlier score per record of `ts` (same length as `ts`). Higher
    /// means more anomalous.
    fn score_series(&self, ts: &TimeSeries) -> Vec<f64>;
}

/// Collect windows from several traces into one training pool, capped at
/// `max_windows` by uniform striding (the cardinality-reduction lever the
/// benchmark grants user algorithms, §4.3).
///
/// Returns views, never owned rows: subsampling selects `(trace, start)`
/// entries. In materialized mode the pre-dataplane copies (every stride-1
/// window flattened, then the survivors cloned by the subsample) are
/// performed for real — and metered — so the escape hatch reproduces the
/// old path's cost, not just its values.
pub fn pooled_windows<'a>(
    train: &[&'a TimeSeries],
    window: usize,
    max_windows: usize,
) -> WindowSet<'a> {
    assert!(!train.is_empty(), "no training traces");
    let mut ws = WindowSet::pooled(train, window);
    assert!(!ws.is_empty(), "training traces shorter than the window size");
    if materialized_windows_mode() {
        let mut all = Vec::new();
        for ts in train {
            if ts.len() >= window {
                all.extend(exathlon_tsdata::window::flattened_windows(ts, window, 1));
            }
        }
        let kept = exathlon_tsdata::sample::stride_subsample(&all, max_windows);
        let bytes = ((all.len() + kept.len()) * ws.flat_len() * 8) as u64;
        exathlon_linalg::obs::counter("dataplane.materialized_bytes", bytes);
        std::hint::black_box(kept);
    }
    ws.subsample(max_windows);
    ws
}

/// Assemble the batch matrix for a window set, reusing `out`'s buffer:
/// one `copy_from_slice` per window on the default path, or the owned
/// rows + `Matrix::from_rows` double copy of the pre-dataplane plane
/// under `EXATHLON_MATERIALIZED_WINDOWS=1`. Both paths produce
/// byte-identical matrices.
pub fn gather_window_batch(ws: &WindowSet<'_>, out: &mut Matrix) {
    let bytes = (ws.len() * ws.flat_len() * 8) as u64;
    if materialized_windows_mode() {
        let rows = ws.to_rows();
        *out = Matrix::from_rows(&rows);
        exathlon_linalg::obs::counter("dataplane.materialized_bytes", 2 * bytes);
    } else {
        out.reset(ws.len(), ws.flat_len());
        for i in 0..ws.len() {
            out.row_mut(i).copy_from_slice(ws.window(i));
        }
        exathlon_linalg::obs::counter("dataplane.gather_bytes", bytes);
    }
}

/// [`gather_window_batch`] into a fresh matrix.
pub fn window_batch(ws: &WindowSet<'_>) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    gather_window_batch(ws, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    fn ts(n: usize) -> TimeSeries {
        let records: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        TimeSeries::from_records(default_names(1), 0, &records)
    }

    #[test]
    fn pooled_windows_combines_traces() {
        let a = ts(10);
        let b = ts(10);
        let w = pooled_windows(&[&a, &b], 3, 1000);
        assert_eq!(w.len(), 16); // 8 per trace
        assert_eq!(w.flat_len(), 3);
    }

    #[test]
    fn pooled_windows_caps_count() {
        let a = ts(100);
        let w = pooled_windows(&[&a], 4, 10);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn pooled_windows_skips_short_traces() {
        let a = ts(2);
        let b = ts(10);
        let w = pooled_windows(&[&a, &b], 5, 100);
        assert_eq!(w.len(), 6);
    }

    #[test]
    #[should_panic(expected = "shorter than the window")]
    fn all_short_panics() {
        let a = ts(2);
        let _ = pooled_windows(&[&a], 5, 100);
    }

    #[test]
    fn pooled_windows_matches_old_owned_pool() {
        // The view-based pool must select exactly the rows the
        // pre-dataplane flatten + stride_subsample pool selected.
        let a = ts(37);
        let b = ts(19);
        let ws = pooled_windows(&[&a, &b], 4, 12);
        let mut all = Vec::new();
        for t in [&a, &b] {
            all.extend(exathlon_tsdata::window::flattened_windows(t, 4, 1));
        }
        let old = exathlon_tsdata::sample::stride_subsample(&all, 12);
        assert_eq!(ws.len(), old.len());
        for (i, row) in old.iter().enumerate() {
            assert_eq!(ws.window(i), &row[..]);
        }
    }

    #[test]
    fn window_batch_matches_from_rows_bitwise() {
        let a = ts(25);
        let ws = pooled_windows(&[&a], 3, 9);
        let gathered = window_batch(&ws);
        let from_rows = Matrix::from_rows(&ws.to_rows());
        assert_eq!(gathered.shape(), from_rows.shape());
        for (x, y) in gathered.as_slice().iter().zip(from_rows.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // The gather must also land bitwise-identically in a dirty
        // reused buffer.
        let mut reused = Matrix::filled(2, 17, f64::NAN);
        gather_window_batch(&ws, &mut reused);
        assert_eq!(reused.shape(), from_rows.shape());
        for (x, y) in reused.as_slice().iter().zip(from_rows.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
