//! EWMA forecaster — the simple statistical baseline family the paper's
//! related work opens with (§2, citation 7): forecast each feature as an
//! exponentially-weighted moving average of its past, score by the
//! z-normalized forecast error.
//!
//! Useful as a sanity floor for the DL methods and as a cheap detector in
//! the ablation benches.

use crate::scorer::AnomalyScorer;
use exathlon_tsdata::TimeSeries;

/// Configuration of the EWMA detector.
#[derive(Debug, Clone)]
pub struct EwmaConfig {
    /// Smoothing factor in `(0, 1)`: weight of the newest observation.
    pub alpha: f64,
}

impl Default for EwmaConfig {
    fn default() -> Self {
        Self { alpha: 0.15 }
    }
}

/// The EWMA forecaster detector.
#[derive(Debug, Clone)]
pub struct EwmaDetector {
    config: EwmaConfig,
    /// Per-feature standard deviation of the one-step EWMA forecast error
    /// on training data (the score normalizer).
    error_scale: Vec<f64>,
}

impl EwmaDetector {
    /// Create an (unfitted) detector.
    pub fn new(config: EwmaConfig) -> Self {
        assert!(config.alpha > 0.0 && config.alpha < 1.0, "alpha must be in (0, 1)");
        Self { config, error_scale: Vec::new() }
    }

    /// One-step EWMA forecast errors for every record of a series
    /// (record 0 has error 0: nothing to forecast from).
    fn errors(&self, ts: &TimeSeries) -> Vec<Vec<f64>> {
        let m = ts.dims();
        let a = self.config.alpha;
        let mut level: Vec<f64> = ts.record(0).iter().map(|x| nan0(*x)).collect();
        let mut out = Vec::with_capacity(ts.len());
        out.push(vec![0.0; m]);
        for i in 1..ts.len() {
            let rec = ts.record(i);
            let mut errs = Vec::with_capacity(m);
            for j in 0..m {
                let x = nan0(rec[j]);
                errs.push(x - level[j]);
                level[j] += a * (x - level[j]);
            }
            out.push(errs);
        }
        out
    }
}

fn nan0(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x
    }
}

impl AnomalyScorer for EwmaDetector {
    fn name(&self) -> &'static str {
        "EWMA"
    }

    fn fit(&mut self, train: &[&TimeSeries]) {
        let _sp = exathlon_linalg::obs::span("train", "EWMA.fit");
        assert!(!train.is_empty(), "no training traces");
        let m = train[0].dims();
        let mut per_feature: Vec<Vec<f64>> = vec![Vec::new(); m];
        for ts in train {
            for errs in self.errors(ts) {
                for (j, e) in errs.iter().enumerate() {
                    per_feature[j].push(*e);
                }
            }
        }
        self.error_scale =
            per_feature.iter().map(|es| exathlon_linalg::stats::std_dev(es).max(1e-6)).collect();
    }

    fn score_series(&self, ts: &TimeSeries) -> Vec<f64> {
        let _sp = exathlon_linalg::obs::span("score", "EWMA.series");
        assert!(!self.error_scale.is_empty(), "detector not fitted");
        assert_eq!(ts.dims(), self.error_scale.len(), "dimension mismatch");
        self.errors(ts)
            .iter()
            .map(|errs| {
                // Max absolute z-scored error across features.
                errs.iter().zip(&self.error_scale).map(|(e, s)| (e / s).abs()).fold(0.0, f64::max)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    fn smooth(n: usize) -> TimeSeries {
        let records: Vec<Vec<f64>> = (0..n).map(|i| vec![(i as f64 * 0.1).sin()]).collect();
        TimeSeries::from_records(default_names(1), 0, &records)
    }

    #[test]
    fn level_shift_scores_high_at_onset() {
        let train = smooth(300);
        let mut det = EwmaDetector::new(EwmaConfig::default());
        det.fit(&[&train]);
        let mut records: Vec<Vec<f64>> = (0..100).map(|i| vec![(i as f64 * 0.1).sin()]).collect();
        for r in records.iter_mut().skip(50) {
            r[0] += 5.0;
        }
        let test = TimeSeries::from_records(default_names(1), 0, &records);
        let scores = det.score_series(&test);
        let normal_max = scores[5..45].iter().cloned().fold(0.0, f64::max);
        assert!(scores[50] > 5.0 * normal_max, "onset {} vs normal {normal_max}", scores[50]);
    }

    #[test]
    fn adapts_after_shift() {
        // EWMA tracks the new level: errors fall after the onset (the
        // classic statistical-baseline failure mode for range anomalies).
        let train = smooth(300);
        let mut det = EwmaDetector::new(EwmaConfig { alpha: 0.3 });
        det.fit(&[&train]);
        let mut records: Vec<Vec<f64>> = (0..120).map(|_| vec![0.0]).collect();
        for r in records.iter_mut().skip(40) {
            r[0] = 5.0;
        }
        let test = TimeSeries::from_records(default_names(1), 0, &records);
        let scores = det.score_series(&test);
        assert!(scores[40] > 10.0 * scores[100].max(1e-9), "no adaptation");
    }

    #[test]
    fn smooth_data_scores_low() {
        let train = smooth(300);
        let mut det = EwmaDetector::new(EwmaConfig::default());
        det.fit(&[&train]);
        let scores = det.score_series(&smooth(100));
        let mean: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!(mean < 2.0, "smooth data should score near its training scale: {mean}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let _ = EwmaDetector::new(EwmaConfig { alpha: 1.5 });
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_panics() {
        let det = EwmaDetector::new(EwmaConfig::default());
        let _ = det.score_series(&smooth(5));
    }
}
