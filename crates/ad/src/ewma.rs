//! EWMA forecaster — the simple statistical baseline family the paper's
//! related work opens with (§2, citation 7): forecast each feature as an
//! exponentially-weighted moving average of its past, score by the
//! z-normalized forecast error.
//!
//! Useful as a sanity floor for the DL methods and as a cheap detector in
//! the ablation benches.

use crate::scorer::AnomalyScorer;
use exathlon_tsdata::TimeSeries;

/// Configuration of the EWMA detector.
#[derive(Debug, Clone)]
pub struct EwmaConfig {
    /// Smoothing factor in `(0, 1)`: weight of the newest observation.
    pub alpha: f64,
}

impl Default for EwmaConfig {
    fn default() -> Self {
        Self { alpha: 0.15 }
    }
}

/// The EWMA forecaster detector.
#[derive(Debug, Clone)]
pub struct EwmaDetector {
    config: EwmaConfig,
    /// Per-feature standard deviation of the one-step EWMA forecast error
    /// on training data (the score normalizer).
    error_scale: Vec<f64>,
}

impl EwmaDetector {
    /// Create an (unfitted) detector.
    pub fn new(config: EwmaConfig) -> Self {
        assert!(config.alpha > 0.0 && config.alpha < 1.0, "alpha must be in (0, 1)");
        Self { config, error_scale: Vec::new() }
    }

    /// One-step EWMA forecast errors for every record of a series
    /// (record 0 has error 0: nothing to forecast from). An empty series
    /// yields an empty vector, matching `difference_features`' contract.
    ///
    /// Missing values are *gaps*, not observations: a NaN leaves the
    /// feature's level untouched and contributes a 0 error (the previous
    /// revision zero-filled NaNs into the level, so every gap looked like
    /// a crash to 0.0 — a huge spurious error spike that also polluted
    /// `error_scale` at fit time). A feature that has not yet seen a
    /// finite value carries no level: its first observation initializes
    /// the level with a 0 error, exactly like record 0.
    fn errors(&self, ts: &TimeSeries) -> Vec<Vec<f64>> {
        if ts.is_empty() {
            return Vec::new();
        }
        let m = ts.dims();
        let a = self.config.alpha;
        // NaN level = "no finite observation yet".
        let mut level: Vec<f64> = ts.record(0).to_vec();
        let mut out = Vec::with_capacity(ts.len());
        out.push(vec![0.0; m]);
        for i in 1..ts.len() {
            let rec = ts.record(i);
            let mut errs = Vec::with_capacity(m);
            for j in 0..m {
                let x = rec[j];
                if x.is_nan() {
                    // Gap: no forecast, no level update.
                    errs.push(0.0);
                } else if level[j].is_nan() {
                    // First finite observation: nothing to forecast from.
                    errs.push(0.0);
                    level[j] = x;
                } else {
                    errs.push(x - level[j]);
                    level[j] += a * (x - level[j]);
                }
            }
            out.push(errs);
        }
        out
    }

    /// Per-record streaming state of this fitted detector: replaying a
    /// trace through [`crate::stream::StreamingEwma::update`] reproduces
    /// [`AnomalyScorer::score_series`] bitwise.
    ///
    /// # Panics
    /// Panics if the detector is unfitted.
    pub fn streaming(&self) -> crate::stream::StreamingEwma {
        assert!(!self.error_scale.is_empty(), "detector not fitted");
        crate::stream::StreamingEwma::new(self.config.alpha, self.error_scale.clone())
    }
}

impl AnomalyScorer for EwmaDetector {
    fn name(&self) -> &'static str {
        "EWMA"
    }

    fn fit(&mut self, train: &[&TimeSeries]) {
        let _sp = exathlon_linalg::obs::span("train", "EWMA.fit");
        assert!(!train.is_empty(), "no training traces");
        let m = train[0].dims();
        let mut per_feature: Vec<Vec<f64>> = vec![Vec::new(); m];
        for ts in train {
            for errs in self.errors(ts) {
                for (j, e) in errs.iter().enumerate() {
                    per_feature[j].push(*e);
                }
            }
        }
        self.error_scale =
            per_feature.iter().map(|es| exathlon_linalg::stats::std_dev(es).max(1e-6)).collect();
    }

    fn score_series(&self, ts: &TimeSeries) -> Vec<f64> {
        let _sp = exathlon_linalg::obs::span("score", "EWMA.series");
        assert!(!self.error_scale.is_empty(), "detector not fitted");
        assert_eq!(ts.dims(), self.error_scale.len(), "dimension mismatch");
        self.errors(ts)
            .iter()
            .map(|errs| {
                // Max absolute z-scored error across features.
                errs.iter().zip(&self.error_scale).map(|(e, s)| (e / s).abs()).fold(0.0, f64::max)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    fn smooth(n: usize) -> TimeSeries {
        let records: Vec<Vec<f64>> = (0..n).map(|i| vec![(i as f64 * 0.1).sin()]).collect();
        TimeSeries::from_records(default_names(1), 0, &records)
    }

    #[test]
    fn level_shift_scores_high_at_onset() {
        let train = smooth(300);
        let mut det = EwmaDetector::new(EwmaConfig::default());
        det.fit(&[&train]);
        let mut records: Vec<Vec<f64>> = (0..100).map(|i| vec![(i as f64 * 0.1).sin()]).collect();
        for r in records.iter_mut().skip(50) {
            r[0] += 5.0;
        }
        let test = TimeSeries::from_records(default_names(1), 0, &records);
        let scores = det.score_series(&test);
        let normal_max = scores[5..45].iter().cloned().fold(0.0, f64::max);
        assert!(scores[50] > 5.0 * normal_max, "onset {} vs normal {normal_max}", scores[50]);
    }

    #[test]
    fn adapts_after_shift() {
        // EWMA tracks the new level: errors fall after the onset (the
        // classic statistical-baseline failure mode for range anomalies).
        let train = smooth(300);
        let mut det = EwmaDetector::new(EwmaConfig { alpha: 0.3 });
        det.fit(&[&train]);
        let mut records: Vec<Vec<f64>> = (0..120).map(|_| vec![0.0]).collect();
        for r in records.iter_mut().skip(40) {
            r[0] = 5.0;
        }
        let test = TimeSeries::from_records(default_names(1), 0, &records);
        let scores = det.score_series(&test);
        assert!(scores[40] > 10.0 * scores[100].max(1e-9), "no adaptation");
    }

    #[test]
    fn smooth_data_scores_low() {
        let train = smooth(300);
        let mut det = EwmaDetector::new(EwmaConfig::default());
        det.fit(&[&train]);
        let scores = det.score_series(&smooth(100));
        let mean: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!(mean < 2.0, "smooth data should score near its training scale: {mean}");
    }

    /// Regression test: a NaN gap used to zero-fill the level (`nan0`), so
    /// a trace hovering around 5.0 with one missing record produced a
    /// spurious |5.0|-sized error spike at the gap *and* at the next
    /// record (forecast from the crashed level).
    fn gapped(n: usize, gap: usize) -> TimeSeries {
        let records: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![if i == gap { f64::NAN } else { 5.0 + (i as f64 * 0.1).sin() * 0.01 }])
            .collect();
        TimeSeries::from_records(default_names(1), 0, &records)
    }

    #[test]
    fn nan_gap_is_not_an_anomaly() {
        let mut det = EwmaDetector::new(EwmaConfig::default());
        det.fit(&[&gapped(300, 150)]);
        let scores = det.score_series(&gapped(100, 50));
        // The gap contributes a 0 error; the neighbourhood stays at the
        // smooth-data scale instead of spiking by the level magnitude.
        assert_eq!(scores[50], 0.0, "gap record must score 0");
        let around_gap = scores[48..53].iter().cloned().fold(0.0, f64::max);
        let elsewhere = scores[5..45].iter().cloned().fold(0.0, f64::max);
        assert!(
            around_gap <= 3.0 * elsewhere.max(1e-9),
            "gap neighbourhood spiked: {around_gap} vs smooth max {elsewhere}"
        );
    }

    #[test]
    fn nan_gap_does_not_pollute_error_scale() {
        // Fitting on a gapped trace must give (essentially) the same
        // error scale as fitting on the same trace without the gap: the
        // old zero-fill inflated `error_scale` by the level magnitude.
        let mut clean = EwmaDetector::new(EwmaConfig::default());
        clean.fit(&[&gapped(300, usize::MAX)]);
        let mut with_gap = EwmaDetector::new(EwmaConfig::default());
        with_gap.fit(&[&gapped(300, 150)]);
        let (c, g) = (clean.error_scale[0], with_gap.error_scale[0]);
        assert!(g < 2.0 * c, "gap inflated error scale: {g} vs clean {c}");
    }

    #[test]
    fn all_nan_prefix_initializes_on_first_value() {
        // A feature whose first records are all NaN starts its level at
        // the first finite value instead of forecasting from 0.0.
        let records =
            vec![vec![f64::NAN], vec![f64::NAN], vec![7.0], vec![7.0], vec![7.0], vec![7.0]];
        let ts = TimeSeries::from_records(default_names(1), 0, &records);
        let mut det = EwmaDetector::new(EwmaConfig::default());
        det.fit(&[&smooth(300)]);
        let scores = det.score_series(&ts);
        assert!(scores.iter().all(|&s| s == 0.0), "constant-after-gap trace spiked: {scores:?}");
    }

    /// Regression test: an empty trace used to panic in `errors` via
    /// `ts.record(0)`; it now returns an empty score vector, matching
    /// `difference_features`' empty-series contract.
    #[test]
    fn empty_series_scores_empty() {
        let mut det = EwmaDetector::new(EwmaConfig::default());
        det.fit(&[&smooth(300)]);
        let empty = TimeSeries::empty(default_names(1));
        assert!(det.score_series(&empty).is_empty());
    }

    #[test]
    fn single_record_scores_zero() {
        let mut det = EwmaDetector::new(EwmaConfig::default());
        det.fit(&[&smooth(300)]);
        let one = TimeSeries::from_records(default_names(1), 0, &[vec![3.0]]);
        assert_eq!(det.score_series(&one), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let _ = EwmaDetector::new(EwmaConfig { alpha: 1.5 });
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_panics() {
        let det = EwmaDetector::new(EwmaConfig::default());
        let _ = det.score_series(&smooth(5));
    }
}
