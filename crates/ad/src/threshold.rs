//! Unsupervised threshold selection (Appendix D.2).
//!
//! Exathlon offers no labeled data for thresholding, so the threshold on
//! the outlier score is fit on a held-out slice of the *training* data
//! (`D²_train`) as `threshold = S1 + c * S2` with:
//!
//! * **STD**: `S1 = mean`, `S2 = standard deviation`,
//! * **MAD**: `S1 = median`, `S2 = 1.4826 * median(|X - median|)`,
//! * **IQR**: `S1 = Q3`, `S2 = Q3 - Q1`,
//!
//! a thresholding factor `c ∈ {1.5, 2, 2.5, 3}`, and optionally a second
//! pass that recomputes the statistics after dropping the scores above the
//! first-pass threshold ("to drop any obvious outliers that could prevent
//! us from finding a suitable threshold"). The paper reports the *best*
//! and *median* detection performance over the resulting 24 combinations.

/// The statistic pair `(S1, S2)` of a thresholding rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThresholdStat {
    /// Sample mean and standard deviation.
    Std,
    /// Median and scaled median absolute deviation.
    Mad,
    /// Third quartile and interquartile range.
    Iqr,
}

impl ThresholdStat {
    /// All three statistics.
    pub const ALL: [ThresholdStat; 3] =
        [ThresholdStat::Std, ThresholdStat::Mad, ThresholdStat::Iqr];

    fn s1_s2(self, scores: &[f64]) -> (f64, f64) {
        use exathlon_linalg::stats::{mad, mean, median, quartiles, std_dev};
        match self {
            ThresholdStat::Std => (mean(scores), std_dev(scores)),
            ThresholdStat::Mad => (median(scores), mad(scores)),
            ThresholdStat::Iqr => {
                let (q1, q3) = quartiles(scores);
                (q3, q3 - q1)
            }
        }
    }

    /// Display name as used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            ThresholdStat::Std => "STD",
            ThresholdStat::Mad => "MAD",
            ThresholdStat::Iqr => "IQR",
        }
    }
}

/// One thresholding rule: statistic, factor, and pass count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdRule {
    /// Which `(S1, S2)` pair to use.
    pub stat: ThresholdStat,
    /// The thresholding factor `c`.
    pub factor: f64,
    /// Whether to run the two-pass variant.
    pub two_pass: bool,
}

impl ThresholdRule {
    /// The paper's full grid: 3 statistics x 4 factors x {1, 2} passes =
    /// 24 rules.
    pub fn all_rules() -> Vec<ThresholdRule> {
        let mut rules = Vec::with_capacity(24);
        for stat in ThresholdStat::ALL {
            for &factor in &[1.5, 2.0, 2.5, 3.0] {
                for &two_pass in &[false, true] {
                    rules.push(ThresholdRule { stat, factor, two_pass });
                }
            }
        }
        rules
    }

    /// Fit the threshold on held-out training scores.
    ///
    /// # Panics
    /// Panics on an empty score slice.
    pub fn fit(&self, scores: &[f64]) -> f64 {
        assert!(!scores.is_empty(), "cannot fit a threshold on no scores");
        let (s1, s2) = self.stat.s1_s2(scores);
        let first = s1 + self.factor * s2;
        if !self.two_pass {
            return first;
        }
        let kept: Vec<f64> = scores.iter().copied().filter(|&s| s <= first).collect();
        if kept.is_empty() {
            return first;
        }
        let (s1, s2) = self.stat.s1_s2(&kept);
        s1 + self.factor * s2
    }

    /// Apply a fitted threshold: `score >= threshold` flags an anomaly.
    pub fn apply(threshold: f64, scores: &[f64]) -> Vec<bool> {
        scores.iter().map(|&s| s >= threshold).collect()
    }

    /// Display label, e.g. `"IQR x2.5 (2-pass)"`.
    pub fn label(&self) -> String {
        format!(
            "{} x{}{}",
            self.stat.label(),
            self.factor,
            if self.two_pass { " (2-pass)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normal_scores() -> Vec<f64> {
        // Deterministic pseudo-normal spread around 1.0.
        (0..200).map(|i| 1.0 + ((i * 37 % 100) as f64 / 100.0 - 0.5) * 0.4).collect()
    }

    #[test]
    fn grid_has_24_rules() {
        let rules = ThresholdRule::all_rules();
        assert_eq!(rules.len(), 24);
        // All distinct.
        for i in 0..rules.len() {
            for j in (i + 1)..rules.len() {
                assert_ne!(rules[i], rules[j]);
            }
        }
    }

    #[test]
    fn std_rule_formula() {
        use exathlon_linalg::stats::{mean, std_dev};
        let scores = normal_scores();
        let rule = ThresholdRule { stat: ThresholdStat::Std, factor: 2.0, two_pass: false };
        let t = rule.fit(&scores);
        assert!((t - (mean(&scores) + 2.0 * std_dev(&scores))).abs() < 1e-12);
    }

    #[test]
    fn threshold_above_bulk_of_scores() {
        let scores = normal_scores();
        for rule in ThresholdRule::all_rules() {
            let t = rule.fit(&scores);
            let above = scores.iter().filter(|&&s| s >= t).count();
            assert!(
                above < scores.len() / 7,
                "{}: {above} of {} scores above threshold",
                rule.label(),
                scores.len()
            );
        }
    }

    #[test]
    fn two_pass_reduces_threshold_with_outliers() {
        let mut scores = normal_scores();
        scores.extend([50.0, 60.0, 70.0]); // contamination
        let one = ThresholdRule { stat: ThresholdStat::Std, factor: 2.0, two_pass: false };
        let two = ThresholdRule { stat: ThresholdStat::Std, factor: 2.0, two_pass: true };
        assert!(two.fit(&scores) < one.fit(&scores), "second pass should shed the contamination");
    }

    #[test]
    fn mad_robust_to_contamination() {
        let clean = normal_scores();
        let mut dirty = clean.clone();
        dirty.extend([100.0; 5]);
        let rule = ThresholdRule { stat: ThresholdStat::Mad, factor: 2.0, two_pass: false };
        let a = rule.fit(&clean);
        let b = rule.fit(&dirty);
        assert!((a - b).abs() < 0.2 * a, "MAD threshold moved too much: {a} -> {b}");
    }

    #[test]
    fn apply_flags_at_or_above() {
        let flags = ThresholdRule::apply(2.0, &[1.9, 2.0, 2.1]);
        assert_eq!(flags, vec![false, true, true]);
    }

    #[test]
    fn higher_factor_higher_threshold() {
        let scores = normal_scores();
        for stat in ThresholdStat::ALL {
            let lo = ThresholdRule { stat, factor: 1.5, two_pass: false }.fit(&scores);
            let hi = ThresholdRule { stat, factor: 3.0, two_pass: false }.fit(&scores);
            assert!(hi > lo);
        }
    }

    #[test]
    #[should_panic(expected = "no scores")]
    fn empty_scores_panic() {
        let rule = ThresholdRule { stat: ThresholdStat::Std, factor: 2.0, two_pass: false };
        let _ = rule.fit(&[]);
    }
}
