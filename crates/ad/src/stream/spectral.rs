//! Spectral Residual saliency over a ring-buffer window (Ren et al.,
//! "Time-Series Anomaly Detection Service at Microsoft", KDD 2019).
//!
//! SR treats anomaly detection as visual saliency: take the FFT of a short
//! window, subtract the local average of the log-amplitude spectrum (the
//! "spectral residual"), transform back, and points that stick out of the
//! reconstructed saliency map are anomalies. It needs no training at all,
//! which makes it the natural fit-free member of the streaming family —
//! state is one ring buffer of aggregated records plus FFT scratch.
//!
//! Each incoming record is aggregated to a scalar (mean of its finite
//! features; a fully-missing record repeats the previous aggregate) and
//! pushed into a [`RingWindow`]. Once the window fills, `update` returns
//! the saliency of the *newest* point relative to the window mean. Until
//! then it returns 0 — a stream cannot look at data it has not seen.

use super::StreamingDetector;
use crate::scorer::AnomalyScorer;
use exathlon_linalg::codec::{ByteReader, ByteWriter, CodecError};
use exathlon_tsdata::ring::RingWindow;
use exathlon_tsdata::TimeSeries;

const EPS: f64 = 1e-8;

/// Configuration of the spectral residual detector.
#[derive(Debug, Clone)]
pub struct SpectralResidualConfig {
    /// FFT window length; must be a power of two.
    pub window: usize,
    /// Width of the average filter applied to the log-amplitude spectrum.
    pub saliency_avg: usize,
}

impl Default for SpectralResidualConfig {
    fn default() -> Self {
        Self { window: 64, saliency_avg: 3 }
    }
}

/// The SR saliency detector. Fit-free: construct and stream.
#[derive(Debug, Clone)]
pub struct SpectralResidualDetector {
    config: SpectralResidualConfig,
    ring: RingWindow,
    /// Last aggregate seen, carried across fully-missing records.
    last_agg: f64,
    /// Reused FFT / saliency scratch, sized `window`.
    scratch: Scratch,
}

#[derive(Debug, Clone)]
struct Scratch {
    re: Vec<f64>,
    im: Vec<f64>,
    log_amp: Vec<f64>,
}

impl SpectralResidualDetector {
    /// Create a detector.
    ///
    /// # Panics
    /// Panics if `window` is not a power of two or `saliency_avg` is zero.
    pub fn new(config: SpectralResidualConfig) -> Self {
        assert!(
            config.window >= 2 && config.window.is_power_of_two(),
            "SR window must be a power of two >= 2"
        );
        assert!(config.saliency_avg > 0, "saliency filter needs width >= 1");
        let n = config.window;
        Self {
            ring: RingWindow::new(n, 1),
            last_agg: 0.0,
            scratch: Scratch { re: vec![0.0; n], im: vec![0.0; n], log_amp: vec![0.0; n] },
            config,
        }
    }

    /// Serialize the config *and* the in-flight window state (ring
    /// contents in chronological order, carried aggregate), so a restored
    /// detector continues the trace mid-stream. FFT scratch is rebuilt
    /// empty — it is overwritten before every read.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.config.window);
        w.put_usize(self.config.saliency_avg);
        w.put_f64(self.last_agg);
        w.put_usize(self.ring.len());
        for i in 0..self.ring.len() {
            w.put_f64(self.ring.record(i)[0]);
        }
    }

    /// Decode a detector written by [`SpectralResidualDetector::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let window = r.get_usize()?;
        if window < 2 || !window.is_power_of_two() {
            return Err(CodecError::Corrupt("SR window must be a power of two >= 2"));
        }
        let saliency_avg = r.get_usize()?;
        if saliency_avg == 0 {
            return Err(CodecError::Corrupt("SR saliency filter needs width >= 1"));
        }
        let mut det = Self::new(SpectralResidualConfig { window, saliency_avg });
        det.last_agg = r.get_f64()?;
        let n = r.get_len(8)?;
        if n > window {
            return Err(CodecError::Corrupt("SR ring longer than its window"));
        }
        for _ in 0..n {
            det.ring.push(&[r.get_f64()?]);
        }
        Ok(det)
    }

    /// Mean of the record's finite features; falls back to the previous
    /// aggregate when every feature is missing.
    fn aggregate(&mut self, record: &[f64]) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &x in record {
            if !x.is_nan() {
                sum += x;
                n += 1;
            }
        }
        if n > 0 {
            self.last_agg = sum / n as f64;
        }
        self.last_agg
    }

    /// One streaming step: push the aggregate, return the newest point's
    /// saliency once the window is full.
    fn step(&mut self, record: &[f64]) -> f64 {
        let agg = self.aggregate(record);
        self.ring.push(&[agg]);
        if !self.ring.is_full() {
            return 0.0;
        }
        let n = self.config.window;
        let q = self.config.saliency_avg;
        let Scratch { re, im, log_amp } = &mut self.scratch;
        self.ring.copy_flat_into(re);
        im.fill(0.0);
        fft(re, im, false);
        // Log-amplitude spectrum and its trailing average; the residual
        // rescales the spectrum in place.
        for i in 0..n {
            log_amp[i] = (re[i] * re[i] + im[i] * im[i]).sqrt().ln_1p();
        }
        let mut window_sum = 0.0;
        for i in 0..n {
            window_sum += log_amp[i];
            if i >= q {
                window_sum -= log_amp[i - q];
            }
            let width = q.min(i + 1) as f64;
            let residual = log_amp[i] - window_sum / width;
            // exp(residual) relative to the amplitude: scale both complex
            // parts so the spectrum keeps its phase but takes the residual's
            // magnitude. ln_1p above means amp = exp(log_amp) - 1.
            let amp = log_amp[i].exp_m1();
            let scale = if amp > EPS { residual.exp() / amp } else { 0.0 };
            re[i] *= scale;
            im[i] *= scale;
        }
        fft(re, im, true);
        // Saliency = magnitude of the inverse transform; score the newest
        // (last) point against the window mean.
        let mut mean = 0.0;
        for i in 0..n {
            log_amp[i] = (re[i] * re[i] + im[i] * im[i]).sqrt();
            mean += log_amp[i];
        }
        mean /= n as f64;
        ((log_amp[n - 1] - mean) / (mean + EPS)).max(0.0)
    }
}

/// In-place iterative radix-2 FFT (Cooley–Tukey); `invert` runs the
/// inverse transform including the `1/n` normalization. Lengths must be a
/// power of two — the constructor guarantees that for all internal calls.
fn fft(re: &mut [f64], im: &mut [f64], invert: bool) {
    let n = re.len();
    debug_assert!(n.is_power_of_two() && im.len() == n);
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = 2.0 * std::f64::consts::PI / len as f64 * if invert { 1.0 } else { -1.0 };
        let (w_re, w_im) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cur_re, mut cur_im) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (a, b) = (i + k, i + k + len / 2);
                let (ur, ui) = (re[a], im[a]);
                let vr = re[b] * cur_re - im[b] * cur_im;
                let vi = re[b] * cur_im + im[b] * cur_re;
                re[a] = ur + vr;
                im[a] = ui + vi;
                re[b] = ur - vr;
                im[b] = ui - vi;
                let nr = cur_re * w_re - cur_im * w_im;
                cur_im = cur_re * w_im + cur_im * w_re;
                cur_re = nr;
            }
            i += len;
        }
        len <<= 1;
    }
    if invert {
        let inv = 1.0 / n as f64;
        for i in 0..n {
            re[i] *= inv;
            im[i] *= inv;
        }
    }
}

impl AnomalyScorer for SpectralResidualDetector {
    fn name(&self) -> &'static str {
        "SpectralResidual"
    }

    fn fit(&mut self, _train: &[&TimeSeries]) {
        // SR is training-free; fit is accepted for pipeline uniformity.
    }

    fn score_series(&self, ts: &TimeSeries) -> Vec<f64> {
        let _sp = exathlon_linalg::obs::span("score", "SpectralResidual.series");
        let mut fresh = self.clone();
        StreamingDetector::reset(&mut fresh);
        ts.records().map(|r| fresh.step(r)).collect()
    }
}

impl StreamingDetector for SpectralResidualDetector {
    fn name(&self) -> &'static str {
        "SpectralResidual"
    }

    fn update(&mut self, record: &[f64]) -> f64 {
        self.step(record)
    }

    fn reset(&mut self) {
        self.ring.clear();
        self.last_agg = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    #[test]
    fn fft_roundtrip_recovers_signal() {
        let n = 64;
        let orig: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin() + 0.1 * i as f64).collect();
        let mut re = orig.clone();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im, false);
        fft(&mut re, &mut im, true);
        for i in 0..n {
            assert!((re[i] - orig[i]).abs() < 1e-9, "re[{i}]");
            assert!(im[i].abs() < 1e-9, "im[{i}]");
        }
    }

    #[test]
    fn fft_of_constant_is_dc_only() {
        let mut re = vec![3.0; 8];
        let mut im = vec![0.0; 8];
        fft(&mut re, &mut im, false);
        assert!((re[0] - 24.0).abs() < 1e-9);
        for i in 1..8 {
            assert!(re[i].abs() < 1e-9 && im[i].abs() < 1e-9, "bin {i} must be empty");
        }
    }

    #[test]
    fn spike_is_salient_smooth_is_not() {
        let cfg = SpectralResidualConfig { window: 32, saliency_avg: 3 };
        let mut det = SpectralResidualDetector::new(cfg);
        let mut smooth_max = 0.0f64;
        // Warm up + steady sinusoid: low saliency once the window fills.
        for i in 0..200 {
            let s = det.update(&[(i as f64 * 0.2).sin()]);
            if i >= 32 {
                smooth_max = smooth_max.max(s);
            }
        }
        // A spike at the newest point must dominate everything smooth.
        let spike = det.update(&[25.0]);
        assert!(spike > smooth_max * 4.0, "spike saliency {spike} vs smooth max {smooth_max}");
    }

    #[test]
    fn warmup_scores_zero_until_window_full() {
        let cfg = SpectralResidualConfig { window: 16, saliency_avg: 3 };
        let mut det = SpectralResidualDetector::new(cfg);
        for i in 0..15 {
            assert_eq!(det.update(&[i as f64]), 0.0, "tick {i} is pre-warmup");
        }
    }

    #[test]
    fn batch_equals_replay() {
        let cfg = SpectralResidualConfig { window: 16, saliency_avg: 3 };
        let records: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                let v = (i as f64 * 0.31).sin() + if i == 77 { 6.0 } else { 0.0 };
                vec![v, if i % 9 == 0 { f64::NAN } else { v * 0.5 }]
            })
            .collect();
        let ts = TimeSeries::from_records(default_names(2), 0, &records);
        let det = SpectralResidualDetector::new(cfg);
        let batch = det.score_series(&ts);
        let mut streaming = det.clone();
        let streamed = super::super::replay(&mut streaming, &ts);
        assert_eq!(batch, streamed, "one recurrence, two drivers");
    }

    #[test]
    fn fully_missing_record_repeats_last_aggregate() {
        let cfg = SpectralResidualConfig { window: 16, saliency_avg: 3 };
        let mut det = SpectralResidualDetector::new(cfg);
        for i in 0..40 {
            det.update(&[(i as f64 * 0.2).sin()]);
        }
        let before = det.clone();
        let s_gap = det.update(&[f64::NAN]);
        // The gap must not be an excursion: its aggregate equals the
        // previous record's, so saliency stays in the smooth regime.
        let mut ctrl = before.clone();
        let s_repeat = ctrl.update(&[before.last_agg]);
        assert_eq!(s_gap, s_repeat, "gap must behave like a repeated value");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_window_panics() {
        let _ =
            SpectralResidualDetector::new(SpectralResidualConfig { window: 48, saliency_avg: 3 });
    }
}
