//! Incremental adapters: the fitted batch scorers driven one record at a
//! time.
//!
//! These own a trained detector and translate its batch scoring interface
//! into [`StreamingDetector`] ticks:
//!
//! * [`StreamingKnn`] / [`StreamingLof`] — each record is one query
//!   against the frozen reference set through the shared distance kernel;
//!   per-record scores are bitwise equal to the batch chunks because the
//!   kernel pins each query row independent of batch shape,
//! * [`StreamingAe`] — records accumulate in a [`RingWindow`]; once it
//!   fills, every tick re-linearizes the window into the batch layout and
//!   scores it, so tick `t` carries the reconstruction MSE of the window
//!   *ending* at `t`. (The batch scorer then averages each record over all
//!   enclosing windows — an average a stream cannot form until the future
//!   arrives, which is exactly the windowing difference the equivalence
//!   test pins.)

use super::StreamingDetector;
use crate::ae_ad::AutoencoderDetector;
use crate::knn_ad::KnnDetector;
use crate::lof::LofDetector;
use exathlon_linalg::codec::{ByteReader, ByteWriter, CodecError};
use exathlon_tsdata::ring::RingWindow;

/// Per-record kNN scoring against the frozen reference set.
#[derive(Debug, Clone)]
pub struct StreamingKnn {
    det: KnnDetector,
}

impl StreamingKnn {
    /// Wrap a fitted detector.
    pub fn new(det: KnnDetector) -> Self {
        Self { det }
    }

    /// Serialize the wrapped detector (the adapter itself is stateless).
    pub fn encode(&self, w: &mut ByteWriter) {
        self.det.encode(w);
    }

    /// Decode an adapter written by [`StreamingKnn::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Self { det: KnnDetector::decode(r)? })
    }
}

impl StreamingDetector for StreamingKnn {
    fn name(&self) -> &'static str {
        "kNN"
    }

    fn update(&mut self, record: &[f64]) -> f64 {
        self.det.score_record(record)
    }

    fn reset(&mut self) {
        // Record-at-a-time scoring holds no per-trace state.
    }
}

/// Per-record LOF scoring against the frozen reference set.
#[derive(Debug, Clone)]
pub struct StreamingLof {
    det: LofDetector,
}

impl StreamingLof {
    /// Wrap a fitted detector.
    pub fn new(det: LofDetector) -> Self {
        Self { det }
    }

    /// Serialize the wrapped detector (the adapter itself is stateless).
    pub fn encode(&self, w: &mut ByteWriter) {
        self.det.encode(w);
    }

    /// Decode an adapter written by [`StreamingLof::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Self { det: LofDetector::decode(r)? })
    }
}

impl StreamingDetector for StreamingLof {
    fn name(&self) -> &'static str {
        "LOF"
    }

    fn update(&mut self, record: &[f64]) -> f64 {
        self.det.score_record(record)
    }

    fn reset(&mut self) {
        // Record-at-a-time scoring holds no per-trace state.
    }
}

/// The autoencoder scored over a sliding ring-buffer window.
#[derive(Debug, Clone)]
pub struct StreamingAe {
    det: AutoencoderDetector,
    ring: RingWindow,
    /// Reused flattened-window scratch (`window * dims` values).
    flat: Vec<f64>,
}

impl StreamingAe {
    /// Wrap a fitted detector for `dims`-feature traces.
    ///
    /// # Panics
    /// Panics if `dims` is zero.
    pub fn new(det: AutoencoderDetector, dims: usize) -> Self {
        let w = det.window_len();
        Self { ring: RingWindow::new(w, dims), flat: vec![0.0; w * dims], det }
    }

    /// Serialize the wrapped detector *and* the in-flight ring contents
    /// (chronological order), so a restored adapter continues the trace
    /// mid-stream. The flatten scratch is rebuilt zeroed — it is
    /// overwritten before every read.
    pub fn encode(&self, w: &mut ByteWriter) {
        self.det.encode(w);
        w.put_usize(self.ring.dims());
        w.put_usize(self.ring.len());
        for i in 0..self.ring.len() {
            w.put_f64s(self.ring.record(i));
        }
    }

    /// Decode an adapter written by [`StreamingAe::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let det = AutoencoderDetector::decode(r)?;
        let dims = r.get_usize()?;
        if dims == 0 {
            return Err(CodecError::Corrupt("AE adapter dims must be positive"));
        }
        let n = r.get_len(8)?;
        if n > det.window_len() {
            return Err(CodecError::Corrupt("AE ring longer than its window"));
        }
        let mut out = Self::new(det, dims);
        for _ in 0..n {
            let rec = r.get_f64s()?;
            if rec.len() != dims {
                return Err(CodecError::Corrupt("AE ring record length mismatch"));
            }
            out.ring.push(&rec);
        }
        Ok(out)
    }
}

impl StreamingDetector for StreamingAe {
    fn name(&self) -> &'static str {
        "AE"
    }

    fn update(&mut self, record: &[f64]) -> f64 {
        self.ring.push(record);
        if !self.ring.is_full() {
            // Warm-up: no complete window ends here yet.
            return 0.0;
        }
        self.ring.copy_flat_into(&mut self.flat);
        self.det.window_score(&self.flat)
    }

    fn reset(&mut self) {
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::super::replay;
    use super::*;
    use crate::ae_ad::AeConfig;
    use crate::knn_ad::KnnConfig;
    use crate::lof::LofConfig;
    use crate::AnomalyScorer;
    use exathlon_tsdata::series::default_names;
    use exathlon_tsdata::window::{window_starts, WindowSet};
    use exathlon_tsdata::TimeSeries;

    fn trace(n: usize, seed: u64) -> TimeSeries {
        let records: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 * 0.23 + seed as f64;
                vec![t.sin() * 2.0, (t * 0.7).cos(), (i % 13) as f64 * 0.1]
            })
            .collect();
        TimeSeries::from_records(default_names(3), 0, &records)
    }

    #[test]
    fn knn_replay_matches_batch_bitwise() {
        let train = trace(300, 1);
        let mut det = KnnDetector::new(KnnConfig { k: 4, max_references: 200 });
        det.fit(&[&train]);
        let test = trace(90, 2);
        let batch = det.score_series(&test);
        let streamed = replay(&mut StreamingKnn::new(det), &test);
        for (i, (b, s)) in batch.iter().zip(&streamed).enumerate() {
            assert_eq!(b.to_bits(), s.to_bits(), "record {i}: batch {b} vs stream {s}");
        }
    }

    #[test]
    fn lof_replay_matches_batch_bitwise() {
        let train = trace(300, 3);
        let mut det = LofDetector::new(LofConfig { k: 6, max_references: 200 });
        det.fit(&[&train]);
        let test = trace(90, 4);
        let batch = det.score_series(&test);
        let streamed = replay(&mut StreamingLof::new(det), &test);
        for (i, (b, s)) in batch.iter().zip(&streamed).enumerate() {
            assert_eq!(b.to_bits(), s.to_bits(), "record {i}: batch {b} vs stream {s}");
        }
    }

    #[test]
    fn ae_stream_scores_the_window_ending_at_each_tick() {
        let train = trace(240, 5);
        let cfg =
            AeConfig { window: 6, hidden: vec![16], code: 4, epochs: 15, ..Default::default() };
        let w = cfg.window;
        let mut det = AutoencoderDetector::new(cfg);
        det.fit(&[&train]);
        let test = trace(60, 6);
        // Reference: the batch per-window scores, laid out by window start.
        let windows = WindowSet::from_series(&test, w, 1);
        let expected: Vec<f64> =
            (0..windows.len()).map(|i| det.window_score(windows.window(i))).collect();
        assert_eq!(windows.starts(), window_starts(test.len(), w, 1));
        let streamed = replay(&mut StreamingAe::new(det, test.dims()), &test);
        assert_eq!(streamed.len(), test.len());
        // Warm-up ticks score zero; tick t >= w-1 carries window t-w+1.
        for (t, &s) in streamed.iter().enumerate() {
            if t < w - 1 {
                assert_eq!(s, 0.0, "tick {t} is pre-warmup");
            } else {
                let b = expected[t - (w - 1)];
                assert_eq!(b.to_bits(), s.to_bits(), "tick {t}: batch {b} vs stream {s}");
            }
        }
    }

    #[test]
    fn ae_reset_restarts_warmup() {
        let train = trace(240, 7);
        let cfg =
            AeConfig { window: 5, hidden: vec![16], code: 4, epochs: 10, ..Default::default() };
        let mut det = AutoencoderDetector::new(cfg);
        det.fit(&[&train]);
        let mut s = StreamingAe::new(det, 3);
        let test = trace(30, 8);
        let first = replay(&mut s, &test);
        let second = replay(&mut s, &test);
        assert_eq!(first, second, "reset must clear the ring buffer");
    }
}
