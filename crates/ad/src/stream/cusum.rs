//! O(1) drift detectors: two-sided CUSUM and Page-Hinkley.
//!
//! Both monitor per-feature robust deviations from a training profile
//! (mean/std fitted per feature, scale floored like the other statistical
//! baselines) and aggregate by the maximum across features — the same
//! commensurable-z-score discipline as the fixed MAD baseline. Both
//! implement [`crate::AnomalyScorer`] *and*
//! [`super::StreamingDetector`]: `score_series` replays a fresh copy of
//! the streaming recurrence, so batch and stream are one implementation
//! with two drivers (pinned by `tests/stream_equivalence.rs`).

use super::StreamingDetector;
use crate::scorer::AnomalyScorer;
use exathlon_linalg::codec::{ByteReader, ByteWriter, CodecError};
use exathlon_tsdata::TimeSeries;

/// Per-feature training profile: mean and floored standard deviation of
/// the finite values, shared by both drift detectors.
#[derive(Debug, Clone, Default)]
struct ZProfile {
    mean: Vec<f64>,
    scale: Vec<f64>,
}

impl ZProfile {
    fn fit(train: &[&TimeSeries]) -> Self {
        assert!(!train.is_empty(), "no training traces");
        let dims = train[0].dims();
        let mut mean = Vec::with_capacity(dims);
        let mut scale = Vec::with_capacity(dims);
        for j in 0..dims {
            let mut col = Vec::new();
            for ts in train {
                col.extend(ts.feature_column(j).into_iter().filter(|x| !x.is_nan()));
            }
            mean.push(exathlon_linalg::stats::mean(&col));
            scale.push(exathlon_linalg::stats::std_dev(&col).max(1e-6));
        }
        Self { mean, scale }
    }

    fn dims(&self) -> usize {
        self.mean.len()
    }

    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64s(&self.mean);
        w.put_f64s(&self.scale);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let mean = r.get_f64s()?;
        let scale = r.get_f64s()?;
        if scale.len() != mean.len() {
            return Err(CodecError::Corrupt("z-profile length mismatch"));
        }
        Ok(Self { mean, scale })
    }

    fn z(&self, j: usize, x: f64) -> f64 {
        (x - self.mean[j]) / self.scale[j]
    }
}

/// Configuration of the CUSUM drift detector.
#[derive(Debug, Clone)]
pub struct CusumConfig {
    /// Allowed drift `k` in z-score units: deviations below `k` decay the
    /// sums toward zero instead of accumulating.
    pub drift: f64,
}

impl Default for CusumConfig {
    fn default() -> Self {
        Self { drift: 0.5 }
    }
}

/// Two-sided CUSUM over per-feature z-scores: classic Page cumulative
/// sums `S⁺ = max(0, S⁺ + z - k)` and `S⁻ = max(0, S⁻ - z - k)`, scored
/// as the maximum sum across sides and features. Catches small sustained
/// mean shifts that the point detectors miss.
#[derive(Debug, Clone)]
pub struct CusumDetector {
    config: CusumConfig,
    profile: ZProfile,
    /// Per-feature upper cumulative sums.
    pos: Vec<f64>,
    /// Per-feature lower cumulative sums.
    neg: Vec<f64>,
}

impl CusumDetector {
    /// Create an (unfitted) detector.
    pub fn new(config: CusumConfig) -> Self {
        assert!(config.drift >= 0.0, "drift must be non-negative");
        Self { config, profile: ZProfile::default(), pos: Vec::new(), neg: Vec::new() }
    }

    /// The shared per-record recurrence of the batch and streaming paths.
    fn step(&mut self, record: &[f64]) -> f64 {
        assert_eq!(record.len(), self.profile.dims(), "dimension mismatch");
        let k = self.config.drift;
        let mut score = 0.0f64;
        for (j, &x) in record.iter().enumerate() {
            if !x.is_nan() {
                let z = self.profile.z(j, x);
                self.pos[j] = (self.pos[j] + z - k).max(0.0);
                self.neg[j] = (self.neg[j] - z - k).max(0.0);
            }
            // A gap leaves the sums as they were; they still count.
            score = score.max(self.pos[j]).max(self.neg[j]);
        }
        score
    }

    /// Serialize the fitted profile *and* the in-flight cumulative sums,
    /// so a restored detector continues the trace mid-stream.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.config.drift);
        self.profile.encode(w);
        w.put_f64s(&self.pos);
        w.put_f64s(&self.neg);
    }

    /// Decode a detector written by [`CusumDetector::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let drift = r.get_f64()?;
        if drift.is_nan() || drift < 0.0 {
            return Err(CodecError::Corrupt("CUSUM drift must be non-negative"));
        }
        let profile = ZProfile::decode(r)?;
        let pos = r.get_f64s()?;
        let neg = r.get_f64s()?;
        if pos.len() != profile.dims() || neg.len() != profile.dims() || profile.dims() == 0 {
            return Err(CodecError::Corrupt("CUSUM state length mismatch"));
        }
        Ok(Self { config: CusumConfig { drift }, profile, pos, neg })
    }
}

impl AnomalyScorer for CusumDetector {
    fn name(&self) -> &'static str {
        "CUSUM"
    }

    fn fit(&mut self, train: &[&TimeSeries]) {
        let _sp = exathlon_linalg::obs::span("train", "CUSUM.fit");
        self.profile = ZProfile::fit(train);
        self.pos = vec![0.0; self.profile.dims()];
        self.neg = vec![0.0; self.profile.dims()];
    }

    fn score_series(&self, ts: &TimeSeries) -> Vec<f64> {
        let _sp = exathlon_linalg::obs::span("score", "CUSUM.series");
        assert!(!self.pos.is_empty(), "detector not fitted");
        let mut fresh = self.clone();
        fresh.reset();
        ts.records().map(|r| fresh.step(r)).collect()
    }
}

impl StreamingDetector for CusumDetector {
    fn name(&self) -> &'static str {
        "CUSUM"
    }

    fn update(&mut self, record: &[f64]) -> f64 {
        assert!(!self.pos.is_empty(), "detector not fitted");
        self.step(record)
    }

    fn reset(&mut self) {
        self.pos.iter_mut().for_each(|v| *v = 0.0);
        self.neg.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Configuration of the Page-Hinkley drift detector.
#[derive(Debug, Clone)]
pub struct PageHinkleyConfig {
    /// Magnitude tolerance `δ` in z-score units: the running deviation
    /// only accumulates beyond this slack.
    pub delta: f64,
}

impl Default for PageHinkleyConfig {
    fn default() -> Self {
        Self { delta: 0.05 }
    }
}

/// Page-Hinkley test over per-feature z-scores, two-sided: cumulative
/// deviation from the *running* mean minus its historical minimum. Unlike
/// CUSUM (which drifts against the frozen training mean), PH adapts its
/// reference online, so it flags distribution *changes* rather than
/// distance from training.
#[derive(Debug, Clone)]
pub struct PageHinkleyDetector {
    config: PageHinkleyConfig,
    profile: ZProfile,
    /// Per-feature count of finite observations this trace.
    count: Vec<u64>,
    /// Per-feature running mean of the z-scores this trace.
    run_mean: Vec<f64>,
    /// Per-feature upward cumulative deviation and its minimum.
    up: Vec<f64>,
    min_up: Vec<f64>,
    /// Per-feature downward cumulative deviation and its minimum.
    down: Vec<f64>,
    min_down: Vec<f64>,
}

impl PageHinkleyDetector {
    /// Create an (unfitted) detector.
    pub fn new(config: PageHinkleyConfig) -> Self {
        assert!(config.delta >= 0.0, "delta must be non-negative");
        Self {
            config,
            profile: ZProfile::default(),
            count: Vec::new(),
            run_mean: Vec::new(),
            up: Vec::new(),
            min_up: Vec::new(),
            down: Vec::new(),
            min_down: Vec::new(),
        }
    }

    /// The shared per-record recurrence of the batch and streaming paths.
    fn step(&mut self, record: &[f64]) -> f64 {
        assert_eq!(record.len(), self.profile.dims(), "dimension mismatch");
        let d = self.config.delta;
        let mut score = 0.0f64;
        for (j, &x) in record.iter().enumerate() {
            if !x.is_nan() {
                let z = self.profile.z(j, x);
                self.count[j] += 1;
                self.run_mean[j] += (z - self.run_mean[j]) / self.count[j] as f64;
                self.up[j] += z - self.run_mean[j] - d;
                self.min_up[j] = self.min_up[j].min(self.up[j]);
                self.down[j] += self.run_mean[j] - z - d;
                self.min_down[j] = self.min_down[j].min(self.down[j]);
            }
            score = score.max(self.up[j] - self.min_up[j]).max(self.down[j] - self.min_down[j]);
        }
        score
    }

    /// Serialize the fitted profile *and* the in-flight running state,
    /// so a restored detector continues the trace mid-stream.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.config.delta);
        self.profile.encode(w);
        w.put_usize(self.count.len());
        for &c in &self.count {
            w.put_u64(c);
        }
        w.put_f64s(&self.run_mean);
        w.put_f64s(&self.up);
        w.put_f64s(&self.min_up);
        w.put_f64s(&self.down);
        w.put_f64s(&self.min_down);
    }

    /// Decode a detector written by [`PageHinkleyDetector::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let delta = r.get_f64()?;
        if delta.is_nan() || delta < 0.0 {
            return Err(CodecError::Corrupt("Page-Hinkley delta must be non-negative"));
        }
        let profile = ZProfile::decode(r)?;
        let n = r.get_len(8)?;
        let count = (0..n).map(|_| r.get_u64()).collect::<Result<Vec<u64>, _>>()?;
        let run_mean = r.get_f64s()?;
        let up = r.get_f64s()?;
        let min_up = r.get_f64s()?;
        let down = r.get_f64s()?;
        let min_down = r.get_f64s()?;
        let dims = profile.dims();
        if dims == 0
            || [count.len(), run_mean.len(), up.len(), min_up.len(), down.len(), min_down.len()]
                .iter()
                .any(|&l| l != dims)
        {
            return Err(CodecError::Corrupt("Page-Hinkley state length mismatch"));
        }
        Ok(Self {
            config: PageHinkleyConfig { delta },
            profile,
            count,
            run_mean,
            up,
            min_up,
            down,
            min_down,
        })
    }
}

impl AnomalyScorer for PageHinkleyDetector {
    fn name(&self) -> &'static str {
        "PageHinkley"
    }

    fn fit(&mut self, train: &[&TimeSeries]) {
        let _sp = exathlon_linalg::obs::span("train", "PageHinkley.fit");
        self.profile = ZProfile::fit(train);
        let dims = self.profile.dims();
        self.count = vec![0; dims];
        self.run_mean = vec![0.0; dims];
        self.up = vec![0.0; dims];
        self.min_up = vec![0.0; dims];
        self.down = vec![0.0; dims];
        self.min_down = vec![0.0; dims];
    }

    fn score_series(&self, ts: &TimeSeries) -> Vec<f64> {
        let _sp = exathlon_linalg::obs::span("score", "PageHinkley.series");
        assert!(!self.count.is_empty(), "detector not fitted");
        let mut fresh = self.clone();
        fresh.reset();
        ts.records().map(|r| fresh.step(r)).collect()
    }
}

impl StreamingDetector for PageHinkleyDetector {
    fn name(&self) -> &'static str {
        "PageHinkley"
    }

    fn update(&mut self, record: &[f64]) -> f64 {
        assert!(!self.count.is_empty(), "detector not fitted");
        self.step(record)
    }

    fn reset(&mut self) {
        self.count.iter_mut().for_each(|v| *v = 0);
        self.run_mean.iter_mut().for_each(|v| *v = 0.0);
        self.up.iter_mut().for_each(|v| *v = 0.0);
        self.min_up.iter_mut().for_each(|v| *v = 0.0);
        self.down.iter_mut().for_each(|v| *v = 0.0);
        self.min_down.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    fn ts(records: &[Vec<f64>]) -> TimeSeries {
        TimeSeries::from_records(default_names(records[0].len()), 0, records)
    }

    fn noisy(n: usize, shift_from: Option<usize>) -> TimeSeries {
        let records: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let base = (i as f64 * 0.7).sin() * 0.3;
                let shift = match shift_from {
                    Some(s) if i >= s => 1.5,
                    _ => 0.0,
                };
                vec![base + shift]
            })
            .collect();
        TimeSeries::from_records(default_names(1), 0, &records)
    }

    #[test]
    fn cusum_accumulates_on_sustained_shift() {
        let train = noisy(300, None);
        let mut det = CusumDetector::new(CusumConfig::default());
        det.fit(&[&train]);
        let scores = det.score_series(&noisy(200, Some(100)));
        let before = scores[..100].iter().cloned().fold(0.0, f64::max);
        // The sum grows with shift duration: late into the shift it dwarfs
        // anything the normal region produced.
        assert!(scores[150] > 10.0 * before.max(1e-9), "{} vs {}", scores[150], before);
        assert!(scores[199] > scores[110], "CUSUM must keep accumulating");
    }

    #[test]
    fn cusum_decays_without_drift() {
        let train = noisy(300, None);
        let mut det = CusumDetector::new(CusumConfig::default());
        det.fit(&[&train]);
        let scores = det.score_series(&noisy(300, None));
        // On in-profile data the sums keep collapsing to ~0 instead of
        // random-walking upward.
        assert!(scores[299] < 5.0, "CUSUM drifted on normal data: {}", scores[299]);
    }

    #[test]
    fn page_hinkley_flags_change_not_distance() {
        let train = noisy(300, None);
        let mut det = PageHinkleyDetector::new(PageHinkleyConfig::default());
        det.fit(&[&train]);
        let scores = det.score_series(&noisy(240, Some(120)));
        let before = scores[..120].iter().cloned().fold(0.0, f64::max);
        let after = scores[130..160].iter().cloned().fold(0.0, f64::max);
        assert!(after > 3.0 * before.max(1e-9), "PH missed the change: {after} vs {before}");
    }

    #[test]
    fn nan_gaps_leave_state_untouched() {
        let train = noisy(300, None);
        let mut det = CusumDetector::new(CusumConfig::default());
        det.fit(&[&train]);
        let mut s1: Vec<Vec<f64>> = (0..50).map(|i| vec![(i as f64 * 0.7).sin() * 0.3]).collect();
        s1[25] = vec![f64::NAN];
        let scores = det.score_series(&ts(&s1));
        assert!(scores.iter().all(|s| s.is_finite()));
        // The gap record repeats the previous score (sums unchanged).
        assert_eq!(scores[25], scores[24]);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_cusum_panics() {
        let det = CusumDetector::new(CusumConfig::default());
        let _ = det.score_series(&noisy(5, None));
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_page_hinkley_panics() {
        let det = PageHinkleyDetector::new(PageHinkleyConfig::default());
        let _ = det.score_series(&noisy(5, None));
    }
}
