//! Streaming EWMA forecaster: the per-tick state of a fitted
//! [`crate::ewma::EwmaDetector`].
//!
//! The batch detector's `errors` recurrence is already online — one level
//! per feature, updated record by record. This struct carries exactly
//! that state across `update` calls, so replaying a trace reproduces
//! [`crate::AnomalyScorer::score_series`] *bitwise*: same per-feature
//! operation order, same NaN-gap semantics (a missing value contributes a
//! 0 error and leaves the level untouched), same max-|z| aggregation.

use super::StreamingDetector;
use exathlon_linalg::codec::{ByteReader, ByteWriter, CodecError};

/// Per-tick EWMA forecast state. Build via
/// [`crate::ewma::EwmaDetector::streaming`].
#[derive(Debug, Clone)]
pub struct StreamingEwma {
    alpha: f64,
    /// Per-feature training error scale (the batch fit's normalizer).
    error_scale: Vec<f64>,
    /// Per-feature forecast level; NaN = no finite observation yet.
    level: Vec<f64>,
    /// False until the first record of the trace initializes the levels.
    started: bool,
}

impl StreamingEwma {
    /// Streaming state from a fitted smoothing factor and error scale.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1)` or `error_scale` is empty.
    pub fn new(alpha: f64, error_scale: Vec<f64>) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        assert!(!error_scale.is_empty(), "empty error scale");
        let dims = error_scale.len();
        Self { alpha, error_scale, level: vec![f64::NAN; dims], started: false }
    }

    /// Serialize the full state — fitted scales *and* the in-flight
    /// levels, so a restored detector continues the trace mid-stream.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.alpha);
        w.put_f64s(&self.error_scale);
        w.put_f64s(&self.level);
        w.put_bool(self.started);
    }

    /// Decode state written by [`StreamingEwma::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let alpha = r.get_f64()?;
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(CodecError::Corrupt("EWMA alpha out of range"));
        }
        let error_scale = r.get_f64s()?;
        let level = r.get_f64s()?;
        if error_scale.is_empty() || level.len() != error_scale.len() {
            return Err(CodecError::Corrupt("EWMA state length mismatch"));
        }
        let started = r.get_bool()?;
        Ok(Self { alpha, error_scale, level, started })
    }
}

impl StreamingDetector for StreamingEwma {
    fn name(&self) -> &'static str {
        "EWMA"
    }

    fn update(&mut self, record: &[f64]) -> f64 {
        assert_eq!(record.len(), self.level.len(), "dimension mismatch");
        if !self.started {
            // Record 0 of the batch recurrence: levels take the record's
            // values (NaN = still uninitialized), error is 0 everywhere.
            self.level.copy_from_slice(record);
            self.started = true;
            return 0.0;
        }
        let a = self.alpha;
        let mut score = 0.0f64;
        for (j, &x) in record.iter().enumerate() {
            let err = if x.is_nan() {
                // Gap: no forecast, no level update.
                0.0
            } else if self.level[j].is_nan() {
                // First finite observation: initialize, nothing to forecast.
                self.level[j] = x;
                0.0
            } else {
                let e = x - self.level[j];
                self.level[j] += a * (x - self.level[j]);
                e
            };
            score = score.max((err / self.error_scale[j]).abs());
        }
        score
    }

    fn reset(&mut self) {
        for l in &mut self.level {
            *l = f64::NAN;
        }
        self.started = false;
    }
}

#[cfg(test)]
mod tests {
    use super::super::replay;
    use crate::ewma::{EwmaConfig, EwmaDetector};
    use crate::AnomalyScorer;
    use exathlon_tsdata::series::default_names;
    use exathlon_tsdata::TimeSeries;

    fn trace(n: usize, gap: Option<usize>) -> TimeSeries {
        let records: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let v = (i as f64 * 0.17).sin() * 2.0 + (i as f64 * 0.03).cos();
                vec![if Some(i) == gap { f64::NAN } else { v }, (i as f64 * 0.4).sin()]
            })
            .collect();
        TimeSeries::from_records(default_names(2), 0, &records)
    }

    #[test]
    fn replay_matches_batch_bitwise() {
        let train = trace(400, None);
        let mut det = EwmaDetector::new(EwmaConfig::default());
        det.fit(&[&train]);
        for test in [trace(120, None), trace(120, Some(60)), trace(1, None)] {
            let batch = det.score_series(&test);
            let streamed = replay(&mut det.streaming(), &test);
            assert_eq!(batch.len(), streamed.len());
            for (i, (b, s)) in batch.iter().zip(&streamed).enumerate() {
                assert_eq!(b.to_bits(), s.to_bits(), "record {i}: batch {b} vs stream {s}");
            }
        }
    }

    #[test]
    fn reset_isolates_traces() {
        let train = trace(400, None);
        let mut det = EwmaDetector::new(EwmaConfig::default());
        det.fit(&[&train]);
        let mut s = det.streaming();
        // Pollute state with one trace, then replay another; scores must
        // equal a fresh replay of the second trace.
        let _ = replay(&mut s, &trace(50, None));
        let a = replay(&mut s, &trace(80, Some(10)));
        let b = replay(&mut det.streaming(), &trace(80, Some(10)));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn streaming_from_unfitted_panics() {
        let det = EwmaDetector::new(EwmaConfig::default());
        let _ = det.streaming();
    }
}
