//! Streaming histogram threshold: per-feature rarity against training
//! histograms.
//!
//! Fit builds one equal-width histogram per feature over the pooled
//! training values ([`exathlon_linalg::stats::Histogram`] — the same
//! structure MacroBase's discretization uses). Scoring a record is O(dims):
//! each finite feature contributes the negative log2 relative frequency of
//! its bin (Laplace-smoothed so empty bins score high but finite), values
//! outside the training range count as an empty bin, and the record score
//! is the maximum across features. Stateless per record, so the batch and
//! streaming paths are the same function called through two traits.

use super::StreamingDetector;
use crate::scorer::AnomalyScorer;
use exathlon_linalg::stats::Histogram;
use exathlon_tsdata::TimeSeries;

/// Configuration of the histogram detector.
#[derive(Debug, Clone)]
pub struct HistogramConfig {
    /// Equal-width bins per feature.
    pub bins: usize,
}

impl Default for HistogramConfig {
    fn default() -> Self {
        Self { bins: 64 }
    }
}

/// The per-feature histogram rarity detector.
#[derive(Debug, Clone)]
pub struct HistogramDetector {
    config: HistogramConfig,
    /// One histogram per feature, with its training value range.
    hists: Vec<(Histogram, f64, f64)>,
}

impl HistogramDetector {
    /// Create an (unfitted) detector.
    pub fn new(config: HistogramConfig) -> Self {
        assert!(config.bins > 0, "need at least one bin");
        Self { config, hists: Vec::new() }
    }

    /// Rarity of one record: max over finite features of the smoothed
    /// negative log2 bin frequency.
    fn score_record(&self, record: &[f64]) -> f64 {
        assert_eq!(record.len(), self.hists.len(), "dimension mismatch");
        let bins = self.config.bins;
        let mut score = 0.0f64;
        for (&x, (h, lo, hi)) in record.iter().zip(&self.hists) {
            if x.is_nan() {
                continue;
            }
            // Out-of-range values saw zero training mass; in-range values
            // read their bin count.
            let count = if x < *lo || x > *hi { 0 } else { h.counts()[h.bin_of(x)] };
            let p = (count as f64 + 1.0) / (h.total() as f64 + bins as f64);
            score = score.max(-p.log2());
        }
        score
    }
}

impl AnomalyScorer for HistogramDetector {
    fn name(&self) -> &'static str {
        "Histogram"
    }

    fn fit(&mut self, train: &[&TimeSeries]) {
        let _sp = exathlon_linalg::obs::span("train", "Histogram.fit");
        assert!(!train.is_empty(), "no training traces");
        let dims = train[0].dims();
        let mut hists = Vec::with_capacity(dims);
        for j in 0..dims {
            let mut col = Vec::new();
            for ts in train {
                col.extend(ts.feature_column(j));
            }
            let h = Histogram::from_data(&col, self.config.bins);
            let lo = h.bin_bounds(0).0;
            let hi = h.bin_bounds(self.config.bins - 1).1;
            hists.push((h, lo, hi));
        }
        self.hists = hists;
    }

    fn score_series(&self, ts: &TimeSeries) -> Vec<f64> {
        let _sp = exathlon_linalg::obs::span("score", "Histogram.series");
        assert!(!self.hists.is_empty(), "detector not fitted");
        ts.records().map(|r| self.score_record(r)).collect()
    }
}

impl StreamingDetector for HistogramDetector {
    fn name(&self) -> &'static str {
        "Histogram"
    }

    fn update(&mut self, record: &[f64]) -> f64 {
        assert!(!self.hists.is_empty(), "detector not fitted");
        self.score_record(record)
    }

    fn reset(&mut self) {
        // Stateless per record: nothing to forget.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    fn ts(records: &[Vec<f64>]) -> TimeSeries {
        TimeSeries::from_records(default_names(records[0].len()), 0, records)
    }

    #[test]
    fn rare_values_score_higher_than_common() {
        // 90% of mass near 0, a little near 5.
        let mut records: Vec<Vec<f64>> = (0..180).map(|i| vec![(i % 10) as f64 * 0.05]).collect();
        records.extend((0..20).map(|i| vec![5.0 + (i % 3) as f64 * 0.05]));
        let train = ts(&records);
        let mut det = HistogramDetector::new(HistogramConfig::default());
        det.fit(&[&train]);
        let scores = det.score_series(&ts(&[vec![0.2], vec![5.0], vec![2.5]]));
        assert!(scores[1] > scores[0], "rare region must outscore common: {scores:?}");
        assert!(scores[2] > scores[1], "empty bin must outscore rare: {scores:?}");
    }

    #[test]
    fn out_of_range_scores_like_empty_bin() {
        let train = ts(&(0..100).map(|i| vec![(i % 10) as f64]).collect::<Vec<_>>());
        let mut det = HistogramDetector::new(HistogramConfig::default());
        det.fit(&[&train]);
        let scores = det.score_series(&ts(&[vec![1e6], vec![4.5]]));
        assert!(scores[0] >= scores[1], "out-of-range must score at least in-range: {scores:?}");
        assert!(scores[0].is_finite(), "smoothing must keep unseen bins finite");
    }

    #[test]
    fn nan_features_skipped() {
        let train = ts(&(0..50).map(|i| vec![i as f64 % 5.0]).collect::<Vec<_>>());
        let mut det = HistogramDetector::new(HistogramConfig::default());
        det.fit(&[&train]);
        assert_eq!(det.score_series(&ts(&[vec![f64::NAN]]))[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_panics() {
        let det = HistogramDetector::new(HistogramConfig::default());
        let _ = det.score_series(&ts(&[vec![1.0]]));
    }
}
