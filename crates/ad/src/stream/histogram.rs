//! Streaming histogram threshold: per-feature rarity against training
//! histograms.
//!
//! Fit builds one equal-width histogram per feature over the pooled
//! training values ([`exathlon_linalg::stats::Histogram`] — the same
//! structure MacroBase's discretization uses). Scoring a record is O(dims):
//! each finite feature contributes the negative log2 relative frequency of
//! its bin (Laplace-smoothed so empty bins score high but finite), values
//! outside the training range count as an empty bin, and the record score
//! is the maximum across features. Stateless per record, so the batch and
//! streaming paths are the same function called through two traits.

use super::StreamingDetector;
use crate::scorer::AnomalyScorer;
use exathlon_linalg::stats::Histogram;
use exathlon_tsdata::TimeSeries;

/// Configuration of the histogram detector.
#[derive(Debug, Clone)]
pub struct HistogramConfig {
    /// Equal-width bins per feature.
    pub bins: usize,
}

impl Default for HistogramConfig {
    fn default() -> Self {
        Self { bins: 64 }
    }
}

/// The per-feature histogram rarity detector.
#[derive(Debug, Clone)]
pub struct HistogramDetector {
    config: HistogramConfig,
    /// One histogram per feature, with its training value range.
    hists: Vec<(Histogram, f64, f64)>,
}

impl HistogramDetector {
    /// Create an (unfitted) detector.
    pub fn new(config: HistogramConfig) -> Self {
        assert!(config.bins > 0, "need at least one bin");
        Self { config, hists: Vec::new() }
    }

    /// Rarity of one record: max over finite features of the smoothed
    /// negative log2 bin frequency.
    fn score_record(&self, record: &[f64]) -> f64 {
        assert_eq!(record.len(), self.hists.len(), "dimension mismatch");
        let bins = self.config.bins;
        let mut score = 0.0f64;
        for (&x, (h, lo, hi)) in record.iter().zip(&self.hists) {
            if x.is_nan() {
                continue;
            }
            // Out-of-range values saw zero training mass; in-range values
            // read their bin count.
            let count = if x < *lo || x > *hi { 0 } else { h.counts()[h.bin_of(x)] };
            let p = (count as f64 + 1.0) / (h.total() as f64 + bins as f64);
            score = score.max(-p.log2());
        }
        score
    }

    /// Serialize the fitted detector (config + per-feature histograms
    /// with their stored range bounds) into `w`.
    pub fn encode(&self, w: &mut exathlon_linalg::codec::ByteWriter) {
        w.put_usize(self.config.bins);
        w.put_usize(self.hists.len());
        for (h, lo, hi) in &self.hists {
            h.encode(w);
            w.put_f64(*lo);
            w.put_f64(*hi);
        }
    }

    /// Decode a detector written by [`HistogramDetector::encode`].
    pub fn decode(
        r: &mut exathlon_linalg::codec::ByteReader<'_>,
    ) -> Result<Self, exathlon_linalg::codec::CodecError> {
        let bins = r.get_usize()?;
        if bins == 0 {
            return Err(exathlon_linalg::codec::CodecError::Corrupt("zero histogram bins"));
        }
        let n = r.get_usize()?;
        let mut hists = Vec::new();
        for _ in 0..n {
            let h = Histogram::decode(r)?;
            if h.counts().len() != bins {
                return Err(exathlon_linalg::codec::CodecError::Corrupt(
                    "histogram bin count mismatch",
                ));
            }
            let lo = r.get_f64()?;
            let hi = r.get_f64()?;
            hists.push((h, lo, hi));
        }
        Ok(Self { config: HistogramConfig { bins }, hists })
    }
}

impl AnomalyScorer for HistogramDetector {
    fn name(&self) -> &'static str {
        "Histogram"
    }

    fn fit(&mut self, train: &[&TimeSeries]) {
        let _sp = exathlon_linalg::obs::span("train", "Histogram.fit");
        assert!(!train.is_empty(), "no training traces");
        let dims = train[0].dims();
        let mut hists = Vec::with_capacity(dims);
        for j in 0..dims {
            let mut col = Vec::new();
            for ts in train {
                col.extend(ts.feature_column(j));
            }
            let h = Histogram::from_data(&col, self.config.bins);
            // The histogram's own exact range, NOT rederived through
            // `bin_bounds` float arithmetic: `lo + bins * width` can
            // round below the true maximum, which made the training max
            // itself score as out-of-range (count 0, max rarity).
            let (lo, hi) = h.range();
            hists.push((h, lo, hi));
        }
        self.hists = hists;
    }

    fn score_series(&self, ts: &TimeSeries) -> Vec<f64> {
        let _sp = exathlon_linalg::obs::span("score", "Histogram.series");
        assert!(!self.hists.is_empty(), "detector not fitted");
        ts.records().map(|r| self.score_record(r)).collect()
    }
}

impl StreamingDetector for HistogramDetector {
    fn name(&self) -> &'static str {
        "Histogram"
    }

    fn update(&mut self, record: &[f64]) -> f64 {
        assert!(!self.hists.is_empty(), "detector not fitted");
        self.score_record(record)
    }

    fn reset(&mut self) {
        // Stateless per record: nothing to forget.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    fn ts(records: &[Vec<f64>]) -> TimeSeries {
        TimeSeries::from_records(default_names(records[0].len()), 0, records)
    }

    #[test]
    fn rare_values_score_higher_than_common() {
        // 90% of mass near 0, a little near 5.
        let mut records: Vec<Vec<f64>> = (0..180).map(|i| vec![(i % 10) as f64 * 0.05]).collect();
        records.extend((0..20).map(|i| vec![5.0 + (i % 3) as f64 * 0.05]));
        let train = ts(&records);
        let mut det = HistogramDetector::new(HistogramConfig::default());
        det.fit(&[&train]);
        let scores = det.score_series(&ts(&[vec![0.2], vec![5.0], vec![2.5]]));
        assert!(scores[1] > scores[0], "rare region must outscore common: {scores:?}");
        assert!(scores[2] > scores[1], "empty bin must outscore rare: {scores:?}");
    }

    #[test]
    fn out_of_range_scores_like_empty_bin() {
        let train = ts(&(0..100).map(|i| vec![(i % 10) as f64]).collect::<Vec<_>>());
        let mut det = HistogramDetector::new(HistogramConfig::default());
        det.fit(&[&train]);
        let scores = det.score_series(&ts(&[vec![1e6], vec![4.5]]));
        assert!(scores[0] >= scores[1], "out-of-range must score at least in-range: {scores:?}");
        assert!(scores[0].is_finite(), "smoothing must keep unseen bins finite");
    }

    #[test]
    fn nan_features_skipped() {
        let train = ts(&(0..50).map(|i| vec![i as f64 % 5.0]).collect::<Vec<_>>());
        let mut det = HistogramDetector::new(HistogramConfig::default());
        det.fit(&[&train]);
        assert_eq!(det.score_series(&ts(&[vec![f64::NAN]]))[0], 0.0);
    }

    /// Regression test: with the out-of-range bounds rederived through
    /// `bin_bounds(bins - 1)` float arithmetic, `lo + bins * width` can
    /// round below the true training maximum (e.g. range `0.1..100.3`
    /// with 3 bins rederives `hi = 100.29999999999998`), so the maximum
    /// itself was classified out-of-range and scored maximal rarity. The
    /// fit must use the histogram's exact `range()` instead.
    #[test]
    fn training_max_scores_in_range() {
        // Ranges picked so the rederived upper bound rounds strictly
        // below the true maximum for at least one bin count.
        for (lo, hi, bins) in
            [(0.1, 100.3, 3), (0.1, 0.313, 13), (0.3, 3.1, 9), (-0.3, 0.9, 5), (1.1, 100.3, 11)]
        {
            let n = 60;
            let mut records: Vec<Vec<f64>> =
                (0..n).map(|i| vec![lo + (hi - lo) * i as f64 / (n - 1) as f64]).collect();
            // Pin the endpoint exactly: `lo + (hi - lo)` itself rounds.
            records[n - 1][0] = hi;
            let train = ts(&records);
            let mut det = HistogramDetector::new(HistogramConfig { bins });
            det.fit(&[&train]);
            let total = n as f64;
            // The empty-bin (out-of-range) score under Laplace smoothing.
            let oor_score = -((1.0f64) / (total + bins as f64)).log2();
            let max_score = det.score_series(&ts(&[vec![hi]]))[0];
            assert!(
                max_score < oor_score,
                "training max {hi} scored as out-of-range for bins={bins}: \
                 {max_score} vs empty-bin {oor_score}"
            );
        }
    }

    #[test]
    fn codec_round_trip_scores_bitwise() {
        let records: Vec<Vec<f64>> =
            (0..150).map(|i| vec![(i as f64 * 0.31).sin() * 2.0, (i % 7) as f64]).collect();
        let train = ts(&records);
        let mut det = HistogramDetector::new(HistogramConfig { bins: 16 });
        det.fit(&[&train]);
        let mut w = exathlon_linalg::codec::ByteWriter::new();
        det.encode(&mut w);
        let bytes = w.into_bytes();
        let restored =
            HistogramDetector::decode(&mut exathlon_linalg::codec::ByteReader::new(&bytes))
                .unwrap();
        let probe = ts(&[vec![0.5, 3.0], vec![-5.0, 100.0], vec![f64::NAN, 2.0]]);
        let a = det.score_series(&probe);
        let b = restored.score_series(&probe);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for cut in 0..bytes.len() {
            let mut r = exathlon_linalg::codec::ByteReader::new(&bytes[..cut]);
            assert!(HistogramDetector::decode(&mut r).is_err(), "truncation at {cut} must error");
        }
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_panics() {
        let det = HistogramDetector::new(HistogramConfig::default());
        let _ = det.score_series(&ts(&[vec![1.0]]));
    }
}
