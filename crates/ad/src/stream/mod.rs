//! The streaming detection engine: per-record scoring with O(window)
//! state.
//!
//! Everything else in this crate is batch — materialize a full trace,
//! fit, then call [`crate::AnomalyScorer::score_series`] on the whole
//! thing. Exathlon's target setting (§2, §5) is repeated executions
//! *monitored as they happen*: records arrive one at a time and the
//! detector must emit a score per tick from bounded state. This module
//! provides that data plane:
//!
//! * [`StreamingDetector`] — the online counterpart of
//!   [`crate::AnomalyScorer`]: `update(&[f64]) -> f64` per record,
//!   `reset()` between traces,
//! * [`StreamingEwma`] — the fitted EWMA forecaster's per-tick state
//!   ([`crate::ewma::EwmaDetector::streaming`]), bitwise equal to batch,
//! * [`CusumDetector`] / [`PageHinkleyDetector`] — O(1) mean-shift /
//!   drift detectors over per-feature robust z-scores,
//! * [`HistogramDetector`] — per-feature streaming histogram rarity
//!   threshold (negative log frequency against training histograms),
//! * [`SpectralResidualDetector`] — the SR saliency score of the newest
//!   point over a ring-buffer window (Ren et al., KDD 2019),
//! * [`adapters`] — incremental wrappers over the fitted batch scorers:
//!   [`StreamingAe`] scores a ring-buffer window per tick; [`StreamingKnn`]
//!   and [`StreamingLof`] score each record against their frozen reference
//!   sets through the shared distance kernel.
//!
//! **Equivalence contract.** Replaying a trace record-by-record through
//! `update` reproduces the batch scorer's output: bitwise for EWMA, kNN
//! and LOF (identical arithmetic against identical state), and
//! window-shifted for AE (the streaming score at tick `t` is the batch
//! score of the window *ending* at `t` — a stream cannot average in
//! windows it has not seen). The O(1) detectors implement
//! [`crate::AnomalyScorer`] too; their `score_series` replays a fresh
//! copy of their own streaming state, so batch and stream are one
//! recurrence with two drivers. `crates/ad/tests/stream_equivalence.rs`
//! pins all of this on random traces.

pub mod adapters;
pub mod cusum;
pub mod ewma;
pub mod histogram;
pub mod snapshot;
pub mod spectral;

pub use adapters::{StreamingAe, StreamingKnn, StreamingLof};
pub use cusum::{CusumConfig, CusumDetector, PageHinkleyConfig, PageHinkleyDetector};
pub use ewma::StreamingEwma;
pub use histogram::{HistogramConfig, HistogramDetector};
pub use snapshot::ServableDetector;
pub use spectral::{SpectralResidualConfig, SpectralResidualDetector};

use exathlon_tsdata::TimeSeries;

/// An online anomaly scorer: one score per record, O(window) state.
///
/// The trait is the streaming face of a *fitted* model — implementations
/// are constructed from trained batch detectors (or fitted directly) and
/// never learn during `update`. State accumulated across `update` calls
/// is per-trace scratch (levels, ring buffers, CUSUM sums), discarded by
/// [`StreamingDetector::reset`] when the monitored execution changes.
pub trait StreamingDetector {
    /// Detector name for reports and bench labels.
    fn name(&self) -> &'static str;

    /// Consume one record, return its outlier score (higher = more
    /// anomalous). Must run in O(window) time and state.
    fn update(&mut self, record: &[f64]) -> f64;

    /// Drop per-trace state (the fitted model is kept), so the next
    /// `update` starts a fresh trace.
    fn reset(&mut self);
}

/// Replay a full trace record-by-record: `reset`, then one `update` per
/// record. This is the reference driver the equivalence tests pin batch
/// scoring against.
pub fn replay(det: &mut dyn StreamingDetector, ts: &TimeSeries) -> Vec<f64> {
    det.reset();
    ts.records().map(|r| det.update(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    /// A minimal detector counting updates, to pin the replay driver's
    /// reset-then-update contract.
    struct Counter {
        ticks: usize,
        resets: usize,
    }

    impl StreamingDetector for Counter {
        fn name(&self) -> &'static str {
            "counter"
        }

        fn update(&mut self, _record: &[f64]) -> f64 {
            self.ticks += 1;
            self.ticks as f64
        }

        fn reset(&mut self) {
            self.ticks = 0;
            self.resets += 1;
        }
    }

    #[test]
    fn replay_resets_then_scores_every_record() {
        let ts = TimeSeries::from_records(default_names(1), 0, &[vec![1.0], vec![2.0], vec![3.0]]);
        let mut det = Counter { ticks: 100, resets: 0 };
        let scores = replay(&mut det, &ts);
        assert_eq!(scores, vec![1.0, 2.0, 3.0]);
        assert_eq!(det.resets, 1);
        let again = replay(&mut det, &ts);
        assert_eq!(again, vec![1.0, 2.0, 3.0], "second replay must start fresh");
    }

    #[test]
    fn replay_empty_trace_is_empty() {
        let ts = TimeSeries::empty(default_names(1));
        let mut det = Counter { ticks: 0, resets: 0 };
        assert!(replay(&mut det, &ts).is_empty());
    }
}
