//! Serializable detector snapshots for the serving layer.
//!
//! [`ServableDetector`] closes the streaming family over one concrete
//! enum so a fitted detector — *including* its in-flight per-trace state
//! (CUSUM sums, EWMA levels, ring-buffer windows) — can be written to a
//! byte stream and restored elsewhere. The wire format is the tag byte
//! of the variant followed by the variant's own `encode`, all `f64`s as
//! raw bit patterns, so a restored detector scores **bitwise
//! identically** to the original and continues a trace exactly where the
//! snapshot left it. `crates/ad/tests/stream_equivalence.rs` and the
//! core checkpoint tests pin this.

use super::adapters::{StreamingAe, StreamingKnn, StreamingLof};
use super::cusum::{CusumDetector, PageHinkleyDetector};
use super::ewma::StreamingEwma;
use super::histogram::HistogramDetector;
use super::spectral::SpectralResidualDetector;
use super::StreamingDetector;
use exathlon_linalg::codec::{ByteReader, ByteWriter, CodecError};

/// Every streaming detector the serving layer can host, as one
/// serializable value. Construct via `From` impls or
/// `exathlon_core::replay::build_servable`.
#[derive(Debug, Clone)]
pub enum ServableDetector {
    /// EWMA forecaster state ([`StreamingEwma`]).
    Ewma(StreamingEwma),
    /// Two-sided CUSUM drift detector.
    Cusum(CusumDetector),
    /// Page-Hinkley drift detector.
    PageHinkley(PageHinkleyDetector),
    /// Per-feature histogram rarity threshold.
    Histogram(HistogramDetector),
    /// Spectral-residual saliency over a ring window.
    SpectralResidual(SpectralResidualDetector),
    /// Autoencoder scored over a sliding ring window.
    Ae(StreamingAe),
    /// Per-record kNN against a frozen reference set.
    Knn(StreamingKnn),
    /// Per-record LOF against a frozen reference set.
    Lof(StreamingLof),
}

impl ServableDetector {
    /// The variant's stable wire tag.
    fn tag(&self) -> u8 {
        match self {
            Self::Ewma(_) => 0,
            Self::Cusum(_) => 1,
            Self::PageHinkley(_) => 2,
            Self::Histogram(_) => 3,
            Self::SpectralResidual(_) => 4,
            Self::Ae(_) => 5,
            Self::Knn(_) => 6,
            Self::Lof(_) => 7,
        }
    }

    /// Serialize the detector — variant tag, then the variant's own
    /// state, bitwise.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(self.tag());
        match self {
            Self::Ewma(d) => d.encode(w),
            Self::Cusum(d) => d.encode(w),
            Self::PageHinkley(d) => d.encode(w),
            Self::Histogram(d) => d.encode(w),
            Self::SpectralResidual(d) => d.encode(w),
            Self::Ae(d) => d.encode(w),
            Self::Knn(d) => d.encode(w),
            Self::Lof(d) => d.encode(w),
        }
    }

    /// Decode a detector written by [`ServableDetector::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(Self::Ewma(StreamingEwma::decode(r)?)),
            1 => Ok(Self::Cusum(CusumDetector::decode(r)?)),
            2 => Ok(Self::PageHinkley(PageHinkleyDetector::decode(r)?)),
            3 => Ok(Self::Histogram(HistogramDetector::decode(r)?)),
            4 => Ok(Self::SpectralResidual(SpectralResidualDetector::decode(r)?)),
            5 => Ok(Self::Ae(StreamingAe::decode(r)?)),
            6 => Ok(Self::Knn(StreamingKnn::decode(r)?)),
            7 => Ok(Self::Lof(StreamingLof::decode(r)?)),
            _ => Err(CodecError::Corrupt("unknown detector tag")),
        }
    }
}

impl StreamingDetector for ServableDetector {
    fn name(&self) -> &'static str {
        match self {
            Self::Ewma(d) => d.name(),
            Self::Cusum(d) => StreamingDetector::name(d),
            Self::PageHinkley(d) => StreamingDetector::name(d),
            Self::Histogram(d) => StreamingDetector::name(d),
            Self::SpectralResidual(d) => StreamingDetector::name(d),
            Self::Ae(d) => d.name(),
            Self::Knn(d) => d.name(),
            Self::Lof(d) => d.name(),
        }
    }

    fn update(&mut self, record: &[f64]) -> f64 {
        match self {
            Self::Ewma(d) => d.update(record),
            Self::Cusum(d) => StreamingDetector::update(d, record),
            Self::PageHinkley(d) => StreamingDetector::update(d, record),
            Self::Histogram(d) => StreamingDetector::update(d, record),
            Self::SpectralResidual(d) => StreamingDetector::update(d, record),
            Self::Ae(d) => d.update(record),
            Self::Knn(d) => d.update(record),
            Self::Lof(d) => d.update(record),
        }
    }

    fn reset(&mut self) {
        match self {
            Self::Ewma(d) => d.reset(),
            Self::Cusum(d) => StreamingDetector::reset(d),
            Self::PageHinkley(d) => StreamingDetector::reset(d),
            Self::Histogram(d) => StreamingDetector::reset(d),
            Self::SpectralResidual(d) => StreamingDetector::reset(d),
            Self::Ae(d) => d.reset(),
            Self::Knn(d) => d.reset(),
            Self::Lof(d) => d.reset(),
        }
    }
}

impl From<StreamingEwma> for ServableDetector {
    fn from(d: StreamingEwma) -> Self {
        Self::Ewma(d)
    }
}

impl From<CusumDetector> for ServableDetector {
    fn from(d: CusumDetector) -> Self {
        Self::Cusum(d)
    }
}

impl From<PageHinkleyDetector> for ServableDetector {
    fn from(d: PageHinkleyDetector) -> Self {
        Self::PageHinkley(d)
    }
}

impl From<HistogramDetector> for ServableDetector {
    fn from(d: HistogramDetector) -> Self {
        Self::Histogram(d)
    }
}

impl From<SpectralResidualDetector> for ServableDetector {
    fn from(d: SpectralResidualDetector) -> Self {
        Self::SpectralResidual(d)
    }
}

impl From<StreamingAe> for ServableDetector {
    fn from(d: StreamingAe) -> Self {
        Self::Ae(d)
    }
}

impl From<StreamingKnn> for ServableDetector {
    fn from(d: StreamingKnn) -> Self {
        Self::Knn(d)
    }
}

impl From<StreamingLof> for ServableDetector {
    fn from(d: StreamingLof) -> Self {
        Self::Lof(d)
    }
}

#[cfg(test)]
mod tests {
    use super::super::replay;
    use super::*;
    use crate::ewma::{EwmaConfig, EwmaDetector};
    use crate::knn_ad::{KnnConfig, KnnDetector};
    use crate::scorer::AnomalyScorer;
    use crate::stream::cusum::CusumConfig;
    use crate::stream::histogram::HistogramConfig;
    use crate::stream::spectral::SpectralResidualConfig;
    use exathlon_tsdata::series::default_names;
    use exathlon_tsdata::TimeSeries;

    fn trace(n: usize, seed: u64) -> TimeSeries {
        let records: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 * 0.23 + seed as f64;
                vec![t.sin() * 2.0, (t * 0.7).cos()]
            })
            .collect();
        TimeSeries::from_records(default_names(2), 0, &records)
    }

    fn round_trip(det: &ServableDetector) -> (Vec<u8>, ServableDetector) {
        let mut w = ByteWriter::new();
        det.encode(&mut w);
        let bytes = w.into_bytes();
        let restored = ServableDetector::decode(&mut ByteReader::new(&bytes)).unwrap();
        (bytes, restored)
    }

    /// Every variant: snapshot mid-stream, then original and restored
    /// copies must score the *rest* of the trace bitwise identically —
    /// the snapshot carries in-flight state, not just the fitted model.
    #[test]
    fn mid_stream_snapshot_continues_bitwise() {
        let train = trace(300, 1);
        let mut dets: Vec<ServableDetector> = Vec::new();
        let mut ewma = EwmaDetector::new(EwmaConfig::default());
        ewma.fit(&[&train]);
        dets.push(ewma.streaming().into());
        let mut cusum = CusumDetector::new(CusumConfig::default());
        cusum.fit(&[&train]);
        dets.push(cusum.into());
        let mut hist = HistogramDetector::new(HistogramConfig { bins: 16 });
        hist.fit(&[&train]);
        dets.push(hist.into());
        dets.push(
            SpectralResidualDetector::new(SpectralResidualConfig { window: 16, saliency_avg: 3 })
                .into(),
        );
        let mut knn = KnnDetector::new(KnnConfig { k: 3, max_references: 100 });
        knn.fit(&[&train]);
        dets.push(StreamingKnn::new(knn).into());

        let test = trace(80, 2);
        for mut det in dets {
            // Stream half the trace, snapshot, then continue both copies.
            det.reset();
            for i in 0..40 {
                let _ = det.update(test.record(i));
            }
            let (bytes, mut restored) = round_trip(&det);
            for i in 40..80 {
                let a = det.update(test.record(i));
                let b = restored.update(test.record(i));
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} diverged at record {i}: {a} vs {b}",
                    StreamingDetector::name(&det)
                );
            }
            // Every truncation of the snapshot errors instead of panicking.
            for cut in 0..bytes.len().min(64) {
                let mut r = ByteReader::new(&bytes[..cut]);
                assert!(ServableDetector::decode(&mut r).is_err());
            }
        }
    }

    #[test]
    fn unknown_tag_is_corrupt() {
        let mut w = ByteWriter::new();
        w.put_u8(200);
        let mut r = ByteReader::new(w.as_slice());
        assert!(matches!(
            ServableDetector::decode(&mut r),
            Err(CodecError::Corrupt("unknown detector tag"))
        ));
    }

    #[test]
    fn replay_through_enum_matches_inner() {
        let train = trace(200, 3);
        let mut cusum = CusumDetector::new(CusumConfig::default());
        cusum.fit(&[&train]);
        let test = trace(50, 4);
        let direct = replay(&mut cusum.clone(), &test);
        let mut wrapped: ServableDetector = cusum.into();
        let through_enum = replay(&mut wrapped, &test);
        assert_eq!(direct, through_enum);
    }
}
