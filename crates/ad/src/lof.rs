//! Local outlier factor (Breunig et al.) — the density-based AD family of
//! the paper's related work (§2, citation 9): a point is anomalous when its local
//! density is low relative to its neighbours' densities.
//!
//! This is the classic formulation computed against a (sub-sampled)
//! training reference set: k-distance, reachability distance, local
//! reachability density (lrd), and the LOF ratio.

use crate::scorer::AnomalyScorer;
use exathlon_linalg::codec::{ByteReader, ByteWriter, CodecError};
use exathlon_linalg::kernel::{self, DistanceKernel};
use exathlon_linalg::Matrix;
use exathlon_tsdata::window::{materialized_windows_mode, WindowSet};
use exathlon_tsdata::TimeSeries;

/// Configuration of the LOF detector.
#[derive(Debug, Clone)]
pub struct LofConfig {
    /// Neighbourhood size `k`.
    pub k: usize,
    /// Cap on the stored reference set.
    pub max_references: usize,
}

impl Default for LofConfig {
    fn default() -> Self {
        Self { k: 10, max_references: 1000 }
    }
}

/// The LOF anomaly detector, sharing the batched distance kernel (and
/// its single non-finite sanitization rule) with kNN.
#[derive(Debug, Clone)]
pub struct LofDetector {
    config: LofConfig,
    kernel: DistanceKernel,
    /// Per-reference k-distance.
    k_distance: Vec<f64>,
    /// Per-reference local reachability density.
    lrd: Vec<f64>,
    /// Per-reference k nearest reference indices.
    neighbours: Vec<Vec<usize>>,
}

impl LofDetector {
    /// Create an (unfitted) detector.
    pub fn new(config: LofConfig) -> Self {
        assert!(config.k > 0, "k must be positive");
        Self {
            config,
            kernel: DistanceKernel::fit::<Vec<f64>>(&[]),
            k_distance: Vec::new(),
            lrd: Vec::new(),
            neighbours: Vec::new(),
        }
    }

    /// k nearest reference indices (ascending by distance) from a
    /// precomputed row of Euclidean distances to every reference,
    /// excluding `exclude` (for self-neighbourhoods during fitting).
    fn knn_from_dists(&self, dists: &[f64], exclude: Option<usize>) -> Vec<(usize, f64)> {
        let mut pairs: Vec<(usize, f64)> = dists
            .iter()
            .enumerate()
            .filter(|(i, _)| Some(*i) != exclude)
            .map(|(i, &d)| (i, d))
            .collect();
        // total_cmp: squared distances of finite features can still
        // overflow to ∞; ordering must never panic. The sort is stable,
        // so ties keep ascending reference order, as before.
        pairs.sort_by(|a, b| a.1.total_cmp(&b.1));
        pairs.truncate(self.config.k);
        pairs
    }

    /// Euclidean distances from every reference to every reference, as
    /// one batched self-distance GEMM (or the retained scalar path in
    /// naive mode). Both fit passes read from this single matrix.
    fn self_distances(&self) -> Matrix {
        let mut sq = if kernel::naive_distance_mode() {
            let rows: Vec<Vec<f64>> = (0..self.kernel.len())
                .map(|i| self.kernel.naive_sq_distances_to(self.kernel.reference(i)))
                .collect();
            Matrix::from_rows(&rows)
        } else {
            self.kernel.self_sq_distances()
        };
        for v in sq.as_mut_slice() {
            *v = v.sqrt();
        }
        sq
    }

    /// Local reachability density of a query given its k nearest
    /// reference neighbours.
    fn lrd_of(&self, knn: &[(usize, f64)]) -> f64 {
        if knn.is_empty() {
            return 0.0;
        }
        let sum_reach: f64 = knn.iter().map(|&(j, d)| d.max(self.k_distance[j])).sum();
        if sum_reach <= 0.0 {
            // The query coincides with its neighbours: maximal density.
            f64::INFINITY
        } else {
            knn.len() as f64 / sum_reach
        }
    }

    /// LOF ratio of a query given its k nearest reference neighbours —
    /// the one scoring rule shared by the batch chunks and the streaming
    /// per-record path.
    fn lof_score(&self, knn: &[(usize, f64)]) -> f64 {
        let own_lrd = self.lrd_of(knn);
        if !own_lrd.is_finite() {
            return 1.0; // sits exactly on training data
        }
        if own_lrd <= 0.0 {
            return f64::MAX.sqrt();
        }
        let neighbour_lrd: f64 =
            knn.iter().map(|&(j, _)| self.lrd[j].min(1e12)).sum::<f64>() / knn.len().max(1) as f64;
        (neighbour_lrd / own_lrd).max(0.0)
    }

    /// Score one record against the frozen reference set — the streaming
    /// engine's per-tick path. Bitwise equal to the record's batch score:
    /// the kernel pins each query row's distances independent of the
    /// query-batch shape, and the LOF arithmetic afterwards is shared.
    ///
    /// # Panics
    /// Panics if the detector is unfitted.
    pub fn score_record(&self, record: &[f64]) -> f64 {
        assert!(!self.kernel.is_empty(), "detector not fitted");
        let mut row = if kernel::naive_distance_mode() {
            self.kernel.naive_sq_distances_to(record)
        } else {
            self.kernel.sq_distances(&[record]).row(0).to_vec()
        };
        for v in &mut row {
            *v = v.sqrt();
        }
        self.lof_score(&self.knn_from_dists(&row, None))
    }

    /// Serialize the fitted detector: config, reference kernel, and the
    /// precomputed per-reference k-distances / lrds / neighbourhoods.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.config.k);
        w.put_usize(self.config.max_references);
        self.kernel.encode(w);
        w.put_f64s(&self.k_distance);
        w.put_f64s(&self.lrd);
        w.put_usize(self.neighbours.len());
        for nb in &self.neighbours {
            w.put_usizes(nb);
        }
    }

    /// Decode a detector written by [`LofDetector::encode`]. All fitted
    /// state is restored bitwise, so scores reproduce exactly.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let k = r.get_usize()?;
        if k == 0 {
            return Err(CodecError::Corrupt("LOF k must be positive"));
        }
        let max_references = r.get_usize()?;
        let kernel = DistanceKernel::decode(r)?;
        let k_distance = r.get_f64s()?;
        let lrd = r.get_f64s()?;
        let n = r.get_len(8)?;
        let mut neighbours = Vec::with_capacity(n);
        for _ in 0..n {
            let nb = r.get_usizes()?;
            if nb.iter().any(|&j| j >= kernel.len()) {
                return Err(CodecError::Corrupt("LOF neighbour index out of range"));
            }
            neighbours.push(nb);
        }
        if k_distance.len() != kernel.len() || lrd.len() != kernel.len() || n != kernel.len() {
            return Err(CodecError::Corrupt("LOF state length mismatch"));
        }
        Ok(Self { config: LofConfig { k, max_references }, kernel, k_distance, lrd, neighbours })
    }
}

impl AnomalyScorer for LofDetector {
    fn name(&self) -> &'static str {
        "LOF"
    }

    fn fit(&mut self, train: &[&TimeSeries]) {
        let _sp = exathlon_linalg::obs::span("train", "LOF.fit");
        assert!(!train.is_empty(), "no training traces");
        if materialized_windows_mode() {
            // Pre-dataplane path: clone every record, then clone the
            // subsample survivors.
            let mut refs: Vec<Vec<f64>> = Vec::new();
            for ts in train {
                refs.extend(ts.records().map(|r| r.to_vec()));
            }
            assert!(refs.len() > self.config.k, "need more than k training records");
            let subsampled =
                exathlon_tsdata::sample::stride_subsample(&refs, self.config.max_references);
            let bytes = ((refs.len() + subsampled.len()) * train[0].dims() * 8) as u64;
            exathlon_linalg::obs::counter("dataplane.materialized_bytes", bytes);
            self.kernel = DistanceKernel::fit(&subsampled);
        } else {
            // Size-1 windows are record views: the kernel fits straight
            // from borrowed slices, zero copies before its own sanitize.
            let mut refs = WindowSet::pooled(train, 1);
            assert!(refs.len() > self.config.k, "need more than k training records");
            refs.subsample(self.config.max_references);
            let views: Vec<&[f64]> = (0..refs.len()).map(|i| refs.window(i)).collect();
            self.kernel = DistanceKernel::fit(&views);
        }

        // One batched all-pairs distance matrix feeds both fit passes
        // (the old code recomputed every pass-2 distance from scratch).
        let dists = self.self_distances();

        // Pass 1: k-distances and neighbourhoods.
        let n = self.kernel.len();
        let mut k_distance = Vec::with_capacity(n);
        let mut neighbours = Vec::with_capacity(n);
        for i in 0..n {
            let knn = self.knn_from_dists(dists.row(i), Some(i));
            k_distance.push(knn.last().map(|&(_, d)| d).unwrap_or(0.0));
            neighbours.push(knn.iter().map(|&(j, _)| j).collect());
        }
        self.k_distance = k_distance;
        self.neighbours = neighbours;

        // Pass 2: reference lrds.
        let mut lrd = Vec::with_capacity(n);
        for i in 0..n {
            let knn: Vec<(usize, f64)> =
                self.neighbours[i].iter().map(|&j| (j, dists[(i, j)])).collect();
            lrd.push(self.lrd_of(&knn));
        }
        self.lrd = lrd;
    }

    fn score_series(&self, ts: &TimeSeries) -> Vec<f64> {
        let _sp = exathlon_linalg::obs::span("score", "LOF.series");
        assert!(!self.kernel.is_empty(), "detector not fitted");
        // Fixed-size query chunks on the shared worker pool (chunk
        // boundaries never depend on the thread count): one Gram-trick
        // GEMM per chunk replaces the per-pair scalar loops.
        let records: Vec<&[f64]> = ts.records().collect();
        let chunks: Vec<&[&[f64]]> = records.chunks(kernel::DIST_CHUNK).collect();
        let scored: Vec<Vec<f64>> = exathlon_linalg::par::par_map(&chunks, |chunk| {
            if kernel::naive_distance_mode() {
                chunk
                    .iter()
                    .map(|r| {
                        let mut row = self.kernel.naive_sq_distances_to(r);
                        for v in &mut row {
                            *v = v.sqrt();
                        }
                        self.lof_score(&self.knn_from_dists(&row, None))
                    })
                    .collect()
            } else {
                let sq = self.kernel.sq_distances(chunk);
                (0..sq.rows())
                    .map(|i| {
                        let row: Vec<f64> = sq.row(i).iter().map(|v| v.sqrt()).collect();
                        self.lof_score(&self.knn_from_dists(&row, None))
                    })
                    .collect()
            }
        });
        scored.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cluster(n: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<Vec<f64>> =
            (0..n).map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]).collect();
        TimeSeries::from_records(default_names(2), 0, &records)
    }

    #[test]
    fn outlier_has_high_lof() {
        let train = cluster(300, 1);
        let mut det = LofDetector::new(LofConfig::default());
        det.fit(&[&train]);
        let test =
            TimeSeries::from_records(default_names(2), 0, &[vec![0.0, 0.0], vec![15.0, 15.0]]);
        let scores = det.score_series(&test);
        assert!(
            scores[1] > 2.0 * scores[0],
            "outlier LOF {} should dwarf inlier LOF {}",
            scores[1],
            scores[0]
        );
    }

    #[test]
    fn inliers_score_near_one() {
        let train = cluster(300, 2);
        let mut det = LofDetector::new(LofConfig::default());
        det.fit(&[&train]);
        let scores = det.score_series(&cluster(50, 3));
        let mean: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!((0.5..2.0).contains(&mean), "inlier mean LOF {mean} should be near 1");
    }

    #[test]
    fn reference_cap_respected() {
        let train = cluster(5000, 4);
        let mut det = LofDetector::new(LofConfig { k: 5, max_references: 200 });
        det.fit(&[&train]);
        assert_eq!(det.kernel.len(), 200);
    }

    #[test]
    fn duplicate_of_training_point_is_benign() {
        let train = cluster(100, 5);
        let mut det = LofDetector::new(LofConfig { k: 3, max_references: 1000 });
        det.fit(&[&train]);
        let dup = TimeSeries::from_records(default_names(2), 0, &[train.record(0).to_vec()]);
        let s = det.score_series(&dup)[0];
        assert!(s.is_finite());
        assert!(s < 3.0, "duplicate scored as outlier: {s}");
    }

    /// Regression test: as in kNN, ∞ features used to yield NaN
    /// distances (∞ − ∞) and panic the neighbour sort.
    #[test]
    fn infinite_values_do_not_panic() {
        let mut records: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, 0.0]).collect();
        records.push(vec![f64::INFINITY, 0.0]);
        let train = TimeSeries::from_records(default_names(2), 0, &records);
        let mut det = LofDetector::new(LofConfig { k: 3, max_references: 1000 });
        det.fit(&[&train]);
        let scores = det.score_series(&TimeSeries::from_records(
            default_names(2),
            0,
            &[vec![f64::INFINITY, 0.0], vec![f64::NEG_INFINITY, 0.0], vec![f64::NAN, 1.0]],
        ));
        assert!(scores.iter().all(|s| s.is_finite()), "{scores:?}");
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_panics() {
        let det = LofDetector::new(LofConfig::default());
        let _ = det.score_series(&cluster(5, 6));
    }
}
