//! BiGAN-based AD.
//!
//! Appendix D.2: the BiGAN's encoder/generator pair reconstructs a test
//! window; the window's outlier score is the average of its reconstruction
//! MSE and its discriminator feature loss (Zenati et al.), and record
//! scores average over enclosing windows — smooth like the autoencoder's.

use crate::scorer::{pooled_windows, window_batch, AnomalyScorer};
use exathlon_nn::gan::BiGan;
use exathlon_nn::optimizer::Optimizer;
use exathlon_tsdata::window::{record_scores_from_windows, WindowSet};
use exathlon_tsdata::TimeSeries;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the BiGAN detector.
#[derive(Debug, Clone)]
pub struct BiGanConfig {
    /// Sliding-window length in records.
    pub window: usize,
    /// Latent dimensionality.
    pub latent: usize,
    /// Hidden width of the three networks.
    pub hidden: usize,
    /// Adversarial training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Cap on training windows.
    pub max_windows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BiGanConfig {
    fn default() -> Self {
        Self {
            window: 8,
            latent: 6,
            hidden: 48,
            epochs: 25,
            batch_size: 32,
            lr: 1e-3,
            max_windows: 3000,
            seed: 29,
        }
    }
}

/// The BiGAN anomaly detector.
#[derive(Debug, Clone)]
pub struct BiGanDetector {
    config: BiGanConfig,
    model: Option<BiGan>,
}

impl BiGanDetector {
    /// Create an (unfitted) detector.
    pub fn new(config: BiGanConfig) -> Self {
        Self { config, model: None }
    }
}

impl AnomalyScorer for BiGanDetector {
    fn name(&self) -> &'static str {
        "BiGAN"
    }

    fn fit(&mut self, train: &[&TimeSeries]) {
        let _sp = exathlon_linalg::obs::span("train", "BiGAN.fit");
        let windows = pooled_windows(train, self.config.window, self.config.max_windows);
        let x = window_batch(&windows);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut model = BiGan::new(x.cols(), self.config.latent, self.config.hidden, &mut rng);
        model.fit(
            &x,
            self.config.epochs,
            self.config.batch_size,
            &Optimizer::adam(self.config.lr),
            &mut rng,
        );
        self.model = Some(model);
    }

    fn score_series(&self, ts: &TimeSeries) -> Vec<f64> {
        let _sp = exathlon_linalg::obs::span("score", "BiGAN.series");
        let model = self.model.as_ref().expect("detector not fitted");
        let w = self.config.window;
        if ts.len() < w {
            return vec![0.0; ts.len()];
        }
        let windows = WindowSet::from_series(ts, w, 1);
        let scores = model.outlier_scores(&window_batch(&windows));
        record_scores_from_windows(ts.len(), w, &windows.starts(), &scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;
    use rand::Rng;

    fn series_with_anomaly(n: usize, anomaly: Option<(usize, usize)>, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 * 0.3;
                let shift = match anomaly {
                    Some((s, e)) if i >= s && i < e => 4.0,
                    _ => 0.0,
                };
                vec![t.sin() + rng.gen_range(-0.05..0.05) + shift]
            })
            .collect();
        TimeSeries::from_records(default_names(1), 0, &records)
    }

    fn quick_config() -> BiGanConfig {
        BiGanConfig {
            window: 5,
            latent: 2,
            hidden: 24,
            epochs: 15,
            max_windows: 800,
            ..BiGanConfig::default()
        }
    }

    #[test]
    fn detects_level_shift() {
        let train = series_with_anomaly(400, None, 1);
        let test = series_with_anomaly(200, Some((100, 140)), 2);
        let mut det = BiGanDetector::new(quick_config());
        det.fit(&[&train]);
        let scores = det.score_series(&test);
        let normal_mean: f64 = scores[..90].iter().sum::<f64>() / 90.0;
        let anomalous_mean: f64 = scores[105..135].iter().sum::<f64>() / 30.0;
        assert!(
            anomalous_mean > 2.0 * normal_mean.max(1e-9),
            "BiGAN failed to separate: {normal_mean} vs {anomalous_mean}"
        );
    }

    #[test]
    fn scores_cover_whole_series() {
        let train = series_with_anomaly(200, None, 1);
        let mut det = BiGanDetector::new(quick_config());
        det.fit(&[&train]);
        let test = series_with_anomaly(60, None, 3);
        let scores = det.score_series(&test);
        assert_eq!(scores.len(), 60);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn scoring_before_fit_panics() {
        let det = BiGanDetector::new(quick_config());
        let _ = det.score_series(&series_with_anomaly(50, None, 1));
    }
}
