//! LSTM forecaster-based AD.
//!
//! Following Appendix D.2 (after Bontemps et al.): the model forecasts the
//! next record from a window of past records; a record's outlier score is
//! its *relative forecast error*, kept per-record without window averaging
//! ("the scores produced here were however not further averaged but kept
//! as is") — which is exactly why the paper observes spiky LSTM scores
//! that win at AD1 but collapse at AD4.

use crate::scorer::AnomalyScorer;
use exathlon_nn::lstm::Lstm;
use exathlon_nn::optimizer::Optimizer;
use exathlon_tsdata::window::{materialized_windows_mode, WindowSet};
use exathlon_tsdata::TimeSeries;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration of the LSTM forecaster detector.
#[derive(Debug, Clone)]
pub struct LstmConfig {
    /// Input window length (records fed to the LSTM before forecasting).
    pub window: usize,
    /// Hidden units.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Cap on training pairs (cardinality reduction).
    pub max_pairs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        Self {
            window: 8,
            hidden: 24,
            epochs: 15,
            batch_size: 16,
            lr: 5e-3,
            max_pairs: 2500,
            seed: 23,
        }
    }
}

/// The LSTM forecaster anomaly detector.
#[derive(Debug, Clone)]
pub struct LstmDetector {
    config: LstmConfig,
    model: Option<Lstm>,
}

impl LstmDetector {
    /// Create an (unfitted) detector.
    pub fn new(config: LstmConfig) -> Self {
        Self { config, model: None }
    }
}

impl AnomalyScorer for LstmDetector {
    fn name(&self) -> &'static str {
        "LSTM"
    }

    fn fit(&mut self, train: &[&TimeSeries]) {
        let _sp = exathlon_linalg::obs::span("train", "LSTM.fit");
        assert!(!train.is_empty(), "no training traces");
        let mut pairs = WindowSet::forecast_pooled(train, self.config.window);
        assert!(!pairs.is_empty(), "training traces shorter than the window size");
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let total = pairs.len();
        if total > self.config.max_pairs {
            // Shuffling an index vector draws the same Fisher-Yates RNG
            // values as shuffling the owned pairs did (the swap sequence
            // depends only on length), so the cap keeps the same pairs and
            // the downstream RNG stream is unchanged.
            let mut order: Vec<usize> = (0..total).collect();
            order.shuffle(&mut rng);
            order.truncate(self.config.max_pairs);
            pairs.select(&order);
        }
        let dims = pairs.dims();
        let mut model = Lstm::new(dims, self.config.hidden, dims, &mut rng);
        let opt = Optimizer::adam(self.config.lr);
        if materialized_windows_mode() {
            // Pre-dataplane copies: every forecast pair was cloned record
            // by record before the cap dropped most of them.
            let owned: Vec<(Vec<f64>, Vec<f64>)> = (0..pairs.len())
                .map(|i| (pairs.window(i).to_vec(), pairs.target(i).to_vec()))
                .collect();
            let bytes = (total * (pairs.flat_len() + dims) * 8) as u64;
            exathlon_linalg::obs::counter("dataplane.materialized_bytes", bytes);
            let views: Vec<(&[f64], &[f64])> =
                owned.iter().map(|(s, t)| (&s[..], &t[..])).collect();
            model.fit_flat(&views, self.config.epochs, self.config.batch_size, &opt, &mut rng);
        } else {
            // Windows and targets are contiguous views over the traces:
            // the trainer reads them with zero staging copies.
            let views: Vec<(&[f64], &[f64])> =
                (0..pairs.len()).map(|i| (pairs.window(i), pairs.target(i))).collect();
            model.fit_flat(&views, self.config.epochs, self.config.batch_size, &opt, &mut rng);
        }
        self.model = Some(model);
    }

    fn score_series(&self, ts: &TimeSeries) -> Vec<f64> {
        let _sp = exathlon_linalg::obs::span("score", "LSTM.series");
        let model = self.model.as_ref().expect("detector not fitted");
        let w = self.config.window;
        let n = ts.len();
        let mut scores = vec![0.0; n];
        if n <= w {
            return scores;
        }
        let materialized = materialized_windows_mode();
        if materialized {
            exathlon_linalg::obs::counter(
                "dataplane.materialized_bytes",
                ((n - w) * w * ts.dims() * 8) as u64,
            );
        }
        #[allow(clippy::needless_range_loop)] // t indexes both the series and scores
        for t in w..n {
            let forecast = if materialized {
                // Pre-dataplane path: clone the window records per step.
                let seq: Vec<Vec<f64>> = (t - w..t).map(|i| ts.record(i).to_vec()).collect();
                model.predict(&seq)
            } else {
                model.predict_flat(ts.records_slice(t - w, w))
            };
            let actual = ts.record(t);
            // Relative forecast error: squared error normalized by the
            // magnitude of the actual record (plus 1 to stabilize the
            // near-zero records of scaled data).
            let err: f64 = forecast.iter().zip(actual).map(|(f, a)| (f - a) * (f - a)).sum::<f64>()
                / actual.len() as f64;
            let mag: f64 = actual.iter().map(|a| a * a).sum::<f64>() / actual.len() as f64;
            scores[t] = err / (1.0 + mag);
        }
        // Warm-up records inherit the first computed score so every record
        // has a defined value.
        let first = scores[w];
        for s in scores.iter_mut().take(w) {
            *s = first;
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;
    use rand::Rng;

    fn series_with_anomaly(n: usize, anomaly: Option<(usize, usize)>, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 * 0.25;
                let shift = match anomaly {
                    Some((s, e)) if i >= s && i < e => 2.5,
                    _ => 0.0,
                };
                vec![t.sin() + rng.gen_range(-0.05..0.05) + shift]
            })
            .collect();
        TimeSeries::from_records(default_names(1), 0, &records)
    }

    fn quick_config() -> LstmConfig {
        LstmConfig { window: 6, hidden: 12, epochs: 10, max_pairs: 600, ..LstmConfig::default() }
    }

    #[test]
    fn detects_level_shift() {
        let train = series_with_anomaly(300, None, 1);
        let test = series_with_anomaly(150, Some((80, 110)), 2);
        let mut det = LstmDetector::new(quick_config());
        det.fit(&[&train]);
        let scores = det.score_series(&test);
        assert_eq!(scores.len(), 150);
        let normal_mean: f64 = scores[10..70].iter().sum::<f64>() / 60.0;
        let anomalous_max = scores[80..110].iter().cloned().fold(0.0, f64::max);
        assert!(
            anomalous_max > 5.0 * normal_mean.max(1e-6),
            "LSTM failed to react: normal {normal_mean} vs peak {anomalous_max}"
        );
    }

    #[test]
    fn onset_spike_dominates() {
        // The forecaster is most surprised at the anomaly onset — the spiky
        // profile the paper reports.
        let train = series_with_anomaly(300, None, 1);
        let test = series_with_anomaly(150, Some((80, 110)), 2);
        let mut det = LstmDetector::new(quick_config());
        det.fit(&[&train]);
        let scores = det.score_series(&test);
        let onset_max = scores[80..86].iter().cloned().fold(0.0, f64::max);
        let mid_mean: f64 = scores[95..105].iter().sum::<f64>() / 10.0;
        assert!(
            onset_max > mid_mean,
            "onset {onset_max} should exceed mid-anomaly mean {mid_mean}"
        );
    }

    #[test]
    fn short_series_zero_scores() {
        let train = series_with_anomaly(100, None, 1);
        let mut det = LstmDetector::new(quick_config());
        det.fit(&[&train]);
        let scores = det.score_series(&series_with_anomaly(4, None, 3));
        assert_eq!(scores, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn scoring_before_fit_panics() {
        let det = LstmDetector::new(quick_config());
        let _ = det.score_series(&series_with_anomaly(50, None, 1));
    }
}
