//! Isolation forest (Liu, Ting & Zhou) — the isolation-based AD family
//! the paper's related work contrasts the DL methods with (§2, citation 37).
//!
//! Anomalies are "few and different": random axis-aligned splits isolate
//! them in fewer steps than normal points, so the expected path length of
//! a point across a forest of random trees — normalized by the expected
//! path length of an unsuccessful BST search — yields the classic
//! `2^(-E[h(x)]/c(n))` anomaly score in `(0, 1)`.

use crate::scorer::AnomalyScorer;
use exathlon_tsdata::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the isolation forest.
#[derive(Debug, Clone)]
pub struct IsolationForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Sub-sample size per tree (the classic default is 256).
    pub sample_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IsolationForestConfig {
    fn default() -> Self {
        Self { n_trees: 100, sample_size: 256, seed: 43 }
    }
}

/// One node of an isolation tree.
#[derive(Debug, Clone)]
enum Node {
    /// Internal split: `feature < threshold` goes left.
    Split { feature: usize, threshold: f64, left: usize, right: usize },
    /// Leaf holding `size` training points.
    Leaf { size: usize },
}

/// An isolation tree stored as a node arena.
#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Grow a tree over `points` (indices into `data`) up to `max_depth`.
    fn grow(data: &[Vec<f64>], points: &mut [usize], max_depth: usize, rng: &mut StdRng) -> Tree {
        let mut tree = Tree { nodes: Vec::new() };
        tree.grow_node(data, points, max_depth, rng);
        tree
    }

    fn grow_node(
        &mut self,
        data: &[Vec<f64>],
        points: &mut [usize],
        depth_left: usize,
        rng: &mut StdRng,
    ) -> usize {
        if depth_left == 0 || points.len() <= 1 {
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf { size: points.len() });
            return id;
        }
        let dims = data[points[0]].len();
        // Pick a feature with spread; give up after a few attempts
        // (constant data region).
        let mut feature = None;
        for _ in 0..8 {
            let f = rng.gen_range(0..dims);
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &p in points.iter() {
                let v = value(data, p, f);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi > lo {
                feature = Some((f, lo, hi));
                break;
            }
        }
        let Some((f, lo, hi)) = feature else {
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf { size: points.len() });
            return id;
        };
        let threshold = rng.gen_range(lo..hi);
        // Partition in place.
        let mut split = 0;
        for i in 0..points.len() {
            if value(data, points[i], f) < threshold {
                points.swap(i, split);
                split += 1;
            }
        }
        if split == 0 || split == points.len() {
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf { size: points.len() });
            return id;
        }
        // Reserve this node's slot before recursing.
        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { size: 0 });
        let (left_pts, right_pts) = points.split_at_mut(split);
        let left = self.grow_node(data, left_pts, depth_left - 1, rng);
        let right = self.grow_node(data, right_pts, depth_left - 1, rng);
        self.nodes[id] = Node::Split { feature: f, threshold, left, right };
        id
    }

    /// Path length of a query point, with the standard `c(size)` credit at
    /// non-singleton leaves.
    fn path_length(&self, x: &[f64]) -> f64 {
        let mut node = 0usize;
        let mut depth = 0.0;
        loop {
            match &self.nodes[node] {
                Node::Leaf { size } => {
                    return depth + average_bst_depth(*size);
                }
                Node::Split { feature, threshold, left, right } => {
                    depth += 1.0;
                    let v = if x[*feature].is_nan() { 0.0 } else { x[*feature] };
                    node = if v < *threshold { *left } else { *right };
                }
            }
        }
    }
}

#[inline]
fn value(data: &[Vec<f64>], point: usize, feature: usize) -> f64 {
    let v = data[point][feature];
    if v.is_nan() {
        0.0
    } else {
        v
    }
}

/// `c(n)`: the average path length of an unsuccessful BST search over `n`
/// points — the normalizer of the isolation-forest score.
pub fn average_bst_depth(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f64;
    let harmonic = (n - 1.0).ln() + 0.577_215_664_901_532_9;
    2.0 * harmonic - 2.0 * (n - 1.0) / n
}

/// The isolation-forest anomaly detector.
#[derive(Debug, Clone)]
pub struct IsolationForestDetector {
    config: IsolationForestConfig,
    trees: Vec<Tree>,
    c_n: f64,
}

impl IsolationForestDetector {
    /// Create an (unfitted) detector.
    pub fn new(config: IsolationForestConfig) -> Self {
        assert!(config.n_trees > 0 && config.sample_size > 1, "degenerate forest config");
        Self { config, trees: Vec::new(), c_n: 1.0 }
    }
}

impl AnomalyScorer for IsolationForestDetector {
    fn name(&self) -> &'static str {
        "iForest"
    }

    fn fit(&mut self, train: &[&TimeSeries]) {
        let _sp = exathlon_linalg::obs::span("train", "iForest.fit");
        assert!(!train.is_empty(), "no training traces");
        let mut data: Vec<Vec<f64>> = Vec::new();
        for ts in train {
            data.extend(ts.records().map(|r| r.to_vec()));
        }
        assert!(!data.is_empty(), "empty training traces");
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let sample = self.config.sample_size.min(data.len());
        let max_depth = (sample as f64).log2().ceil() as usize;
        self.c_n = average_bst_depth(sample);
        self.trees = (0..self.config.n_trees)
            .map(|_| {
                let mut points: Vec<usize> =
                    (0..sample).map(|_| rng.gen_range(0..data.len())).collect();
                Tree::grow(&data, &mut points, max_depth, &mut rng)
            })
            .collect();
    }

    fn score_series(&self, ts: &TimeSeries) -> Vec<f64> {
        let _sp = exathlon_linalg::obs::span("score", "iForest.series");
        assert!(!self.trees.is_empty(), "detector not fitted");
        // Per-record tree traversal is independent given the fitted
        // forest; scored on the shared worker pool, order-preserving.
        let records: Vec<&[f64]> = ts.records().collect();
        exathlon_linalg::par::par_map(&records, |r| {
            let mean_path: f64 =
                self.trees.iter().map(|t| t.path_length(r)).sum::<f64>() / self.trees.len() as f64;
            2f64.powf(-mean_path / self.c_n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;

    fn cluster_train() -> TimeSeries {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let records: Vec<Vec<f64>> =
            (0..400).map(|_| vec![rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)]).collect();
        TimeSeries::from_records(default_names(2), 0, &records)
    }

    #[test]
    fn outliers_score_higher_than_inliers() {
        let train = cluster_train();
        let mut det = IsolationForestDetector::new(IsolationForestConfig::default());
        det.fit(&[&train]);
        let test =
            TimeSeries::from_records(default_names(2), 0, &[vec![0.1, 0.2], vec![8.0, -9.0]]);
        let scores = det.score_series(&test);
        assert!(
            scores[1] > scores[0] + 0.1,
            "outlier {} should clearly beat inlier {}",
            scores[1],
            scores[0]
        );
    }

    #[test]
    fn scores_in_unit_interval() {
        let train = cluster_train();
        let mut det = IsolationForestDetector::new(IsolationForestConfig::default());
        det.fit(&[&train]);
        let scores = det.score_series(&train);
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn average_bst_depth_values() {
        assert_eq!(average_bst_depth(1), 0.0);
        // c(2) = 2*(H(1)) - 2*(1/2) = 2*0.5772... - 1 ≈ 0.154 (harmonic
        // approximation; the exact value is positive and below 1).
        let c2 = average_bst_depth(2);
        assert!(c2 > 0.0 && c2 < 1.0, "c(2) = {c2}");
        // c(n) grows logarithmically.
        assert!(average_bst_depth(256) > average_bst_depth(16));
    }

    #[test]
    fn deterministic_given_seed() {
        let train = cluster_train();
        let run = || {
            let mut det = IsolationForestDetector::new(IsolationForestConfig::default());
            det.fit(&[&train]);
            det.score_series(&train.slice(0, 10))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn nan_records_do_not_crash() {
        let train = cluster_train();
        let mut det = IsolationForestDetector::new(IsolationForestConfig::default());
        det.fit(&[&train]);
        let test = TimeSeries::from_records(default_names(2), 0, &[vec![f64::NAN, f64::NAN]]);
        assert!(det.score_series(&test)[0].is_finite());
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_panics() {
        let det = IsolationForestDetector::new(IsolationForestConfig::default());
        let _ = det.score_series(&cluster_train());
    }
}
