//! Autoencoder-based AD (the paper's best-separating method).
//!
//! A dense autoencoder is trained to reconstruct flattened sliding windows
//! of the (transformed) training traces; at test time the MSE of a window
//! is its outlier score and each record's score is the average over the
//! windows enclosing it (§5 step 3.ii) — producing the *smooth* score
//! profile that makes AE strong at range detection (AD2) and
//! exactly-once detection (AD4).

use crate::scorer::{pooled_windows, window_batch, AnomalyScorer};
use exathlon_linalg::codec::{ByteReader, ByteWriter, CodecError};
use exathlon_linalg::Matrix;
use exathlon_nn::activation::Activation;
use exathlon_nn::loss::row_squared_errors;
use exathlon_nn::optimizer::Optimizer;
use exathlon_nn::Mlp;
use exathlon_tsdata::window::{record_scores_from_windows, WindowSet};
use exathlon_tsdata::TimeSeries;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the autoencoder detector.
#[derive(Debug, Clone)]
pub struct AeConfig {
    /// Sliding-window length in records.
    pub window: usize,
    /// Hidden layer widths of the encoder half.
    pub hidden: Vec<usize>,
    /// Bottleneck (code) size.
    pub code: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Cap on training windows (cardinality reduction).
    pub max_windows: usize,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl Default for AeConfig {
    fn default() -> Self {
        Self {
            window: 8,
            hidden: vec![64],
            code: 8,
            epochs: 30,
            batch_size: 32,
            lr: 1e-3,
            max_windows: 4000,
            seed: 17,
        }
    }
}

/// The autoencoder anomaly detector.
#[derive(Debug, Clone)]
pub struct AutoencoderDetector {
    config: AeConfig,
    model: Option<Mlp>,
}

impl AutoencoderDetector {
    /// Create an (unfitted) detector.
    pub fn new(config: AeConfig) -> Self {
        Self { config, model: None }
    }

    /// Window score (reconstruction MSE) for each flattened window.
    fn window_scores(&self, windows: &Matrix) -> Vec<f64> {
        let model = self.model.as_ref().expect("detector not fitted");
        let recon = model.predict(windows);
        row_squared_errors(&recon, windows)
    }

    /// Reconstruction MSE of a single flattened window (record-major,
    /// `window * dims` values). This is the score function handed to
    /// model-dependent explainers such as LIME.
    ///
    /// # Panics
    /// Panics if the detector is unfitted or the window length mismatches.
    pub fn window_score(&self, flat_window: &[f64]) -> f64 {
        let m = Matrix::from_vec(1, flat_window.len(), flat_window.to_vec());
        self.window_scores(&m)[0]
    }

    /// The configured window length.
    pub fn window_len(&self) -> usize {
        self.config.window
    }

    /// Serialize the config and (if fitted) the trained network into `w`.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.config.window);
        w.put_usizes(&self.config.hidden);
        w.put_usize(self.config.code);
        w.put_usize(self.config.epochs);
        w.put_usize(self.config.batch_size);
        w.put_f64(self.config.lr);
        w.put_usize(self.config.max_windows);
        w.put_u64(self.config.seed);
        w.put_bool(self.model.is_some());
        if let Some(model) = &self.model {
            model.encode(w);
        }
    }

    /// Decode a detector written by [`AutoencoderDetector::encode`].
    /// Restored weights are bitwise identical, so window scores
    /// reproduce exactly.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let window = r.get_usize()?;
        if window == 0 {
            return Err(CodecError::Corrupt("AE window must be positive"));
        }
        let hidden = r.get_usizes()?;
        let code = r.get_usize()?;
        let epochs = r.get_usize()?;
        let batch_size = r.get_usize()?;
        let lr = r.get_f64()?;
        let max_windows = r.get_usize()?;
        let seed = r.get_u64()?;
        let model = if r.get_bool()? { Some(exathlon_nn::Mlp::decode(r)?) } else { None };
        Ok(Self {
            config: AeConfig { window, hidden, code, epochs, batch_size, lr, max_windows, seed },
            model,
        })
    }
}

impl AnomalyScorer for AutoencoderDetector {
    fn name(&self) -> &'static str {
        "AE"
    }

    fn fit(&mut self, train: &[&TimeSeries]) {
        let _sp = exathlon_linalg::obs::span("train", "AE.fit");
        let windows = pooled_windows(train, self.config.window, self.config.max_windows);
        let x = window_batch(&windows);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut model = Mlp::autoencoder(
            x.cols(),
            &self.config.hidden,
            self.config.code,
            Activation::Tanh,
            &mut rng,
        );
        model.fit(
            &x,
            &x,
            self.config.epochs,
            self.config.batch_size,
            &Optimizer::adam(self.config.lr),
            &mut rng,
        );
        self.model = Some(model);
    }

    fn score_series(&self, ts: &TimeSeries) -> Vec<f64> {
        let _sp = exathlon_linalg::obs::span("score", "AE.series");
        let w = self.config.window;
        if ts.len() < w {
            return vec![0.0; ts.len()];
        }
        let windows = WindowSet::from_series(ts, w, 1);
        let scores = self.window_scores(&window_batch(&windows));
        record_scores_from_windows(ts.len(), w, &windows.starts(), &scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exathlon_tsdata::series::default_names;
    use rand::Rng;

    /// A periodic 2-feature series with an injected level shift in
    /// `[anomaly_start, anomaly_end)`.
    fn series_with_anomaly(n: usize, anomaly: Option<(usize, usize)>, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 * 0.3;
                let shift = match anomaly {
                    Some((s, e)) if i >= s && i < e => 3.0,
                    _ => 0.0,
                };
                vec![
                    t.sin() + rng.gen_range(-0.05..0.05) + shift,
                    t.cos() + rng.gen_range(-0.05..0.05),
                ]
            })
            .collect();
        TimeSeries::from_records(default_names(2), 0, &records)
    }

    fn quick_config() -> AeConfig {
        AeConfig { window: 6, hidden: vec![16], code: 4, epochs: 20, ..AeConfig::default() }
    }

    #[test]
    fn detects_level_shift() {
        let train = series_with_anomaly(400, None, 1);
        let test = series_with_anomaly(200, Some((100, 130)), 2);
        let mut det = AutoencoderDetector::new(quick_config());
        det.fit(&[&train]);
        let scores = det.score_series(&test);
        assert_eq!(scores.len(), 200);
        let normal_mean: f64 = scores[..90].iter().sum::<f64>() / 90.0;
        let anomalous_mean: f64 = scores[100..130].iter().sum::<f64>() / 30.0;
        assert!(
            anomalous_mean > 3.0 * normal_mean,
            "AE failed to separate: normal {normal_mean} vs anomalous {anomalous_mean}"
        );
    }

    #[test]
    fn scores_are_smooth() {
        // Window averaging must bound the tick-to-tick score jumps relative
        // to the score scale.
        let train = series_with_anomaly(400, None, 1);
        let test = series_with_anomaly(200, Some((100, 130)), 2);
        let mut det = AutoencoderDetector::new(quick_config());
        det.fit(&[&train]);
        let scores = det.score_series(&test);
        let max_score = scores.iter().cloned().fold(0.0, f64::max);
        let max_jump = scores.windows(2).map(|w| (w[1] - w[0]).abs()).fold(0.0, f64::max);
        assert!(
            max_jump < 0.6 * max_score,
            "scores too spiky for a window-averaged method: jump {max_jump} vs max {max_score}"
        );
    }

    #[test]
    fn short_series_scores_zero() {
        let train = series_with_anomaly(100, None, 1);
        let mut det = AutoencoderDetector::new(quick_config());
        det.fit(&[&train]);
        let tiny = series_with_anomaly(3, None, 3);
        assert_eq!(det.score_series(&tiny), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn scoring_before_fit_panics() {
        let det = AutoencoderDetector::new(quick_config());
        let ts = series_with_anomaly(50, None, 1);
        let _ = det.score_series(&ts);
    }

    #[test]
    fn deterministic_given_seed() {
        let train = series_with_anomaly(200, None, 1);
        let test = series_with_anomaly(50, None, 2);
        let run = || {
            let mut det = AutoencoderDetector::new(quick_config());
            det.fit(&[&train]);
            det.score_series(&test)
        };
        assert_eq!(run(), run());
    }
}
