//! Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//!
//! PCA (the paper's `FS_pca` feature extractor, Table 8) needs the
//! eigenvectors of a covariance matrix. The cyclic Jacobi method is simple,
//! numerically robust for symmetric matrices, and converges quadratically —
//! plenty for the feature-space sizes this benchmark works at (tens to a few
//! thousand dimensions).

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition: `a = V * diag(values) * V^T`.
///
/// Eigenpairs are sorted by **descending** eigenvalue, matching the order
/// PCA consumes them in.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, in the same order as `values`.
    pub vectors: Matrix,
}

/// Compute the eigendecomposition of a symmetric matrix using cyclic Jacobi
/// sweeps.
///
/// `a` must be square and (numerically) symmetric; asymmetry below 1e-9
/// relative tolerance is accepted and symmetrized away.
///
/// # Panics
/// Panics if `a` is not square or is badly asymmetric.
pub fn symmetric_eigen(a: &Matrix, max_sweeps: usize, tol: f64) -> EigenDecomposition {
    let n = a.rows();
    assert_eq!(n, a.cols(), "eigendecomposition needs a square matrix");
    let scale = a.max_abs().max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            assert!(
                (a[(i, j)] - a[(j, i)]).abs() <= 1e-9 * scale,
                "matrix is not symmetric at ({i},{j})"
            );
        }
    }

    // Work on a symmetrized copy.
    let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    let mut v = Matrix::identity(n);

    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= tol * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= f64::EPSILON * scale {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable computation of tan(phi) for the rotation angle.
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation G(p, q, phi) on both sides: m = G^T m G.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let values: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| values[j].partial_cmp(&values[i]).expect("finite eigenvalues"));

    let sorted_values: Vec<f64> = order.iter().map(|&i| values[i]).collect();
    let vectors = v.select_cols(&order);

    EigenDecomposition { values: sorted_values, vectors }
}

/// Covariance matrix of `data` treating rows as observations and columns as
/// features. Divides by `n` (population covariance). NaN cells are treated
/// as the column mean (i.e. they contribute zero deviation).
pub fn covariance_matrix(data: &Matrix) -> Matrix {
    let n = data.rows();
    let m = data.cols();
    if n == 0 {
        return Matrix::zeros(m, m);
    }
    let means: Vec<f64> = (0..m).map(|j| crate::stats::mean(&data.col(j))).collect();
    // Deviation matrix (NaN features impute to zero deviation, as before),
    // then one `DᵀD` GEMM: each covariance entry sums observations in
    // ascending row order with a single accumulator — the same order the
    // old rank-1 accumulation used, so finite results are bitwise
    // unchanged — and the kernel fills both triangles symmetrically
    // (`di·dj` commutes).
    let mut dev = Matrix::zeros(n, m);
    for (r, row) in data.iter_rows().enumerate() {
        for ((d, &x), &mu) in dev.row_mut(r).iter_mut().zip(row).zip(&means) {
            *d = if x.is_nan() { 0.0 } else { x - mu };
        }
    }
    let mut cov = dev.transpose_matmul(&dev);
    let inv_n = 1.0 / n as f64;
    for v in cov.as_mut_slice() {
        *v *= inv_n;
    }
    cov
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let e = symmetric_eigen(&a, 50, 1e-12);
        assert_close(e.values[0], 3.0, 1e-10);
        assert_close(e.values[1], 2.0, 1e-10);
        assert_close(e.values[2], 1.0, 1e-10);
    }

    #[test]
    fn known_2x2_eigen() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = symmetric_eigen(&a, 50, 1e-12);
        assert_close(e.values[0], 3.0, 1e-10);
        assert_close(e.values[1], 1.0, 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.vectors.col(0);
        assert_close(v0[0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-8);
        assert_close(v0[1].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-8);
    }

    #[test]
    fn reconstruction_holds() {
        // A = V diag(w) V^T for a random-ish symmetric matrix.
        let a = Matrix::from_vec(
            4,
            4,
            vec![
                4.0, 1.0, 0.5, 0.0, //
                1.0, 3.0, 0.2, 0.1, //
                0.5, 0.2, 2.0, 0.3, //
                0.0, 0.1, 0.3, 1.0,
            ],
        );
        let e = symmetric_eigen(&a, 100, 1e-14);
        let d = Matrix::from_fn(4, 4, |i, j| if i == j { e.values[i] } else { 0.0 });
        let recon = e.vectors.matmul(&d).matmul(&e.vectors.transpose());
        for i in 0..4 {
            for j in 0..4 {
                assert_close(recon[(i, j)], a[(i, j)], 1e-8);
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Matrix::from_vec(3, 3, vec![2.0, 1.0, 0.0, 1.0, 2.0, 1.0, 0.0, 1.0, 2.0]);
        let e = symmetric_eigen(&a, 100, 1e-14);
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_close(vtv[(i, j)], expect, 1e-8);
            }
        }
    }

    #[test]
    fn covariance_of_perfectly_correlated() {
        // y = 2x => cov = [[var(x), 2 var(x)], [2 var(x), 4 var(x)]]
        let data =
            Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0], vec![4.0, 8.0]]);
        let cov = covariance_matrix(&data);
        let var_x = crate::stats::variance(&[1.0, 2.0, 3.0, 4.0]);
        assert_close(cov[(0, 0)], var_x, 1e-12);
        assert_close(cov[(0, 1)], 2.0 * var_x, 1e-12);
        assert_close(cov[(1, 1)], 4.0 * var_x, 1e-12);
    }

    #[test]
    fn trace_preserved() {
        let a = Matrix::from_vec(3, 3, vec![5.0, 2.0, 0.0, 2.0, 4.0, 1.0, 0.0, 1.0, 3.0]);
        let e = symmetric_eigen(&a, 100, 1e-14);
        let trace: f64 = (0..3).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert_close(trace, sum, 1e-9);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        let a = Matrix::zeros(2, 3);
        let _ = symmetric_eigen(&a, 10, 1e-10);
    }
}
