//! Dense compute kernels behind every hot path of the pipeline: a
//! cache-blocked, register-tiled GEMM family and a Gram-trick batched
//! pairwise-distance kernel.
//!
//! # Why this module exists
//!
//! Profiling (`EXATHLON_PROFILE=1`, PR 2) shows the compute-bound stages —
//! NN training, PCA fitting, and above all the O(records × references ×
//! dims) kNN/LOF scoring loops of the P2 inference benchmark — bottom out
//! in scalar element-at-a-time loops. This module replaces those inner
//! loops with kernels that keep a 4×4 tile of accumulators in registers
//! and walk memory contiguously, without changing any result the pipeline
//! reports.
//!
//! # Numerics contract
//!
//! The GEMM kernels ([`matmul`], [`matmul_transpose`], [`transpose_matmul`],
//! [`matvec`], [`transpose_matvec`]) accumulate each output element with a
//! **single accumulator walking `k` in ascending order** — exactly the
//! summation order of the retained naive references ([`naive_matmul`] and
//! friends). Blocking over rows/columns/`k`-panels only changes *which*
//! element is computed when, never the order of additions inside one
//! element, so for finite inputs the kernels are **bitwise identical** to
//! the naive loops (the naive loops skip `a == 0.0` terms; adding the
//! skipped `±0.0 * b` products back is a bitwise no-op for finite data
//! because an IEEE-754 round-to-nearest accumulator that starts at `+0.0`
//! can never become `-0.0`). Matrices containing NaN/∞ are the one
//! exception: the kernels propagate them like textbook GEMM where the
//! zero-skipping naive loops could mask them — callers with dirty data
//! (kNN/LOF) sanitize through [`sanitize_rows`] first.
//!
//! The batched distance kernel evaluates ‖a−b‖² as ‖a‖² + ‖b‖² − 2·a·b
//! through GEMM instead of the per-pair `Σ (aᵢ−bᵢ)²` loop. That *is* a
//! different floating-point expression, so batched squared distances may
//! drift from the scalar reference at the ulp level (and are clamped at
//! zero, where cancellation could otherwise produce tiny negatives). The
//! regression suite pins the drift to ≤ 1e-9 relative error
//! (`crates/linalg/tests/kernel_properties.rs`) and pins end-to-end
//! detection metrics as unchanged (`tests/kernel_pipeline_equivalence.rs`).
//! Setting [`NAIVE_KERNELS_ENV`]`=1` routes the distance consumers back
//! onto the scalar reference path for A/B comparison.
//!
//! # Parallelism
//!
//! Large GEMMs fan out over **fixed-size row blocks** of the output on the
//! shared [`crate::par`] pool. Block boundaries depend only on the matrix
//! shape — never on the thread count — and each block is computed by the
//! serial kernel, so the parallel result is bitwise identical to the
//! single-threaded one for any `EXATHLON_THREADS`.

use crate::matrix::Matrix;

/// Micro-tile height (rows of the output computed per register tile).
pub const MR: usize = 4;
/// Micro-tile width (columns of the output computed per register tile).
pub const NR: usize = 4;
/// `k`-panel length: 2 × `KC` × 8 bytes of the two operand panels a
/// micro-kernel streams stay within a 32 KiB L1.
pub const KC: usize = 256;
/// Column-block width, sizing the `KC × NC` operand panel for L2.
pub const NC: usize = 128;
/// Rows of the output per parallel work item. Fixed (never derived from
/// the thread count) so the parallel decomposition is deterministic.
pub const ROW_BLOCK: usize = 64;
/// Queries per batch in the blocked distance consumers (kNN/LOF): bounds
/// the `chunk × references` scratch matrix to a few MB.
pub const DIST_CHUNK: usize = 256;

/// Environment variable: set to `1` to route the distance-kernel
/// consumers (kNN/LOF) back onto the retained scalar reference path.
/// Used by the equivalence regression tests; re-read on every call.
pub const NAIVE_KERNELS_ENV: &str = "EXATHLON_NAIVE_KERNELS";

/// True when [`NAIVE_KERNELS_ENV`] requests the scalar reference path.
pub fn naive_distance_mode() -> bool {
    std::env::var(NAIVE_KERNELS_ENV).map(|v| v.trim() == "1").unwrap_or(false)
}

// ---------------------------------------------------------------------------
// GEMM micro-kernels
// ---------------------------------------------------------------------------

/// GEMM operand-layout variants, used as `const` parameters so each
/// micro-kernel monomorphizes to straight-line indexing with no runtime
/// branch: element `(i, k)` of `op(A)` and `(k, j)` of `op(B)`.
mod gemm {
    /// `out[i][j] += a[i*lda + k] * b[k*ldb + j]` — `A·B`.
    pub const AB: u8 = 0;
    /// `out[i][j] += a[i*lda + k] * b[j*ldb + k]` — `A·Bᵀ`.
    pub const ABT: u8 = 1;
    /// `out[i][j] += a[k*lda + i] * b[k*ldb + j]` — `Aᵀ·B`.
    pub const ATB: u8 = 2;
}

#[inline(always)]
fn a_idx<const V: u8>(i: usize, k: usize, lda: usize) -> usize {
    if V == gemm::ATB {
        k * lda + i
    } else {
        i * lda + k
    }
}

#[inline(always)]
fn b_idx<const V: u8>(k: usize, j: usize, ldb: usize) -> usize {
    if V == gemm::ABT {
        j * ldb + k
    } else {
        k * ldb + j
    }
}

/// Full `MR × NR` register tile over one `k`-panel. The sixteen named
/// accumulators live in registers across the whole panel; each one is
/// loaded from and stored to `out` exactly once per panel, and adds its
/// `a·b` products in ascending `k` — preserving the naive summation
/// order bit for bit.
///
/// Safety: callers guarantee `i+MR ≤ m`, `j+NR ≤ n` and `k0..k1` in
/// bounds for the variant's indexing; the `debug_assert`s pin the
/// contract and the unchecked accesses buy the hot loop back from
/// per-element bounds checks.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_tile_full<const V: u8>(
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    out: &mut [f64],
    ldo: usize,
    i: usize,
    j: usize,
    k0: usize,
    k1: usize,
) {
    debug_assert!(k1 >= k0);
    debug_assert!(k1 == k0 || a_idx::<V>(i + MR - 1, k1 - 1, lda) < a.len());
    debug_assert!(k1 == k0 || a_idx::<V>(i + MR - 1, k0, lda) < a.len());
    debug_assert!(k1 == k0 || b_idx::<V>(k1 - 1, j + NR - 1, ldb) < b.len());
    debug_assert!((i + MR - 1) * ldo + j + NR - 1 < out.len());

    let (mut c00, mut c01, mut c02, mut c03) = load4(out, i * ldo + j);
    let (mut c10, mut c11, mut c12, mut c13) = load4(out, (i + 1) * ldo + j);
    let (mut c20, mut c21, mut c22, mut c23) = load4(out, (i + 2) * ldo + j);
    let (mut c30, mut c31, mut c32, mut c33) = load4(out, (i + 3) * ldo + j);
    unsafe {
        for k in k0..k1 {
            let a0 = *a.get_unchecked(a_idx::<V>(i, k, lda));
            let a1 = *a.get_unchecked(a_idx::<V>(i + 1, k, lda));
            let a2 = *a.get_unchecked(a_idx::<V>(i + 2, k, lda));
            let a3 = *a.get_unchecked(a_idx::<V>(i + 3, k, lda));
            let b0 = *b.get_unchecked(b_idx::<V>(k, j, ldb));
            let b1 = *b.get_unchecked(b_idx::<V>(k, j + 1, ldb));
            let b2 = *b.get_unchecked(b_idx::<V>(k, j + 2, ldb));
            let b3 = *b.get_unchecked(b_idx::<V>(k, j + 3, ldb));
            c00 += a0 * b0;
            c01 += a0 * b1;
            c02 += a0 * b2;
            c03 += a0 * b3;
            c10 += a1 * b0;
            c11 += a1 * b1;
            c12 += a1 * b2;
            c13 += a1 * b3;
            c20 += a2 * b0;
            c21 += a2 * b1;
            c22 += a2 * b2;
            c23 += a2 * b3;
            c30 += a3 * b0;
            c31 += a3 * b1;
            c32 += a3 * b2;
            c33 += a3 * b3;
        }
    }
    store4(out, i * ldo + j, (c00, c01, c02, c03));
    store4(out, (i + 1) * ldo + j, (c10, c11, c12, c13));
    store4(out, (i + 2) * ldo + j, (c20, c21, c22, c23));
    store4(out, (i + 3) * ldo + j, (c30, c31, c32, c33));
}

#[inline(always)]
fn load4(s: &[f64], base: usize) -> (f64, f64, f64, f64) {
    (s[base], s[base + 1], s[base + 2], s[base + 3])
}

#[inline(always)]
fn store4(s: &mut [f64], base: usize, v: (f64, f64, f64, f64)) {
    s[base] = v.0;
    s[base + 1] = v.1;
    s[base + 2] = v.2;
    s[base + 3] = v.3;
}

/// Which micro-kernel family [`gemm_serial`] drives. Detected once per
/// process from the CPU; `EXATHLON_ISA=scalar|avx2` (read *before first
/// use*) caps the selection downward — it can never enable an ISA the
/// CPU lacks — for A/B measurements and for exercising the fallback
/// tiles on wide machines. Every family computes each output element
/// with the same single-accumulator ascending-`k` sum — mul then add,
/// never FMA (FMA's fused rounding would break bitwise equality with
/// the scalar reference) — so the choice never changes results, only
/// throughput.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Isa {
    /// 8×8 tiles of `f64x8` (`_mm512_mul_pd` + `_mm512_add_pd`).
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    Avx512,
    /// 4×8 tiles of two `f64x4` halves.
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    Avx2,
    /// Portable 4×4 register tiles.
    Scalar,
}

fn isa() -> Isa {
    static ISA: std::sync::OnceLock<Isa> = std::sync::OnceLock::new();
    *ISA.get_or_init(|| {
        #[allow(unused_mut)]
        let mut detected = Isa::Scalar;
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                detected = Isa::Avx512;
            } else if std::arch::is_x86_feature_detected!("avx2") {
                detected = Isa::Avx2;
            }
        }
        match std::env::var("EXATHLON_ISA").as_deref().map(str::trim) {
            Ok("scalar") => Isa::Scalar,
            Ok("avx2") if detected == Isa::Avx512 => Isa::Avx2,
            _ => detected,
        }
    })
}

/// True when a SIMD family (AVX2 or AVX-512) survived detection and the
/// `EXATHLON_ISA` cap. The elemwise layer ([`crate::elemwise`]) keys its
/// 4-lane AVX2 paths off the same switch so one environment variable
/// controls every vector path in the crate.
pub(crate) fn simd_active() -> bool {
    isa() != Isa::Scalar
}

/// SIMD micro-tiles. Only the `j`-contiguous variants ([`gemm::AB`],
/// [`gemm::ATB`]) reach them — both index `B` as `b[k·ldb + j]`, so the
/// tiles are variant-free; `A·Bᵀ` goes through an explicit blocked
/// transpose of `B` instead (same products, same order — value-
/// identical, and the transpose is O(n·k) against the GEMM's O(m·n·k)).
///
/// The tiles read `A` from a packed panel (`ap[t·tm + r]` = element of
/// output row `ir + r` at panel depth `t`, filled by the driver): the
/// eight broadcasts per `k` then hit one cache line instead of eight
/// 2 KB-strided ones, which would otherwise collide in a handful of L1
/// sets.
#[cfg(target_arch = "x86_64")]
mod wide {
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// 8×16 AVX-512 tile: sixteen zmm accumulators (two per output row)
    /// live across the whole `k`-panel; per `k` two contiguous loads of
    /// `b[k][j..j+16]` and eight broadcasts from the packed `A` panel.
    /// Sixteen independent add chains hide the `vaddpd` latency.
    ///
    /// # Safety
    /// Caller guarantees AVX-512F is available, `ap.len() ≥ kn·8`, and
    /// the 8×16 `out` tile at `(i, j)` plus `b` rows `kc..kc+kn` are in
    /// bounds (the driver's tiling invariant).
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn tile_8x16_avx512(
        ap: &[f64],
        b: &[f64],
        ldb: usize,
        out: &mut [f64],
        ldo: usize,
        i: usize,
        j: usize,
        kc: usize,
        kn: usize,
    ) {
        debug_assert!((i + 7) * ldo + j + 16 <= out.len());
        debug_assert!(kn * 8 <= ap.len());
        let o = out.as_mut_ptr();
        let bp = b.as_ptr().add(kc * ldb + j);
        let mut lo = [_mm512_setzero_pd(); 8];
        let mut hi = [_mm512_setzero_pd(); 8];
        for r in 0..8 {
            lo[r] = _mm512_loadu_pd(o.add((i + r) * ldo + j));
            hi[r] = _mm512_loadu_pd(o.add((i + r) * ldo + j + 8));
        }
        for t in 0..kn {
            let brow = bp.add(t * ldb);
            let b_lo = _mm512_loadu_pd(brow);
            let b_hi = _mm512_loadu_pd(brow.add(8));
            let arow = ap.as_ptr().add(t * 8);
            for r in 0..8 {
                let av = _mm512_set1_pd(*arow.add(r));
                lo[r] = _mm512_add_pd(lo[r], _mm512_mul_pd(av, b_lo));
                hi[r] = _mm512_add_pd(hi[r], _mm512_mul_pd(av, b_hi));
            }
        }
        for r in 0..8 {
            _mm512_storeu_pd(o.add((i + r) * ldo + j), lo[r]);
            _mm512_storeu_pd(o.add((i + r) * ldo + j + 8), hi[r]);
        }
    }

    /// 4×8 AVX2 tile: four rows × two ymm halves, same packed-`A`
    /// layout with `tm = 4`.
    ///
    /// # Safety
    /// Caller guarantees AVX2, `ap.len() ≥ kn·4`, and in-bounds `out`
    /// tile / `b` rows as for [`tile_8x16_avx512`].
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn tile_4x8_avx2(
        ap: &[f64],
        b: &[f64],
        ldb: usize,
        out: &mut [f64],
        ldo: usize,
        i: usize,
        j: usize,
        kc: usize,
        kn: usize,
    ) {
        debug_assert!((i + 3) * ldo + j + 8 <= out.len());
        debug_assert!(kn * 4 <= ap.len());
        let o = out.as_mut_ptr();
        let bp = b.as_ptr().add(kc * ldb + j);
        let mut lo = [_mm256_setzero_pd(); 4];
        let mut hi = [_mm256_setzero_pd(); 4];
        for r in 0..4 {
            lo[r] = _mm256_loadu_pd(o.add((i + r) * ldo + j));
            hi[r] = _mm256_loadu_pd(o.add((i + r) * ldo + j + 4));
        }
        for t in 0..kn {
            let brow = bp.add(t * ldb);
            let b_lo = _mm256_loadu_pd(brow);
            let b_hi = _mm256_loadu_pd(brow.add(4));
            let arow = ap.as_ptr().add(t * 4);
            for r in 0..4 {
                let av = _mm256_set1_pd(*arow.add(r));
                lo[r] = _mm256_add_pd(lo[r], _mm256_mul_pd(av, b_lo));
                hi[r] = _mm256_add_pd(hi[r], _mm256_mul_pd(av, b_hi));
            }
        }
        for r in 0..4 {
            _mm256_storeu_pd(o.add((i + r) * ldo + j), lo[r]);
            _mm256_storeu_pd(o.add((i + r) * ldo + j + 4), hi[r]);
        }
    }
}

/// Ragged-edge tile (`mr × nr` with `mr ≤ MR`, `nr ≤ NR`): same
/// accumulator discipline as [`micro_tile_full`], safe indexing — edges
/// are a vanishing fraction of the work.
#[inline]
#[allow(clippy::too_many_arguments)]
fn micro_tile_edge<const V: u8>(
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    out: &mut [f64],
    ldo: usize,
    i: usize,
    j: usize,
    mr: usize,
    nr: usize,
    k0: usize,
    k1: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for r in 0..mr {
        for c in 0..nr {
            acc[r][c] = out[(i + r) * ldo + j + c];
        }
    }
    for k in k0..k1 {
        for (r, row) in acc.iter_mut().enumerate().take(mr) {
            let av = a[a_idx::<V>(i + r, k, lda)];
            for (c, cell) in row.iter_mut().enumerate().take(nr) {
                *cell += av * b[b_idx::<V>(k, j + c, ldb)];
            }
        }
    }
    for r in 0..mr {
        for c in 0..nr {
            out[(i + r) * ldo + j + c] = acc[r][c];
        }
    }
}

/// Cover an arbitrary output rectangle `[i0, i1) × [j0, j1)` with the
/// portable 4×4 register tiles (full where possible, ragged edges
/// otherwise). Used as the whole driver body in scalar mode and as the
/// edge sweeper around the SIMD tiles.
#[allow(clippy::too_many_arguments)]
fn scalar_block<const V: u8>(
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    out: &mut [f64],
    ldo: usize,
    i0: usize,
    i1: usize,
    j0: usize,
    j1: usize,
    k0: usize,
    k1: usize,
) {
    let mut ir = i0;
    while ir < i1 {
        let mr = (i1 - ir).min(MR);
        let mut jr = j0;
        while jr < j1 {
            let nr = (j1 - jr).min(NR);
            if mr == MR && nr == NR {
                micro_tile_full::<V>(a, lda, b, ldb, out, ldo, ir, jr, k0, k1);
            } else {
                micro_tile_edge::<V>(a, lda, b, ldb, out, ldo, ir, jr, mr, nr, k0, k1);
            }
            jr += nr;
        }
        ir += mr;
    }
}

/// Serial blocked GEMM over an `m × n × kdim` problem, writing
/// `out += op(A)·op(B)` for rows `0..m` of the output.
///
/// The `A·Bᵀ` variant always takes the scalar tiles: its `j` lanes
/// stride by `ldb`, which defeats vector loads — [`matmul_transpose`]
/// materializes `Bᵀ` up front and dispatches `A·B` instead whenever a
/// SIMD family is active.
#[allow(clippy::too_many_arguments)]
fn gemm_serial<const V: u8>(
    m: usize,
    n: usize,
    kdim: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    out: &mut [f64],
    ldo: usize,
) {
    let isa = if V == gemm::ABT { Isa::Scalar } else { isa() };
    let (tm, tn) = match isa {
        Isa::Avx512 => (8, 16),
        Isa::Avx2 => (4, 8),
        Isa::Scalar => (MR, NR),
    };
    let m_wide = m - m % tm;
    // Scratch for the packed `A` panel (`tm` output rows × `KC` depths,
    // depth-major): filled once per (kc, ir), reused across all `jr`
    // tiles of the column block. The buffer is thread-local so a
    // steady-state training step performs no heap allocation; reuse is
    // safe because the microkernel only reads panel depths written this
    // pass (`t < kn`), never stale contents.
    thread_local! {
        static APACK: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    APACK.with(|cell| {
        let mut apack = cell.borrow_mut();
        if isa != Isa::Scalar && apack.len() < tm * KC {
            apack.resize(tm * KC, 0.0);
        }
        for jc in (0..n).step_by(NC) {
            let jc_end = (jc + NC).min(n);
            let j_wide_end = jc + (jc_end - jc) - (jc_end - jc) % tn;
            for kc in (0..kdim).step_by(KC) {
                let kc_end = (kc + KC).min(kdim);
                match isa {
                    Isa::Scalar => {
                        scalar_block::<V>(a, lda, b, ldb, out, ldo, 0, m, jc, jc_end, kc, kc_end);
                    }
                    #[cfg(target_arch = "x86_64")]
                    Isa::Avx512 | Isa::Avx2 => {
                        let kn = kc_end - kc;
                        for ir in (0..m_wide).step_by(tm) {
                            for (t, quad) in apack.chunks_exact_mut(tm).enumerate().take(kn) {
                                for (r, slot) in quad.iter_mut().enumerate() {
                                    *slot = a[a_idx::<V>(ir + r, kc + t, lda)];
                                }
                            }
                            for jr in (jc..j_wide_end).step_by(tn) {
                                // SAFETY: the detected ISA guarantees the
                                // feature; tile bounds hold by construction
                                // (`ir + tm ≤ m`, `jr + tn ≤ n`, panel
                                // holds `kn·tm` elements).
                                unsafe {
                                    if isa == Isa::Avx512 {
                                        wide::tile_8x16_avx512(
                                            &apack, b, ldb, out, ldo, ir, jr, kc, kn,
                                        );
                                    } else {
                                        wide::tile_4x8_avx2(
                                            &apack, b, ldb, out, ldo, ir, jr, kc, kn,
                                        );
                                    }
                                }
                            }
                            if j_wide_end < jc_end {
                                scalar_block::<V>(
                                    a,
                                    lda,
                                    b,
                                    ldb,
                                    out,
                                    ldo,
                                    ir,
                                    ir + tm,
                                    j_wide_end,
                                    jc_end,
                                    kc,
                                    kc_end,
                                );
                            }
                        }
                        if m_wide < m {
                            scalar_block::<V>(
                                a, lda, b, ldb, out, ldo, m_wide, m, jc, jc_end, kc, kc_end,
                            );
                        }
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    _ => unreachable!("non-scalar ISA detected on non-x86_64"),
                }
            }
        }
    });
}

/// Dispatch a GEMM: serial for small problems, fixed-size row blocks of
/// the output fanned out on the shared worker pool for large ones. The
/// decomposition depends only on `m`, so results are bitwise identical
/// for every thread count.
fn gemm_dispatch<const V: u8>(
    m: usize,
    n: usize,
    kdim: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
) -> Vec<f64> {
    crate::obs::counter("kernel.gemm", 1);
    // Below ~2 row blocks or ~128k flop there is nothing to win from
    // fan-out, and with a single-worker pool the slab round-trip is pure
    // overhead; the serial kernel gives the bitwise-same answer either
    // way (fixed blocks, ascending `k`).
    if m < 2 * ROW_BLOCK || m * n * kdim < 131_072 || crate::par::max_threads() <= 1 {
        let mut out = vec![0.0; m * n];
        gemm_serial::<V>(m, n, kdim, a, lda, b, ldb, &mut out, n.max(1));
        return out;
    }
    crate::obs::counter("kernel.gemm_parallel", 1);
    let blocks: Vec<(usize, usize)> =
        (0..m).step_by(ROW_BLOCK).map(|s| (s, (s + ROW_BLOCK).min(m))).collect();
    let slabs: Vec<Vec<f64>> = crate::par::par_map(&blocks, |&(start, end)| {
        let rows = end - start;
        let mut slab = vec![0.0; rows * n];
        // Row-major operands let each block re-base `A` by slicing whole
        // rows; for AᵀB the output row index selects a *column* of `A`,
        // so the block re-bases the column origin instead.
        let a_block = if V == gemm::ATB { &a[start..] } else { &a[start * lda..] };
        gemm_serial::<V>(rows, n, kdim, a_block, lda, b, ldb, &mut slab, n);
        slab
    });
    let mut out = Vec::with_capacity(m * n);
    for slab in slabs {
        out.extend_from_slice(&slab);
    }
    out
}

/// Blocked `A·B`. Bitwise identical to [`naive_matmul`] for finite
/// inputs (see module docs for the one NaN/∞ caveat).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul dimension mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let data = gemm_dispatch::<{ gemm::AB }>(m, n, k, a.as_slice(), k, b.as_slice(), n);
    Matrix::from_vec(m, n, data)
}

/// Blocked `A·Bᵀ` without materializing the transpose: `out[i][j] =
/// Σ_k a[i][k]·b[j][k]`, both operands streamed contiguously.
///
/// # Panics
/// Panics unless `a.cols() == b.cols()`.
pub fn matmul_transpose(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transpose dimension mismatch: {}x{} * ({}x{})^T",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.rows();
    // With a SIMD family active, materialize `Bᵀ` once (O(n·k), blocked)
    // so the vector tiles get contiguous `j` lanes; same products in the
    // same per-element order, so the result is value-identical to the
    // direct `A·Bᵀ` walk.
    let data = if isa() == Isa::Scalar {
        gemm_dispatch::<{ gemm::ABT }>(m, n, k, a.as_slice(), k, b.as_slice(), k)
    } else {
        let bt = b.transpose();
        gemm_dispatch::<{ gemm::AB }>(m, n, k, a.as_slice(), k, bt.as_slice(), n)
    };
    Matrix::from_vec(m, n, data)
}

/// Blocked `Aᵀ·B` without materializing the transpose: `out[i][j] =
/// Σ_k a[k][i]·b[k][j]` — a stream of rank-1 updates with both rows
/// contiguous (the `dzᵀ·x` shape of dense-layer backprop and the
/// `DᵀD` shape of covariance).
///
/// # Panics
/// Panics unless `a.rows() == b.rows()`.
pub fn transpose_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "transpose_matmul dimension mismatch: ({}x{})^T * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (kdim, m) = a.shape();
    let n = b.cols();
    let data = gemm_dispatch::<{ gemm::ATB }>(m, n, kdim, a.as_slice(), m, b.as_slice(), n);
    Matrix::from_vec(m, n, data)
}

/// Drive a GEMM into a caller-reused output buffer: `out` is reshaped in
/// place (reusing its allocation), zero-filled, and written with the same
/// dispatch rule as [`gemm_dispatch`] — serial below the fan-out
/// threshold, fixed `ROW_BLOCK` slabs above it. The slab copies in the
/// parallel branch are the only transient allocations, and training-shape
/// problems (tens of rows) never reach it.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS-style gemm_serial signature
fn gemm_into<const V: u8>(
    m: usize,
    n: usize,
    kdim: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    out: &mut Matrix,
) {
    crate::obs::counter("kernel.gemm", 1);
    out.reset(m, n);
    out.as_mut_slice().fill(0.0);
    if m < 2 * ROW_BLOCK || m * n * kdim < 131_072 || crate::par::max_threads() <= 1 {
        gemm_serial::<V>(m, n, kdim, a, lda, b, ldb, out.as_mut_slice(), n.max(1));
        return;
    }
    crate::obs::counter("kernel.gemm_parallel", 1);
    let blocks: Vec<(usize, usize)> =
        (0..m).step_by(ROW_BLOCK).map(|s| (s, (s + ROW_BLOCK).min(m))).collect();
    let slabs: Vec<Vec<f64>> = crate::par::par_map(&blocks, |&(start, end)| {
        let rows = end - start;
        let mut slab = vec![0.0; rows * n];
        let a_block = if V == gemm::ATB { &a[start..] } else { &a[start * lda..] };
        gemm_serial::<V>(rows, n, kdim, a_block, lda, b, ldb, &mut slab, n);
        slab
    });
    let data = out.as_mut_slice();
    let mut off = 0;
    for slab in slabs {
        data[off..off + slab.len()].copy_from_slice(&slab);
        off += slab.len();
    }
}

/// [`matmul`] into a caller-reused buffer — bitwise-identical contents,
/// no fresh allocation once `out` has grown to the steady-state shape.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul dimension mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    gemm_into::<{ gemm::AB }>(m, n, k, a.as_slice(), k, b.as_slice(), n, out);
}

/// [`matmul_transpose`] into a caller-reused buffer. With a SIMD family
/// active the kernel materializes `Bᵀ` — here it lands in the
/// caller-reused `bt` scratch instead of a fresh allocation (untouched on
/// the scalar path, which walks `A·Bᵀ` directly). Bitwise identical to
/// [`matmul_transpose`] under every ISA.
///
/// # Panics
/// Panics unless `a.cols() == b.cols()`.
pub fn matmul_transpose_into(a: &Matrix, b: &Matrix, bt: &mut Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transpose dimension mismatch: {}x{} * ({}x{})^T",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.rows();
    if isa() == Isa::Scalar {
        gemm_into::<{ gemm::ABT }>(m, n, k, a.as_slice(), k, b.as_slice(), k, out);
    } else {
        b.transpose_into(bt);
        gemm_into::<{ gemm::AB }>(m, n, k, a.as_slice(), k, bt.as_slice(), n, out);
    }
}

/// [`transpose_matmul`] into a caller-reused buffer — bitwise-identical
/// contents, no fresh allocation at steady state (the `dzᵀ·x` gradient
/// shape of dense-layer backprop, accumulated without an intermediate).
///
/// # Panics
/// Panics unless `a.rows() == b.rows()`.
pub fn transpose_matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "transpose_matmul dimension mismatch: ({}x{})^T * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (kdim, m) = a.shape();
    let n = b.cols();
    gemm_into::<{ gemm::ATB }>(m, n, kdim, a.as_slice(), m, b.as_slice(), n, out);
}

// ---------------------------------------------------------------------------
// Vector kernels
// ---------------------------------------------------------------------------

/// `A·v`. Four output rows are computed per pass so `v` is loaded once
/// per quad instead of once per row; each output keeps a single
/// accumulator walking `k` in order (bitwise equal to the naive dot).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matvec(a: &Matrix, v: &[f64]) -> Vec<f64> {
    assert_eq!(a.cols(), v.len(), "matvec dimension mismatch");
    let (m, k) = a.shape();
    let data = a.as_slice();
    let mut out = Vec::with_capacity(m);
    let m_full = m - m % MR;
    for i in (0..m_full).step_by(MR) {
        let r0 = &data[i * k..(i + 1) * k];
        let r1 = &data[(i + 1) * k..(i + 2) * k];
        let r2 = &data[(i + 2) * k..(i + 3) * k];
        let r3 = &data[(i + 3) * k..(i + 4) * k];
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        for (j, &vj) in v.iter().enumerate() {
            s0 += r0[j] * vj;
            s1 += r1[j] * vj;
            s2 += r2[j] * vj;
            s3 += r3[j] * vj;
        }
        out.extend_from_slice(&[s0, s1, s2, s3]);
    }
    for i in m_full..m {
        out.push(dot(&data[i * k..(i + 1) * k], v));
    }
    out
}

/// `Aᵀ·v` without materializing the transpose. Four input rows are
/// folded per pass; the adds into each output element stay in row order
/// (`((o + t₀) + t₁) + …`), matching the naive row-at-a-time loop.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn transpose_matvec(a: &Matrix, v: &[f64]) -> Vec<f64> {
    assert_eq!(a.rows(), v.len(), "transpose_matvec dimension mismatch");
    let (m, n) = a.shape();
    let data = a.as_slice();
    let mut out = vec![0.0; n];
    let m_full = m - m % MR;
    for i in (0..m_full).step_by(MR) {
        let (v0, v1, v2, v3) = (v[i], v[i + 1], v[i + 2], v[i + 3]);
        let r0 = &data[i * n..(i + 1) * n];
        let r1 = &data[(i + 1) * n..(i + 2) * n];
        let r2 = &data[(i + 2) * n..(i + 3) * n];
        let r3 = &data[(i + 3) * n..(i + 4) * n];
        for (j, o) in out.iter_mut().enumerate() {
            let mut acc = *o;
            acc += v0 * r0[j];
            acc += v1 * r1[j];
            acc += v2 * r2[j];
            acc += v3 * r3[j];
            *o = acc;
        }
    }
    for i in m_full..m {
        let vi = v[i];
        let row = &data[i * n..(i + 1) * n];
        for (o, &r) in out.iter_mut().zip(row) {
            *o += vi * r;
        }
    }
    out
}

/// [`matvec`] into a caller-reused vector: `clear` + the identical
/// quad-row loop, so contents are bitwise equal and the allocation is
/// reused once it has grown to the steady-state length.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matvec_into(a: &Matrix, v: &[f64], out: &mut Vec<f64>) {
    assert_eq!(a.cols(), v.len(), "matvec dimension mismatch");
    let (m, k) = a.shape();
    let data = a.as_slice();
    out.clear();
    out.reserve(m);
    let m_full = m - m % MR;
    for i in (0..m_full).step_by(MR) {
        let r0 = &data[i * k..(i + 1) * k];
        let r1 = &data[(i + 1) * k..(i + 2) * k];
        let r2 = &data[(i + 2) * k..(i + 3) * k];
        let r3 = &data[(i + 3) * k..(i + 4) * k];
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        for (j, &vj) in v.iter().enumerate() {
            s0 += r0[j] * vj;
            s1 += r1[j] * vj;
            s2 += r2[j] * vj;
            s3 += r3[j] * vj;
        }
        out.extend_from_slice(&[s0, s1, s2, s3]);
    }
    for i in m_full..m {
        out.push(dot(&data[i * k..(i + 1) * k], v));
    }
}

/// [`transpose_matvec`] into a caller-reused vector — bitwise-identical
/// contents (same quad folds, same row-order adds), no fresh allocation
/// at steady state.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn transpose_matvec_into(a: &Matrix, v: &[f64], out: &mut Vec<f64>) {
    assert_eq!(a.rows(), v.len(), "transpose_matvec dimension mismatch");
    let (m, n) = a.shape();
    let data = a.as_slice();
    out.clear();
    out.resize(n, 0.0);
    let m_full = m - m % MR;
    for i in (0..m_full).step_by(MR) {
        let (v0, v1, v2, v3) = (v[i], v[i + 1], v[i + 2], v[i + 3]);
        let r0 = &data[i * n..(i + 1) * n];
        let r1 = &data[(i + 1) * n..(i + 2) * n];
        let r2 = &data[(i + 2) * n..(i + 3) * n];
        let r3 = &data[(i + 3) * n..(i + 4) * n];
        for (j, o) in out.iter_mut().enumerate() {
            let mut acc = *o;
            acc += v0 * r0[j];
            acc += v1 * r1[j];
            acc += v2 * r2[j];
            acc += v3 * r3[j];
            *o = acc;
        }
    }
    for i in m_full..m {
        let vi = v[i];
        let row = &data[i * n..(i + 1) * n];
        for (o, &r) in out.iter_mut().zip(row) {
            *o += vi * r;
        }
    }
}

/// Plain ordered dot product — the shared inner product of the lasso
/// coordinate-descent solver and the `matvec` remainder path.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// `y[i] += alpha * x[i]` — the residual-update primitive of coordinate
/// descent.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

// ---------------------------------------------------------------------------
// Sanitization + batched pairwise distances
// ---------------------------------------------------------------------------

/// The single non-finite rule shared by every distance consumer: NaN and
/// ±∞ features count as zero. kNN and LOF used to carry hand-rolled
/// copies of this rule inside their per-pair loops; both now sanitize
/// **once** through [`sanitize_rows`] so they can never drift apart.
#[inline]
pub fn sanitize(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// Copy `rows` into a contiguous row-major matrix, zeroing non-finite
/// features. Empty input yields a `0 × 0` matrix.
///
/// # Panics
/// Panics if the rows have inconsistent lengths.
pub fn sanitize_rows<R: AsRef<[f64]>>(rows: &[R]) -> Matrix {
    if rows.is_empty() {
        return Matrix::zeros(0, 0);
    }
    let dims = rows[0].as_ref().len();
    let mut data = Vec::with_capacity(rows.len() * dims);
    for r in rows {
        let r = r.as_ref();
        assert_eq!(r.len(), dims, "sanitize_rows: ragged rows");
        data.extend(r.iter().map(|&x| sanitize(x)));
    }
    Matrix::from_vec(rows.len(), dims, data)
}

/// Squared L2 norm of every row.
pub fn row_sq_norms(m: &Matrix) -> Vec<f64> {
    m.iter_rows().map(|r| dot(r, r)).collect()
}

/// A fitted reference set for batched pairwise squared distances:
/// non-finite features sanitized once into a contiguous row-major matrix
/// at fit time, row norms precomputed, and every query batch evaluated
/// as ‖q‖² + ‖r‖² − 2·q·r through the GEMM kernel.
#[derive(Debug, Clone)]
pub struct DistanceKernel {
    refs: Matrix,
    /// `refs.transpose()`, materialized once at fit time so every query
    /// batch runs the `j`-contiguous `A·B` kernel without a per-call
    /// transpose.
    refs_t: Matrix,
    norms: Vec<f64>,
}

impl DistanceKernel {
    /// Sanitize and pack the reference rows, precomputing their norms
    /// and transpose.
    pub fn fit<R: AsRef<[f64]>>(rows: &[R]) -> Self {
        let refs = sanitize_rows(rows);
        let refs_t = refs.transpose();
        let norms = row_sq_norms(&refs);
        Self { refs, refs_t, norms }
    }

    /// Number of reference rows.
    pub fn len(&self) -> usize {
        self.refs.rows()
    }

    /// True when no references are stored.
    pub fn is_empty(&self) -> bool {
        self.refs.rows() == 0
    }

    /// Feature dimensionality of the reference rows.
    pub fn dims(&self) -> usize {
        self.refs.cols()
    }

    /// The sanitized reference row `i`.
    pub fn reference(&self, i: usize) -> &[f64] {
        self.refs.row(i)
    }

    /// Serialize into `w`. Only the reference matrix is written: the
    /// transpose and row norms are pure functions of it and are
    /// recomputed on decode (same arithmetic as fit, so the restored
    /// kernel's distances are bitwise identical).
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.put_matrix(&self.refs);
    }

    /// Decode a kernel written by [`DistanceKernel::encode`].
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Self, crate::codec::CodecError> {
        // References were sanitized at the original fit; re-deriving the
        // transpose and norms from the decoded matrix replays exactly
        // what `fit` computed from the sanitized rows.
        let refs = r.get_matrix()?;
        let refs_t = refs.transpose();
        let norms = row_sq_norms(&refs);
        Ok(Self { refs, refs_t, norms })
    }

    /// Batched squared distances: row `i` of the result holds the
    /// squared distance from `queries[i]` to every reference. Queries
    /// are sanitized with the same rule as the references; results are
    /// clamped at zero (Gram-trick cancellation can round slightly
    /// negative for near-coincident points).
    ///
    /// # Panics
    /// Panics if the query dimensionality differs from the references'.
    pub fn sq_distances<R: AsRef<[f64]>>(&self, queries: &[R]) -> Matrix {
        crate::obs::counter("kernel.dist_batch", 1);
        let q = sanitize_rows(queries);
        if q.rows() == 0 {
            return Matrix::zeros(0, self.len());
        }
        assert_eq!(
            q.cols(),
            self.dims(),
            "distance dimension mismatch: query dims {} vs reference dims {}",
            q.cols(),
            self.dims()
        );
        let qnorms = row_sq_norms(&q);
        self.gram_to_distances(&q, &qnorms)
    }

    /// All-pairs squared distances of the reference set against itself
    /// (`len × len`), used by LOF fitting.
    pub fn self_sq_distances(&self) -> Matrix {
        crate::obs::counter("kernel.dist_batch", 1);
        self.gram_to_distances(&self.refs, &self.norms)
    }

    /// Shared Gram-trick core: one **serial** GEMM straight into the
    /// output buffer (distance consumers parallelize over query chunks
    /// themselves, so the row-block dispatch's slab join would only add
    /// a copy), then an in-place `‖q‖² + ‖r‖² − 2·q·r` sweep.
    fn gram_to_distances(&self, q: &Matrix, qnorms: &[f64]) -> Matrix {
        let (m, d) = q.shape();
        let n = self.len();
        let mut out = vec![0.0; m * n];
        gemm_serial::<{ gemm::AB }>(
            m,
            n,
            d,
            q.as_slice(),
            d,
            self.refs_t.as_slice(),
            n,
            &mut out,
            n.max(1),
        );
        for (i, &qn) in qnorms.iter().enumerate() {
            let row = &mut out[i * n..(i + 1) * n];
            for (g, &rn) in row.iter_mut().zip(&self.norms) {
                *g = (qn + rn - 2.0 * *g).max(0.0);
            }
        }
        Matrix::from_vec(m, n, out)
    }

    /// Scalar reference path: squared distances from one query to every
    /// reference via the retained per-pair loop. Used when
    /// [`naive_distance_mode`] is on and by the regression tests.
    pub fn naive_sq_distances_to(&self, query: &[f64]) -> Vec<f64> {
        self.refs.iter_rows().map(|r| naive_sq_distance(query, r)).collect()
    }
}

/// Retained scalar reference: `Σ (sanitize(aᵢ) − sanitize(bᵢ))²` — the
/// exact per-pair loop `KnnDetector::distance2` and `lof::distance`
/// carried before the kernel layer (zip semantics truncate to the
/// shorter row, as before).
pub fn naive_sq_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let x = sanitize(x);
            let y = sanitize(y);
            (x - y) * (x - y)
        })
        .sum()
}

// ---------------------------------------------------------------------------
// Retained naive GEMM references
// ---------------------------------------------------------------------------

/// The pre-kernel `Matrix::matmul` (`i-k-j` loop with the `a == 0.0`
/// skip), retained verbatim as the regression/bench reference.
pub fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul dimension mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, kdim) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = &a.as_slice()[i * kdim..(i + 1) * kdim];
        let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b.as_slice()[k * n..(k + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Naive `A·Bᵀ` via explicit transpose + [`naive_matmul`].
pub fn naive_matmul_transpose(a: &Matrix, b: &Matrix) -> Matrix {
    naive_matmul(a, &naive_transpose(b))
}

/// Naive `Aᵀ·B` via explicit transpose + [`naive_matmul`].
pub fn naive_transpose_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    naive_matmul(&naive_transpose(a), b)
}

/// The pre-kernel strided double-loop transpose, retained as the
/// regression/bench reference for the blocked `Matrix::transpose`.
pub fn naive_transpose(a: &Matrix) -> Matrix {
    let (m, n) = a.shape();
    let mut out = Matrix::zeros(n, m);
    for i in 0..m {
        for j in 0..n {
            out.as_mut_slice()[j * m + i] = a.as_slice()[i * n + j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            let v = (i as u64).wrapping_mul(31).wrapping_add(j as u64).wrapping_mul(seed);
            ((v % 1000) as f64 - 500.0) * 0.01
        })
    }

    #[test]
    fn matmul_matches_naive_bitwise_on_finite_data() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (4, 4, 4), (17, 23, 9), (64, 64, 64), (5, 1, 5)] {
            let a = mat(m, k, 3);
            let b = mat(k, n, 7);
            let fast = matmul(&a, &b);
            let slow = naive_matmul(&a, &b);
            assert_eq!(fast.shape(), slow.shape());
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}x{n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let a = mat(13, 21, 5);
        let b = mat(11, 21, 9);
        let fast = matmul_transpose(&a, &b);
        let slow = naive_matmul_transpose(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let a = mat(21, 13, 5);
        let b = mat(21, 11, 9);
        let fast = transpose_matmul(&a, &b);
        let slow = naive_transpose_matmul(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn degenerate_shapes() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        assert_eq!(matmul(&a, &b).shape(), (0, 3));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let out = matmul(&a, &b);
        assert_eq!(out.shape(), (3, 2));
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn matvec_kernels_match_methods() {
        let a = mat(11, 7, 3);
        let v: Vec<f64> = (0..7).map(|i| (i as f64 * 0.3).sin()).collect();
        let w: Vec<f64> = (0..11).map(|i| (i as f64 * 0.7).cos()).collect();
        let mv = matvec(&a, &v);
        let tv = transpose_matvec(&a, &w);
        let mv_ref: Vec<f64> = a.iter_rows().map(|r| dot(r, &v)).collect();
        assert_eq!(mv, mv_ref);
        let tref = naive_transpose(&a);
        let tv_ref: Vec<f64> = tref.iter_rows().map(|r| dot(r, &w)).collect();
        for (x, y) in tv.iter().zip(&tv_ref) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn sanitize_rows_zeroes_non_finite() {
        let rows = [vec![1.0, f64::NAN], vec![f64::INFINITY, -2.0]];
        let m = sanitize_rows(&rows);
        assert_eq!(m.as_slice(), &[1.0, 0.0, 0.0, -2.0]);
        assert_eq!(sanitize_rows::<Vec<f64>>(&[]).shape(), (0, 0));
    }

    #[test]
    fn distance_kernel_matches_scalar_reference() {
        let refs: Vec<Vec<f64>> = (0..9)
            .map(|i| (0..5).map(|j| ((i * 5 + j) as f64 * 0.37).sin() * 3.0).collect())
            .collect();
        let queries: Vec<Vec<f64>> =
            (0..7).map(|i| (0..5).map(|j| ((i + j) as f64 * 0.91).cos() * 2.0).collect()).collect();
        let dk = DistanceKernel::fit(&refs);
        let batched = dk.sq_distances(&queries);
        for (i, q) in queries.iter().enumerate() {
            let scalar = dk.naive_sq_distances_to(q);
            for (j, &s) in scalar.iter().enumerate() {
                let b = batched[(i, j)];
                let tol = 1e-9 * s.abs().max(1.0);
                assert!((b - s).abs() <= tol, "({i},{j}): batched {b} vs scalar {s}");
            }
        }
    }

    #[test]
    fn distance_kernel_sanitizes_like_the_scalar_path() {
        let refs = [vec![f64::INFINITY, 1.0], vec![f64::NEG_INFINITY, 2.0], vec![0.0, 3.0]];
        let queries = [vec![f64::NAN, 1.5], vec![f64::INFINITY, 2.5]];
        let dk = DistanceKernel::fit(&refs);
        let batched = dk.sq_distances(&queries);
        assert!(batched.as_slice().iter().all(|d| d.is_finite() && *d >= 0.0));
        for (i, q) in queries.iter().enumerate() {
            for (j, &s) in dk.naive_sq_distances_to(q).iter().enumerate() {
                assert!((batched[(i, j)] - s).abs() <= 1e-9 * s.max(1.0));
            }
        }
    }

    #[test]
    fn self_distances_have_zero_diagonal() {
        let refs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, (i as f64 * 0.5).sin()]).collect();
        let dk = DistanceKernel::fit(&refs);
        let d = dk.self_sq_distances();
        for i in 0..6 {
            assert!(d[(i, i)].abs() < 1e-12, "diagonal ({i}) = {}", d[(i, i)]);
        }
    }

    #[test]
    fn dot_and_axpy() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        assert_eq!(dot(&x, &y), 10.0 + 40.0 + 90.0);
        axpy(-2.0, &x, &mut y);
        assert_eq!(y, [8.0, 16.0, 24.0]);
    }
}
