//! # exathlon-linalg
//!
//! Dense linear-algebra and descriptive-statistics substrate for the Exathlon
//! benchmark reproduction.
//!
//! The Exathlon pipeline needs a small but trustworthy numerical core:
//!
//! * a dense [`Matrix`] type with the usual kernels (multiply, transpose,
//!   row/column views) used by the from-scratch neural networks in
//!   `exathlon-nn`, backed by the cache-blocked GEMM and batched
//!   pairwise-distance kernels in [`kernel`] (naive references retained
//!   there for regression tests and benchmarks),
//! * a symmetric [eigensolver](eigen) (cyclic Jacobi) backing
//!   [principal component analysis](pca), which the paper uses as the
//!   `FS_pca` feature-extraction alternative (Table 8),
//! * [descriptive statistics](stats) — mean, standard deviation, median,
//!   MAD, IQR, quantiles, histograms and Shannon entropy — that drive the
//!   unsupervised threshold-selection rules (Appendix D.2) and the ED
//!   consistency metrics (§4.2),
//! * a [bitwise-exact binary codec](codec) (`to_bits`-round-tripped
//!   floats, length-validated reads) that the serving layer's
//!   checkpoint/restore builds on.
//!
//! Everything is `f64`, allocation-conscious, and implemented from scratch:
//! no external BLAS or ndarray dependency.

pub mod codec;
pub mod eigen;
pub mod elemwise;
pub mod kernel;
pub mod matrix;
pub mod obs;
pub mod par;
pub mod pca;
pub mod stats;

pub use matrix::Matrix;
pub use pca::Pca;
