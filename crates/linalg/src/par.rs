//! Shared parallel-execution layer for the Exathlon pipeline.
//!
//! A single primitive — order-preserving [`par_map`] over a slice —
//! built on crossbeam scoped threads with contiguous chunk fan-out, the
//! same shape as `exathlon-sparksim`'s dataset simulation. Every parallel
//! hot path of the pipeline (per-method training, per-trace scoring,
//! per-record inference, the thresholding-rule grid) goes through it, so
//! the guarantees live in one place:
//!
//! * **Determinism.** Chunks are contiguous index ranges joined in input
//!   order, and each element is computed independently; the output is
//!   bitwise identical to the sequential `items.iter().map(f).collect()`
//!   for any thread count (asserted end-to-end by
//!   `tests/parallel_determinism.rs`).
//! * **Bounded threads.** A global worker budget caps *transitive*
//!   parallelism: when an outer `par_map` has claimed the budget (e.g.
//!   per-method training), inner calls (e.g. per-record scoring inside a
//!   method) degrade to the sequential path instead of multiplying
//!   threads.
//! * **One knob.** `EXATHLON_THREADS` overrides the worker cap for both
//!   benchmarking (`EXATHLON_THREADS=1` vs `=8`) and containment; unset
//!   or invalid values fall back to the machine's available parallelism,
//!   clamped to 16. The variable is re-read on every call, so tests can
//!   vary it at runtime.
//!
//! # Panics
//! If a worker panics, the panic propagates to the caller (after the
//! budget is returned, so later calls are unaffected).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker cap.
pub const THREADS_ENV: &str = "EXATHLON_THREADS";

/// Worker-thread cap: `EXATHLON_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism, clamped to `[1, 16]`.
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(1, 16)
}

/// Workers currently claimed by in-flight `par_map` calls, process-wide.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Claim up to `want` extra workers from the global budget of
/// `cap - 1` (the calling thread is always lane zero and is never
/// counted). Returns the number granted, possibly 0.
fn reserve_workers(want: usize, cap: usize) -> usize {
    let budget = cap.saturating_sub(1);
    loop {
        let current = ACTIVE_WORKERS.load(Ordering::Acquire);
        let grant = want.min(budget.saturating_sub(current));
        if grant == 0 {
            return 0;
        }
        if ACTIVE_WORKERS
            .compare_exchange(current, current + grant, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return grant;
        }
    }
}

/// Returns claimed workers on drop, so panics cannot leak budget.
struct WorkerLease(usize);

impl Drop for WorkerLease {
    fn drop(&mut self) {
        if self.0 > 0 {
            ACTIVE_WORKERS.fetch_sub(self.0, Ordering::AcqRel);
        }
    }
}

/// Map `f` over `items` on up to [`max_threads`] threads, preserving
/// order. Falls back to the sequential path when the input is small, the
/// cap is 1, or the global worker budget is exhausted (nested calls) —
/// the result is identical in every case.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let cap = max_threads();
    crate::obs::counter("par.calls", 1);
    if n <= 1 || cap <= 1 {
        return items.iter().map(&f).collect();
    }
    let lease = WorkerLease(reserve_workers(n.min(cap) - 1, cap));
    if lease.0 == 0 {
        return items.iter().map(&f).collect();
    }
    crate::obs::counter("par.parallel_calls", 1);
    crate::obs::counter("par.workers_spawned", lease.0 as u64);
    let lanes = lease.0 + 1;
    let chunk = n.div_ceil(lanes);
    let result = crossbeam::scope(|scope| {
        let f = &f;
        let mut chunks = items.chunks(chunk);
        let first = chunks.next().expect("non-empty input");
        // Spawn the tail chunks, compute the head on this thread, then
        // join in order — output order equals input order.
        let handles: Vec<_> = chunks
            .map(|c| {
                scope.spawn(move |_| {
                    let busy = crate::obs::BusyClock::start();
                    let out = c.iter().map(f).collect::<Vec<U>>();
                    busy.stop();
                    out
                })
            })
            .collect();
        let busy = crate::obs::BusyClock::start();
        let mut out: Vec<U> = Vec::with_capacity(n);
        out.extend(first.iter().map(f));
        busy.stop();
        for handle in handles {
            out.extend(handle.join().expect("par_map worker panicked"));
        }
        out
    })
    .expect("par_map scope failed");
    drop(lease);
    result
}

/// [`par_map`] with the element index: `f(i, &items[i])` in input order.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let indexed: Vec<(usize, &T)> = items.iter().enumerate().collect();
    par_map(&indexed, |&(i, item)| f(i, item))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_threads<R>(n: &str, body: impl FnOnce() -> R) -> R {
        // Tests in one binary share the process env; serialize access.
        static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var(THREADS_ENV, n);
        let r = body();
        std::env::remove_var(THREADS_ENV);
        r
    }

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in ["1", "2", "3", "8"] {
            let got = with_threads(threads, || par_map(&items, |x| x * x));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |x| x + 1).is_empty());
        assert_eq!(par_map(&[41u32], |x| x + 1), vec![42]);
    }

    #[test]
    fn indexed_variant_sees_input_positions() {
        let items = vec!["a", "b", "c"];
        let got = with_threads("4", || par_map_indexed(&items, |i, s| format!("{i}:{s}")));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn nested_calls_stay_within_budget() {
        let peak = with_threads("4", || {
            let peak = AtomicUsize::new(0);
            let outer: Vec<usize> = (0..8).collect();
            par_map(&outer, |_| {
                let inner: Vec<usize> = (0..32).collect();
                par_map(&inner, |&x| {
                    let live = ACTIVE_WORKERS.load(Ordering::Acquire);
                    peak.fetch_max(live, Ordering::AcqRel);
                    x * 2
                })
                .len()
            });
            peak.load(Ordering::Acquire)
        });
        assert!(peak <= 3, "claimed workers exceeded cap-1: {peak}");
        assert_eq!(ACTIVE_WORKERS.load(Ordering::Acquire), 0, "budget leaked");
    }

    #[test]
    fn worker_panic_propagates_and_releases_budget() {
        let result = with_threads("4", || {
            std::panic::catch_unwind(|| {
                let items: Vec<u32> = (0..100).collect();
                par_map(&items, |&x| {
                    if x == 77 {
                        panic!("boom");
                    }
                    x
                })
            })
        });
        assert!(result.is_err(), "panic should propagate");
        assert_eq!(ACTIVE_WORKERS.load(Ordering::Acquire), 0, "budget leaked after panic");
    }

    #[test]
    fn env_override_parses() {
        assert_eq!(with_threads("3", max_threads), 3);
        assert_eq!(with_threads(" 5 ", max_threads), 5);
        let fallback =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(1, 16);
        assert_eq!(with_threads("0", max_threads), fallback);
        assert_eq!(with_threads("bogus", max_threads), fallback);
    }
}
