//! Principal component analysis on top of the Jacobi eigensolver.
//!
//! The Exathlon pipeline offers PCA as one of its two dimensionality
//! reducers (§5 step 2): either keep the top-`k` components, or keep as many
//! components as needed to cover a target fraction of the data variance.
//! Table 8 of the paper evaluates the AD methods on `FS_pca` with 19
//! components, compared against the 19-feature curated set `FS_custom`.

use crate::eigen::{covariance_matrix, symmetric_eigen};
use crate::matrix::Matrix;

/// How many components a [`Pca`] should retain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ComponentSelection {
    /// Keep exactly this many leading components (clamped to the feature
    /// count).
    Fixed(usize),
    /// Keep the smallest number of leading components whose cumulative
    /// explained-variance ratio reaches this threshold in `(0, 1]`.
    VarianceCoverage(f64),
}

/// A fitted PCA transform: centering vector + projection matrix.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Per-feature means used for centering.
    means: Vec<f64>,
    /// `d x k` projection matrix (columns are principal axes).
    components: Matrix,
    /// Explained-variance ratio of each retained component.
    explained: Vec<f64>,
}

impl Pca {
    /// Fit a PCA on `data` (rows = observations, columns = features).
    ///
    /// # Panics
    /// Panics if `data` has no rows or no columns, or if a
    /// [`ComponentSelection::VarianceCoverage`] threshold is outside `(0, 1]`.
    pub fn fit(data: &Matrix, selection: ComponentSelection) -> Self {
        assert!(data.rows() > 0 && data.cols() > 0, "PCA needs a non-empty matrix");
        let d = data.cols();
        let cov = covariance_matrix(data);
        let eig = symmetric_eigen(&cov, 100, 1e-12);

        let total: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
        let ratios: Vec<f64> = eig
            .values
            .iter()
            .map(|&v| if total > 0.0 { v.max(0.0) / total } else { 0.0 })
            .collect();

        let k = match selection {
            ComponentSelection::Fixed(k) => k.clamp(1, d),
            ComponentSelection::VarianceCoverage(cov_target) => {
                assert!(
                    cov_target > 0.0 && cov_target <= 1.0,
                    "variance coverage must be in (0, 1]"
                );
                let mut acc = 0.0;
                let mut k = d;
                for (i, &r) in ratios.iter().enumerate() {
                    acc += r;
                    if acc >= cov_target {
                        k = i + 1;
                        break;
                    }
                }
                k.max(1)
            }
        };

        let means: Vec<f64> = (0..d).map(|j| crate::stats::mean(&data.col(j))).collect();
        let keep: Vec<usize> = (0..k).collect();
        let components = eig.vectors.select_cols(&keep);
        let explained = ratios[..k].to_vec();

        Self { means, components, explained }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.cols()
    }

    /// Input dimensionality the transform expects.
    pub fn input_dim(&self) -> usize {
        self.components.rows()
    }

    /// Explained-variance ratio of each retained component (descending).
    pub fn explained_variance_ratio(&self) -> &[f64] {
        &self.explained
    }

    /// Project a single observation into component space.
    ///
    /// NaN inputs are imputed with the training mean of the feature before
    /// centering (so they project to zero along that axis).
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.input_dim(), "PCA transform dimension mismatch");
        let centered: Vec<f64> = row
            .iter()
            .zip(&self.means)
            .map(|(&x, &mu)| if x.is_nan() { 0.0 } else { x - mu })
            .collect();
        self.components.transpose_matvec(&centered)
    }

    /// Project every row of `data` into component space: one centering
    /// pass, then a single `centered · components` GEMM — the same
    /// ascending-`k` sums as [`Pca::transform_row`], so each row is
    /// bitwise identical to the one-at-a-time path.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.input_dim(), "PCA transform dimension mismatch");
        let mut centered = Matrix::zeros(data.rows(), data.cols());
        for (r, row) in data.iter_rows().enumerate() {
            for ((c, &x), &mu) in centered.row_mut(r).iter_mut().zip(row).zip(&self.means) {
                *c = if x.is_nan() { 0.0 } else { x - mu };
            }
        }
        centered.matmul(&self.components)
    }

    /// Map a point in component space back to the original feature space
    /// (adds back the means).
    pub fn inverse_transform_row(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.n_components(), "PCA inverse dimension mismatch");
        let back = self.components.matvec(z);
        back.iter().zip(&self.means).map(|(&b, &mu)| b + mu).collect()
    }

    /// Serialize into `w` — centering means, projection matrix and
    /// explained ratios, all bitwise.
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.put_f64s(&self.means);
        w.put_matrix(&self.components);
        w.put_f64s(&self.explained);
    }

    /// Decode a transform written by [`Pca::encode`]. Restored state is
    /// field-for-field bitwise identical, so [`Pca::transform_row`]
    /// reproduces the original projections exactly.
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Self, crate::codec::CodecError> {
        let means = r.get_f64s()?;
        let components = r.get_matrix()?;
        let explained = r.get_f64s()?;
        if components.rows() != means.len() || components.cols() != explained.len() {
            return Err(crate::codec::CodecError::Corrupt("PCA shape mismatch"));
        }
        if components.cols() == 0 {
            return Err(crate::codec::CodecError::Corrupt("PCA with zero components"));
        }
        Ok(Self { means, components, explained })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data lying exactly on a line in 2D: one component explains everything.
    fn line_data() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![2.0, 4.0],
            vec![3.0, 6.0],
            vec![4.0, 8.0],
            vec![5.0, 10.0],
        ])
    }

    #[test]
    fn single_component_captures_line() {
        let pca = Pca::fit(&line_data(), ComponentSelection::Fixed(1));
        assert_eq!(pca.n_components(), 1);
        assert!(pca.explained_variance_ratio()[0] > 0.999);
    }

    #[test]
    fn variance_coverage_selects_minimal_k() {
        let pca = Pca::fit(&line_data(), ComponentSelection::VarianceCoverage(0.95));
        assert_eq!(pca.n_components(), 1);
    }

    #[test]
    fn roundtrip_on_line_data() {
        let data = line_data();
        let pca = Pca::fit(&data, ComponentSelection::Fixed(1));
        for row in data.iter_rows() {
            let z = pca.transform_row(row);
            let back = pca.inverse_transform_row(&z);
            for (a, b) in row.iter().zip(&back) {
                assert!((a - b).abs() < 1e-8, "roundtrip lost information: {a} vs {b}");
            }
        }
    }

    #[test]
    fn transform_centers_data() {
        let data = line_data();
        let pca = Pca::fit(&data, ComponentSelection::Fixed(2));
        let z = pca.transform(&data);
        // Projections of centered data must themselves have zero mean.
        for j in 0..z.cols() {
            let m = crate::stats::mean(&z.col(j));
            assert!(m.abs() < 1e-9, "component {j} mean {m}");
        }
    }

    #[test]
    fn fixed_k_clamped_to_dims() {
        let pca = Pca::fit(&line_data(), ComponentSelection::Fixed(10));
        assert_eq!(pca.n_components(), 2);
    }

    #[test]
    fn nan_rows_impute_to_mean() {
        let data = line_data();
        let pca = Pca::fit(&data, ComponentSelection::Fixed(1));
        let z = pca.transform_row(&[f64::NAN, f64::NAN]);
        assert!(z[0].abs() < 1e-12, "NaN row should project to the origin");
    }

    #[test]
    fn explained_ratios_sum_to_at_most_one() {
        let data = Matrix::from_rows(&[
            vec![1.0, 0.2, 3.1],
            vec![2.0, 0.1, 2.9],
            vec![1.5, 0.4, 3.3],
            vec![2.5, 0.3, 3.0],
            vec![1.8, 0.2, 3.2],
        ]);
        let pca = Pca::fit(&data, ComponentSelection::Fixed(3));
        let sum: f64 = pca.explained_variance_ratio().iter().sum();
        assert!(sum <= 1.0 + 1e-9);
        assert!(sum > 0.99);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_matrix_panics() {
        let _ = Pca::fit(&Matrix::zeros(0, 0), ComponentSelection::Fixed(1));
    }
}
