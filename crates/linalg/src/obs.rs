//! Pipeline-wide structured observability: stages, spans, counters, and
//! duration histograms — the substrate every perf/scaling change justifies
//! its numbers with.
//!
//! # Model
//!
//! * A **stage** is one of the coarse pipeline phases (`simulate`,
//!   `partition`, `transform`, `train`, `score`, `threshold`, `evaluate`,
//!   `ed`). [`stage`] returns a guard that adds its wall-clock time to the
//!   stage on drop; [`add_records`] attributes a record count so the
//!   report can derive records/sec.
//! * A **span** is a finer timed region inside a stage (one trace
//!   simulated, one method trained, one thresholding rule evaluated).
//!   Span aggregates keep count / total / min / max, a log₂ duration
//!   histogram, and the set of worker threads that contributed — so
//!   per-worker timings from [`crate::par`] leases aggregate correctly
//!   instead of being misread as one serial timeline.
//! * A **counter** is a named monotonic `u64` ([`counter`]). The parallel
//!   layer reports its fan-out decisions this way (`par.calls`,
//!   `par.parallel_calls`, `par.workers_spawned`, `par.worker_busy_ns`),
//!   which is where the report's worker-utilization figure comes from.
//!
//! # Control
//!
//! The layer is off unless `EXATHLON_PROFILE` is set to anything other
//! than `""` or `"0"`. The decision is cached in an atomic: the disabled
//! fast path is one relaxed load and **no allocation** (guards carry
//! `None` and their `Drop` is a no-op), so instrumented code compiles down
//! to near-zero overhead — pinned by the `p2_obs_overhead` bench. After
//! changing the variable at runtime (tests, benches), call [`refresh`].
//!
//! Reports are deterministic-by-construction reads of the registry: all
//! maps are `BTreeMap`s, so two runs that execute the same work produce
//! reports with the same stage/span ordering. Profiling never changes
//! pipeline *output*: guards only read clocks (`tests/
//! profile_determinism.rs` pins bitwise identity of profiled runs).
//!
//! `EXATHLON_PROFILE_DIR` overrides the report directory (default
//! `results/`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Environment variable enabling the observability layer.
pub const PROFILE_ENV: &str = "EXATHLON_PROFILE";
/// Environment variable overriding the report directory.
pub const PROFILE_DIR_ENV: &str = "EXATHLON_PROFILE_DIR";
/// File name of the JSON report written under the report directory.
pub const REPORT_FILE: &str = "profile_report.json";

/// Number of log₂ duration-histogram buckets: bucket `i` holds spans with
/// duration in `[2^i, 2^(i+1))` nanoseconds; 40 buckets reach ~18 minutes.
pub const HIST_BUCKETS: usize = 40;

// Cached enablement: 0 = undecided, 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether profiling is enabled. One relaxed atomic load on the hot path;
/// the first call (or the first after [`refresh`]) reads [`PROFILE_ENV`].
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => refresh(),
    }
}

/// Re-read [`PROFILE_ENV`] and cache the result. Call after mutating the
/// variable at runtime; plain CLI runs never need it.
pub fn refresh() -> bool {
    let on = match std::env::var(PROFILE_ENV) {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    };
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Per-thread worker id, assigned on first use — spans record which
/// workers contributed, surviving thread reuse across `par_map` calls.
fn worker_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

#[derive(Default)]
struct StageAgg {
    wall_ns: u64,
    entries: u64,
    records: u64,
}

struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    hist: [u64; HIST_BUCKETS],
    /// Worker ids that executed at least one span of this aggregate.
    threads: Vec<u64>,
}

impl SpanAgg {
    fn new() -> Self {
        Self {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            hist: [0; HIST_BUCKETS],
            threads: Vec::new(),
        }
    }

    fn record(&mut self, ns: u64, thread: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        let bucket = (64 - ns.max(1).leading_zeros() as usize - 1).min(HIST_BUCKETS - 1);
        self.hist[bucket] += 1;
        if let Err(at) = self.threads.binary_search(&thread) {
            self.threads.insert(at, thread);
        }
    }
}

#[derive(Default)]
struct Registry {
    stages: BTreeMap<&'static str, StageAgg>,
    spans: BTreeMap<(&'static str, &'static str), SpanAgg>,
    counters: BTreeMap<&'static str, u64>,
    started: Option<Instant>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let reg = guard.get_or_insert_with(Registry::default);
    if reg.started.is_none() {
        reg.started = Some(Instant::now());
    }
    f(reg)
}

/// Guard timing one entry of a pipeline stage; the elapsed wall-clock is
/// added to the stage aggregate on drop. No-op (and allocation-free) when
/// profiling is disabled.
#[must_use = "the stage is timed until the guard drops"]
pub struct StageGuard {
    data: Option<(&'static str, Instant)>,
}

/// Start timing one entry of `stage_name`.
#[inline]
pub fn stage(stage_name: &'static str) -> StageGuard {
    if !enabled() {
        return StageGuard { data: None };
    }
    StageGuard { data: Some((stage_name, Instant::now())) }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.data.take() {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            with_registry(|reg| {
                let agg = reg.stages.entry(name).or_default();
                agg.wall_ns += ns;
                agg.entries += 1;
            });
        }
    }
}

/// Attribute `n` processed records to a stage (throughput numerator).
#[inline]
pub fn add_records(stage_name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    with_registry(|reg| reg.stages.entry(stage_name).or_default().records += n);
}

/// Guard timing one span; recorded into the `(stage, name)` aggregate on
/// drop, tagged with the executing worker thread. No-op when disabled.
#[must_use = "the span is timed until the guard drops"]
pub struct SpanGuard {
    data: Option<(&'static str, &'static str, Instant)>,
}

/// Start a span `name` under `stage_name`.
#[inline]
pub fn span(stage_name: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { data: None };
    }
    SpanGuard { data: Some((stage_name, name, Instant::now())) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((stage_name, name, start)) = self.data.take() {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let thread = worker_id();
            with_registry(|reg| {
                reg.spans.entry((stage_name, name)).or_insert_with(SpanAgg::new).record(ns, thread)
            });
        }
    }
}

/// Accumulates a worker's busy wall-clock into the `par.worker_busy_ns`
/// counter on drop — the parallel layer wraps each chunk in one so the
/// report can derive worker utilization. No-op when disabled.
#[must_use = "busy time is recorded when the clock stops"]
pub struct BusyClock(Option<Instant>);

impl BusyClock {
    /// Start the clock (disabled path allocates nothing).
    #[inline]
    pub fn start() -> Self {
        if enabled() {
            BusyClock(Some(Instant::now()))
        } else {
            BusyClock(None)
        }
    }

    /// Stop explicitly (equivalent to dropping).
    #[inline]
    pub fn stop(self) {}
}

impl Drop for BusyClock {
    fn drop(&mut self) {
        if let Some(start) = self.0.take() {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            with_registry(|reg| *reg.counters.entry("par.worker_busy_ns").or_insert(0) += ns);
        }
    }
}

/// Add `delta` to the named monotonic counter.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_registry(|reg| *reg.counters.entry(name).or_insert(0) += delta);
}

/// Clear all recorded stages, spans, and counters (tests / repeated runs).
pub fn reset() {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    *guard = None;
}

/// One span aggregate in a [`Report`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanReport {
    /// Stage the span belongs to.
    pub stage: String,
    /// Span name.
    pub name: String,
    /// Number of recorded spans.
    pub count: u64,
    /// Summed duration (ns).
    pub total_ns: u64,
    /// Shortest recorded span (ns).
    pub min_ns: u64,
    /// Longest recorded span (ns).
    pub max_ns: u64,
    /// Approximate median from the log₂ histogram (ns).
    pub p50_ns: u64,
    /// Approximate 99th percentile from the log₂ histogram (ns).
    pub p99_ns: u64,
    /// Number of distinct worker threads that executed spans.
    pub threads: usize,
}

/// One stage aggregate in a [`Report`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name.
    pub name: String,
    /// Summed wall-clock over all entries (ns). Concurrent entries (e.g.
    /// per-method training on workers) sum, so this can exceed elapsed
    /// process time — it is per-worker busy time, not a timeline.
    pub wall_ns: u64,
    /// Number of guard entries.
    pub entries: u64,
    /// Records attributed via [`add_records`].
    pub records: u64,
    /// `records / wall` in records per second (0 when either is 0).
    pub records_per_sec: f64,
}

/// A snapshot of everything recorded since start/[`reset`].
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Elapsed wall-clock since the first recorded event (ns).
    pub elapsed_ns: u64,
    /// Per-stage aggregates, name-ordered.
    pub stages: Vec<StageReport>,
    /// Per-span aggregates, (stage, name)-ordered.
    pub spans: Vec<SpanReport>,
    /// Counters, name-ordered.
    pub counters: Vec<(String, u64)>,
}

fn percentile(hist: &[u64; HIST_BUCKETS], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = ((count as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0;
    for (i, &c) in hist.iter().enumerate() {
        seen += c;
        if seen >= target {
            // Bucket midpoint: [2^i, 2^(i+1)) → 1.5 * 2^i.
            return (1u64 << i) + (1u64 << i) / 2;
        }
    }
    1u64 << (HIST_BUCKETS - 1)
}

/// Snapshot the registry into a [`Report`].
pub fn report() -> Report {
    with_registry(|reg| {
        let elapsed_ns =
            reg.started.map(|s| s.elapsed().as_nanos().min(u64::MAX as u128) as u64).unwrap_or(0);
        let stages = reg
            .stages
            .iter()
            .map(|(&name, agg)| StageReport {
                name: name.to_string(),
                wall_ns: agg.wall_ns,
                entries: agg.entries,
                records: agg.records,
                records_per_sec: if agg.wall_ns == 0 {
                    0.0
                } else {
                    agg.records as f64 / (agg.wall_ns as f64 / 1e9)
                },
            })
            .collect();
        let spans = reg
            .spans
            .iter()
            .map(|(&(stage_name, name), agg)| SpanReport {
                stage: stage_name.to_string(),
                name: name.to_string(),
                count: agg.count,
                total_ns: agg.total_ns,
                min_ns: if agg.count == 0 { 0 } else { agg.min_ns },
                max_ns: agg.max_ns,
                p50_ns: percentile(&agg.hist, agg.count, 0.50),
                p99_ns: percentile(&agg.hist, agg.count, 0.99),
                threads: agg.threads.len(),
            })
            .collect();
        let counters = reg.counters.iter().map(|(&k, &v)| (k.to_string(), v)).collect();
        Report { elapsed_ns, stages, spans, counters }
    })
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Report {
    /// Worker utilization: busy time reported by `par_map` chunks divided
    /// by `workers x elapsed`. `None` when the parallel layer never ran
    /// or no wall-clock elapsed.
    pub fn worker_utilization(&self, workers: usize) -> Option<f64> {
        if workers == 0 || self.elapsed_ns == 0 {
            return None;
        }
        let busy =
            self.counters.iter().find(|(k, _)| k == "par.worker_busy_ns").map(|&(_, v)| v)?;
        Some(busy as f64 / (self.elapsed_ns as f64 * workers as f64))
    }

    /// The report as a JSON document (schema documented in DESIGN.md).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"elapsed_ns\": {},\n", self.elapsed_ns));
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_ns\": {}, \"entries\": {}, \"records\": {}, \
                 \"records_per_sec\": {:.3}}}{}\n",
                json_escape(&s.name),
                s.wall_ns,
                s.entries,
                s.records,
                s.records_per_sec,
                if i + 1 < self.stages.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"stage\": \"{}\", \"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \
                 \"min_ns\": {}, \"max_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
                 \"threads\": {}}}{}\n",
                json_escape(&s.stage),
                json_escape(&s.name),
                s.count,
                s.total_ns,
                s.min_ns,
                s.max_ns,
                s.p50_ns,
                s.p99_ns,
                s.threads,
                if i + 1 < self.spans.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(&format!(
                "{}\"{}\": {}",
                if i > 0 { ", " } else { "" },
                json_escape(k),
                v
            ));
        }
        out.push_str("}\n}\n");
        out
    }

    /// Human-readable per-stage table with a top-`top_n` span breakdown.
    pub fn table(&self, top_n: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Exathlon profile == elapsed {:.3}s\n",
            self.elapsed_ns as f64 / 1e9
        ));
        if let Some(u) = self.worker_utilization(crate::par::max_threads()) {
            out.push_str(&format!(
                "worker utilization: {:.1}% of {} workers\n",
                u * 100.0,
                crate::par::max_threads()
            ));
        }
        out.push_str(&format!(
            "{:<12} {:>10} {:>8} {:>12} {:>14}\n",
            "stage", "wall (s)", "entries", "records", "records/s"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<12} {:>10.3} {:>8} {:>12} {:>14.1}\n",
                s.name,
                s.wall_ns as f64 / 1e9,
                s.entries,
                s.records,
                s.records_per_sec
            ));
        }
        let mut top: Vec<&SpanReport> = self.spans.iter().collect();
        top.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then_with(|| a.name.cmp(&b.name)));
        top.truncate(top_n);
        if !top.is_empty() {
            out.push_str(&format!(
                "{:<28} {:>8} {:>10} {:>10} {:>10} {:>8}\n",
                "top spans", "count", "total (s)", "p50 (us)", "p99 (us)", "threads"
            ));
            for s in top {
                out.push_str(&format!(
                    "{:<28} {:>8} {:>10.3} {:>10.1} {:>10.1} {:>8}\n",
                    format!("{}/{}", s.stage, s.name),
                    s.count,
                    s.total_ns as f64 / 1e9,
                    s.p50_ns as f64 / 1e3,
                    s.p99_ns as f64 / 1e3,
                    s.threads
                ));
            }
        }
        out
    }
}

/// Directory the JSON report is written to: [`PROFILE_DIR_ENV`] if set,
/// else `results/`.
pub fn report_dir() -> std::path::PathBuf {
    std::env::var(PROFILE_DIR_ENV).unwrap_or_else(|_| "results".to_string()).into()
}

/// When profiling is enabled, snapshot the registry, write the JSON
/// report atomically (temp file + rename) under [`report_dir`], print the
/// table to stderr, and return the report path. No-op when disabled.
///
/// Emission is a cumulative snapshot: callers may emit more than once per
/// process (e.g. after AD and again after ED) and the last write wins
/// with a superset of the earlier stages.
pub fn emit_report() -> Option<std::path::PathBuf> {
    if !enabled() {
        return None;
    }
    let rep = report();
    eprint!("{}", rep.table(10));
    let dir = report_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    let path = dir.join(REPORT_FILE);
    let tmp = dir.join(format!("{REPORT_FILE}.tmp.{}", std::process::id()));
    if std::fs::write(&tmp, rep.to_json()).is_err() {
        return None;
    }
    if std::fs::rename(&tmp, &path).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return None;
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profile state is process-global; tests that toggle it serialize.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn with_profile<R>(body: impl FnOnce() -> R) -> R {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var(PROFILE_ENV, "1");
        refresh();
        reset();
        let r = body();
        std::env::remove_var(PROFILE_ENV);
        refresh();
        reset();
        r
    }

    #[test]
    fn disabled_guards_are_noops() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::remove_var(PROFILE_ENV);
        refresh();
        reset();
        {
            let _st = stage("train");
            let _sp = span("train", "unit");
            counter("c", 3);
            add_records("train", 10);
        }
        let rep = report();
        assert!(rep.stages.is_empty(), "disabled run must record nothing");
        assert!(rep.spans.is_empty());
        assert!(rep.counters.is_empty());
    }

    #[test]
    fn stages_spans_and_counters_aggregate() {
        let rep = with_profile(|| {
            {
                let _st = stage("train");
                for _ in 0..3 {
                    let _sp = span("train", "unit");
                }
            }
            add_records("train", 50);
            counter("c", 2);
            counter("c", 5);
            report()
        });
        let st = rep.stages.iter().find(|s| s.name == "train").expect("train stage");
        assert_eq!(st.entries, 1);
        assert_eq!(st.records, 50);
        assert!(st.records_per_sec > 0.0);
        let sp = rep.spans.iter().find(|s| s.name == "unit").expect("unit span");
        assert_eq!(sp.count, 3);
        assert!(sp.min_ns <= sp.max_ns);
        assert!(sp.p50_ns > 0 && sp.p99_ns >= sp.p50_ns);
        assert_eq!(sp.threads, 1);
        assert_eq!(rep.counters, vec![("c".to_string(), 7)]);
    }

    #[test]
    fn spans_track_worker_threads() {
        let rep = with_profile(|| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    std::thread::spawn(|| {
                        let _sp = span("score", "worker");
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            report()
        });
        let sp = rep.spans.iter().find(|s| s.name == "worker").expect("worker span");
        assert_eq!(sp.count, 3);
        assert_eq!(sp.threads, 3, "each worker thread must be visible");
    }

    #[test]
    fn json_report_is_valid_and_ordered() {
        let json = with_profile(|| {
            {
                let _a = stage("b_stage");
                let _b = stage("a_stage");
            }
            counter("k", 1);
            report().to_json()
        });
        // Name-ordered stages (BTreeMap) and structurally valid JSON.
        let a = json.find("a_stage").expect("a_stage present");
        let b = json.find("b_stage").expect("b_stage present");
        assert!(a < b, "stages must be name-ordered");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"counters\": {\"k\": 1}"));
    }

    #[test]
    fn table_renders_every_stage() {
        let table = with_profile(|| {
            {
                let _a = stage("simulate");
                let _sp = span("simulate", "trace");
            }
            report().table(5)
        });
        assert!(table.contains("simulate"));
        assert!(table.contains("simulate/trace"));
    }

    #[test]
    fn percentile_covers_extremes() {
        let mut hist = [0u64; HIST_BUCKETS];
        hist[3] = 9; // 8..16 ns
        hist[10] = 1; // 1024..2048 ns
        assert_eq!(percentile(&hist, 10, 0.50), 12);
        assert_eq!(percentile(&hist, 10, 0.99), 1536);
        assert_eq!(percentile(&hist, 0, 0.5), 0);
    }
}
